//! Criterion benchmarks: one per paper figure (and extension experiment).
//!
//! Each benchmark regenerates its figure end-to-end at reduced scale
//! (2^14-row table, 2^-8 grids), so `cargo bench` both exercises every
//! figure path and tracks the harness's real wall-time.  The full-scale
//! artifacts come from `cargo run --release --bin figures -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use robustmap_bench::{run_figure, Harness, ALL_FIGURES};

fn bench_figures(c: &mut Criterion) {
    let harness = Harness::tiny();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for name in ALL_FIGURES {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let out = run_figure(&harness, name).expect("known figure");
                criterion::black_box(out.report.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
