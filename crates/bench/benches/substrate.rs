//! Criterion micro-benchmarks of the substrate: the structures and
//! operators whose (real) speed determines how large a robustness map one
//! can afford to sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use robustmap_core::{build_map2d, Grid2D, MeasureConfig};
use robustmap_executor::{
    execute_count, ColRange, ExecCtx, FetchKind, ImprovedFetchConfig, IndexRangeSpec, KeyRange,
    PlanSpec, Predicate, Projection, SpillMode,
};
use robustmap_storage::btree::{BTree, Key};
use robustmap_storage::heap::Rid;
use robustmap_storage::{FileId, RidBitmap, Session};
use robustmap_systems::{two_predicate_plans, SystemId};
use robustmap_workload::{TableBuilder, WorkloadConfig};

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    let entries: Vec<(Key, Rid)> =
        (0..100_000i64).map(|i| (Key::single(i), Rid::new((i / 200) as u32, (i % 200) as u32))).collect();
    group.bench_function("bulk_load_100k", |b| {
        b.iter(|| BTree::bulk_load(FileId(0), 1, &entries, 0.9))
    });
    let tree = BTree::bulk_load(FileId(0), 1, &entries, 0.9);
    let session = Session::with_pool_pages(1 << 16);
    group.bench_function("point_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            tree.get_first(&Key::single(k), &session)
        })
    });
    group.bench_function("range_scan_1k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            tree.scan_range(
                &Key::single(40_000),
                &Key::single(40_999),
                &session,
                robustmap_storage::AccessKind::Sequential,
                |_| n += 1,
            );
            n
        })
    });
    group.bench_function("insert_delete_cycle", |b| {
        let mut tree = BTree::new(FileId(1), 1);
        for i in 0..10_000i64 {
            tree.insert(Key::single(i), Rid::new(0, i as u32), &session);
        }
        let mut i = 0i64;
        b.iter(|| {
            let k = (i * 31) % 10_000;
            tree.delete(Key::single(k), Rid::new(0, k as u32), &session);
            tree.insert(Key::single(k), Rid::new(0, k as u32), &session);
            i += 1;
        })
    });
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap");
    let a: RidBitmap = (0..200_000u64).filter(|x| x % 3 == 0).collect();
    let b_set: RidBitmap = (0..200_000u64).filter(|x| x % 5 == 0).collect();
    group.bench_function("and_200k", |bch| bch.iter(|| a.and(&b_set).count()));
    group.bench_function("iter_sorted", |bch| {
        bch.iter(|| a.iter().fold(0u64, |acc, x| acc.wrapping_add(x)))
    });
    group.finish();
}

fn bench_fetch_disciplines(c: &mut Criterion) {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 16));
    let t = w.cal_a.threshold(1.0 / 16.0);
    let mut group = c.benchmark_group("fetch");
    group.sample_size(20);
    for (name, fetch) in [
        ("traditional", FetchKind::Traditional),
        ("improved", FetchKind::Improved(ImprovedFetchConfig::default())),
        ("bitmap", FetchKind::BitmapSorted),
    ] {
        let plan = PlanSpec::IndexFetch {
            scan: IndexRangeSpec { index: w.indexes.a, range: KeyRange::on_leading(i64::MIN, t, 1) },
            key_filter: Predicate::always_true(),
            fetch,
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = Session::with_pool_pages(256);
                let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
                execute_count(&plan, &ctx).unwrap().rows_out
            })
        });
    }
    group.finish();
}

fn bench_sort_modes(c: &mut Criterion) {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 16));
    let mut group = c.benchmark_group("sort");
    group.sample_size(10);
    for (name, mode) in [("abrupt", SpillMode::Abrupt), ("graceful", SpillMode::Graceful)] {
        let plan = PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::single(ColRange::at_most(0, w.cal_a.threshold(0.25))),
                project: Projection::Columns(vec![2]),
            }),
            key_cols: vec![0],
            mode,
            memory_bytes: 1 << 17,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let s = Session::with_pool_pages(256);
                let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
                execute_count(&plan, &ctx).unwrap().rows_out
            })
        });
    }
    group.finish();
}

fn bench_map_builder(c: &mut Criterion) {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 14));
    let plans = two_predicate_plans(SystemId::A, &w);
    let mut group = c.benchmark_group("map_builder");
    group.sample_size(10);
    group.bench_function("system_a_9x9", |b| {
        b.iter_batched(
            || Grid2D::pow2(8),
            |grid| build_map2d(&w, &plans, &grid, &MeasureConfig::default()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_btree,
    bench_bitmap,
    bench_fetch_disciplines,
    bench_sort_modes,
    bench_map_builder
);
criterion_main!(benches);
