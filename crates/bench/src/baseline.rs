//! The committed per-figure wall-time baseline, and the delta summary the
//! `figures` binary prints against it.
//!
//! The ROADMAP names the per-figure wall-time summary as "the number to
//! track"; this module machine-checks it.  `baselines/walltime.json` (in
//! this crate) records the seconds each figure took on the reference run
//! at the default scale; every `figures` run at that scale prints the
//! delta per figure and warns when a figure regressed by more than
//! [`WARN_FACTOR`].  Runs at other scales skip the comparison (the
//! baseline would be meaningless) and say so.
//!
//! The file is a flat JSON object — `{"_rows": N, "_grid": N,
//! "fig1": seconds, ...}` — parsed by the tiny reader below because the
//! workspace vendors no serde.  Regenerate it by pasting the summary of a
//! `figures -- all` run on the reference machine.

/// Warn when a figure takes more than this factor of its baseline.
pub const WARN_FACTOR: f64 = 1.2;

/// A parsed wall-time baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct WallTimeBaseline {
    /// Table rows of the reference run.
    pub rows: u64,
    /// Grid exponent of the reference run.
    pub grid_exp: u32,
    /// `(figure, seconds)` pairs, in file order.
    pub figures: Vec<(String, f64)>,
}

impl WallTimeBaseline {
    /// Baseline seconds for one figure.
    pub fn seconds_for(&self, name: &str) -> Option<f64> {
        self.figures.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    }
}

/// Parse the flat-object baseline format.  Returns `None` on anything
/// malformed — a broken baseline must degrade to "no comparison", never
/// panic a figures run.
pub fn parse_baseline(text: &str) -> Option<WallTimeBaseline> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut rows = None;
    let mut grid_exp = None;
    let mut figures = Vec::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value: f64 = value.trim().parse().ok()?;
        match key {
            "_rows" => rows = Some(value as u64),
            "_grid" => grid_exp = Some(value as u32),
            _ => figures.push((key.to_string(), value)),
        }
    }
    Some(WallTimeBaseline { rows: rows?, grid_exp: grid_exp?, figures })
}

/// Load the committed baseline, if present and well-formed.
pub fn load_baseline() -> Option<WallTimeBaseline> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/walltime.json");
    parse_baseline(&std::fs::read_to_string(path).ok()?)
}

/// The delta summary printed after a run's per-figure timings: current vs
/// baseline seconds per figure, with a `WARN` marker past
/// [`WARN_FACTOR`], and a total line.  Scale mismatches produce a single
/// explanatory line instead of meaningless deltas.
pub fn delta_summary(
    baseline: &WallTimeBaseline,
    rows: u64,
    grid_exp: u32,
    timings: &[(String, f64)],
) -> String {
    if rows != baseline.rows || grid_exp != baseline.grid_exp {
        return format!(
            "wall-time baseline recorded at {} rows, grid 2^-{} — current scale differs, \
             no comparison\n",
            baseline.rows, baseline.grid_exp
        );
    }
    let mut out = String::from("wall time vs committed baseline (crates/bench/baselines/walltime.json):\n");
    let mut cur_total = 0.0;
    let mut base_total = 0.0;
    let mut warned = 0usize;
    for (name, secs) in timings {
        let Some(base) = baseline.seconds_for(name) else {
            out.push_str(&format!("  {name:<18} {secs:>8.2}s  (no baseline entry)\n"));
            continue;
        };
        cur_total += secs;
        base_total += base;
        let delta = (secs / base.max(1e-9) - 1.0) * 100.0;
        let warn = *secs > base * WARN_FACTOR;
        if warn {
            warned += 1;
        }
        out.push_str(&format!(
            "  {name:<18} {secs:>8.2}s  baseline {base:>8.2}s  {delta:>+6.1}%{}\n",
            if warn { "  WARN: regressed past the 20% budget" } else { "" }
        ));
    }
    if base_total > 0.0 {
        let delta = (cur_total / base_total - 1.0) * 100.0;
        out.push_str(&format!(
            "  {:<18} {cur_total:>8.2}s  baseline {base_total:>8.2}s  {delta:>+6.1}%\n",
            "total (compared)"
        ));
    }
    if warned > 0 {
        out.push_str(&format!(
            "  {warned} figure(s) regressed more than {:.0}% — investigate before merging \
             (docs/EXPERIMENTS.md records the trajectory)\n",
            (WARN_FACTOR - 1.0) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "_rows": 1048576,
        "_grid": 16,
        "fig1": 5.0,
        "ext_join": 33.0
    }"#;

    #[test]
    fn parses_the_flat_object_format() {
        let b = parse_baseline(SAMPLE).expect("well-formed");
        assert_eq!(b.rows, 1 << 20);
        assert_eq!(b.grid_exp, 16);
        assert_eq!(b.seconds_for("fig1"), Some(5.0));
        assert_eq!(b.seconds_for("ext_join"), Some(33.0));
        assert_eq!(b.seconds_for("nope"), None);
    }

    #[test]
    fn malformed_baselines_degrade_to_none() {
        for bad in ["", "{", "{}", "{\"fig1\": 5.0}", "{\"_rows\": x}", "not json at all"] {
            assert!(parse_baseline(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn the_committed_baseline_parses_and_covers_every_figure() {
        let b = load_baseline().expect("crates/bench/baselines/walltime.json must parse");
        assert_eq!(b.rows, 1 << 20, "baseline must be recorded at the default scale");
        assert_eq!(b.grid_exp, 16);
        for name in crate::ALL_FIGURES {
            assert!(
                b.seconds_for(name).is_some(),
                "baseline entry missing for {name} — regenerate baselines/walltime.json \
                 from a full `figures -- all` run"
            );
        }
    }

    #[test]
    fn delta_summary_flags_regressions_and_scale_mismatches() {
        let b = parse_baseline(SAMPLE).unwrap();
        let timings =
            vec![("fig1".to_string(), 5.1), ("ext_join".to_string(), 50.0), ("new".to_string(), 1.0)];
        let s = delta_summary(&b, 1 << 20, 16, &timings);
        assert!(s.contains("fig1"), "{s}");
        assert!(!s.lines().find(|l| l.contains("fig1")).unwrap().contains("WARN"), "{s}");
        assert!(s.lines().find(|l| l.contains("ext_join")).unwrap().contains("WARN"), "{s}");
        assert!(s.contains("no baseline entry"), "{s}");
        assert!(s.contains("total (compared)"), "{s}");
        let mismatch = delta_summary(&b, 1 << 14, 8, &timings);
        assert!(mismatch.contains("no comparison"), "{mismatch}");
        assert!(!mismatch.contains("WARN"), "{mismatch}");
    }
}
