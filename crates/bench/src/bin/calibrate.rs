//! Cost-model calibration scratchpad: prints the Figure 1 sweep so the
//! `CostModel::hdd_2009` constants can be tuned until the paper's
//! landmarks appear at the reported selectivities.

use robustmap_core::{build_map1d, Grid1D, MeasureConfig};
use robustmap_obs::progress;
use robustmap_systems::{single_predicate_plans, SinglePredPlanSet};
use robustmap_workload::{TableBuilder, WorkloadConfig};

fn main() {
    let rows: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 20);
    progress!("building workload ({rows} rows)...");
    let t0 = std::time::Instant::now();
    let w = TableBuilder::build(WorkloadConfig::with_rows(rows));
    progress!("built in {:?}; heap pages = {}", t0.elapsed(), w.heap_pages());

    let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
    let grid = Grid1D::pow2(16);
    let t1 = std::time::Instant::now();
    let map = build_map1d(&w, &plans, &grid, &MeasureConfig::default());
    progress!("swept in {:?}", t1.elapsed());

    println!("{}", robustmap_core::render::render_map1d_table(&map, "Figure 1 calibration"));
    println!("{}", robustmap_core::report::landmark_report(&map));
    let scan = map.series_named("table scan").unwrap().seconds();
    let improved = map.series_named("improved index scan").unwrap().seconds();
    let last = scan.len() - 1;
    println!(
        "improved/table-scan factor at sel=1: {:.2} (paper: ~2.5)",
        improved[last] / scan[last]
    );
}
