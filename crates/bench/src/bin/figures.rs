//! Regenerate the paper's figures (and the extension experiments).
//!
//! ```text
//! cargo run --release -p robustmap-bench --bin figures -- all
//! cargo run --release -p robustmap-bench --bin figures -- fig1 fig7
//! cargo run --release -p robustmap-bench --bin figures -- --rows 4194304 --grid 16 all
//! ```
//!
//! Reports print to stdout; CSV/SVG artifacts land in `target/figures/`.

use robustmap_bench::{run_figure, Harness, HarnessConfig, ALL_FIGURES};

fn main() {
    let mut config = HarnessConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rows" => {
                config.rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--rows needs a number"));
            }
            "--grid" => {
                config.grid_exp = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--grid needs an exponent"));
            }
            "--out" => {
                config.out_dir = args.next().unwrap_or_else(|| die("--out needs a path")).into();
            }
            "--threads" => {
                config.measure.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!(
                    "usage: figures [--rows N] [--grid EXP] [--out DIR] [--threads N] \
                     <all | {}>",
                    ALL_FIGURES.join(" | ")
                );
                return;
            }
            name => wanted.push(name.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }
    wanted.dedup();
    // Reject typos before spending seconds building the workload.
    for name in &wanted {
        if !ALL_FIGURES.contains(&name.as_str()) {
            die(&format!("unknown figure: {name} (see --help)"));
        }
    }

    eprintln!(
        "building workload: {} rows, grid 2^-{}..1, artifacts in {}",
        config.rows,
        config.grid_exp,
        config.out_dir.display()
    );
    let t0 = std::time::Instant::now();
    let harness = Harness::new(config);
    eprintln!("workload ready in {:.1?}\n", t0.elapsed());

    for name in &wanted {
        let t = std::time::Instant::now();
        match run_figure(&harness, name) {
            Some(out) => {
                println!("================================================================");
                println!("{}", out.report);
                for f in &out.files {
                    println!("  wrote {}", f.display());
                }
                eprintln!("[{name}] done in {:.1?}", t.elapsed());
            }
            None => unreachable!("names were validated against ALL_FIGURES"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
