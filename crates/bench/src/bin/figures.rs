//! Regenerate the paper's figures (and the extension experiments).
//!
//! ```text
//! cargo run --release -p robustmap-bench --bin figures -- all
//! cargo run --release -p robustmap-bench --bin figures -- fig1 fig7
//! cargo run --release -p robustmap-bench --bin figures -- --rows 4194304 --grid 16 all
//! cargo run --release -p robustmap-bench --bin figures -- --trace target/trace.json all
//! ```
//!
//! Reports print to stdout; CSV/SVG artifacts land in `target/figures/`.
//! Progress lines honor `ROBUSTMAP_LOG` (quiet / normal / verbose);
//! `--trace PATH` (or `ROBUSTMAP_TRACE=PATH`) records a charge-free
//! execution trace of the whole run and writes Chrome trace-event JSON,
//! an operator-profile CSV, and a metrics dump next to `PATH` at exit.

use robustmap_bench::baseline::{delta_summary, load_baseline};
use robustmap_bench::{run_figure, Harness, HarnessConfig, ALL_FIGURES};
use robustmap_obs::{progress, verbose, warn};

fn main() {
    let mut config = HarnessConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rows" => {
                config.rows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--rows needs a number"));
            }
            "--grid" => {
                config.grid_exp = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--grid needs an exponent"));
            }
            "--out" => {
                config.out_dir = args.next().unwrap_or_else(|| die("--out needs a path")).into();
            }
            "--threads" => {
                config.measure.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--trace" => {
                let path = args.next().unwrap_or_else(|| die("--trace needs a path"));
                let detail = robustmap_obs::trace::detail_from_env();
                if !robustmap_obs::trace::enable_global(std::path::Path::new(&path), detail) {
                    warn!("--trace {path}: a trace sink is already installed; flag ignored");
                }
            }
            "all" => wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!(
                    "usage: figures [--rows N] [--grid EXP] [--out DIR] [--threads N] \
                     [--trace PATH] <all | {}>",
                    ALL_FIGURES.join(" | ")
                );
                return;
            }
            name => wanted.push(name.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }
    wanted.dedup();
    // Reject typos before spending seconds building the workload.
    for name in &wanted {
        if !ALL_FIGURES.contains(&name.as_str()) {
            die(&format!("unknown figure: {name} (see --help)"));
        }
    }

    progress!(
        "building workload: {} rows, grid 2^-{}..1, artifacts in {}",
        config.rows,
        config.grid_exp,
        config.out_dir.display()
    );
    let total = std::time::Instant::now();
    let t0 = std::time::Instant::now();
    let harness = Harness::new(config);
    progress!("workload ready in {:.1?}\n", t0.elapsed());
    // Announce the run so shared sweeps (System A map carved from the
    // all-systems map) kick in.
    harness.plan_for(&wanted);

    let mut timings: Vec<(String, f64)> = Vec::new();
    for name in &wanted {
        match run_figure(&harness, name) {
            Some(out) => {
                println!("================================================================");
                println!("{}", out.report);
                for f in &out.files {
                    verbose!("  wrote {}", f.display());
                }
                progress!("[{name}] done in {:.1}s ({} artifacts)", out.wall_seconds, out.files.len());
                timings.push((out.name, out.wall_seconds));
            }
            None => unreachable!("names were validated against ALL_FIGURES"),
        }
    }

    // Per-figure sweep wall times: the numbers BENCH_*.json trajectories
    // track (docs/EXPERIMENTS.md records the current landmarks).
    progress!("\nsweep wall time per figure:");
    for (name, secs) in &timings {
        progress!("  {name:<16} {secs:>8.2}s");
    }
    progress!("  {:<16} {:>8.2}s (incl. workload)", "total", total.elapsed().as_secs_f64());
    // The machine-checked trajectory: deltas against the committed
    // baseline, with WARN markers past the 20% budget (skipped with a note
    // when the run is not at the baseline's scale).
    match load_baseline() {
        Some(base) => {
            progress!(
                "\n{}",
                delta_summary(&base, harness.config.rows, harness.config.grid_exp, &timings)
            );
        }
        None => progress!("\n(no parseable wall-time baseline at crates/bench/baselines/walltime.json)"),
    }
    // Flush the process-wide trace, if one was installed (--trace or
    // ROBUSTMAP_TRACE).
    match robustmap_obs::trace::flush_global() {
        Ok(Some(files)) => {
            for f in &files {
                progress!("wrote trace artifact {}", f.display());
            }
        }
        Ok(None) => {}
        Err(e) => warn!("could not write trace artifacts: {e}"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
