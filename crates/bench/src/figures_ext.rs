//! Extension experiments: the opportunities the paper names but does not
//! pursue (§3.3) and the future work it sketches (§4).
//!
//! * `ext_sort_spill` — §4's sort-spill discontinuity (abrupt vs.
//!   graceful).
//! * `ext_memory` — resource dimension: memory grant × input size maps.
//! * `ext_worst` — §3.3 opportunity 1: mapping *worst* performance.
//! * `ext_shootout` — §3.3 opportunity 2: comparing multiple systems,
//!   plus the §4 robustness-benchmark leaderboard.
//! * `ext_ablation` — the design knobs behind the improved scan and MDAM.
//! * `ext_buffer` — buffer pool size as a run-time condition.
//! * `ext_join` — sort-merge vs. hash join maps (\[GLS94\]).
//! * `ext_parallel` — parallel scan speedup under partition skew.
//! * `ext_skew` — Zipf-skewed predicate columns.
//! * `ext_optimizer` — plan choice under cardinality estimation error.
//! * `ext_correlated` — correlated predicate columns vs the optimizer's
//!   independence assumption (rho × selectivity robustness maps).
//! * `ext_robust_choice` — the fix: joint statistics + the penalty-aware
//!   robust chooser vs the point-estimate optimizer vs the oracle.
//! * `ext_adaptive` — the run-time fix: mid-flight plan switching from
//!   observed cardinalities, with no joint statistics at compile time.
//! * `ext_concurrency` — concurrent serving: N queries over one shared
//!   buffer pool, concurrency level as a map axis.
//! * `ext_trace` — charge-free execution tracing: a traced burst as a
//!   baton timeline, a traced adaptive bail as operator spans, with
//!   trace/report reconciliation checks.
//! * `ext_churn` — data churn + incremental statistics maintenance:
//!   frozen vs maintained vs fresh statistics over a mutating table.
//! * `ext_regression` — the §4 regression benchmark, runnable as a gate.

use robustmap_core::analysis::changepoint::{detect_changepoints, ChangepointConfig};
use robustmap_core::analysis::score::score_map2d;
use robustmap_core::analysis::symmetry::symmetry_of;
use robustmap_core::render::{absolute_scale, heatmap_svg, relative_scale, render_map2d_ansi, AsciiOptions};
use robustmap_core::report::score_report;
use robustmap_core::{measure_batch, measure_plan, MeasureConfig, RelativeMap2D};
use robustmap_executor::{
    ColRange, FetchKind, ImprovedFetchConfig, IndexRangeSpec, JoinAlgo, KeyRange, PlanSpec,
    Predicate, Projection, SpillMode,
};
use robustmap_storage::EvictionPolicy;
use robustmap_systems::SystemId;
use robustmap_workload::{COL_A, COL_B, COL_C};

use crate::harness::{FigureOutput, Harness};

fn ansi_opts() -> AsciiOptions {
    AsciiOptions { ansi: false, cell_width: 2 }
}

/// §4: "some implementations of sorting spill their entire input to disk
/// if the input size exceeds the memory size by merely a single record.
/// Those sort implementations lacking graceful degradation will show
/// discontinuous execution costs."
///
/// The sort's *own* cost is isolated from its scan child (whose constant
/// cost would otherwise mask the cliff) via the per-operator breakdown,
/// and a fine sweep brackets the memory threshold so the "merely a single
/// record" jump is visible.
pub fn ext_sort_spill(h: &Harness) -> FigureOutput {
    use robustmap_executor::{execute_count, ExecCtx};
    use robustmap_storage::{BufferPool, Session};

    let w = &h.w;
    let memory = 1 << 18; // 256 KiB: ~3.2k rows of sort memory
    let sort_plan = |rows_wanted: f64, mode: SpillMode| {
        let t = w.cal_a.threshold(rows_wanted / w.rows() as f64);
        PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::single(ColRange::at_most(COL_A, t)),
                project: Projection::Columns(vec![COL_C, COL_A]),
            }),
            key_cols: vec![0],
            mode,
            memory_bytes: memory,
        }
    };
    // Sort-exclusive seconds: the Sort node's inclusive time minus its
    // child's, from the execution's operator breakdown.
    let sort_only = |plan: &PlanSpec| -> (f64, u64, u64) {
        let session = Session::new(
            h.config.measure.model.clone(),
            BufferPool::new(h.config.measure.pool_pages, h.config.measure.policy),
        );
        let ctx = ExecCtx::new(&w.db, &session, h.config.measure.memory_bytes);
        let stats = execute_count(plan, &ctx).expect("well-formed plan");
        let child = stats.operators.iter().find(|o| o.depth == 1).expect("child").seconds;
        let root = stats.operators.iter().find(|o| o.depth == 0).expect("root").seconds;
        (root - child, stats.io.page_writes, stats.rows_out)
    };

    let mut report = String::from(
        "Extension A: sort spill discontinuity — sort-only cost at fixed memory\n",
    );
    // The threshold in rows for this memory grant.
    let threshold_rows = robustmap_executor::ops::sort::sort_capacity_rows(memory) as f64;
    report.push_str(&format!(
        "memory grant {memory} B ≈ {threshold_rows:.0} rows; fine sweep around the cliff:\n"
    ));
    report.push_str(&format!(
        "{:>10} {:>12} {:>14} {:>12} {:>15}\n",
        "rows", "abrupt (s)", "abrupt writes", "graceful (s)", "graceful writes"
    ));
    let mut rows_axis = Vec::new();
    let mut abrupt_secs = Vec::new();
    let mut graceful_secs = Vec::new();
    let mut csv = String::from("rows,abrupt_seconds,graceful_seconds,abrupt_writes,graceful_writes\n");
    let factors = [0.5, 0.8, 0.95, 0.99, 1.01, 1.05, 1.2, 1.5, 2.0, 4.0, 16.0, 64.0];
    for f in factors {
        let wanted = threshold_rows * f;
        let (sa, wa, rows) = sort_only(&sort_plan(wanted, SpillMode::Abrupt));
        let (sg, wg, _) = sort_only(&sort_plan(wanted, SpillMode::Graceful));
        report.push_str(&format!(
            "{:>10} {:>12.5} {:>14} {:>12.5} {:>15}\n",
            rows, sa, wa, sg, wg
        ));
        csv.push_str(&format!("{rows},{sa:e},{sg:e},{wa},{wg}\n"));
        rows_axis.push(rows as f64);
        abrupt_secs.push(sa);
        graceful_secs.push(sg);
    }
    let cp = ChangepointConfig::default();
    let d_abrupt = detect_changepoints(&rows_axis, &abrupt_secs, &cp);
    let d_graceful = detect_changepoints(&rows_axis, &graceful_secs, &cp);
    report.push_str(&format!(
        "changepoints (log-log piecewise criterion): abrupt {} cliff(s) + {} knee(s), \
         graceful {} cliff(s) + {} knee(s)\n",
        d_abrupt.cliff_count(),
        d_abrupt.knee_count(),
        d_graceful.cliff_count(),
        d_graceful.knee_count(),
    ));
    if let Some(c) = d_abrupt.cliffs().next() {
        report.push_str(&format!(
            "  abrupt sort cost jumps {:.0}x beyond the local trend at ~{:.0} input rows — \
             \"spills their entire input ... by merely a single record\"\n",
            c.severity, c.at_work,
        ));
    }
    if let Some(k) = d_graceful.knees().next() {
        report.push_str(&format!(
            "  graceful sort shows a knee (log-log slope break {:.1}) at ~{:.0} rows and no \
             level shift — degradation in proportion to the overflow, which the old \
             threshold-ratio detector could not see\n",
            k.severity, k.at_work,
        ));
    }
    report.push_str(
        "  (abrupt writes ≈ the whole input once over the cliff; graceful writes ≈ only the \
         overflow beyond memory)\n",
    );
    let files = vec![h.write_artifact("ext_sort_spill.csv", &csv)];
    FigureOutput::new("ext_sort_spill", report, files)
}

/// Resource dimension: a 2-D map of memory grant × input size for the
/// abrupt-spill sort (the kind of map §3.2 calls for when "multiple
/// parameters interact").
pub fn ext_memory(h: &Harness) -> FigureOutput {
    let w = &h.w;
    let size_exps: Vec<u32> = (0..=h.config.grid_exp.min(10)).rev().collect();
    let mem_kib: Vec<usize> = (4..=12).map(|e| 1usize << e).collect(); // 4 KiB .. 4 MiB
    // Construct the whole size x memory grid of sort plans up front and
    // sweep it in one batch.
    let mut specs = Vec::with_capacity(size_exps.len() * mem_kib.len());
    for &se in size_exps.iter().rev() {
        let t = w.cal_a.threshold(0.5f64.powi(se as i32));
        for &m in &mem_kib {
            specs.push(PlanSpec::Sort {
                input: Box::new(PlanSpec::TableScan {
                    table: w.table,
                    pred: Predicate::single(ColRange::at_most(COL_A, t)),
                    project: Projection::Columns(vec![COL_C]),
                }),
                key_cols: vec![0],
                mode: SpillMode::Abrupt,
                memory_bytes: m * 1024,
            });
        }
    }
    let results = measure_batch(&w.db, &specs, &h.config.measure);
    let mut report = String::from("Extension B: sort time (s), memory grant x input size (abrupt spill)\n");
    report.push_str(&format!("{:>10}", "rows\\mem"));
    for &m in &mem_kib {
        report.push_str(&format!("{:>9}K", m));
    }
    report.push('\n');
    let mut grid = Vec::new();
    for (si, &se) in size_exps.iter().rev().enumerate() {
        let row_cells: Vec<f64> = results[si * mem_kib.len()..(si + 1) * mem_kib.len()]
            .iter()
            .map(|m| m.seconds)
            .collect();
        report.push_str(&format!("{:>10}", w.rows() >> se));
        for &s in &row_cells {
            report.push_str(&format!("{:>10.4}", s));
        }
        report.push('\n');
        grid.push(row_cells);
    }
    // Flatten to an ia-major grid: ia = memory, ib = size.
    let na = mem_kib.len();
    let nb = grid.len();
    let mut flat = vec![0.0; na * nb];
    for (ib, row) in grid.iter().enumerate() {
        for (ia, &v) in row.iter().enumerate() {
            flat[ia * nb + ib] = v;
        }
    }
    let sel_a: Vec<f64> = mem_kib.iter().map(|&m| m as f64 / *mem_kib.last().unwrap() as f64).collect();
    let sel_b: Vec<f64> = (0..nb).map(|i| 0.5f64.powi((nb - 1 - i) as i32)).collect();
    let files = vec![h.write_artifact(
        "ext_memory.svg",
        &heatmap_svg(&flat, &sel_a, &sel_b, &absolute_scale(), "Sort cost over memory (x) and input size (y)"),
    )];
    FigureOutput::new("ext_memory", report, files)
}

/// §3.3 opportunity 1: "we have not mapped worst performance, i.e.,
/// particularly dangerous plans and the relative performance of plans
/// compared to how bad performance could be."
pub fn ext_worst(h: &Harness) -> FigureOutput {
    let all = h.map_all_systems();
    let rel = RelativeMap2D::from_map(&all);
    let (na, nb) = rel.dims();
    // Danger map: worst plan cost / best plan cost per cell.
    let mut danger = vec![0.0f64; na * nb];
    for ia in 0..na {
        for ib in 0..nb {
            let worst = (0..all.plan_count())
                .map(|p| rel.quotient(p, ia, ib))
                .fold(1.0f64, f64::max);
            danger[ia * nb + ib] = worst;
        }
    }
    let mut report = render_map2d_ansi(
        &danger,
        &rel.sel_a,
        &rel.sel_b,
        &relative_scale(),
        "Extension C: danger map — worst plan vs best plan per point",
        &ansi_opts(),
    );
    let max_danger = danger.iter().copied().fold(1.0f64, f64::max);
    report.push_str(&format!(
        "a wrong plan choice can cost up to {max_danger:.0}x at the worst point\n"
    ));
    // Per-plan: how close does it get to being the worst choice?
    report.push_str("fraction of points where each plan is the worst choice:\n");
    for (p, name) in rel.plans.iter().enumerate() {
        let worst_count = (0..na * nb)
            .filter(|&c| {
                let (ia, ib) = (c / nb, c % nb);
                let q = rel.quotient(p, ia, ib);
                (0..all.plan_count()).all(|o| rel.quotient(o, ia, ib) <= q)
            })
            .count();
        report.push_str(&format!(
            "  {:<28} {:>5.1}%\n",
            name,
            worst_count as f64 / (na * nb) as f64 * 100.0
        ));
    }
    let files = vec![h.write_artifact(
        "ext_worst.svg",
        &heatmap_svg(&danger, &rel.sel_a, &rel.sel_b, &relative_scale(), "Danger map: worst/best factor per point"),
    )];
    FigureOutput::new("ext_worst", report, files)
}

/// §3.3 opportunity 2: "we have not yet compared multiple systems and
/// their available plans" — the cross-system shootout plus the §4
/// robustness-benchmark leaderboard.
pub fn ext_shootout(h: &Harness) -> FigureOutput {
    let all = h.map_all_systems();
    let rel = RelativeMap2D::from_map(&all);
    let (na, nb) = rel.dims();
    let system_of = |plan: usize| -> SystemId {
        match all.plans[plan].as_bytes()[0] {
            b'A' => SystemId::A,
            b'B' => SystemId::B,
            _ => SystemId::C,
        }
    };
    let mut report = String::from("Extension D: cross-system comparison (15 plans, 3 systems)\n");
    let mut wins = [0usize; 3];
    for ia in 0..na {
        for ib in 0..nb {
            let best = rel.best_plan_at(ia, ib);
            wins[match system_of(best) {
                SystemId::A => 0,
                SystemId::B => 1,
                SystemId::C => 2,
            }] += 1;
        }
    }
    let total = (na * nb) as f64;
    for (i, sys) in SystemId::all().into_iter().enumerate() {
        report.push_str(&format!(
            "  {} holds the best plan at {:.1}% of points\n",
            sys,
            wins[i] as f64 / total * 100.0
        ));
    }
    // Best-achievable-per-system comparison: each system's best plan per
    // cell vs. the global best.
    for sys in SystemId::all() {
        let prefix = match sys {
            SystemId::A => "A",
            SystemId::B => "B",
            SystemId::C => "C",
        };
        let sub = all.subset_by_prefix(prefix);
        let mut worst = 1.0f64;
        let mut sum = 0.0f64;
        for ia in 0..na {
            for ib in 0..nb {
                let best_sys = (0..sub.plan_count())
                    .map(|p| sub.get(p, ia, ib).seconds)
                    .fold(f64::INFINITY, f64::min);
                let q = best_sys / rel.best_seconds_at(ia, ib).max(1e-12);
                worst = worst.max(q);
                sum += q;
            }
        }
        report.push_str(&format!(
            "  {}: best-plan-per-point is within {:.1}x of the global best on average \
             (worst {:.1}x)\n",
            sys,
            sum / total,
            worst
        ));
    }
    // Robustness benchmark leaderboard over all 15 plans (§4), with the
    // severity-weighted cliff/knee smoothness columns.
    report.push_str("\nrobustness benchmark leaderboard (all plans):\n");
    let scores: Vec<_> =
        (0..all.plan_count()).map(|p| score_map2d(&rel, p, &all.seconds_grid(p))).collect();
    report.push_str(&score_report(&scores));
    let files = vec![
        h.write_artifact("ext_shootout.txt", &report),
        h.write_artifact("ext_shootout_scores.csv", &robustmap_core::report::score_csv(&scores)),
    ];
    FigureOutput::new("ext_shootout", report, files)
}

/// Ablations of the design choices DESIGN.md calls out: the improved
/// fetch's rid sort and read-ahead regimes, and MDAM vs. a plain covering
/// range scan.
pub fn ext_ablation(h: &Harness) -> FigureOutput {
    let w = &h.w;
    let mut report = String::from("Extension E: ablations\n");
    // --- Improved fetch regimes, at a mid selectivity where they differ.
    let sel = 0.5f64.powi((h.config.grid_exp / 2) as i32);
    let t = w.cal_a.threshold(sel);
    let fetch_plan = |fetch: FetchKind| PlanSpec::IndexFetch {
        scan: IndexRangeSpec { index: w.indexes.a, range: KeyRange::on_leading(i64::MIN, t, 1) },
        key_filter: Predicate::always_true(),
        fetch,
        residual: Predicate::always_true(),
        project: Projection::All,
    };
    report.push_str(&format!("fetch disciplines at selectivity {sel:.3e}:\n"));
    let variants: Vec<(String, FetchKind)> = vec![
        ("traditional (no sort)".into(), FetchKind::Traditional),
        ("bitmap (sort, no read-ahead)".into(), FetchKind::BitmapSorted),
        (
            "improved (sort + read-ahead)".into(),
            FetchKind::Improved(ImprovedFetchConfig::default()),
        ),
        (
            "improved, scan_gap=1".into(),
            FetchKind::Improved(ImprovedFetchConfig { scan_gap: 1, prefetch_gap: 64 }),
        ),
        (
            "improved, prefetch_gap=4".into(),
            FetchKind::Improved(ImprovedFetchConfig { scan_gap: 4, prefetch_gap: 4 }),
        ),
    ];
    for (name, fetch) in variants {
        let m = measure_plan(&w.db, &fetch_plan(fetch), &h.config.measure);
        report.push_str(&format!(
            "  {:<32} {:>9.4}s  seq={:<6} single={:<6} random={:<6}\n",
            name, m.seconds, m.io.seq_reads, m.io.single_reads, m.io.random_reads
        ));
    }
    // --- MDAM vs covering range scan at a "wide leading range, selective
    // second column" point — MDAM's home turf.
    let ta = w.cal_a.threshold(1.0);
    let tb = w.cal_b.threshold(sel * sel);
    let mdam = PlanSpec::Mdam {
        index: w.indexes.ab,
        col_ranges: vec![(i64::MIN, ta), (i64::MIN, tb)],
        project: Projection::All,
    };
    let covering = PlanSpec::CoveringIndexScan {
        scan: IndexRangeSpec { index: w.indexes.ab, range: KeyRange::on_leading(i64::MIN, ta, 2) },
        residual: Predicate::single(ColRange::at_most(1, tb)),
        project: Projection::All,
    };
    let m_mdam = measure_plan(&w.db, &mdam, &h.config.measure);
    let m_cov = measure_plan(&w.db, &covering, &h.config.measure);
    report.push_str(&format!(
        "mdam vs covering scan at (sel_a=1, sel_b={:.1e}): {:.4}s vs {:.4}s\n",
        sel * sel,
        m_mdam.seconds,
        m_cov.seconds
    ));
    report.push_str(
        "  (MDAM cannot skip when the leading column is all-distinct; with low-cardinality \
         leading columns it wins — see the mdam module tests)\n",
    );
    // --- Hash intersect build-side choice (join order).
    let (ta2, tb2) = (w.cal_a.threshold(0.01), w.cal_b.threshold(0.5));
    for build_left in [true, false] {
        let plan = PlanSpec::IndexIntersect {
            left: IndexRangeSpec {
                index: w.indexes.a,
                range: KeyRange::on_leading(i64::MIN, ta2, 1),
            },
            right: IndexRangeSpec {
                index: w.indexes.b,
                range: KeyRange::on_leading(i64::MIN, tb2, 1),
            },
            algo: robustmap_executor::IntersectAlgo::HashJoin { build_left },
            fetch: FetchKind::Improved(ImprovedFetchConfig::default()),
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        let m = measure_plan(&w.db, &plan, &h.config.measure);
        report.push_str(&format!(
            "hash intersect (sel 0.01 x 0.5), build {:<5}: {:.4}s\n",
            if build_left { "small" } else { "large" },
            m.seconds
        ));
    }
    let files = vec![h.write_artifact("ext_ablation.txt", &report)];
    FigureOutput::new("ext_ablation", report, files)
}

/// Sort-merge vs. hash join over a 2-D input-size space (\[GLS94\], which
/// §3.2 of the paper builds on): where does each algorithm win, and how
/// does the hash join's build-side memory cliff shape the map?
pub fn ext_join(h: &Harness) -> FigureOutput {
    let w = &h.w;
    let memory = 4 << 20; // 4 MiB join grant: the cliff sits inside the sweep
    let exps: Vec<u32> = (0..=h.config.grid_exp.min(8)).rev().collect();
    let n = exps.len();
    // R = rows with a <= ta, projected to (c, a); S = rows with b <= tb,
    // projected to (c, b); equi-join on c (a permutation: 1:1 matches).
    // Thresholds are hoisted: one calibration per axis value, not one per
    // cell.
    let thr_a: Vec<i64> =
        exps.iter().rev().map(|&e| w.cal_a.threshold(0.5f64.powi(e as i32))).collect();
    let thr_b: Vec<i64> =
        exps.iter().rev().map(|&e| w.cal_b.threshold(0.5f64.powi(e as i32))).collect();
    let join_plan = |ta: i64, tb: i64, algo: JoinAlgo| {
        PlanSpec::Join {
            left: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::single(ColRange::at_most(COL_A, ta)),
                project: Projection::Columns(vec![COL_C, COL_A]),
            }),
            right: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::single(ColRange::at_most(COL_B, tb)),
                project: Projection::Columns(vec![COL_C, COL_B]),
            }),
            left_key: 0,
            right_key: 0,
            algo,
            memory_bytes: memory,
            project: Projection::All,
        }
    };
    let algos = [
        ("sort-merge", JoinAlgo::SortMerge),
        ("hash build-left", JoinAlgo::Hash { build_left: true }),
        ("hash build-right", JoinAlgo::Hash { build_left: false }),
    ];
    // All |algos| x n x n join plans are constructed up front and swept
    // in one batch through the warm-path engine.
    let mut specs = Vec::with_capacity(algos.len() * n * n);
    for (_, algo) in &algos {
        for &ta in &thr_a {
            for &tb in &thr_b {
                specs.push(join_plan(ta, tb, *algo));
            }
        }
    }
    let results = measure_batch(&w.db, &specs, &h.config.measure);
    let grids: Vec<Vec<f64>> = (0..algos.len())
        .map(|gi| results[gi * n * n..(gi + 1) * n * n].iter().map(|m| m.seconds).collect())
        .collect();
    let sels: Vec<f64> = exps.iter().rev().map(|&e| 0.5f64.powi(e as i32)).collect();
    let mut report = String::from("Extension G: sort-merge vs hash join (GLS94), |R| x |S| sweep\n");
    // Winner map and symmetry.
    let mut winner_grid = vec![0.0f64; n * n];
    let mut wins = [0usize; 3];
    for c in 0..n * n {
        let best = (0..algos.len())
            .min_by(|&x, &y| grids[x][c].partial_cmp(&grids[y][c]).expect("finite"))
            .expect("nonempty");
        winner_grid[c] = best as f64 + 1.0;
        wins[best] += 1;
    }
    for (gi, (name, _)) in algos.iter().enumerate() {
        let sym = symmetry_of(&grids[gi], n);
        report.push_str(&format!(
            "  {:<18} wins at {:>5.1}% of points; mirrored-cost ratio mean {:.3}x max {:.3}x\n",
            name,
            wins[gi] as f64 / (n * n) as f64 * 100.0,
            sym.mean_log_ratio.exp(),
            sym.max_log_ratio.exp(),
        ));
    }
    report.push_str(
        "  (sort-merge is symmetric; each hash variant is cheap when its build side is the \
         small input and cliffs when the build side outgrows the grant)\n",
    );
    let mut files = Vec::new();
    for (gi, (name, _)) in algos.iter().enumerate() {
        let fname = format!("ext_join_{}.svg", name.replace(' ', "_"));
        files.push(h.write_artifact(
            &fname,
            &heatmap_svg(&grids[gi], &sels, &sels, &absolute_scale(), &format!("join cost: {name}")),
        ));
    }
    FigureOutput::new("ext_join", report, files)
}

/// Parallel scan robustness: speedup vs. degree of parallelism, with and
/// without partition skew (§4: "visualizations of entire query execution
/// plans including parallel ones"; §3: skew as a robustness factor).
pub fn ext_parallel(h: &Harness) -> FigureOutput {
    let w = &h.w;
    let pred = Predicate::single(ColRange::at_most(COL_A, w.cal_a.threshold(0.5)));
    let scan = |dop: u32, skew_permille: u32| PlanSpec::ParallelTableScan {
        table: w.table,
        pred: pred.clone(),
        project: Projection::Columns(vec![COL_C]),
        dop,
        skew_permille,
    };
    let mut report =
        String::from("Extension H: parallel table scan — speedup vs dop under skew\n");
    report.push_str(&format!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}\n",
        "dop", "even (s)", "skew 25%", "skew 75%", "skew 100%"
    ));
    // One batch over the dop x skew grid; the summary lines below reuse
    // grid cells (measurements are deterministic, so re-measuring the same
    // plan would return the same value).
    let dops = [1u32, 2, 4, 8, 16, 32];
    let skews = [0u32, 250, 750, 1000];
    let mut specs = Vec::with_capacity(dops.len() * skews.len());
    for &dop in &dops {
        for &skew in &skews {
            specs.push(scan(dop, skew));
        }
    }
    let results = measure_batch(&w.db, &specs, &h.config.measure);
    let cell = |di: usize, ki: usize| results[di * skews.len() + ki].seconds;
    let serial = cell(0, 0);
    let mut csv = String::from("dop,even,skew250,skew750,skew1000\n");
    for (di, &dop) in dops.iter().enumerate() {
        let secs: Vec<f64> = (0..skews.len()).map(|ki| cell(di, ki)).collect();
        report.push_str(&format!(
            "{:>6} {:>12.4} {:>12.4} {:>12.4} {:>12.4}\n",
            dop, secs[0], secs[1], secs[2], secs[3]
        ));
        csv.push_str(&format!("{dop},{:e},{:e},{:e},{:e}\n", secs[0], secs[1], secs[2], secs[3]));
    }
    let dop16 = dops.iter().position(|&d| d == 16).expect("dop 16 swept");
    let even16 = cell(dop16, skews.iter().position(|&s| s == 0).expect("even swept"));
    let skew16 = cell(dop16, skews.iter().position(|&s| s == 1000).expect("full skew swept"));
    report.push_str(&format!(
        "speedup at dop 16: {:.1}x even, {:.1}x fully skewed — skew erases parallelism, a \
         run-time condition no compile-time choice can fix\n",
        serial / even16,
        serial / skew16
    ));
    let files = vec![h.write_artifact("ext_parallel.csv", &csv)];
    FigureOutput::new("ext_parallel", report, files)
}

/// Data skew (§3: "skew (non-uniform value distributions and duplicate key
/// values)"): the Figure 1 sweep on a Zipf-distributed predicate column,
/// contrasted with the uniform permutation column.
pub fn ext_skew(h: &Harness) -> FigureOutput {
    use robustmap_workload::{TableBuilder, WorkloadConfig};
    let rows = h.w.rows().min(1 << 18); // a second table: keep it moderate
    let zipf_cfg = WorkloadConfig {
        rows,
        seed: h.w.config.seed,
        predicate_dist: robustmap_workload::gen::PredicateDistribution::ZipfHundredths(110),
        mutation_epoch: 0,
    };
    let wz = TableBuilder::build_cached(zipf_cfg);
    let mut report = String::from(
        "Extension I: skewed (Zipf theta=1.1) predicate column vs uniform permutation\n",
    );
    report.push_str(&format!(
        "{:>12} {:>10} {:>14} {:>14} {:>12}\n",
        "target sel", "rows", "improved (s)", "traditional(s)", "trad/impr"
    ));
    let mut csv = String::from("selectivity,rows,improved,traditional\n");
    for exp in (0..=h.config.grid_exp.min(12)).rev().step_by(2) {
        let sel = 0.5f64.powi(exp as i32);
        let (t, count) = wz.cal_a.threshold_with_count(sel);
        let plan = |fetch: FetchKind| PlanSpec::IndexFetch {
            scan: IndexRangeSpec {
                index: wz.indexes.a,
                range: KeyRange::on_leading(i64::MIN, t, 1),
            },
            key_filter: Predicate::always_true(),
            fetch,
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        let imp = measure_plan(
            &wz.db,
            &plan(FetchKind::Improved(ImprovedFetchConfig::default())),
            &h.config.measure,
        );
        let trad = measure_plan(&wz.db, &plan(FetchKind::Traditional), &h.config.measure);
        report.push_str(&format!(
            "{:>12.3e} {:>10} {:>14.4} {:>14.4} {:>11.1}x\n",
            sel,
            count,
            imp.seconds,
            trad.seconds,
            trad.seconds / imp.seconds.max(1e-12)
        ));
        csv.push_str(&format!("{sel:e},{count},{:e},{:e}\n", imp.seconds, trad.seconds));
    }
    report.push_str(
        "with heavy duplication the calibrated thresholds overshoot their targets (all \
         duplicates of the boundary value qualify), and duplicate keys cluster rids so the \
         improved scan's in-order fetch benefits even more than under uniform data\n",
    );
    let files = vec![h.write_artifact("ext_skew.csv", &csv)];
    FigureOutput::new("ext_skew", report, files)
}

/// The §4 regression benchmark, run against the measured maps: named
/// pass/fail checks (monotone curves, no unexplained cliffs, bounded worst
/// cases, contiguous optimality regions) that a CI job would gate on.
pub fn ext_regression(h: &Harness) -> FigureOutput {
    use robustmap_core::{CheckConfig, RegressionSuite};

    let mut suite = RegressionSuite::new();
    // Baseline limits recorded for the current implementation at the
    // default scale: the flagship robust plans stay within 250x of their
    // own system's best plan anywhere (B1 ~20x, C1 ~143x at 2^20 rows;
    // the fragile fetches run into the thousands).  Tightening this limit
    // over time is §4's "track progress against these weaknesses".
    let cfg = CheckConfig { max_worst_quotient: 250.0, ..Default::default() };
    // Figure 1's sweep (shared with `fig1` via the harness cache): all
    // curves must be monotone and cliff-free.
    let map1 = h.map1d_basic();
    suite.check_map1d(&map1, &cfg);
    // 2-D checks per system, mirroring Figures 8/9: each robust plan is
    // judged against its *own* system's best (a System B plan cannot
    // regress because System C exists).
    let all = h.map_all_systems();
    suite.check_map2d(&all.subset_by_prefix("A"), &[], &cfg);
    suite.check_map2d(&all.subset_by_prefix("B"), &["B1", "B2"], &cfg);
    suite.check_map2d(&all.subset_by_prefix("C"), &["C1", "C2"], &cfg);

    let mut report = String::from("Extension K: §4 robustness regression benchmark\n");
    report.push_str(&suite.report());
    report.push_str(if suite.passed() {
        "verdict: PASS — protected against accidental regression\n"
    } else {
        "verdict: FAIL — a robustness property regressed\n"
    });
    let files = vec![h.write_artifact("ext_regression.txt", &report)];
    FigureOutput::new("ext_regression", report, files)
}

/// Plan choice under cardinality estimation error — the paper's framing
/// made quantitative.  A textbook optimizer picks the estimated-cheapest
/// plan per cell; its *actual* cost relative to the best plan at that cell
/// is the regret a robust executor would have avoided ("an erroneous
/// choice during compile-time query optimization can be avoided by
/// eliminating the need to choose", §1).
///
/// Three panels, all over the *full 15-plan catalog* through the
/// [`robustmap_systems::Chooser`] API:
///
/// 1. injected multiplicative estimation error on the uniform workload
///    (the original sweep, now driven by [`choice::WithError`]
///    estimators);
/// 2. the independence ([`choice::Exact`]) vs joint
///    ([`choice::Joint`]) estimator comparison on the same
///    (uncorrelated) map — joint statistics must not *hurt* where
///    independence actually holds;
/// 3. the rho = 1 correlated workload, where the independence
///    estimator's conjunction is wrong by `1/s`: wrong-choice and regret
///    panels per estimator, with named regression checks gating that the
///    joint estimates shrink the 15-plan wrong-choice region.
///
/// [`choice::WithError`]: robustmap_systems::choice::WithError
/// [`choice::Exact`]: robustmap_systems::choice::Exact
/// [`choice::Joint`]: robustmap_systems::choice::Joint
pub fn ext_optimizer(h: &Harness) -> FigureOutput {
    use robustmap_core::{build_map2d, Grid2D, RegressionSuite};
    use robustmap_systems::choice::{Exact, Joint, WithError};
    use robustmap_systems::{
        two_predicate_plans, CatalogStats, ChoicePolicy, Chooser, RobustConfig,
    };
    use robustmap_workload::gen::PredicateDistribution;
    use robustmap_workload::{JointHistogram, JointHistogramConfig, TableBuilder, WorkloadConfig};

    let w = &h.w;
    let all = h.map_all_systems();
    let rel = RelativeMap2D::from_map(&all);
    let plans: Vec<robustmap_systems::TwoPredPlan> = SystemId::all()
        .into_iter()
        .flat_map(|s| two_predicate_plans(s, w))
        .collect();
    debug_assert_eq!(plans.len(), all.plan_count());
    let stats = CatalogStats::of(w);
    let model = &h.config.measure.model;
    let (na, nb) = rel.dims();
    let chooser = Chooser { plans: &plans, stats: &stats, model, policy: ChoicePolicy::Point };
    let mut suite = RegressionSuite::new();

    // --- Panel 1: injected estimation error, the original sweep.
    let mut report = String::from(
        "Extension J: optimizer plan choice under cardinality estimation error\n",
    );
    report.push_str(&format!(
        "{:>18} {:>12} {:>12} {:>14} {:>16}\n",
        "estimate error", "mean regret", "max regret", ">2x regret", "choices changed"
    ));
    let mut csv = String::from("error,mean_regret,max_regret,frac_over_2x,changed\n");
    let mut baseline_choice: Vec<usize> = Vec::new();
    for (label, err) in [
        ("exact", 1.0),
        ("16x under", 1.0 / 16.0),
        ("256x under", 1.0 / 256.0),
        ("16x over", 16.0),
    ] {
        let est = WithError::of(w, err, err);
        let mut sum = 0.0f64;
        let mut max = 1.0f64;
        let mut over2 = 0usize;
        let mut changed = 0usize;
        let mut choices = Vec::with_capacity(na * nb);
        for ia in 0..na {
            for ib in 0..nb {
                let (sa, sb) = (rel.sel_a[ia], rel.sel_b[ib]);
                let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
                let chosen = chooser.choose(&est, ta, tb).plan;
                choices.push(chosen);
                let regret = rel.quotient(chosen, ia, ib);
                sum += regret;
                max = max.max(regret);
                if regret > 2.0 {
                    over2 += 1;
                }
                if let Some(&base) = baseline_choice.get(ia * nb + ib) {
                    if base != chosen {
                        changed += 1;
                    }
                }
            }
        }
        if baseline_choice.is_empty() {
            baseline_choice = choices;
        }
        let cells = (na * nb) as f64;
        report.push_str(&format!(
            "{:>18} {:>11.2}x {:>11.0}x {:>13.1}% {:>15.1}%\n",
            label,
            sum / cells,
            max,
            over2 as f64 / cells * 100.0,
            changed as f64 / cells * 100.0,
        ));
        csv.push_str(&format!(
            "{label},{:e},{:e},{:e},{:e}\n",
            sum / cells,
            max,
            over2 as f64 / cells,
            changed as f64 / cells
        ));
    }
    report.push_str(
        "reading: moderate estimation errors change half the choices and raise worst-case \
         regret; interestingly, *massive* under-estimates can lower mean regret — they push \
         the chooser onto the robust covering/bitmap plans everywhere, which is exactly the \
         paper's point that \"robustness might well trump performance\" (§3.3): a robust \
         plan chosen blindly beats cost-based choice fed bad cardinalities\n",
    );

    // --- Panel 2: independence vs joint estimators where independence
    // actually holds (the uniform workload behind the main map).  The
    // joint statistics' conjunction is sampled, not assumed; the check
    // pins that sampling noise does not degrade the 15-plan choice.
    let jcfg = JointHistogramConfig::default();
    let joint_u = JointHistogram::build_cached(w, &jcfg);
    let exact_u = Exact::of(w);
    let joint_est_u = Joint::new(&joint_u);
    let mut indep_sum_u = 0.0f64;
    let mut joint_sum_u = 0.0f64;
    let mut indep_wrong_u = 0usize;
    let mut joint_wrong_u = 0usize;
    for ia in 0..na {
        for ib in 0..nb {
            let (sa, sb) = (rel.sel_a[ia], rel.sel_b[ib]);
            let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
            let iq = rel.quotient(chooser.choose(&exact_u, ta, tb).plan, ia, ib);
            let jq = rel.quotient(chooser.choose(&joint_est_u, ta, tb).plan, ia, ib);
            indep_sum_u += iq;
            joint_sum_u += jq;
            if iq > 1.001 {
                indep_wrong_u += 1;
            }
            if jq > 1.001 {
                joint_wrong_u += 1;
            }
        }
    }
    let cells_u = (na * nb) as f64;
    report.push_str(&format!(
        "\nuncorrelated map, independence vs joint estimator (15 plans): wrong at \
         {indep_wrong_u} vs {joint_wrong_u} of {} cells, mean regret {:.3}x vs {:.3}x\n\
         (among 15 plans many cells are near-ties a sampled conjunction flips either way; \
         the regret, not the flip count, is what must not degrade)\n",
        na * nb,
        indep_sum_u / cells_u,
        joint_sum_u / cells_u,
    ));
    suite.check_named(
        "uncorrelated map: joint statistics do not hurt the 15-plan choice (mean regret \
         within 2%)",
        joint_sum_u <= indep_sum_u * 1.02,
        format!("{:.3}x vs {:.3}x", joint_sum_u / cells_u, indep_sum_u / cells_u),
    );

    // --- Panel 3: the rho = 1 correlated workload, where the
    // independence conjunction is wrong by 1/s.  The full 15-plan catalog
    // is swept through the standard map builder; each estimator's chosen
    // plan is scored against the measured per-cell best.
    let rows_c = h.w.rows().min(1 << 17); // the ext_correlated workload family, reused
    let wc = TableBuilder::build_cached(WorkloadConfig {
        rows: rows_c,
        seed: h.w.config.seed,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(100),
        mutation_epoch: 0,
    });
    let plans_c: Vec<robustmap_systems::TwoPredPlan> = SystemId::all()
        .into_iter()
        .flat_map(|s| two_predicate_plans(s, &wc))
        .collect();
    let stats_c = CatalogStats::of(&wc);
    let joint_c = JointHistogram::build_cached(&wc, &jcfg);
    let exact_c = Exact::of(&wc);
    let joint_est_c = Joint::new(&joint_c);
    let point_c =
        Chooser { plans: &plans_c, stats: &stats_c, model, policy: ChoicePolicy::Point };
    let robust_c = Chooser {
        plans: &plans_c,
        stats: &stats_c,
        model,
        policy: ChoicePolicy::Robust(RobustConfig::default()),
    };
    let grid = Grid2D::pow2(h.config.grid_exp.min(6));
    let m2 = build_map2d(&wc, &plans_c, &grid, &h.config.measure);
    let (nca, ncb) = m2.dims();
    let mut indep_tally = ChooserTally::default();
    let mut robust_tally = ChooserTally::default();
    let mut indep_regret = vec![1.0f64; nca * ncb];
    let mut joint_regret = vec![1.0f64; nca * ncb];
    let mut rho1_csv = String::from(
        "sel_a,sel_b,indep_choice,joint_choice,robust_choice,oracle,indep_regret,\
         joint_regret,robust_regret,indep_margin,joint_margin\n",
    );
    for ia in 0..nca {
        for ib in 0..ncb {
            let (sa, sb) = (m2.sel_a[ia], m2.sel_b[ib]);
            let (ta, tb) = (wc.cal_a.threshold(sa), wc.cal_b.threshold(sb));
            let secs: Vec<f64> =
                (0..plans_c.len()).map(|pi| m2.get(pi, ia, ib).seconds).collect();
            let indep = point_c.choose(&exact_c, ta, tb);
            let joint_choice = point_c.choose(&joint_est_c, ta, tb);
            let robust = robust_c.choose(&joint_est_c, ta, tb);
            // `indep_tally` compares the two *point* choosers (the
            // estimator axis); `robust_tally` adds the policy axis.
            let (iq, jq) = indep_tally.add(&secs, indep.plan, joint_choice.plan);
            let (_, rq) = robust_tally.add(&secs, indep.plan, robust.plan);
            let c = ia * ncb + ib;
            indep_regret[c] = iq;
            joint_regret[c] = jq;
            rho1_csv.push_str(&format!(
                "{sa:e},{sb:e},{},{},{},{},{iq:e},{jq:e},{rq:e},{:e},{:e}\n",
                robustmap_core::render::sanitize(&indep.name),
                robustmap_core::render::sanitize(&joint_choice.name),
                robustmap_core::render::sanitize(&robust.name),
                robustmap_core::render::sanitize(&plans_c[oracle_of(&secs)].name),
                indep.margin,
                joint_choice.margin,
            ));
        }
    }
    let (iw, jw) = indep_tally.wrong_fracs();
    let (_, rw) = robust_tally.wrong_fracs();
    let cells_c = indep_tally.cells as f64;
    report.push_str(&format!(
        "\nrho = 1 (sel_a x sel_b) map, full 15-plan catalog, {nca}x{ncb} grid at {rows_c} \
         rows:\n\
         independence estimator: wrong at {:.1}% of cells, worst regret {:.2}x, mean {:.2}x\n\
         joint estimator:        wrong at {:.1}% of cells, worst regret {:.2}x, mean {:.2}x\n\
         joint + robust policy:  wrong at {:.1}% of cells, worst regret {:.2}x, mean {:.2}x\n",
        iw * 100.0,
        indep_tally.point_worst,
        indep_tally.point_sum / cells_c,
        jw * 100.0,
        indep_tally.robust_worst,
        indep_tally.robust_sum / cells_c,
        rw * 100.0,
        robust_tally.robust_worst,
        robust_tally.robust_sum / cells_c,
    ));
    // The acceptance comparisons: strictly better where the independence
    // estimator actually errs (at smoke scales it can be error-free,
    // which trivially satisfies the intent).
    suite.check_named(
        "rho = 1 map (15 plans): joint wrong-choice fraction strictly below independence's",
        indep_tally.robust_wrong < indep_tally.point_wrong || indep_tally.point_wrong == 0,
        format!("{:.1}% vs {:.1}%", jw * 100.0, iw * 100.0),
    );
    suite.check_named(
        "rho = 1 map (15 plans): joint mean regret <= independence's",
        indep_tally.robust_sum <= indep_tally.point_sum + 1e-9,
        format!(
            "{:.3}x vs {:.3}x",
            indep_tally.robust_sum / cells_c,
            indep_tally.point_sum / cells_c
        ),
    );
    suite.check_named(
        "rho = 1 map (15 plans): joint worst regret <= independence's",
        indep_tally.robust_worst <= indep_tally.point_worst + 1e-9,
        format!("{:.2}x vs {:.2}x", indep_tally.robust_worst, indep_tally.point_worst),
    );
    suite.check_named(
        "rho = 1 map (15 plans): robust policy over the joint region worst regret <= \
         independence's",
        robust_tally.robust_worst <= robust_tally.point_worst + 1e-9,
        format!("{:.2}x vs {:.2}x", robust_tally.robust_worst, robust_tally.point_worst),
    );

    report.push_str("\nregression checks over the estimator comparison:\n");
    let checks = format!(
        "{}verdict: {}\n",
        suite.report(),
        if suite.passed() { "PASS" } else { "FAIL" }
    );
    report.push_str(&checks);

    let files = vec![
        h.write_artifact("ext_optimizer.csv", &csv),
        h.write_artifact("ext_optimizer_rho1.csv", &rho1_csv),
        h.write_artifact("ext_optimizer_checks.txt", &checks),
        h.write_artifact(
            "ext_optimizer_indep_regret.svg",
            &heatmap_svg(
                &indep_regret,
                &m2.sel_a,
                &m2.sel_b,
                &relative_scale(),
                "Independence-estimator chooser regret at rho = 1 (15 plans)",
            ),
        ),
        h.write_artifact(
            "ext_optimizer_joint_regret.svg",
            &heatmap_svg(
                &joint_regret,
                &m2.sel_a,
                &m2.sel_b,
                &relative_scale(),
                "Joint-estimator chooser regret at rho = 1 (15 plans)",
            ),
        ),
    ];
    FigureOutput::new("ext_optimizer", report, files)
}

/// The four plans the correlated-predicate experiment compares, in map
/// order: the robust table-scan baseline, the index-nested-loop fetch
/// (index on `a` driving row fetches, residual on `b`), the hash
/// intersect of both single-column indexes, and the covering MDAM plan.
const CORRELATED_PLANS: [&str; 4] =
    ["A1 table scan", "A2 idx(a) fetch", "A6 hash(a,b) intersect", "C1 mdam(a,b) covering"];

/// Pull [`CORRELATED_PLANS`] out of the systems' plan catalogs for `w`,
/// in that order.
fn correlated_plan_set(w: &robustmap_workload::Workload) -> Vec<robustmap_systems::TwoPredPlan> {
    use robustmap_systems::two_predicate_plans;
    let mut catalog: Vec<robustmap_systems::TwoPredPlan> =
        two_predicate_plans(SystemId::A, w)
            .into_iter()
            .chain(two_predicate_plans(SystemId::C, w))
            .collect();
    CORRELATED_PLANS
        .iter()
        .map(|name| {
            let at = catalog.iter().position(|p| p.name == *name).expect("catalog plan");
            catalog.swap_remove(at)
        })
        .collect()
}

/// Correlated predicate columns — the independence-assumption failure
/// that robust-plan selection work (PARQO's penalty-aware plans, Kamali
/// et al.'s probabilistic plan evaluation) treats as the dominant source
/// of selectivity estimation error, opened as a robustness-map scenario.
///
/// `dist::Correlated` makes column `b` copy column `a` with probability
/// rho.  On the diagonal `sel_a = sel_b = s` the true selectivity of
/// `a <= ta AND b <= tb` is `rho*s + (1-rho)*s^2`, while a textbook
/// optimizer's independence assumption estimates `s^2` — an underestimate
/// approaching `rho/s`.  The sweep measures an index-nested-loop fetch vs
/// a hash intersect (plus the robust covering-MDAM and table-scan
/// baselines) over rho × selectivity through the warm `measure_batch`
/// engine, lets the optimizer choose under independence at every cell,
/// and maps its regret; `build_map2d` then draws the full
/// `(sel_a, sel_b)` robustness map at rho = 0 vs rho = 0.75.
pub fn ext_correlated(h: &Harness) -> FigureOutput {
    use robustmap_core::report::landmark_report;
    use robustmap_core::{
        build_map2d, CheckConfig, Grid2D, Map1D, Map2D, Measurement, RegressionSuite, Series,
    };
    use robustmap_systems::{CatalogStats, ChoicePolicy, Chooser, SelEstimates};
    use robustmap_workload::gen::PredicateDistribution;
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    let rows = h.w.rows().min(1 << 17); // a family of extra tables: keep them moderate
    let seed = h.w.config.seed;
    let wl = |rho_pct: u32| WorkloadConfig {
        rows,
        seed,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(rho_pct),
        mutation_epoch: 0,
    };
    let rho_pct: [u32; 5] = [0, 25, 50, 75, 100];
    let nr = rho_pct.len();
    let max_exp = h.config.grid_exp.min(10) as i32;
    let sels: Vec<f64> = (0..=max_exp).rev().map(|e| 0.5f64.powi(e)).collect();
    let ns = sels.len();

    let mut report = String::from(
        "Extension L: correlated predicate columns — the independence assumption as a \
         run-time condition\n",
    );
    report.push_str(&format!(
        "{rows} rows; rho = P(b copies a); diagonal sweep sel_a = sel_b = s; the optimizer \
         estimates the conjunction as s^2 (independence)\n",
    ));

    // --- rho × selectivity sweep, one batched warm sweep per workload.
    let mut data: Vec<Vec<Measurement>> =
        vec![vec![Measurement::default(); nr * ns]; CORRELATED_PLANS.len()];
    let mut chosen = vec![0usize; nr * ns];
    // The (sel_a × sel_b) maps below reuse two of the sweep's workloads.
    let map2d_rhos: [u32; 2] = [0, 75];
    let mut kept: Vec<(u32, robustmap_workload::Workload)> = Vec::new();
    for (ri, &pct) in rho_pct.iter().enumerate() {
        let w = TableBuilder::build_cached(wl(pct));
        let plans = correlated_plan_set(&w);
        let stats = CatalogStats::of(&w);
        let thr: Vec<(i64, i64)> =
            sels.iter().map(|&s| (w.cal_a.threshold(s), w.cal_b.threshold(s))).collect();
        let specs: Vec<PlanSpec> =
            plans.iter().flat_map(|p| thr.iter().map(|&(ta, tb)| p.build(ta, tb))).collect();
        let results = measure_batch(&w.db, &specs, &h.config.measure);
        for pi in 0..plans.len() {
            for si in 0..ns {
                data[pi][ri * ns + si] = results[pi * ns + si];
            }
        }
        // The optimizer chooses *between the two join strategies* (the
        // INL fetch and the hash intersect) under independence.  Its
        // estimates have no rho input at all, so the compile-time
        // choice is frozen across the whole correlation sweep — the
        // run-time condition moves the truth out from under it.
        let join_chooser = Chooser {
            plans: &plans[1..3],
            stats: &stats,
            model: &h.config.measure.model,
            policy: ChoicePolicy::Point,
        };
        for (si, &s) in sels.iter().enumerate() {
            let (ta, tb) = thr[si];
            chosen[ri * ns + si] =
                1 + join_chooser.choose_at(&SelEstimates::exact(s, s), ta, tb).plan;
        }
        if map2d_rhos.contains(&pct) {
            kept.push((pct, w));
        }
    }
    let rho_axis: Vec<f64> = rho_pct.iter().map(|&p| p as f64 / 100.0).collect();
    let map = Map2D::new(
        rho_axis.clone(),
        sels.clone(),
        CORRELATED_PLANS.iter().map(|s| s.to_string()).collect(),
        data,
    );

    // Regret of the frozen independence choice: chosen join strategy vs
    // the actually-better of the two at each cell.
    let mut regret_grid = vec![1.0f64; nr * ns];
    let mut csv = String::from(
        "rho,selectivity,result_rows,independence_estimate_rows,table_scan,inl_fetch,\
         hash_intersect,mdam_covering,chosen_join,join_regret\n",
    );
    report.push_str(&format!(
        "{:>6} {:>13} {:>13} {:>12} {:>16}\n",
        "rho", "mean regret", "worst regret", "wrong join", "mdam beats pick"
    ));
    let mut mdam_edge_worst = 1.0f64;
    for (ri, &rho) in rho_axis.iter().enumerate() {
        let (mut sum, mut worst, mut wrong, mut mdam_beats) = (0.0f64, 1.0f64, 0usize, 0usize);
        for (si, &sel) in sels.iter().enumerate() {
            let c = ri * ns + si;
            let (inl, hash) = (map.get(1, ri, si).seconds, map.get(2, ri, si).seconds);
            let best_join = inl.min(hash).max(1e-12);
            let picked = map.get(chosen[c], ri, si).seconds;
            let q = picked / best_join;
            regret_grid[c] = q;
            sum += q;
            worst = worst.max(q);
            if q > 1.001 {
                wrong += 1;
            }
            let mdam = map.get(3, ri, si).seconds;
            if mdam < picked {
                mdam_beats += 1;
                mdam_edge_worst = mdam_edge_worst.max(picked / mdam.max(1e-12));
            }
            let actual = map.get(0, ri, si).rows;
            let est = sel * sel * rows as f64;
            csv.push_str(&format!(
                "{rho},{sel:e},{actual},{est:e},{:e},{:e},{:e},{:e},{},{q:e}\n",
                map.get(0, ri, si).seconds,
                inl,
                hash,
                mdam,
                robustmap_core::render::sanitize(CORRELATED_PLANS[chosen[c]]),
            ));
        }
        report.push_str(&format!(
            "{:>6.2} {:>12.2}x {:>12.2}x {:>11.1}% {:>15.1}%\n",
            rho,
            sum / ns as f64,
            worst,
            wrong as f64 / ns as f64 * 100.0,
            mdam_beats as f64 / ns as f64 * 100.0,
        ));
    }
    // The cardinality landmark behind the regret: on the diagonal the
    // independence estimate is off by ~rho/s.
    let finest = map.get(0, nr - 1, 0).rows.max(1);
    let est0 = (sels[0] * sels[0] * rows as f64).max(1.0);
    report.push_str(&format!(
        "at rho = 1.0, sel {:.1e}: {finest} actual result rows vs {est0:.1} estimated under \
         independence — a {:.0}x underestimate feeding every cost formula\n",
        sels[0],
        finest as f64 / est0,
    ));
    if mdam_edge_worst > 1.0 {
        report.push_str(&format!(
            "the covering MDAM plan needs no join choice at all and beats the chosen join by \
             up to {mdam_edge_worst:.1}x — \"an erroneous choice during compile-time query \
             optimization can be avoided by eliminating the need to choose\" (§1)\n",
        ));
    } else {
        report.push_str(
            "at this scale the chosen join never loses to the covering MDAM plan — the \
             choice-free plan costs nothing here, which is still §1's point\n",
        );
    }

    // Crossover landmarks along the fully correlated diagonal (the 1-D
    // robustness map the regression suite also checks).
    let map1 = Map1D {
        sels: sels.clone(),
        result_rows: (0..ns).map(|si| map.get(0, nr - 1, si).rows.max(1)).collect(),
        series: (0..CORRELATED_PLANS.len())
            .map(|pi| Series {
                plan: CORRELATED_PLANS[pi].to_string(),
                points: (0..ns).map(|si| *map.get(pi, nr - 1, si)).collect(),
            })
            .collect(),
    };
    report.push_str("\nplan crossovers along the rho = 1.0 diagonal:\n");
    report.push_str(&landmark_report(&map1));

    // --- The full (sel_a × sel_b) robustness map through the standard map
    // builder, independent (rho = 0) vs strongly correlated (rho = 0.75).
    let grid = Grid2D::pow2(h.config.grid_exp.min(6));
    let mut files = Vec::new();
    report.push_str(&format!(
        "\n(sel_a x sel_b) robustness maps via build_map2d, {}x{} grid:\n",
        grid.dims().0,
        grid.dims().1
    ));
    let mut suite = RegressionSuite::new();
    // The covering MDAM plan is this scenario's robust baseline; at this
    // scale it stays within ~500x of the per-cell best even when
    // correlation moves every landmark.
    let cfg = CheckConfig { max_worst_quotient: 500.0, ..Default::default() };
    suite.check_map1d(&map1, &cfg);
    for (pct, w) in kept {
        let plans = correlated_plan_set(&w);
        let m2 = build_map2d(&w, &plans, &grid, &h.config.measure);
        let r2 = RelativeMap2D::from_map(&m2);
        let (na, nb) = r2.dims();
        let mut wins = [0usize; CORRELATED_PLANS.len()];
        for ia in 0..na {
            for ib in 0..nb {
                wins[r2.best_plan_at(ia, ib)] += 1;
            }
        }
        report.push_str(&format!("  rho {:.2} best-plan share:", pct as f64 / 100.0));
        for (pi, name) in CORRELATED_PLANS.iter().enumerate() {
            report.push_str(&format!(
                "  {name} {:.0}%",
                wins[pi] as f64 / (na * nb) as f64 * 100.0
            ));
        }
        report.push('\n');
        if pct != 0 {
            suite.check_map2d(&m2, &["C1"], &cfg);
            files.push(h.write_artifact(
                &format!("ext_correlated_hash_quotient_rho{pct}.svg"),
                &heatmap_svg(
                    r2.quotient_grid(2),
                    &r2.sel_a,
                    &r2.sel_b,
                    &relative_scale(),
                    &format!("hash intersect vs best plan at rho = {:.2}", pct as f64 / 100.0),
                ),
            ));
        }
    }
    report.push_str("\nregression checks over the correlated scenario:\n");
    report.push_str(&suite.report());

    files.push(h.write_artifact("ext_correlated.csv", &csv));
    files.push(h.write_artifact(
        "ext_correlated_regret.svg",
        &heatmap_svg(
            &regret_grid,
            &rho_axis,
            &sels,
            &relative_scale(),
            "Independence-assuming optimizer regret over rho (x) and selectivity (y)",
        ),
    ));
    FigureOutput::new("ext_correlated", report, files)
}

/// Per-chooser tallies over one set of cells: wrong-choice counts and
/// regret (chosen plan's measured cost over the per-cell best of the
/// whole catalog), for the point-estimate chooser and the robust chooser
/// side by side.
#[derive(Default)]
struct ChooserTally {
    cells: usize,
    point_wrong: usize,
    robust_wrong: usize,
    point_worst: f64,
    robust_worst: f64,
    point_sum: f64,
    robust_sum: f64,
}

impl ChooserTally {
    /// Record one cell over the full catalog's measured seconds; returns
    /// `(point_regret, robust_regret)`.
    fn add(&mut self, secs: &[f64], point: usize, robust: usize) -> (f64, f64) {
        let best = secs.iter().copied().fold(f64::INFINITY, f64::min).max(1e-12);
        let pq = secs[point] / best;
        let rq = secs[robust] / best;
        self.cells += 1;
        if pq > 1.001 {
            self.point_wrong += 1;
        }
        if rq > 1.001 {
            self.robust_wrong += 1;
        }
        self.point_worst = self.point_worst.max(pq);
        self.robust_worst = self.robust_worst.max(rq);
        self.point_sum += pq;
        self.robust_sum += rq;
        (pq, rq)
    }

    fn wrong_fracs(&self) -> (f64, f64) {
        let n = self.cells.max(1) as f64;
        (self.point_wrong as f64 / n, self.robust_wrong as f64 / n)
    }
}

/// Index of the measured-cheapest plan at one cell (ties to the lower
/// index, like every chooser).
fn oracle_of(secs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, &s) in secs.iter().enumerate() {
        if s < secs[best] {
            best = i;
        }
    }
    best
}

/// Robust plan selection under estimation uncertainty — the fix for the
/// failure `ext_correlated` mapped.  The joint statistics
/// ([`robustmap_workload::JointHistogram`]) retire the independence
/// assumption; the penalty-aware policy
/// ([`robustmap_systems::ChoicePolicy::Robust`]) replaces
/// argmin-at-the-point-estimate with expected cost plus a tail penalty
/// over the [`robustmap_systems::choice::Joint`] estimator's
/// variance-adaptive credible box (the PARQO-style selection criterion,
/// see `docs/DESIGN.md`).  Both choosers hedge over the *whole* plan
/// catalog — table scan, INL fetch, hash intersect and covering MDAM, not
/// a two-join slice — so eliminating the join choice entirely (the
/// paper's §1 suggestion) is itself a candidate decision.  Three choosers
/// meet on the same cells: the point-estimate optimizer, the robust
/// chooser, and the oracle (measured argmin); the figure maps
/// wrong-choice fractions and regret over the correlated rho sweep, the
/// rho = 1 `(sel_a x sel_b)` map, and a skewed workload, and gates the
/// comparison with named regression checks.
pub fn ext_robust_choice(h: &Harness) -> FigureOutput {
    use robustmap_core::report::{score_csv, score_report};
    use robustmap_core::{build_map2d, Grid2D, Map2D, Measurement, RegressionSuite};
    use robustmap_systems::choice::{Exact, Histogram, Joint};
    use robustmap_systems::{CatalogStats, ChoicePolicy, Chooser, RobustConfig};
    use robustmap_workload::gen::PredicateDistribution;
    use robustmap_workload::{
        EquiDepthHistogram, JointHistogram, JointHistogramConfig, TableBuilder, WorkloadConfig,
        COL_A, COL_B,
    };

    let rows = h.w.rows().min(1 << 17); // the ext_correlated workload family, reused
    let seed = h.w.config.seed;
    let rcfg = RobustConfig::default();
    let jcfg = JointHistogramConfig::default();
    let model = &h.config.measure.model;
    let mut suite = RegressionSuite::new();

    let mut report = String::from(
        "Extension M: robust plan choice under estimation uncertainty — joint statistics + \
         penalty-aware selection\n",
    );
    report.push_str(&format!(
        "{rows} rows; the choosers hedge over the whole catalog (table scan, INL fetch, hash \
         intersect, covering MDAM).  point = argmin of estimated cost under independence; \
         robust = argmin of expected + {:.1} x tail(q = {:.2}) over the joint histogram's \
         variance-adaptive credible box; oracle = measured argmin\n",
        rcfg.penalty_weight, rcfg.tail_quantile,
    ));

    // --- Part 1: the correlated rho sweep (diagonal sel_a = sel_b = s),
    // the exact cells where ext_correlated showed the frozen wrong choice.
    let rho_pct: [u32; 5] = [0, 25, 50, 75, 100];
    let max_exp = h.config.grid_exp.min(10) as i32;
    let sels: Vec<f64> = (0..=max_exp).rev().map(|e| 0.5f64.powi(e)).collect();
    let ns = sels.len();
    let mut csv = String::from(
        "workload,rho,sel_a,sel_b,table_scan,inl_fetch,hash_intersect,mdam_covering,\
         point_choice,robust_choice,oracle_choice,point_regret,robust_regret,point_margin,\
         robust_margin\n",
    );
    let plan_short = ["scan", "inl", "hash", "mdam"];
    report.push_str(&format!(
        "\ndiagonal sweep:\n{:>6} {:>12} {:>13} {:>12} {:>13}\n",
        "rho", "point wrong", "robust wrong", "point worst", "robust worst"
    ));
    let mut hedge_benign = true;
    let mut total_point_wrong = 0usize;
    let mut total_robust_wrong = 0usize;
    let mut slice_tally = ChooserTally::default();
    let mut rho1_diag = ChooserTally::default();
    for &pct in &rho_pct {
        let w = TableBuilder::build_cached(WorkloadConfig {
            rows,
            seed,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(pct),
            mutation_epoch: 0,
        });
        let plans = correlated_plan_set(&w);
        let stats = CatalogStats::of(&w);
        let joint = JointHistogram::build_cached(&w, &jcfg);
        let point_est = Exact::of(&w);
        let robust_est = Joint::new(&joint);
        let point_chooser =
            Chooser { plans: &plans, stats: &stats, model, policy: ChoicePolicy::Point };
        let robust_chooser =
            Chooser { plans: &plans, stats: &stats, model, policy: ChoicePolicy::Robust(rcfg) };
        // The ablation the catalog-wide hedge is judged against: the old
        // two-join slice (INL fetch vs hash intersect only), the frozen
        // chooser `ext_correlated` exposed.
        let slice_chooser =
            Chooser { plans: &plans[1..3], stats: &stats, model, policy: ChoicePolicy::Point };
        let thr: Vec<(i64, i64)> =
            sels.iter().map(|&s| (w.cal_a.threshold(s), w.cal_b.threshold(s))).collect();
        let specs: Vec<PlanSpec> = plans
            .iter()
            .flat_map(|p| thr.iter().map(|&(ta, tb)| p.build(ta, tb)))
            .collect();
        let results = measure_batch(&w.db, &specs, &h.config.measure);
        let mut tally = ChooserTally::default();
        for (si, &s) in sels.iter().enumerate() {
            let (ta, tb) = thr[si];
            let secs: Vec<f64> =
                (0..plans.len()).map(|pi| results[pi * ns + si].seconds).collect();
            let point = point_chooser.choose(&point_est, ta, tb);
            let robust = robust_chooser.choose(&robust_est, ta, tb);
            let slice = 1 + slice_chooser.choose(&point_est, ta, tb).plan;
            // Both tally slots record the slice chooser; only
            // `slice_tally.point_wrong` is read (one wrong-cell rule,
            // shared with every other tally).
            slice_tally.add(&secs, slice, slice);
            let (pq, rq) = tally.add(&secs, point.plan, robust.plan);
            csv.push_str(&format!(
                "correlated,{},{s:e},{s:e},{:e},{:e},{:e},{:e},{},{},{},{pq:e},{rq:e},{:e},{:e}\n",
                pct as f64 / 100.0,
                secs[0],
                secs[1],
                secs[2],
                secs[3],
                plan_short[point.plan],
                plan_short[robust.plan],
                plan_short[oracle_of(&secs)],
                point.margin,
                robust.margin,
            ));
        }
        let (pw, rw) = tally.wrong_fracs();
        report.push_str(&format!(
            "{:>6.2} {:>11.1}% {:>12.1}% {:>11.2}x {:>12.2}x\n",
            pct as f64 / 100.0,
            pw * 100.0,
            rw * 100.0,
            tally.point_worst,
            tally.robust_worst,
        ));
        // Hedging against the tail may pick a slightly-worse plan where
        // candidates are near-equal (the paper's robustness-over-peak
        // trade-off) — but any *extra* wrong choices must be benign.
        hedge_benign &=
            tally.robust_wrong <= tally.point_wrong || tally.robust_worst <= 1.15;
        total_point_wrong += tally.point_wrong;
        total_robust_wrong += tally.robust_wrong;
        if pct == 100 {
            rho1_diag = tally;
        }
    }
    suite.check_named(
        "diagonal sweep: robust hedging is never costly (extra wrong plans stay within 1.15x)",
        hedge_benign,
        String::new(),
    );
    suite.check_named(
        "diagonal sweep: robust chooser total wrong-plan cells below the point chooser's",
        total_robust_wrong < total_point_wrong || total_point_wrong == 0,
        format!("{total_robust_wrong} vs {total_point_wrong} of {}", rho_pct.len() * ns),
    );
    suite.check_named(
        "diagonal sweep: catalog-wide hedging strictly shrinks the two-join slice chooser's \
         wrong cells",
        total_point_wrong < slice_tally.point_wrong || slice_tally.point_wrong == 0,
        format!(
            "{total_point_wrong} (full catalog) vs {} (two-join slice) of {}",
            slice_tally.point_wrong,
            rho_pct.len() * ns
        ),
    );
    suite.check_named(
        "rho = 1 diagonal: robust worst regret <= point worst regret",
        rho1_diag.robust_worst <= rho1_diag.point_worst + 1e-9,
        format!("{:.2}x vs {:.2}x", rho1_diag.robust_worst, rho1_diag.point_worst),
    );

    // --- Part 2: the full (sel_a x sel_b) map at rho = 1, where the
    // independence-assuming chooser was wrong at ~55% of cells.  The
    // whole four-plan catalog is swept through the standard map builder;
    // the chooser cost grids (each cell = the chosen plan's measured
    // seconds) are then changepoint-scored like any plan and ranked on
    // the leaderboard.
    let w1 = TableBuilder::build_cached(WorkloadConfig {
        rows,
        seed,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(100),
        mutation_epoch: 0,
    });
    let plans1 = correlated_plan_set(&w1);
    let stats1 = CatalogStats::of(&w1);
    let joint1 = JointHistogram::build_cached(&w1, &jcfg);
    let point_est1 = Exact::of(&w1);
    let robust_est1 = Joint::new(&joint1);
    let point_chooser1 =
        Chooser { plans: &plans1, stats: &stats1, model, policy: ChoicePolicy::Point };
    let robust_chooser1 =
        Chooser { plans: &plans1, stats: &stats1, model, policy: ChoicePolicy::Robust(rcfg) };
    let grid = Grid2D::pow2(h.config.grid_exp.min(6));
    let m2 = build_map2d(&w1, &plans1, &grid, &h.config.measure);
    let (na, nb) = m2.dims();
    let mut map_tally = ChooserTally::default();
    let mut point_regret = vec![1.0f64; na * nb];
    let mut robust_regret = vec![1.0f64; na * nb];
    let mut chooser_secs: Vec<Vec<Measurement>> =
        (0..3).map(|_| Vec::with_capacity(na * nb)).collect();
    for ia in 0..na {
        for ib in 0..nb {
            let (sa, sb) = (m2.sel_a[ia], m2.sel_b[ib]);
            let (ta, tb) = (w1.cal_a.threshold(sa), w1.cal_b.threshold(sb));
            let secs: Vec<f64> =
                (0..plans1.len()).map(|pi| m2.get(pi, ia, ib).seconds).collect();
            let point = point_chooser1.choose(&point_est1, ta, tb);
            let robust = robust_chooser1.choose(&robust_est1, ta, tb);
            let (pq, rq) = map_tally.add(&secs, point.plan, robust.plan);
            let c = ia * nb + ib;
            point_regret[c] = pq;
            robust_regret[c] = rq;
            let oracle = oracle_of(&secs);
            for (gi, s) in
                [secs[point.plan], secs[robust.plan], secs[oracle]].into_iter().enumerate()
            {
                chooser_secs[gi].push(Measurement { seconds: s, ..Default::default() });
            }
            csv.push_str(&format!(
                "correlated_map,1,{sa:e},{sb:e},{:e},{:e},{:e},{:e},{},{},{},{pq:e},{rq:e},\
                 {:e},{:e}\n",
                secs[0],
                secs[1],
                secs[2],
                secs[3],
                plan_short[point.plan],
                plan_short[robust.plan],
                plan_short[oracle],
                point.margin,
                robust.margin,
            ));
        }
    }
    let (pw, rw) = map_tally.wrong_fracs();
    report.push_str(&format!(
        "\n(sel_a x sel_b) map at rho = 1, {na}x{nb} grid:\n\
         point chooser:  wrong at {:.1}% of cells, worst regret {:.2}x, mean {:.2}x\n\
         robust chooser: wrong at {:.1}% of cells, worst regret {:.2}x, mean {:.2}x\n",
        pw * 100.0,
        map_tally.point_worst,
        map_tally.point_sum / map_tally.cells as f64,
        rw * 100.0,
        map_tally.robust_worst,
        map_tally.robust_sum / map_tally.cells as f64,
    ));
    // With the whole catalog to hedge over, the point chooser's residual
    // map errors are cost-*model* errors (both estimators rank the same
    // wrong plan first), so the robust chooser is held to "never worse";
    // the strict estimator separation lives in `ext_optimizer`'s 15-plan
    // comparison, and the strict catalog-vs-slice separation in the
    // diagonal check above.
    suite.check_named(
        "rho = 1 map: robust wrong-choice fraction no higher than the point chooser's",
        map_tally.robust_wrong <= map_tally.point_wrong,
        format!("{:.1}% vs {:.1}%", rw * 100.0, pw * 100.0),
    );
    suite.check_named(
        "rho = 1 map: robust worst-cell regret no higher than the point chooser's",
        map_tally.robust_worst <= map_tally.point_worst + 1e-9,
        format!("{:.2}x vs {:.2}x", map_tally.robust_worst, map_tally.point_worst),
    );
    let chooser_map = Map2D::new(
        m2.sel_a.clone(),
        m2.sel_b.clone(),
        vec![
            "point-estimate chooser".to_string(),
            "robust chooser".to_string(),
            "oracle best plan".to_string(),
        ],
        chooser_secs,
    );
    let rel = RelativeMap2D::from_map(&chooser_map);
    let scores: Vec<_> =
        (0..3).map(|p| score_map2d(&rel, p, &chooser_map.seconds_grid(p))).collect();
    report.push_str("\nchooser leaderboard at rho = 1 (changepoint-scored like any plan):\n");
    report.push_str(&score_report(&scores));
    let robust_headline = scores.iter().find(|s| s.plan == "robust chooser").expect("scored");
    let point_headline =
        scores.iter().find(|s| s.plan == "point-estimate chooser").expect("scored");
    suite.check_named(
        "rho = 1 map: robust chooser's robustness score >= the point chooser's",
        robust_headline.headline() >= point_headline.headline(),
        format!("{:.3} vs {:.3}", robust_headline.headline(), point_headline.headline()),
    );

    // --- Part 3: the skewed workload — here the error source is not
    // correlation but coarse marginal statistics; the sample-backed joint
    // histogram sharpens both.
    let wz = TableBuilder::build_cached(WorkloadConfig {
        rows,
        seed,
        predicate_dist: PredicateDistribution::ZipfHundredths(110),
        mutation_epoch: 0,
    });
    let plansz = correlated_plan_set(&wz);
    let statsz = CatalogStats::of(&wz);
    let jointz = JointHistogram::build_cached(&wz, &jcfg);
    // The coarse catalog the point chooser gets: 8-bucket per-column
    // histograms (the skew-error regime the histogram tests pin).
    let s = robustmap_storage::Session::with_pool_pages(0);
    let mut vals_a = Vec::new();
    let mut vals_b = Vec::new();
    wz.db.table(wz.table).heap.scan(&s, |_, row| {
        vals_a.push(row.get(COL_A));
        vals_b.push(row.get(COL_B));
    });
    let coarse_a = EquiDepthHistogram::build(vals_a, 8);
    let coarse_b = EquiDepthHistogram::build(vals_b, 8);
    let coarse_est = Histogram::new(&coarse_a, &coarse_b);
    let robust_estz = Joint::new(&jointz);
    let point_chooserz =
        Chooser { plans: &plansz, stats: &statsz, model, policy: ChoicePolicy::Point };
    let robust_chooserz =
        Chooser { plans: &plansz, stats: &statsz, model, policy: ChoicePolicy::Robust(rcfg) };
    let thr: Vec<(i64, i64)> =
        sels.iter().map(|&s| (wz.cal_a.threshold(s), wz.cal_b.threshold(s))).collect();
    let specs: Vec<PlanSpec> = plansz
        .iter()
        .flat_map(|p| thr.iter().map(|&(ta, tb)| p.build(ta, tb)))
        .collect();
    let results = measure_batch(&wz.db, &specs, &h.config.measure);
    let mut skew_tally = ChooserTally::default();
    for (si, &s) in sels.iter().enumerate() {
        let (ta, tb) = thr[si];
        let secs: Vec<f64> = (0..plansz.len()).map(|pi| results[pi * ns + si].seconds).collect();
        let point = point_chooserz.choose(&coarse_est, ta, tb);
        let robust = robust_chooserz.choose(&robust_estz, ta, tb);
        let (pq, rq) = skew_tally.add(&secs, point.plan, robust.plan);
        csv.push_str(&format!(
            "zipf,0,{s:e},{s:e},{:e},{:e},{:e},{:e},{},{},{},{pq:e},{rq:e},{:e},{:e}\n",
            secs[0],
            secs[1],
            secs[2],
            secs[3],
            plan_short[point.plan],
            plan_short[robust.plan],
            plan_short[oracle_of(&secs)],
            point.margin,
            robust.margin,
        ));
    }
    let (pw, rw) = skew_tally.wrong_fracs();
    report.push_str(&format!(
        "\nskewed workload (Zipf theta = 1.1, coarse 8-bucket catalog vs joint statistics):\n\
         point chooser wrong at {:.1}% (worst {:.2}x); robust wrong at {:.1}% (worst {:.2}x)\n",
        pw * 100.0,
        skew_tally.point_worst,
        rw * 100.0,
        skew_tally.robust_worst,
    ));
    suite.check_named(
        "skewed workload: robust chooser no worse than the coarse-histogram point chooser",
        skew_tally.robust_wrong <= skew_tally.point_wrong
            && skew_tally.robust_worst <= skew_tally.point_worst + 1e-9,
        format!(
            "wrong {:.1}% vs {:.1}%, worst {:.2}x vs {:.2}x",
            rw * 100.0,
            pw * 100.0,
            skew_tally.robust_worst,
            skew_tally.point_worst
        ),
    );

    report.push_str("\nregression checks over the robust-chooser subsystem:\n");
    let checks = format!(
        "{}verdict: {}\n",
        suite.report(),
        if suite.passed() { "PASS" } else { "FAIL" }
    );
    report.push_str(&checks);

    let files = vec![
        h.write_artifact("ext_robust_choice.csv", &csv),
        h.write_artifact("ext_robust_choice_scores.csv", &score_csv(&scores)),
        h.write_artifact("ext_robust_choice_checks.txt", &checks),
        h.write_artifact(
            "ext_robust_choice_point_regret.svg",
            &heatmap_svg(
                &point_regret,
                &m2.sel_a,
                &m2.sel_b,
                &relative_scale(),
                "Point-estimate chooser regret at rho = 1",
            ),
        ),
        h.write_artifact(
            "ext_robust_choice_robust_regret.svg",
            &heatmap_svg(
                &robust_regret,
                &m2.sel_a,
                &m2.sel_b,
                &relative_scale(),
                "Robust chooser regret at rho = 1",
            ),
        ),
    ];
    FigureOutput::new("ext_robust_choice", report, files)
}

/// Adaptive mid-flight plan switching — the *run-time* answer to the
/// estimation failure that `ext_correlated` mapped and `ext_robust_choice`
/// fixed with compile-time joint statistics.  Here the chooser keeps its
/// textbook independence estimates over the full 15-plan catalog; instead
/// of better statistics, the executor's adaptive layer
/// ([`robustmap_executor::ops::adaptive`]) counts rows at the chosen
/// plan's materialization points and a
/// [`robustmap_systems::BailController`] re-costs the remaining pipeline
/// when the observed cardinality falls outside the estimate's credible
/// band, bailing to the choice-free covering-MDAM plan when abandoning
/// pays.  The rid feeds of System B's key-filtered composite-index plans
/// and of the intersections materialize the true *conjunction*
/// cardinality — exactly the number the independence assumption gets
/// wrong by `1/s` at rho = 1 — so the wrong-choice region collapses
/// without any joint statistics.  Switch costs are exactly accounted: the
/// abandoned prefix's charges are sunk on the same simulated clock the
/// fallback then runs on, and no-switch runs are bit-identical to the
/// static executor (pinned by `tests/adaptive_equivalence.rs`).
pub fn ext_adaptive(h: &Harness) -> FigureOutput {
    use robustmap_core::render::sanitize;
    use robustmap_core::{build_map2d, Grid2D, RegressionSuite};
    use robustmap_executor::{
        execute_adaptive_count_batched, AdaptiveStats, ExecConfig, ExecCtx, NeverSwitch,
        SwitchController,
    };
    use robustmap_storage::{BufferPool, Database, Session};
    use robustmap_systems::choice::{Exact, Joint};
    use robustmap_systems::{
        two_pred_bail_controller_banded, two_predicate_plans, CatalogStats, ChoicePolicy,
        Chooser,
        Estimator, RobustConfig, TwoPredPlan,
    };
    use robustmap_workload::gen::PredicateDistribution;
    use robustmap_workload::{
        JointHistogram, JointHistogramConfig, TableBuilder, Workload, WorkloadConfig,
    };

    let rows = h.w.rows().min(1 << 17); // the ext_correlated workload family, reused
    // Credible-band factor for the trip predicate.  The map's outermost
    // selectivity is 1/2, where the independence conjunction is wrong by
    // exactly 1/max(sel_a, sel_b) = 2 — the default factor-2 band would
    // declare that genuine failure "credible", so the experiment arms a
    // tighter band; the rho = 0 bit-identity check below guards the other
    // side (no trips where the estimates are right).
    const BAND_FACTOR: f64 = 1.5;
    let seed = h.w.config.seed;
    let rcfg = RobustConfig::default();
    let jcfg = JointHistogramConfig::default();
    let mcfg = &h.config.measure;
    let model = &mcfg.model;
    let ec = ExecConfig::from_env();
    let mut suite = RegressionSuite::new();

    let full_catalog = |w: &Workload| -> Vec<TwoPredPlan> {
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, w)).collect()
    };
    // The bail destination is always a choice-free System C plan: the
    // covering MDAM for a tripped fetch/intersect plan, or — when the
    // tripped plan IS the MDAM — the plain covering scan over the smaller
    // *exact* marginal (no conjunction estimate enters the pick).
    let find = |plans: &[TwoPredPlan], frag: &str| -> usize {
        plans.iter().position(|p| p.name.contains(frag)).expect("plan in catalog")
    };
    let fallback_idx = |plans: &[TwoPredPlan],
                        spec: &PlanSpec,
                        est: &robustmap_systems::SelEstimates|
     -> usize {
        if matches!(spec, PlanSpec::Mdam { .. }) {
            if est.sel_a <= est.sel_b {
                find(plans, "covering(a,b) scan")
            } else {
                find(plans, "covering(b,a) scan")
            }
        } else {
            find(plans, "mdam")
        }
    };
    // One adaptive execution under exactly the measurement conditions the
    // static maps use: fresh session (bit-identical to `SweepArena`'s
    // reset one), same pool, same model, same batched executor.
    let run_adaptive =
        |db: &Database, spec: &PlanSpec, ctrl: &dyn SwitchController| -> AdaptiveStats {
            let s = Session::new(mcfg.model.clone(), BufferPool::new(mcfg.pool_pages, mcfg.policy));
            let ctx = ExecCtx::new(db, &s, mcfg.memory_bytes);
            execute_adaptive_count_batched(spec, &ctx, &ec, ctrl).expect("well-formed plan")
        };

    let mut report = String::from(
        "Extension N: adaptive mid-flight plan switching — observed cardinalities vs joint \
         statistics\n",
    );
    report.push_str(&format!(
        "{rows} rows; the compile-time chooser is the independence point chooser over the full \
         15-plan catalog (the baseline ext_optimizer's rho = 1 panel shows going wrong).  \
         adaptive = that chosen plan + cardinality checkpoints, bailing to a choice-free \
         System C plan (covering MDAM; for a tripped MDAM, the plain covering scan on the \
         smaller exact marginal) when the observed count leaves the credible band (factor \
         {:.0} + {:.0} rows) and the re-costed comparison says the switch pays; sunk prefix charges are \
         included in every adaptive number.  The compile-time baselines (joint point / joint \
         robust) choose over the same catalog with joint statistics instead\n",
        BAND_FACTOR,
        robustmap_systems::CARDINALITY_NOISE_ROWS,
    ));

    let mut csv = String::from(
        "part,rho,sel_a,sel_b,point_choice,final_plan,joint_choice,best_plan,switched,\
         point_regret,adaptive_final_regret,adaptive_total_regret\n",
    );

    // --- Part 1: the diagonal rho sweep.  At rho = 0 the estimates are
    // right, nothing may trip, and the adaptive executor must be
    // charge-identical to the static one; as rho grows the conjunction
    // underestimate grows as 1/s and the trips begin.
    let rho_pct: [u32; 5] = [0, 25, 50, 75, 100];
    let max_exp = h.config.grid_exp.min(10) as i32;
    let sels: Vec<f64> = (0..=max_exp).rev().map(|e| 0.5f64.powi(e)).collect();
    let ns = sels.len();
    report.push_str(&format!(
        "\ndiagonal sweep (15-plan catalog):\n{:>6} {:>12} {:>14} {:>12} {:>14} {:>9}\n",
        "rho", "point wrong", "adaptive wrong", "point worst", "adaptive worst", "switches"
    ));
    let mut total_point_wrong = 0usize;
    let mut total_adaptive_wrong = 0usize;
    let mut rho0_identity = true;
    let mut accounting_ok = true;
    for &pct in &rho_pct {
        let w = TableBuilder::build_cached(WorkloadConfig {
            rows,
            seed,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(pct),
            mutation_epoch: 0,
        });
        let plans = full_catalog(&w);
        let stats = CatalogStats::of(&w);
        let exact = Exact::of(&w);
        let chooser = Chooser { plans: &plans, stats: &stats, model, policy: ChoicePolicy::Point };
        let thr: Vec<(i64, i64)> =
            sels.iter().map(|&s| (w.cal_a.threshold(s), w.cal_b.threshold(s))).collect();
        let specs: Vec<PlanSpec> = plans
            .iter()
            .flat_map(|p| thr.iter().map(|&(ta, tb)| p.build(ta, tb)))
            .collect();
        let results = measure_batch(&w.db, &specs, mcfg);
        let mut tally = ChooserTally::default();
        let mut switches = 0usize;
        let mut worst_total = 0.0f64;
        for (si, &s) in sels.iter().enumerate() {
            let (ta, tb) = thr[si];
            let secs: Vec<f64> =
                (0..plans.len()).map(|pi| results[pi * ns + si].seconds).collect();
            let point = chooser.choose(&exact, ta, tb);
            let est = exact.estimate(ta, tb);
            let spec = plans[point.plan].build(ta, tb);
            let fb_idx = fallback_idx(&plans, &spec, &est);
            let fallback = plans[fb_idx].build(ta, tb);
            let astats = match two_pred_bail_controller_banded(
                &spec, &point, fallback, &stats, est, model, rcfg, BAND_FACTOR,
            ) {
                Some(ctrl) => run_adaptive(&w.db, &spec, &ctrl),
                None => run_adaptive(&w.db, &spec, &NeverSwitch),
            };
            let switched = !astats.switches.is_empty();
            let final_plan = if switched { fb_idx } else { point.plan };
            switches += switched as usize;
            let (pq, aq) = tally.add(&secs, point.plan, final_plan);
            let best = secs.iter().copied().fold(f64::INFINITY, f64::min).max(1e-12);
            let total_q = astats.exec.seconds / best;
            worst_total = worst_total.max(total_q);
            accounting_ok &= astats.exec.seconds >= secs[final_plan] - 1e-12;
            if pct == 0 {
                rho0_identity &= !switched
                    && astats.exec.seconds.to_bits() == secs[point.plan].to_bits();
            }
            csv.push_str(&format!(
                "diagonal,{},{s:e},{s:e},{},{},,{},{},{pq:e},{aq:e},{total_q:e}\n",
                pct as f64 / 100.0,
                sanitize(&plans[point.plan].name),
                sanitize(&plans[final_plan].name),
                sanitize(&plans[oracle_of(&secs)].name),
                switched as u8,
            ));
        }
        let (pw, aw) = tally.wrong_fracs();
        report.push_str(&format!(
            "{:>6.2} {:>11.1}% {:>13.1}% {:>11.2}x {:>13.2}x {:>9}\n",
            pct as f64 / 100.0,
            pw * 100.0,
            aw * 100.0,
            tally.point_worst,
            worst_total,
            switches,
        ));
        total_point_wrong += tally.point_wrong;
        total_adaptive_wrong += tally.robust_wrong;
    }
    suite.check_named(
        "diagonal sweep: adaptive final-plan wrong cells <= the independence point chooser's",
        total_adaptive_wrong <= total_point_wrong,
        format!("{total_adaptive_wrong} vs {total_point_wrong} of {}", rho_pct.len() * ns),
    );
    suite.check_named(
        "rho = 0 diagonal: zero switches and bit-identical charges to the static chosen plan",
        rho0_identity,
        String::new(),
    );

    // --- Part 2: the full (sel_a x sel_b) map at rho = 1 — the collapse
    // claim.  The joint point chooser (compile-time statistics, PR 5's
    // estimator) is the baseline the run-time fix must match without
    // those statistics.
    let w1 = TableBuilder::build_cached(WorkloadConfig {
        rows,
        seed,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(100),
        mutation_epoch: 0,
    });
    let plans1 = full_catalog(&w1);
    let stats1 = CatalogStats::of(&w1);
    let joint1 = JointHistogram::build_cached(&w1, &jcfg);
    let exact1 = Exact::of(&w1);
    let joint_est1 = Joint::new(&joint1);
    let point_chooser =
        Chooser { plans: &plans1, stats: &stats1, model, policy: ChoicePolicy::Point };
    let robust_chooser =
        Chooser { plans: &plans1, stats: &stats1, model, policy: ChoicePolicy::Robust(rcfg) };
    let grid = Grid2D::pow2(h.config.grid_exp.min(6));
    let m2 = build_map2d(&w1, &plans1, &grid, mcfg);
    let (na, nb) = m2.dims();
    let mut est_tally = ChooserTally::default(); // indep point vs joint point (PR baseline)
    let mut adapt_tally = ChooserTally::default(); // indep point vs adaptive final plan
    let mut robust_tally = ChooserTally::default(); // indep point vs robust-over-joint
    let mut point_regret = vec![1.0f64; na * nb];
    let mut adaptive_regret = vec![1.0f64; na * nb];
    let mut worst_total = 0.0f64;
    let mut sum_total = 0.0f64;
    let mut switched_cells = 0usize;
    let mut contested_cells = 0usize;
    let mut unswitched_identity = true;
    for ia in 0..na {
        for ib in 0..nb {
            let (sa, sb) = (m2.sel_a[ia], m2.sel_b[ib]);
            let (ta, tb) = (w1.cal_a.threshold(sa), w1.cal_b.threshold(sb));
            let secs: Vec<f64> =
                (0..plans1.len()).map(|pi| m2.get(pi, ia, ib).seconds).collect();
            let point = point_chooser.choose(&exact1, ta, tb);
            let joint_choice = point_chooser.choose(&joint_est1, ta, tb);
            let robust = robust_chooser.choose(&joint_est1, ta, tb);
            contested_cells += point.is_contested(0.25) as usize;
            let est = exact1.estimate(ta, tb);
            let spec = plans1[point.plan].build(ta, tb);
            let fb_idx = fallback_idx(&plans1, &spec, &est);
            let fallback = plans1[fb_idx].build(ta, tb);
            let astats = match two_pred_bail_controller_banded(
                &spec, &point, fallback, &stats1, est, model, rcfg, BAND_FACTOR,
            ) {
                Some(ctrl) => run_adaptive(&w1.db, &spec, &ctrl),
                None => run_adaptive(&w1.db, &spec, &NeverSwitch),
            };
            let switched = !astats.switches.is_empty();
            let final_plan = if switched { fb_idx } else { point.plan };
            switched_cells += switched as usize;
            est_tally.add(&secs, point.plan, joint_choice.plan);
            robust_tally.add(&secs, point.plan, robust.plan);
            let (pq, aq) = adapt_tally.add(&secs, point.plan, final_plan);
            let best = secs.iter().copied().fold(f64::INFINITY, f64::min).max(1e-12);
            let total_q = astats.exec.seconds / best;
            worst_total = worst_total.max(total_q);
            sum_total += total_q;
            accounting_ok &= astats.exec.seconds >= secs[final_plan] - 1e-12;
            if !switched {
                unswitched_identity &=
                    astats.exec.seconds.to_bits() == secs[point.plan].to_bits();
            }
            let c = ia * nb + ib;
            point_regret[c] = pq;
            adaptive_regret[c] = total_q;
            csv.push_str(&format!(
                "map,1,{sa:e},{sb:e},{},{},{},{},{},{pq:e},{aq:e},{total_q:e}\n",
                sanitize(&plans1[point.plan].name),
                sanitize(&plans1[final_plan].name),
                sanitize(&plans1[joint_choice.plan].name),
                sanitize(&plans1[oracle_of(&secs)].name),
                switched as u8,
            ));
        }
    }
    let cells = adapt_tally.cells as f64;
    let (pw, aw) = adapt_tally.wrong_fracs();
    let (_, jw) = est_tally.wrong_fracs();
    let (_, rw) = robust_tally.wrong_fracs();
    report.push_str(&format!(
        "\n(sel_a x sel_b) map at rho = 1, {na}x{nb} grid, 15-plan catalog (switched at {:.1}% \
         of cells, independence choice contested at {:.1}%):\n\
         independence point chooser: wrong at {:.1}% of cells, worst regret {:.2}x\n\
         joint point chooser:        wrong at {:.1}% of cells, worst regret {:.2}x\n\
         joint robust chooser:       wrong at {:.1}% of cells, worst regret {:.2}x\n\
         adaptive (independence):    wrong at {:.1}% of cells, worst total regret {:.2}x \
         (sunk switch cost included, mean {:.2}x)\n",
        switched_cells as f64 / cells * 100.0,
        contested_cells as f64 / cells * 100.0,
        pw * 100.0,
        adapt_tally.point_worst,
        jw * 100.0,
        est_tally.robust_worst,
        rw * 100.0,
        robust_tally.robust_worst,
        aw * 100.0,
        worst_total,
        sum_total / cells,
    ));
    suite.check_named(
        "rho = 1 map: adaptive wrong-choice fraction <= the joint estimator's (no joint \
         statistics at run time)",
        adapt_tally.robust_wrong <= est_tally.robust_wrong,
        format!("{:.1}% vs {:.1}%", aw * 100.0, jw * 100.0),
    );
    suite.check_named(
        "rho = 1 map: adaptive wrong-choice fraction <= the independence point chooser's",
        adapt_tally.robust_wrong <= adapt_tally.point_wrong,
        format!("{:.1}% vs {:.1}%", aw * 100.0, pw * 100.0),
    );
    suite.check_named(
        "rho = 1 map: adaptive worst total regret (sunk cost included) <= the point chooser's \
         worst regret",
        worst_total <= adapt_tally.point_worst + 1e-9,
        format!("{:.2}x vs {:.2}x", worst_total, adapt_tally.point_worst),
    );
    suite.check_named(
        "rho = 1 map: unswitched cells bit-identical to the static map measurement",
        unswitched_identity,
        String::new(),
    );
    suite.check_named(
        "accounting: adaptive seconds never below the final plan's static seconds",
        accounting_ok,
        String::new(),
    );

    report.push_str("\nregression checks over the adaptive executor:\n");
    let checks = format!(
        "{}verdict: {}\n",
        suite.report(),
        if suite.passed() { "PASS" } else { "FAIL" }
    );
    report.push_str(&checks);

    let files = vec![
        h.write_artifact("ext_adaptive.csv", &csv),
        h.write_artifact("ext_adaptive_checks.txt", &checks),
        h.write_artifact(
            "ext_adaptive_point_regret.svg",
            &heatmap_svg(
                &point_regret,
                &m2.sel_a,
                &m2.sel_b,
                &relative_scale(),
                "Independence point chooser regret at rho = 1 (15 plans)",
            ),
        ),
        h.write_artifact(
            "ext_adaptive_regret.svg",
            &heatmap_svg(
                &adaptive_regret,
                &m2.sel_a,
                &m2.sel_b,
                &relative_scale(),
                "Adaptive executor total regret at rho = 1 (sunk switch cost included)",
            ),
        ),
    ];
    FigureOutput::new("ext_adaptive", report, files)
}

/// Buffer pool size as the swept run-time condition (a §3 "resource"
/// dimension), including the LRU vs Clock policy choice.
pub fn ext_buffer(h: &Harness) -> FigureOutput {
    let w = &h.w;
    let sel = 0.5f64.powi((h.config.grid_exp / 2) as i32);
    let t = w.cal_a.threshold(sel);
    let plan = PlanSpec::IndexFetch {
        scan: IndexRangeSpec { index: w.indexes.a, range: KeyRange::on_leading(i64::MIN, t, 1) },
        key_filter: Predicate::always_true(),
        fetch: FetchKind::Traditional,
        residual: Predicate::single(ColRange::at_most(COL_B, w.cal_b.threshold(1.0))),
        project: Projection::All,
    };
    let mut report = String::from(
        "Extension F: traditional fetch vs buffer pool size (pages), LRU and Clock\n",
    );
    report.push_str(&format!("{:>10} {:>12} {:>12}\n", "pool", "LRU (s)", "Clock (s)"));
    let mut csv = String::from("pool_pages,lru_seconds,clock_seconds\n");
    for exp in [0u32, 4, 6, 8, 10, 12, 14] {
        let pool = if exp == 0 { 0 } else { 1usize << exp };
        let mut secs = Vec::new();
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Clock] {
            let cfg = MeasureConfig { pool_pages: pool, policy, ..h.config.measure.clone() };
            secs.push(measure_plan(&w.db, &plan, &cfg).seconds);
        }
        report.push_str(&format!("{:>10} {:>12.4} {:>12.4}\n", pool, secs[0], secs[1]));
        csv.push_str(&format!("{pool},{:e},{:e}\n", secs[0], secs[1]));
    }
    report.push_str(
        "larger pools absorb re-fetches of hot pages; beyond the table's page count the fetch \
         becomes CPU-bound\n",
    );
    let files = vec![h.write_artifact("ext_buffer.csv", &csv)];
    FigureOutput::new("ext_buffer", report, files)
}

/// Concurrent serving: the multi-query axis none of the paper's maps
/// sweep.  Every figure so far measures one query against an idle system;
/// `core::serve_concurrent` lets us put *concurrency level* on an axis —
/// N queries interleaved deterministically over one shared buffer pool —
/// and map how each of the 15 catalog plans degrades (or benefits: a
/// convoy of identical queries shares pages) as the system fills up.
///
/// Panel A sweeps a diverse burst (the whole catalog, round-robin) across
/// concurrency 1..256 at `max_in_flight = N`, and maps per-plan slowdown
/// relative to the isolated measurement.  Panel B runs *convoys* — N
/// copies of one plan — where lockstep scheduling turns contention into
/// cross-query buffer sharing.  Panel C drives the admission controller's
/// memory budget into the sort-spill cliff: the same sort, spilled or not
/// purely by how crowded the server is.
///
/// The named checks pin the serving layer's contracts at figure scale:
/// concurrency 1 bit-identical to isolated measurement, total work
/// invariant to interleaving, deterministic replay, FIFO admission,
/// exact per-query attribution, and the contention-induced spill.
pub fn ext_concurrency(h: &Harness) -> FigureOutput {
    use robustmap_core::regression::RegressionSuite;
    use robustmap_core::{serve_concurrent, ServeConfig};
    use robustmap_systems::{two_predicate_plans, AdmissionConfig};
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    // Serving multiplies work by the burst size, so the concurrency maps
    // use a reduced table (2^16 rows at figure scale) and a pool scaled to
    // stay smaller than the table — contention must be able to hurt.
    let rows = h.config.rows.min(1 << 16);
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(rows));
    let pool_pages = ((rows / 512) as usize).max(32);
    let mcfg = MeasureConfig { pool_pages, ..h.config.measure.clone() };
    let base_serve = ServeConfig {
        pool_pages,
        policy: mcfg.policy,
        model: mcfg.model.clone(),
        ..ServeConfig::default()
    };
    let serve_at = |max_in_flight: usize| ServeConfig {
        admission: AdmissionConfig { max_in_flight, ..AdmissionConfig::default() },
        ..base_serve.clone()
    };

    let plans: Vec<robustmap_systems::TwoPredPlan> = SystemId::all()
        .into_iter()
        .flat_map(|s| two_predicate_plans(s, &w))
        .collect();
    let specs: Vec<PlanSpec> =
        plans.iter().map(|p| p.build(w.cal_a.threshold(0.15), w.cal_b.threshold(0.4))).collect();
    let isolated: Vec<_> = specs.iter().map(|s| measure_plan(&w.db, s, &mcfg)).collect();
    let work_sig = |io: &robustmap_storage::IoStats| {
        (io.page_requests(), io.page_writes, io.cpu_rows, io.cpu_compares, io.cpu_hashes)
    };

    let mut suite = RegressionSuite::new();
    let mut report = String::from(
        "Extension N: concurrent serving — 15-plan burst over one shared buffer pool\n",
    );
    report.push_str(&format!(
        "rows {rows}, pool {pool_pages} pages, quantum {} charges, per-plan slowdown vs isolated\n",
        base_serve.quantum
    ));

    // Panel A: the diverse burst at each concurrency level.
    let levels: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];
    report.push_str(&format!("{:>28}", "plan \\ concurrency"));
    for n in levels {
        report.push_str(&format!(" {n:>7}"));
    }
    report.push('\n');
    let mut sweep_csv = String::from("plan,concurrency,mean_seconds,isolated_seconds,slowdown\n");
    let mut slowdown = vec![0.0f64; plans.len() * levels.len()];
    let mut identity_at_one = true;
    let mut work_invariant = true;
    let mut fifo_ok = true;
    let mut level8 = None;
    for (li, &n) in levels.iter().enumerate() {
        let burst_len = specs.len() * n.div_ceil(specs.len());
        let burst: Vec<PlanSpec> =
            (0..burst_len).map(|j| specs[j % specs.len()].clone()).collect();
        let rep = serve_concurrent(&w.db, &burst, &serve_at(n));
        fifo_ok &= rep.admission_order == (0..burst_len).collect::<Vec<_>>()
            && rep.queries.len() == burst_len;
        let mut sums = vec![0.0f64; specs.len()];
        for (j, q) in rep.queries.iter().enumerate() {
            let p = j % specs.len();
            sums[p] += q.stats.seconds;
            work_invariant &= work_sig(&q.stats.io) == work_sig(&isolated[p].io)
                && q.stats.rows_out == isolated[p].rows;
            if n == 1 {
                identity_at_one &= q.stats.seconds.to_bits() == isolated[p].seconds.to_bits()
                    && q.stats.io == isolated[p].io;
            }
        }
        let per_plan = burst_len / specs.len();
        for (p, plan) in plans.iter().enumerate() {
            let mean = sums[p] / per_plan as f64;
            slowdown[p * levels.len() + li] = mean / isolated[p].seconds;
            sweep_csv.push_str(&format!(
                "{},{n},{:e},{:e},{:.4}\n",
                plan.name,
                mean,
                isolated[p].seconds,
                mean / isolated[p].seconds
            ));
        }
        if n == 8 {
            level8 = Some(rep);
        }
    }
    for (p, plan) in plans.iter().enumerate() {
        report.push_str(&format!("{:>28}", plan.name));
        for li in 0..levels.len() {
            report.push_str(&format!(" {:>6.2}x", slowdown[p * levels.len() + li]));
        }
        report.push('\n');
    }
    suite.check_named(
        "concurrency 1: all 15 plans bit-identical to their isolated measurements",
        identity_at_one,
        String::new(),
    );
    suite.check_named(
        "total work per query (requests, writes, cpu) invariant across concurrency 1..256",
        work_invariant,
        String::new(),
    );
    suite.check_named(
        "admission is FIFO and every query of every burst completes",
        fifo_ok,
        String::new(),
    );

    // Accounting and determinism at one mid-scale level.
    let level8 = level8.expect("levels include 8");
    let (hits, misses, _) = level8.pool_counters;
    let share_sum_ok = level8.queries.iter().map(|q| q.pool_hits).sum::<u64>() == hits
        && level8.queries.iter().map(|q| q.pool_misses).sum::<u64>() == misses
        && level8.idle_resets == 0;
    suite.check_named(
        "per-query pool shares partition the shared pool's counters exactly (level 8)",
        share_sum_ok,
        format!("{hits} hits + {misses} misses attributed"),
    );
    // Latency decomposition on the global virtual clock (arrival = burst
    // start): queue wait, first baton, turnaround.  Under interleaving a
    // query's turnaround exceeds its own charges by exactly the time the
    // other in-flight queries held the baton.
    report.push_str(&format!(
        "\nlevel-8 latency (global virtual seconds):\n{:>28} {:>12} {:>12} {:>12} {:>12}\n",
        "plan", "charged s", "queue wait", "first baton", "turnaround"
    ));
    for (j, q) in level8.queries.iter().enumerate().take(8) {
        report.push_str(&format!(
            "{:>28} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
            plans[j % plans.len()].name,
            q.stats.seconds,
            q.queue_wait,
            q.first_baton,
            q.turnaround,
        ));
    }
    let burst8: Vec<PlanSpec> = (0..specs.len()).map(|j| specs[j].clone()).collect();
    let rep_a = serve_concurrent(&w.db, &burst8, &serve_at(8));
    let rep_b = serve_concurrent(&w.db, &burst8, &serve_at(8));
    let deterministic = rep_a.completion_order == rep_b.completion_order
        && rep_a.pool_counters == rep_b.pool_counters
        && rep_a
            .queries
            .iter()
            .zip(&rep_b.queries)
            .all(|(x, y)| x.stats.seconds.to_bits() == y.stats.seconds.to_bits()
                && x.stats.io == y.stats.io);
    suite.check_named(
        "serving is deterministic: replaying a level-8 burst reproduces every bit",
        deterministic,
        String::new(),
    );

    // Panel B: convoys — N copies of one plan in lockstep share the pool.
    report.push_str("\nconvoys: N identical queries, mean per-query seconds (vs isolated)\n");
    let mut csv = String::from("plan,selectivity,concurrency,mean_seconds,isolated_seconds,hit_share\n");
    let convoy_levels = [1usize, 8, 64];
    let mut convoy_fetch_speedup = f64::INFINITY;
    for sel in [1.0 / 64.0, 1.0 / 16.0, 0.25, 1.0] {
        let t = w.cal_a.threshold(sel);
        let scan = PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_A, t)),
            project: Projection::All,
        };
        let fetch = PlanSpec::IndexFetch {
            scan: IndexRangeSpec {
                index: w.indexes.a,
                range: KeyRange::on_leading(i64::MIN, t, 1),
            },
            key_filter: Predicate::always_true(),
            fetch: FetchKind::Traditional,
            residual: Predicate::single(ColRange::at_most(COL_B, w.cal_b.threshold(1.0))),
            project: Projection::All,
        };
        for (name, plan) in [("table scan", &scan), ("traditional fetch", &fetch)] {
            let iso = measure_plan(&w.db, plan, &mcfg).seconds;
            report.push_str(&format!("{name:>20} @ {sel:>8.4}:"));
            for &n in &convoy_levels {
                let burst: Vec<PlanSpec> = (0..n).map(|_| plan.clone()).collect();
                let rep = serve_concurrent(&w.db, &burst, &serve_at(n));
                let mean =
                    rep.queries.iter().map(|q| q.stats.seconds).sum::<f64>() / n as f64;
                let (requests, hits) = rep.queries.iter().fold((0u64, 0u64), |(r, hh), q| {
                    (r + q.pool_hits + q.pool_misses, hh + q.pool_hits)
                });
                let hit_share = if requests == 0 { 0.0 } else { hits as f64 / requests as f64 };
                report.push_str(&format!(" {:>9.4}s ({:.2}x)", mean, mean / iso));
                csv.push_str(&format!(
                    "{name},{sel:e},{n},{mean:e},{iso:e},{hit_share:.4}\n"
                ));
                if name == "traditional fetch" && sel == 0.25 && n == 64 {
                    convoy_fetch_speedup = mean / iso;
                }
            }
            report.push('\n');
        }
    }
    suite.check_named(
        "convoy sharing: 64 lockstep fetches run no slower per query than one alone",
        convoy_fetch_speedup <= 1.0 + 1e-9,
        format!("{convoy_fetch_speedup:.3}x isolated"),
    );
    // Interference: the catalog mix overlaps on the same pages, so
    // sharing dominates above.  Contention *hurts* when working sets are
    // disjoint.  The victim is a traditional fetch (unsorted rids, so it
    // re-reads each heap page many times over long temporal distances)
    // under a pool that just fits the heap: alone, everything after the
    // first touch is a hit.  The flood is a covering-index-b scan — not
    // one shared page with the victim — streaming enough disjoint pages
    // through LRU to evict the victim's heap between its re-reads.
    // Slack of 8 pages and a long quantum: each scheduling round the 8
    // floods stream ~70 disjoint pages through the pool — far past the
    // slack — so LRU must give up victim pages between the victim's
    // slices.
    let heap_pages = w.db.table(w.table).heap.page_count() as usize;
    let ipool = heap_pages + 8;
    let icfg = MeasureConfig { pool_pages: ipool, ..mcfg.clone() };
    let iserve = ServeConfig { pool_pages: ipool, quantum: 4096, ..base_serve.clone() };
    let victim = PlanSpec::IndexFetch {
        scan: IndexRangeSpec {
            index: w.indexes.a,
            range: KeyRange::on_leading(i64::MIN, w.cal_a.threshold(0.25), 1),
        },
        key_filter: Predicate::always_true(),
        fetch: FetchKind::Traditional,
        residual: Predicate::single(ColRange::at_most(COL_B, w.cal_b.threshold(1.0))),
        project: Projection::All,
    };
    let flood = plans
        .iter()
        .find(|p| p.name.contains("covering(b,a)"))
        .expect("catalog has the C4 covering scan")
        .build(w.cal_a.threshold(1.0), w.cal_b.threshold(1.0));
    let victim_alone = measure_plan(&w.db, &victim, &icfg);
    let mut burst = vec![victim];
    burst.extend((0..8).map(|_| flood.clone()));
    let flooded = &serve_concurrent(&w.db, &burst, &iserve).queries[0];
    report.push_str(&format!(
        "\ninterference: traditional fetch vs 8 covering(b,a) floods (disjoint pages, pool \
         {ipool}): {:.4}s alone -> {:.4}s flooded, hits {} -> {}\n",
        victim_alone.seconds, flooded.stats.seconds, victim_alone.io.buffer_hits,
        flooded.stats.io.buffer_hits,
    ));
    suite.check_named(
        "interference churn: a disjoint covering-index flood slows the heap fetch",
        flooded.stats.seconds > victim_alone.seconds
            && flooded.stats.io.buffer_hits < victim_alone.io.buffer_hits,
        format!(
            "{:.2}x isolated, hits {} -> {}",
            flooded.stats.seconds / victim_alone.seconds,
            victim_alone.io.buffer_hits,
            flooded.stats.io.buffer_hits
        ),
    );

    // Panel C: the contention-induced spill cliff.
    let full_sort = PlanSpec::Sort {
        input: Box::new(PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_A, w.cal_a.threshold(1.0))),
            project: Projection::All,
        }),
        key_cols: vec![1],
        mode: SpillMode::Abrupt,
        memory_bytes: 8 << 20,
    };
    let cliff_cfg = ServeConfig {
        admission: AdmissionConfig {
            memory_budget: (8 << 20) + (64 << 10),
            ..AdmissionConfig::default()
        },
        ..base_serve.clone()
    };
    let cliff = serve_concurrent(
        &w.db,
        &[full_sort.clone(), full_sort.clone(), full_sort],
        &cliff_cfg,
    );
    let spills: Vec<bool> = cliff.queries.iter().map(|q| q.stats.spilled).collect();
    let grants: Vec<usize> = cliff.queries.iter().map(|q| q.grant).collect();
    report.push_str(&format!(
        "\nadmission cliff: three identical sorts, budget 8 MiB + 64 KiB -> grants {:?}, spilled {:?}\n",
        grants.iter().map(|g| g >> 10).collect::<Vec<_>>(),
        spills
    ));
    suite.check_named(
        "contention spill cliff: the shrunk-grant sort spills while its full-grant twins do not",
        grants == vec![8 << 20, 64 << 10, 8 << 20] && spills == vec![false, true, false],
        format!("grants(KiB) {:?}", grants.iter().map(|g| g >> 10).collect::<Vec<_>>()),
    );

    report.push_str("\nregression checks over the serving layer:\n");
    let checks = format!(
        "{}verdict: {}\n",
        suite.report(),
        if suite.passed() { "PASS" } else { "FAIL" }
    );
    report.push_str(&checks);

    let level_axis: Vec<f64> = levels.iter().map(|&n| n as f64).collect();
    let plan_axis: Vec<f64> = (1..=plans.len()).map(|p| p as f64).collect();
    let files = vec![
        h.write_artifact("ext_concurrency.csv", &csv),
        h.write_artifact("ext_concurrency_sweep.csv", &sweep_csv),
        h.write_artifact("ext_concurrency_checks.txt", &checks),
        h.write_artifact(
            "ext_concurrency.svg",
            &heatmap_svg(
                &slowdown,
                &plan_axis,
                &level_axis,
                &relative_scale(),
                "Per-plan slowdown under concurrency (x: plan index, y: concurrency level)",
            ),
        ),
    ];
    FigureOutput::new("ext_concurrency", report, files)
}

/// Charge-free execution tracing: a traced concurrency-8 burst rendered
/// as a baton timeline, and a traced adaptive bail rendered as operator
/// spans — with the reconciliation checks that make the trace *evidence*
/// rather than decoration.  The trace records on two clocks (simulated
/// seconds and real nanoseconds) and must never change a charge: the
/// bit-identity check below re-runs the forced bail untraced and compares
/// every bit.
pub fn ext_trace(h: &Harness) -> FigureOutput {
    use std::sync::Arc;

    use robustmap_core::regression::RegressionSuite;
    use robustmap_core::render::{timeline_svg, TimelineMark, TimelineSpan};
    use robustmap_core::{serve_concurrent, ServeConfig};
    use robustmap_executor::{
        execute_adaptive_count_batched, CheckpointKind, ExecConfig, ExecCtx, Observation,
        SwitchController, SwitchDirective,
    };
    use robustmap_obs::chrome::{parse_chrome_trace, parse_json, to_chrome_json};
    use robustmap_obs::trace::{
        op_profile_csv, slice_totals, validate_trace, TraceDetail, TraceEventKind, TraceSink,
    };
    use robustmap_storage::{BufferPool, Session};
    use robustmap_systems::{two_predicate_plans, AdmissionConfig};
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    let rows = h.config.rows.min(1 << 14);
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(rows));
    let pool_pages = ((rows / 512) as usize).max(32);
    let mcfg = MeasureConfig { pool_pages, ..h.config.measure.clone() };
    let plans: Vec<robustmap_systems::TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    let specs: Vec<PlanSpec> = (0..8)
        .map(|j| plans[(j * 2) % plans.len()].build(w.cal_a.threshold(0.15), w.cal_b.threshold(0.4)))
        .collect();
    let rel_eq = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-300);

    let mut suite = RegressionSuite::new();
    let mut report = String::from(
        "Extension N: charge-free execution tracing — baton timelines, operator spans, \
         metrics\n",
    );
    report.push_str(&format!(
        "{rows} rows, pool {pool_pages} pages, quantum 256 charges; trace events carry both \
         clocks (simulated seconds + real nanoseconds since sink epoch)\n",
    ));

    // --- Panel A: a traced 8-query burst at 8 in-flight slots.  The
    // scheduler records queueing, admission, every baton slice and each
    // completion on the global virtual clock.
    let sink = Arc::new(TraceSink::memory(TraceDetail::Spans));
    let cfg8 = ServeConfig {
        pool_pages,
        policy: mcfg.policy,
        model: mcfg.model.clone(),
        quantum: 256,
        trace: Some(Arc::clone(&sink)),
        ..ServeConfig::default()
    };
    let rep = serve_concurrent(&w.db, &specs, &cfg8);
    let events = sink.events();
    let labels = sink.track_labels();
    report.push_str(&format!(
        "\nburst of 8 at 8 slots: {} trace events on {} tracks, completion order {:?}\n",
        events.len(),
        labels.len(),
        rep.completion_order,
    ));
    report.push_str(&format!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>7}\n",
        "query", "charged s", "queue wait", "first baton", "turnaround", "slices"
    ));
    let totals = slice_totals(&events);
    let mut slices_of = vec![0usize; specs.len()];
    for e in &events {
        if matches!(e.kind, TraceEventKind::SliceBegin) && (e.track as usize) < specs.len() {
            slices_of[e.track as usize] += 1;
        }
    }
    for (i, q) in rep.queries.iter().enumerate() {
        report.push_str(&format!(
            "{i:>5} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>7}\n",
            q.stats.seconds, q.queue_wait, q.first_baton, q.turnaround, slices_of[i],
        ));
    }
    suite.check_named(
        "traced burst: trace is well-formed (spans nest, slices alternate, clocks monotone)",
        validate_trace(&events).is_ok(),
        validate_trace(&events).err().unwrap_or_default(),
    );
    let reconciled = rep.queries.iter().enumerate().all(|(i, q)| {
        rel_eq(totals.get(&(i as u32)).copied().unwrap_or(0.0), q.stats.seconds)
    });
    suite.check_named(
        "per-query slice totals reconcile with the served queries' charged seconds",
        reconciled,
        format!("{} queries, {} slice tracks", rep.queries.len(), totals.len()),
    );
    let makespan = rep.queries.iter().map(|q| q.turnaround).fold(0.0f64, f64::max);
    let charges: f64 = rep.queries.iter().map(|q| q.stats.seconds).sum();
    suite.check_named(
        "makespan conservation: last turnaround equals the sum of every query's charges",
        rel_eq(makespan, charges),
        format!("{makespan:.6}s vs {charges:.6}s"),
    );

    // Chrome export: the artifact browsers load must parse back, with
    // every span's B matched by an E.
    let json = to_chrome_json(&events, &labels);
    let chrome_ok = parse_json(&json).is_ok()
        && parse_chrome_trace(&json).is_ok_and(|evs| {
            let b = evs.iter().filter(|e| e.ph == "B").count();
            let e = evs.iter().filter(|e| e.ph == "E").count();
            let pids: std::collections::BTreeSet<u64> =
                evs.iter().map(|ev| ev.pid).collect();
            b == e && b > 0 && pids.len() == 2
        });
    suite.check_named(
        "Chrome export round-trips: JSON parses, B/E spans balance, two clock domains",
        chrome_ok,
        format!("{} bytes", json.len()),
    );

    // Queue wait becomes visible when admission is the bottleneck.
    let cfg2 = ServeConfig {
        admission: AdmissionConfig { max_in_flight: 2, ..AdmissionConfig::default() },
        trace: None,
        ..cfg8.clone()
    };
    let rep2 = serve_concurrent(&w.db, &specs, &cfg2);
    let waits: Vec<f64> = rep2.queries.iter().map(|q| q.queue_wait).collect();
    suite.check_named(
        "two admission slots make queue wait visible in global virtual time",
        waits[0] == 0.0
            && waits[1] == 0.0
            && waits[2..].iter().all(|&qw| qw > 0.0)
            && rep2.queries.iter().all(|q| q.turnaround >= q.first_baton
                && q.first_baton >= q.queue_wait),
        format!("waits {:?}", waits.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>()),
    );
    report.push_str(&format!(
        "at 2 slots the queue becomes visible: waits {:?}\n",
        waits.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>(),
    ));

    // The baton timeline: one lane per query (plus the scheduler), slices
    // as bars on the global virtual clock, admissions and completions as
    // diamonds.
    let mut spans = Vec::new();
    let mut marks = Vec::new();
    let mut open = vec![f64::NAN; labels.len()];
    let mut slice_no = vec![0usize; labels.len()];
    for e in &events {
        let t = e.track as usize;
        match &e.kind {
            TraceEventKind::SliceBegin => open[t] = e.sim,
            TraceEventKind::SliceEnd => {
                slice_no[t] += 1;
                spans.push(TimelineSpan {
                    track: t,
                    start: open[t],
                    end: e.sim,
                    color: t,
                    label: format!("slice {}: {:.5}s", slice_no[t], e.sim - open[t]),
                });
            }
            TraceEventKind::Admit { grant } => marks.push(TimelineMark {
                track: t,
                at: e.sim,
                label: format!("admitted, grant {grant}"),
            }),
            TraceEventKind::QueryDone { rows } => marks.push(TimelineMark {
                track: t,
                at: e.sim,
                label: format!("done, {rows} rows"),
            }),
            _ => {}
        }
    }
    let timeline = timeline_svg(
        &labels,
        &spans,
        &marks,
        "Baton timeline: 8 queries, 8 slots, quantum 256 charges",
        "global virtual seconds",
    );

    // --- Panel B: a traced adaptive bail.  The controller is forced: it
    // bails at the first rid-feed checkpoint to a full table scan, so the
    // trace must show the checkpoint cascade, exactly one switch event,
    // and the abandoned operator's span closing on the error path.
    struct BailAtRidFeed {
        alt: PlanSpec,
    }
    impl SwitchController for BailAtRidFeed {
        fn decide(&self, obs: &Observation) -> SwitchDirective {
            if matches!(obs.kind, CheckpointKind::RidFeed) {
                SwitchDirective::Bail(self.alt.clone())
            } else {
                SwitchDirective::Continue
            }
        }
    }
    let victim = PlanSpec::IndexFetch {
        scan: IndexRangeSpec {
            index: w.indexes.a,
            range: KeyRange::on_leading(i64::MIN, w.cal_a.threshold(0.25), 1),
        },
        key_filter: Predicate::always_true(),
        fetch: FetchKind::Traditional,
        residual: Predicate::single(ColRange::at_most(COL_B, w.cal_b.threshold(1.0))),
        project: Projection::All,
    };
    let ctrl = BailAtRidFeed {
        alt: PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_B, w.cal_b.threshold(1.0))),
            project: Projection::All,
        },
    };
    let ec = ExecConfig::from_env();
    let run_bail = |sink: Option<&Arc<TraceSink>>| {
        let s = Session::new(mcfg.model.clone(), BufferPool::new(pool_pages, mcfg.policy));
        if let Some(sk) = sink {
            s.attach_tracer(Arc::clone(sk), "q0: forced bail");
        }
        let ctx = ExecCtx::new(&w.db, &s, mcfg.memory_bytes);
        execute_adaptive_count_batched(&victim, &ctx, &ec, &ctrl).expect("well-formed plan")
    };
    let plain = run_bail(None);
    let bail_sink = Arc::new(TraceSink::memory(TraceDetail::Spans));
    let traced = run_bail(Some(&bail_sink));
    let bail_events = bail_sink.events();
    let bail_labels = bail_sink.track_labels();
    report.push_str(&format!(
        "\nforced bail: {} -> {:?} in {:.6}s, {} trace events\n",
        victim.synopsis(),
        traced.switches.iter().map(|s| s.action.as_str()).collect::<Vec<_>>(),
        traced.exec.seconds,
        bail_events.len(),
    ));
    suite.check_named(
        "tracing is charge-free: the traced forced bail is bit-identical to the untraced run",
        plain.exec.seconds.to_bits() == traced.exec.seconds.to_bits()
            && plain.exec.io == traced.exec.io
            && plain.switches == traced.switches,
        format!("{:.6}s both ways", plain.exec.seconds),
    );
    let checkpoints =
        bail_events.iter().filter(|e| matches!(e.kind, TraceEventKind::Checkpoint { .. })).count();
    let switches =
        bail_events.iter().filter(|e| matches!(e.kind, TraceEventKind::Switch { .. })).count();
    suite.check_named(
        "the bail trace shows the checkpoint cascade, exactly one switch, and balanced spans",
        checkpoints >= 1 && switches == 1 && validate_trace(&bail_events).is_ok(),
        format!("{checkpoints} checkpoints, {switches} switches"),
    );

    // Operator spans of the bail, one lane per operator instance in
    // encounter order, checkpoint/switch marks on a final lane.
    let mut op_lanes: Vec<String> = Vec::new();
    let mut op_spans = Vec::new();
    let mut op_open: Vec<Vec<(usize, f64)>> = vec![Vec::new(); bail_labels.len()];
    let mut op_marks = Vec::new();
    for e in &bail_events {
        match &e.kind {
            TraceEventKind::OpBegin { name, depth } => {
                let lane = op_lanes.len();
                op_lanes.push(format!("d{depth} {name}"));
                op_open[e.track as usize].push((lane, e.sim));
            }
            TraceEventKind::OpEnd { rows, depth, .. } => {
                let (lane, start) = op_open[e.track as usize].pop().expect("balanced spans");
                op_spans.push(TimelineSpan {
                    track: lane,
                    start,
                    end: e.sim,
                    color: *depth as usize,
                    label: format!("{}: {rows} rows, {:.5}s", op_lanes[lane], e.sim - start),
                });
            }
            TraceEventKind::Checkpoint { kind, rows } => op_marks.push((e.sim, format!(
                "checkpoint {kind}: {rows} rows"
            ))),
            TraceEventKind::Switch { at, observed, action } => op_marks.push((e.sim, format!(
                "{at}: observed {observed} -> {action}"
            ))),
            _ => {}
        }
    }
    let mark_lane = op_lanes.len();
    op_lanes.push("checkpoints".to_string());
    let op_marks: Vec<TimelineMark> = op_marks
        .into_iter()
        .map(|(at, label)| TimelineMark { track: mark_lane, at, label })
        .collect();
    let adaptive_svg = timeline_svg(
        &op_lanes,
        &op_spans,
        &op_marks,
        "Operator spans of a forced adaptive bail (rid feed -> table scan)",
        "simulated seconds",
    );

    report.push_str("\nregression checks over the tracing layer:\n");
    let checks = format!(
        "{}verdict: {}\n",
        suite.report(),
        if suite.passed() { "PASS" } else { "FAIL" }
    );
    report.push_str(&checks);

    let mut metrics = sink.metrics();
    metrics.merge(&bail_sink.metrics());
    let files = vec![
        h.write_artifact("ext_trace.json", &json),
        h.write_artifact("ext_trace_timeline.svg", &timeline),
        h.write_artifact("ext_trace_adaptive.svg", &adaptive_svg),
        h.write_artifact("ext_trace_ops.csv", &op_profile_csv(&bail_events, &bail_labels)),
        h.write_artifact("ext_trace_metrics.txt", &metrics.dump()),
        h.write_artifact("ext_trace_checks.txt", &checks),
    ];
    FigureOutput::new("ext_trace", report, files)
}

/// Data churn + incremental statistics maintenance — the robustness map
/// over a *mutating* database.  Every figure above measures a frozen
/// table; the paper's thesis (run-time conditions diverge from
/// compile-time assumptions, §1) bites hardest when the data itself
/// drifts out from under the optimizer's statistics.  A deterministic
/// [`robustmap_workload::ChurnDriver`] applies update-heavy batches with
/// distribution drift through the *charged* session path (heap
/// append/tombstone plus all five index maintenances land on the
/// simulated clock), and three Point-policy choosers meet on the same
/// measured cells at each churn level:
///
/// * **frozen** — the epoch-0 joint statistics, never refreshed: its
///   wrong-choice region grows with the modified fraction;
/// * **maintained** — [`robustmap_workload::MaintainedJoint`] folding
///   per-bucket delta counters in after every batch: it tracks the
///   churned table at bookkeeping cost, no heap scan;
/// * **fresh** — a full rebuild from the mutated heap at every level,
///   the exact-but-expensive upper baseline.
///
/// The named checks gate the subsystem: a zero-churn sweep through the
/// churn engine is bit-identical to the static executor, mutation cost
/// is charged, the staleness meter tracks applied work, the frozen
/// chooser degrades while the maintained one holds within one grid step
/// of the fresh rebuild, the staleness-aware estimator widens its
/// credible region, and the mutation epoch re-keys the stats cache.
pub fn ext_churn(h: &Harness) -> FigureOutput {
    use robustmap_core::{Measurement, RegressionSuite};
    use robustmap_storage::Session;
    use robustmap_systems::choice::{Joint, Maintained, Stale};
    use robustmap_systems::{CatalogStats, ChoicePolicy, Chooser};
    use robustmap_workload::cache::config_hash;
    use robustmap_workload::stats::stats_cache_path;
    use robustmap_workload::{
        ChurnConfig, ChurnDriver, JointHistogram, JointHistogramConfig, MaintainedJoint,
        RebuildPolicy, TableBuilder, Workload, WorkloadConfig,
    };

    // Pinned scale: the experiment separates choosers by *statistics*
    // error across the hash/scan crossover, which only works where the
    // cost model's own boundary is calibrated against measurement.  At
    // 2^14 rows the level-0 map has zero wrong cells for every chooser;
    // at 2^16 the heap outgrows the pool and a ~1-cell model bias appears
    // that a stale underestimate happens to cancel — scale would then
    // measure model error, not staleness.
    let rows = h.w.rows().min(1 << 14);
    let seed = h.w.config.seed;
    let cfg = WorkloadConfig { rows, seed, mutation_epoch: 0, ..Default::default() };
    let jcfg = JointHistogramConfig::default();
    let model = &h.config.measure.model;
    let mut suite = RegressionSuite::new();

    // Half-power-of-two selectivity steps down to 2^-12: a churn-induced
    // estimate error of ~1.5x moves the hash/scan crossover (near 2^-5
    // on this table) by about one cell at this resolution, where the
    // paper's factor-of-two grid would straddle it.
    let half_steps = 2 * h.config.grid_exp.clamp(12, 14);
    let sels: Vec<f64> =
        (0..=half_steps).rev().map(|k| 2f64.powf(-0.5 * k as f64)).collect();
    let ns = sels.len();
    let fractions: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let nl = fractions.len();
    let drift = 85; // inserts draw column a from the lower 15% of the domain

    let mut report = String::from(
        "Extension P: data churn + incremental statistics maintenance — the robustness map \
         over a mutating database\n",
    );
    report.push_str(&format!(
        "{rows} rows; update-heavy churn (20% insert / 20% delete / 60% update) with \
         downward drift {drift} (inserts draw a from the lower {}% of the domain, so the \
         frozen statistics under-estimate small selectivities); selectivity diagonal \
         sel_a = sel_b = s in half-power-of-two steps; all three choosers are Point-policy \
         over the same four-plan catalog, differing only in their statistics: frozen \
         (epoch 0), maintained (per-bucket deltas), fresh (rebuilt from the mutated heap)\n",
        100 - drift,
    ));

    // Two builds of the same config: the static baseline never sees the
    // churn engine; the churn copy gets a driver attached before its
    // zero-churn sweep, so the bit-identity check covers "engaging the
    // subsystem at zero churn changes nothing".
    let w_static = TableBuilder::build_cached(cfg.clone());
    let mut w_churn = TableBuilder::build_cached(cfg.clone());
    let thr: Vec<(i64, i64)> =
        sels.iter().map(|&s| (w_churn.cal_a.threshold(s), w_churn.cal_b.threshold(s))).collect();
    // The contested pair: table scan vs hash intersect.  The intersect's
    // cost is per-index-entry CPU and key-ordered leaf scans, so churn
    // cannot skew it physically — B+-tree entries interleave in key
    // order wherever the heap put the rows — and the selectivity error
    // is the *only* thing separating the choosers at its scan crossover.
    // The INL fetch and covering MDAM are deliberately excluded: MDAM
    // dominates every diagonal cell outright, and the fetch's measured
    // cost depends on where the churned rows physically landed (appends
    // cluster in the heap tail), a locality effect the cost model
    // deliberately does not track — with it in the catalog the map would
    // measure model error, not statistics staleness.
    let catalog = |w: &Workload| -> Vec<robustmap_systems::TwoPredPlan> {
        let mut plans = correlated_plan_set(w);
        plans.swap_remove(3); // drop mdam
        plans.swap_remove(1); // drop the inl fetch
        plans
    };
    let sweep = |w: &Workload| -> Vec<Measurement> {
        let plans = catalog(w);
        let specs: Vec<PlanSpec> =
            plans.iter().flat_map(|p| thr.iter().map(|&(ta, tb)| p.build(ta, tb))).collect();
        measure_batch(&w.db, &specs, &h.config.measure)
    };

    let base_joint = JointHistogram::build_cached(&w_churn, &jcfg);
    let mut maint = MaintainedJoint::new(base_joint.clone());
    let churn_cfg = ChurnConfig::for_workload(&w_churn).with_drift_down(drift);
    let mut driver = ChurnDriver::new(&w_churn, churn_cfg);
    let churn_session = Session::with_pool_pages(64);

    let static_sweep = sweep(&w_static);
    let churn0_sweep = sweep(&w_churn);
    let bit_identical = static_sweep.len() == churn0_sweep.len()
        && static_sweep.iter().zip(&churn0_sweep).all(|(a, b)| {
            a.seconds.to_bits() == b.seconds.to_bits() && a.io == b.io && a.rows == b.rows
        });
    suite.check_named(
        "zero churn: the sweep through the churn-engine workload is bit-identical \
         (seconds.to_bits + IoStats) to the static executor's",
        bit_identical,
        format!("{} specs compared", static_sweep.len()),
    );

    let plans = catalog(&w_churn);
    let plan_short = ["scan", "hash"];
    let mut csv = String::from(
        "fraction,sel,table_scan,hash_intersect,frozen_choice,\
         maint_choice,fresh_choice,oracle_choice,frozen_regret,maint_regret,fresh_regret,\
         fraction_modified,drift\n",
    );
    let mut frozen_regret = vec![1.0f64; nl * ns];
    let mut maint_regret = vec![1.0f64; nl * ns];
    let mut wrong = [[0usize; 3]; 6]; // per level: frozen, maintained, fresh
    let mut worst = [[1.0f64; 3]; 6];
    let mut churn_seconds = 0.0f64;
    let mut churn_writes = 0u64;
    report.push_str(&format!(
        "\n{:>9} {:>9} {:>13} {:>13} {:>13} {:>7}\n",
        "fraction", "drift", "frozen wrong", "maint wrong", "fresh wrong", "live"
    ));
    for (li, &frac) in fractions.iter().enumerate() {
        if frac > 0.0 {
            for b in driver.apply_until_fraction(&mut w_churn, &churn_session, frac) {
                churn_seconds += b.seconds;
                churn_writes += b.io.page_writes;
                maint.apply(&b);
            }
        }
        let results = if li == 0 { churn0_sweep.clone() } else { sweep(&w_churn) };
        let stats = CatalogStats::of(&w_churn);
        let fresh_joint = JointHistogram::from_workload(&w_churn, &jcfg);
        let frozen_est = Joint::new(&base_joint);
        let maint_est = Maintained::new(&maint);
        let fresh_est = Joint::new(&fresh_joint);
        let chooser = Chooser { plans: &plans, stats: &stats, model, policy: ChoicePolicy::Point };
        let meter = maint.staleness();
        for (si, &s) in sels.iter().enumerate() {
            let (ta, tb) = thr[si];
            let secs: Vec<f64> =
                (0..plans.len()).map(|pi| results[pi * ns + si].seconds).collect();
            let best = secs.iter().copied().fold(f64::INFINITY, f64::min).max(1e-12);
            let picks = [
                chooser.choose(&frozen_est, ta, tb).plan,
                chooser.choose(&maint_est, ta, tb).plan,
                chooser.choose(&fresh_est, ta, tb).plan,
            ];
            let mut regrets = [1.0f64; 3];
            for (ci, &p) in picks.iter().enumerate() {
                let q = secs[p] / best;
                regrets[ci] = q;
                if q > 1.001 {
                    wrong[li][ci] += 1;
                }
                worst[li][ci] = worst[li][ci].max(q);
            }
            frozen_regret[li * ns + si] = regrets[0];
            maint_regret[li * ns + si] = regrets[1];
            csv.push_str(&format!(
                "{frac},{s:e},{:e},{:e},{},{},{},{},{:e},{:e},{:e},{:.6},{:.6}\n",
                secs[0],
                secs[1],
                plan_short[picks[0]],
                plan_short[picks[1]],
                plan_short[picks[2]],
                plan_short[oracle_of(&secs)],
                regrets[0],
                regrets[1],
                regrets[2],
                meter.fraction_modified,
                meter.drift,
            ));
        }
        report.push_str(&format!(
            "{:>9.2} {:>9.3} {:>10}/{ns} {:>10}/{ns} {:>10}/{ns} {:>7}\n",
            meter.fraction_modified,
            meter.drift,
            wrong[li][0],
            wrong[li][1],
            wrong[li][2],
            driver.live_rows(),
        ));
    }

    suite.check_named(
        "churn cost is charged: mutation batches advance the simulated clock and write pages",
        churn_seconds > 0.0 && churn_writes > 0,
        format!("{churn_seconds:.3} s, {churn_writes} page writes"),
    );
    let meter = maint.staleness();
    suite.check_named(
        "staleness meter tracks applied work: fraction matches the driver, drifted inserts \
         register as drift, and the default policy calls for a rebuild",
        (meter.fraction_modified - driver.fraction_touched()).abs() < 1e-12
            && meter.fraction_modified >= 0.5
            && meter.drift > 0.2
            && RebuildPolicy::default().should_rebuild(&meter),
        format!("fraction {:.3}, drift {:.3}", meter.fraction_modified, meter.drift),
    );
    let (w0, w5) = (wrong[0][0], wrong[nl - 1][0]);
    suite.check_named(
        "frozen statistics: the wrong-choice region grows from zero churn to 50% modified",
        w5 > w0,
        format!("{w0}/{ns} cells at 0% -> {w5}/{ns} cells at 50%"),
    );
    suite.check_named(
        "50% modified: the frozen chooser is strictly worse than the maintained one",
        wrong[nl - 1][0] > wrong[nl - 1][1],
        format!("{}/{ns} vs {}/{ns} wrong cells", wrong[nl - 1][0], wrong[nl - 1][1]),
    );
    suite.check_named(
        "50% modified: maintained statistics hold within one grid step of the fresh rebuild",
        wrong[nl - 1][1] <= wrong[nl - 1][2] + 1,
        format!("{}/{ns} vs {}/{ns} wrong cells", wrong[nl - 1][1], wrong[nl - 1][2]),
    );
    let (ta_mid, tb_mid) = thr[ns / 2];
    let stale_est = Stale::new(&base_joint, meter);
    let (ra_stale, rb_stale) = stale_est.radii(ta_mid, tb_mid);
    let (ra_base, rb_base) = Joint::new(&base_joint).radii(ta_mid, tb_mid);
    suite.check_named(
        "staleness widens the robust chooser's credible region on both axes",
        ra_stale > ra_base && rb_stale > rb_base,
        format!("a: {ra_stale:.4} > {ra_base:.4}; b: {rb_stale:.4} > {rb_base:.4}"),
    );
    let epoch_rekeys = config_hash(&cfg) != config_hash(&w_churn.config)
        && w_churn.config.mutation_epoch > 0
        && match (stats_cache_path(&cfg, &jcfg), stats_cache_path(&w_churn.config, &jcfg)) {
            (Some(a), Some(b)) => a != b,
            (None, None) => true, // caching disabled in this environment
            _ => false,
        };
    suite.check_named(
        "mutation epoch re-keys the content-addressed statistics cache (a stale wl-jstats-* \
         entry can never be served for mutated data)",
        epoch_rekeys,
        format!("epoch {}", w_churn.config.mutation_epoch),
    );
    report.push_str(&format!(
        "\nchurn cost charged: {churn_seconds:.3} simulated seconds, {churn_writes} page \
         writes across {} batches; staleness at the end: fraction {:.3}, drift {:.3}\n",
        driver.steps_applied(),
        meter.fraction_modified,
        meter.drift,
    ));

    report.push_str("\nregression checks over the churn subsystem:\n");
    let checks = format!(
        "{}verdict: {}\n",
        suite.report(),
        if suite.passed() { "PASS" } else { "FAIL" }
    );
    report.push_str(&checks);

    let files = vec![
        h.write_artifact("ext_churn.csv", &csv),
        h.write_artifact("ext_churn_checks.txt", &checks),
        h.write_artifact(
            "ext_churn_frozen_regret.svg",
            &heatmap_svg(
                &frozen_regret,
                &fractions,
                &sels,
                &relative_scale(),
                "Frozen-statistics chooser regret over fraction modified (x) and selectivity (y)",
            ),
        ),
        h.write_artifact(
            "ext_churn_maint_regret.svg",
            &heatmap_svg(
                &maint_regret,
                &fractions,
                &sels,
                &relative_scale(),
                "Maintained-statistics chooser regret over fraction modified (x) and selectivity (y)",
            ),
        ),
    ];
    FigureOutput::new("ext_churn", report, files)
}
