//! Regeneration of the paper's figures (1-10).
//!
//! Every function measures the same plans over the same parameter space as
//! its figure, prints the series / statistics the figure conveys, and
//! writes CSV + SVG artifacts.  Paper-vs-measured landmark comparisons are
//! recorded in `EXPERIMENTS.md`.

use robustmap_core::analysis::symmetry::symmetry_of;
use robustmap_core::render::{
    absolute_scale, heatmap_svg, line_plot_svg, map1d_to_csv, map2d_to_csv, quotients_to_csv,
    relative_scale, render_map1d_table, render_map2d_ansi, AsciiOptions,
};
use robustmap_core::report::{landmark_report, multi_optimal_report, relative_report};
use robustmap_core::{build_map1d, Grid1D, Map1D, OptimalityTolerance, RelativeMap2D};
use robustmap_core::map::Series;
use robustmap_core::measure::Measurement;
use robustmap_core::regions::RegionStats;
use robustmap_systems::{single_predicate_plans, SinglePredPlanSet};

use crate::harness::{FigureOutput, Harness};

fn ansi_opts() -> AsciiOptions {
    AsciiOptions { ansi: false, cell_width: 2 }
}

/// Figures 3 and 6: the color legends (written as standalone SVGs and
/// printed as text).
pub fn legends(h: &Harness) -> FigureOutput {
    let mut report = String::new();
    let mut files = Vec::new();
    for (name, scale) in [("fig3_absolute_scale", absolute_scale()), ("fig6_relative_scale", relative_scale())] {
        report.push_str(&format!("{}:\n", scale.title));
        for b in scale.buckets() {
            report.push_str(&format!("  {}  {}\n", b.color.hex(), b.label));
        }
        // A 1x6 strip as the legend artifact (one cell per bucket).
        let values: Vec<f64> = scale.buckets().iter().map(|b| (b.lo + b.hi) / 2.0).collect();
        let axis: Vec<f64> =
            (1..=values.len()).map(|i| i as f64 / values.len() as f64).collect();
        let svg = heatmap_svg(&values, &axis, &[1.0], &scale, name);
        files.push(h.write_artifact(&format!("{name}.svg"), &svg));
    }
    FigureOutput::new("legends", report, files)
}

/// Figure 1: single-table single-predicate selection — table scan vs.
/// traditional vs. improved index scan, absolute log-log.
pub fn fig1(h: &Harness) -> FigureOutput {
    let map = h.map1d_basic();
    let mut report = render_map1d_table(&map, "Figure 1: single-predicate selection (absolute seconds)");
    report.push_str(&landmark_report(&map));
    let scan = map.series_named("table scan").expect("plan exists").seconds();
    let improved = map.series_named("improved index scan").expect("plan exists").seconds();
    let last = scan.len() - 1;
    report.push_str(&format!(
        "improved / table scan at selectivity 1: {:.2}x (paper: ~2.5x)\n",
        improved[last] / scan[last]
    ));
    let files = vec![
        h.write_artifact("fig1.csv", &map1d_to_csv(&map)),
        h.write_artifact("fig1.svg", &line_plot_svg(&map, "Figure 1: single-predicate selection", "seconds (log)")),
    ];
    FigureOutput::new("fig1", report, files)
}

/// Figure 2: advanced selection plans — relative performance, adding the
/// covering rid-join plans.
pub fn fig2(h: &Harness) -> FigureOutput {
    let plans = single_predicate_plans(SinglePredPlanSet::WithIndexJoins, &h.w);
    let grid = Grid1D::pow2(h.config.grid_exp);
    let map = build_map1d(&h.w, &plans, &grid, &h.config.measure);
    // Relative view: quotient vs. best plan at each point.
    let rel = map.relative();
    let rel_map = Map1D {
        sels: map.sels.clone(),
        result_rows: map.result_rows.clone(),
        series: rel
            .iter()
            .map(|(plan, q)| Series {
                plan: plan.clone(),
                points: q.iter().map(|&v| Measurement { seconds: v, ..Default::default() }).collect(),
            })
            .collect(),
    };
    let mut report =
        render_map1d_table(&rel_map, "Figure 2: advanced selection plans (factor vs. best plan)");
    report.push_str(&landmark_report(&map));
    let files = vec![
        h.write_artifact("fig2.csv", &map1d_to_csv(&map)),
        h.write_artifact("fig2_relative.csv", &map1d_to_csv(&rel_map)),
        h.write_artifact(
            "fig2.svg",
            &line_plot_svg(&rel_map, "Figure 2: advanced selection plans", "factor vs best (log)"),
        ),
    ];
    FigureOutput::new("fig2", report, files)
}

/// Figure 4: two-predicate single-index selection — absolute 2-D map of
/// the plan that fetches on `a` and filters `b` afterwards.
pub fn fig4(h: &Harness) -> FigureOutput {
    let map = h.map_system_a();
    let plan = map.plan_index("A2 idx(a) fetch").expect("System A plan");
    let grid = map.seconds_grid(plan);
    let (lo, hi) = map.seconds_range(plan);
    let mut report = render_map2d_ansi(
        &grid,
        &map.sel_a,
        &map.sel_b,
        &absolute_scale(),
        "Figure 4: two-predicate single-index selection (absolute seconds)",
        &ansi_opts(),
    );
    report.push_str(&format!(
        "execution time range: {:.3}s .. {:.1}s (paper: 4s .. 890s at 60M rows)\n",
        lo, hi
    ));
    // The figure's point: one dimension dominates, the other has almost no
    // effect.  Quantify with per-axis spreads.
    let (na, nb) = map.dims();
    let spread = |along_a: bool| -> f64 {
        let mut worst: f64 = 1.0;
        let (outer, inner) = if along_a { (nb, na) } else { (na, nb) };
        for o in 0..outer {
            let (mut mn, mut mx) = (f64::INFINITY, 0.0f64);
            for i in 0..inner {
                let v = if along_a { grid[i * nb + o] } else { grid[o * nb + i] };
                mn = mn.min(v);
                mx = mx.max(v);
            }
            worst = worst.max(mx / mn);
        }
        worst
    };
    report.push_str(&format!(
        "max spread along sel_a: {:.1}x; along sel_b: {:.2}x — the fetched-then-filtered \
         predicate has practically no effect, as in the paper\n",
        spread(true),
        spread(false)
    ));
    let files = vec![
        h.write_artifact("fig4.csv", &map2d_to_csv(&map.single_plan(plan))),
        h.write_artifact(
            "fig4.svg",
            &heatmap_svg(&grid, &map.sel_a, &map.sel_b, &absolute_scale(), "Figure 4: single-index plan, absolute seconds"),
        ),
    ];
    FigureOutput::new("fig4", report, files)
}

/// Figure 5: two-index merge join — absolute 2-D map; symmetric in the two
/// selectivities, unlike the hash join.
pub fn fig5(h: &Harness) -> FigureOutput {
    let map = h.map_system_a();
    let merge = map.plan_index("A4 merge(a,b) intersect").expect("System A plan");
    let hash = map.plan_index("A6 hash(a,b) intersect").expect("System A plan");
    let grid = map.seconds_grid(merge);
    let mut report = render_map2d_ansi(
        &grid,
        &map.sel_a,
        &map.sel_b,
        &absolute_scale(),
        "Figure 5: two-index merge join (absolute seconds)",
        &ansi_opts(),
    );
    let n = map.sel_a.len();
    let sym_merge = symmetry_of(&grid, n);
    let sym_hash = symmetry_of(&map.seconds_grid(hash), n);
    report.push_str(&format!(
        "merge join symmetry: max mirrored ratio {:.3}x (mean {:.3}x) — symmetric up to \
         sub-second measurement flukes, as in the paper\n",
        sym_merge.max_log_ratio.exp(),
        sym_merge.mean_log_ratio.exp()
    ));
    report.push_str(&format!(
        "hash join symmetry:  max mirrored ratio {:.3}x (mean {:.3}x) — {}\n",
        sym_hash.max_log_ratio.exp(),
        sym_hash.mean_log_ratio.exp(),
        if sym_hash.max_log_ratio > 1.5 * sym_merge.max_log_ratio
            || sym_hash.mean_log_ratio > 1.5 * sym_merge.mean_log_ratio
        {
            "asymmetric (build-side memory cliff + build/probe cost), as the paper (and GLS94) predicts"
        } else {
            "unexpectedly symmetric at this scale"
        },
    ));
    let files = vec![
        h.write_artifact("fig5.csv", &map2d_to_csv(&map.subset(&[merge, hash]))),
        h.write_artifact(
            "fig5.svg",
            &heatmap_svg(&grid, &map.sel_a, &map.sel_b, &absolute_scale(), "Figure 5: two-index merge join, absolute seconds"),
        ),
    ];
    FigureOutput::new("fig5", report, files)
}

/// Figure 7: the Figure 4 plan relative to the best of System A's seven
/// plans.
pub fn fig7(h: &Harness) -> FigureOutput {
    let map = h.map_system_a();
    let rel = RelativeMap2D::from_map(&map);
    let plan = map.plan_index("A2 idx(a) fetch").expect("System A plan");
    let quotients = rel.quotient_grid(plan).to_vec();
    let mut report = render_map2d_ansi(
        &quotients,
        &rel.sel_a,
        &rel.sel_b,
        &relative_scale(),
        "Figure 7: single-index plan vs. best of 7 plans (cost factor)",
        &ansi_opts(),
    );
    report.push_str(&format!(
        "worst quotient: {:.0}x (paper: ~101,000x at 60M rows; the quotient scales with table size)\n",
        rel.worst_quotient(plan)
    ));
    let region = RegionStats::of(&rel.optimal_region(plan, OptimalityTolerance::Factor(1.2)));
    report.push_str(&format!(
        "optimality region (within 20% of best): {:.1}% of the space, {} component(s){}\n",
        region.coverage * 100.0,
        region.component_count,
        if region.component_count > 1 {
            " — non-contiguous, the irregularity the paper flags"
        } else {
            " — contiguous in our implementation (the paper attributes its discontiguity to an implementation idiosyncrasy)"
        },
    ));
    report.push_str(&relative_report(&rel));
    let files = vec![
        h.write_artifact("fig7.csv", &quotients_to_csv(&rel)),
        h.write_artifact(
            "fig7.svg",
            &heatmap_svg(&quotients, &rel.sel_a, &rel.sel_b, &relative_scale(), "Figure 7: single-index plan vs best of 7"),
        ),
    ];
    FigureOutput::new("fig7", report, files)
}

/// Figure 8: System B's two-column-index plan (bitmap-sorted fetch),
/// relative to the best of System B's plans.
pub fn fig8(h: &Harness) -> FigureOutput {
    let all = h.map_all_systems();
    let map = all.subset_by_prefix("B");
    let rel = RelativeMap2D::from_map(&map);
    let plan = map.plan_index("B1 idx(a,b) bitmap fetch").expect("System B plan");
    let quotients = rel.quotient_grid(plan).to_vec();
    let mut report = render_map2d_ansi(
        &quotients,
        &rel.sel_a,
        &rel.sel_b,
        &relative_scale(),
        "Figure 8: System B two-column index + bitmap fetch (cost factor)",
        &ansi_opts(),
    );
    let region = RegionStats::of(&rel.optimal_region(plan, OptimalityTolerance::Factor(1.2)));
    report.push_str(&format!(
        "near-optimal (within 20%) over {:.1}% of the space; worst quotient {:.0}x\n",
        region.coverage * 100.0,
        rel.worst_quotient(plan)
    ));
    // The paper's comparison: better worst-case than Figure 7's plan.
    let a_map = h.map_system_a();
    let a_rel = RelativeMap2D::from_map(&a_map);
    let a_plan = a_map.plan_index("A2 idx(a) fetch").expect("System A plan");
    report.push_str(&format!(
        "worst quotient vs Figure 7's plan: {:.0}x vs {:.0}x — \"its worst quotient is not as \
         bad as the one of the prior plan\"\n",
        rel.worst_quotient(plan),
        a_rel.worst_quotient(a_plan)
    ));
    report.push_str(&relative_report(&rel));
    let files = vec![
        h.write_artifact("fig8.csv", &quotients_to_csv(&rel)),
        h.write_artifact(
            "fig8.svg",
            &heatmap_svg(&quotients, &rel.sel_a, &rel.sel_b, &relative_scale(), "Figure 8: System B bitmap-fetch plan vs best of System B"),
        ),
    ];
    FigureOutput::new("fig8", report, files)
}

/// Figure 9: System C's MDAM plan over the covering two-column index,
/// relative to the best of System C's plans.
pub fn fig9(h: &Harness) -> FigureOutput {
    let all = h.map_all_systems();
    let map = all.subset_by_prefix("C");
    let rel = RelativeMap2D::from_map(&map);
    let plan = map.plan_index("C1 mdam(a,b) covering").expect("System C plan");
    let quotients = rel.quotient_grid(plan).to_vec();
    let mut report = render_map2d_ansi(
        &quotients,
        &rel.sel_a,
        &rel.sel_b,
        &relative_scale(),
        "Figure 9: System C covering index + MDAM (cost factor)",
        &ansi_opts(),
    );
    report.push_str(&format!(
        "worst quotient: {:.1}x; within 10x of best over {:.1}% of the space — \"reasonable \
         across the entire parameter space, albeit not optimal\"\n",
        rel.worst_quotient(plan),
        rel.area_within(plan, 10.0) * 100.0,
    ));
    let optimal = rel.optimal_region(plan, OptimalityTolerance::Factor(1.001));
    report.push_str(&format!(
        "exactly optimal (factor 1) at {:.1}% of points — \"very [many] data points indicate \
         that this plan is the best\"\n",
        optimal.fraction() * 100.0
    ));
    report.push_str(&relative_report(&rel));
    let files = vec![
        h.write_artifact("fig9.csv", &quotients_to_csv(&rel)),
        h.write_artifact(
            "fig9.svg",
            &heatmap_svg(&quotients, &rel.sel_a, &rel.sel_b, &relative_scale(), "Figure 9: System C MDAM plan vs best of System C"),
        ),
    ];
    FigureOutput::new("fig9", report, files)
}

/// Figure 10: the optimal-plans map — most points have several optimal
/// plans within a measurement tolerance.
pub fn fig10(h: &Harness) -> FigureOutput {
    let all = h.map_all_systems();
    let rel = RelativeMap2D::from_map(&all);
    let mut report = String::from("Figure 10: optimal plans per parameter-space point\n");
    // The paper used +-0.1s on measurements in the 4s..890s range; our
    // simulated times are smaller, so report a matching absolute tolerance
    // and the scale-free alternatives the paper discusses (1%, 20%, 2x).
    let abs_tol = OptimalityTolerance::Seconds(0.01);
    report.push_str(&multi_optimal_report(&rel, abs_tol));
    for tol in [
        OptimalityTolerance::Factor(1.01),
        OptimalityTolerance::Factor(1.2),
        OptimalityTolerance::Factor(2.0),
    ] {
        report.push_str(&multi_optimal_report(&rel, tol));
    }
    // Per-plan count of cells where it is (near-)optimal.
    report.push_str("cells where each plan is within 20% of the best:\n");
    for (p, name) in rel.plans.iter().enumerate() {
        let region = rel.optimal_region(p, OptimalityTolerance::Factor(1.2));
        report.push_str(&format!("  {:<28} {:>5.1}%\n", name, region.fraction() * 100.0));
    }
    let counts = rel.optimal_plan_counts(OptimalityTolerance::Factor(1.2));
    let grid: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let files = vec![
        h.write_artifact("fig10.csv", &quotients_to_csv(&rel)),
        h.write_artifact(
            "fig10.svg",
            &heatmap_svg(
                &grid,
                &rel.sel_a,
                &rel.sel_b,
                &robustmap_core::render::relative_scale(),
                "Figure 10: number of optimal plans per point (within 20%)",
            ),
        ),
    ];
    FigureOutput::new("fig10", report, files)
}
