//! Shared harness state: the workload, measurement config, lazily built
//! maps (several figures share the System A map), and artifact output.

use std::cell::RefCell;
use std::path::{Path, PathBuf};

use robustmap_core::{build_map2d, Grid2D, Map2D, MeasureConfig};
use robustmap_systems::{two_predicate_plans, SystemId, TwoPredPlan};
use robustmap_workload::{TableBuilder, Workload, WorkloadConfig};

/// Harness scale parameters.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Table rows (paper: 60M; default here: 2^20, recorded in
    /// EXPERIMENTS.md).
    pub rows: u64,
    /// Grid exponent: axes run `2^-grid_exp ..= 1` in factor-2 steps.
    pub grid_exp: u32,
    /// Where CSV/SVG artifacts go.
    pub out_dir: PathBuf,
    /// Measurement conditions.
    pub measure: MeasureConfig,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            rows: 1 << 20,
            grid_exp: 16,
            out_dir: PathBuf::from("target/figures"),
            measure: MeasureConfig::default(),
        }
    }
}

/// One regenerated figure: its printed report and written artifact files.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Figure id, e.g. `"fig7"`.
    pub name: String,
    /// The text the harness prints (series, landmarks, statistics).
    pub report: String,
    /// Paths of artifacts written (CSV, SVG).
    pub files: Vec<PathBuf>,
}

/// Workload + caches shared by all figure functions.
pub struct Harness {
    /// The built workload.
    pub w: Workload,
    /// Scale parameters.
    pub config: HarnessConfig,
    map_a: RefCell<Option<Map2D>>,
    map_all: RefCell<Option<Map2D>>,
}

impl Harness {
    /// Build the workload and prepare the output directory.
    pub fn new(config: HarnessConfig) -> Self {
        let w = TableBuilder::build(WorkloadConfig::with_rows(config.rows));
        std::fs::create_dir_all(&config.out_dir).expect("create output directory");
        Harness { w, config, map_a: RefCell::new(None), map_all: RefCell::new(None) }
    }

    /// A fast harness for tests and Criterion benches: 2^14 rows, 2^-8
    /// grids, artifacts under `target/figures-test`.
    pub fn tiny() -> Self {
        Self::new(HarnessConfig {
            rows: 1 << 14,
            grid_exp: 8,
            out_dir: PathBuf::from("target/figures-test"),
            ..Default::default()
        })
    }

    /// The 2-D grid all two-predicate maps use.
    pub fn grid2d(&self) -> Grid2D {
        Grid2D::pow2(self.config.grid_exp)
    }

    /// System A's seven-plan 2-D map (Figures 4, 5, 7), built once.
    pub fn map_system_a(&self) -> Map2D {
        if self.map_a.borrow().is_none() {
            let plans = two_predicate_plans(SystemId::A, &self.w);
            let map = build_map2d(&self.w, &plans, &self.grid2d(), &self.config.measure);
            *self.map_a.borrow_mut() = Some(map);
        }
        self.map_a.borrow().clone().expect("just built")
    }

    /// The all-systems fifteen-plan map (Figures 8-10, extensions), built
    /// once.
    pub fn map_all_systems(&self) -> Map2D {
        if self.map_all.borrow().is_none() {
            let plans: Vec<TwoPredPlan> = SystemId::all()
                .into_iter()
                .flat_map(|s| two_predicate_plans(s, &self.w))
                .collect();
            let map = build_map2d(&self.w, &plans, &self.grid2d(), &self.config.measure);
            *self.map_all.borrow_mut() = Some(map);
        }
        self.map_all.borrow().clone().expect("just built")
    }

    /// Write an artifact file, returning its path.
    pub fn write_artifact(&self, name: &str, contents: &str) -> PathBuf {
        let path = self.config.out_dir.join(name);
        std::fs::write(&path, contents).expect("write artifact");
        path
    }

    /// The output directory.
    pub fn out_dir(&self) -> &Path {
        &self.config.out_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_harness_builds_and_caches_maps() {
        let h = Harness::tiny();
        let m1 = h.map_system_a();
        let m2 = h.map_system_a();
        assert_eq!(m1, m2);
        assert_eq!(m1.plan_count(), 7);
        assert_eq!(m1.dims(), (9, 9));
        let all = h.map_all_systems();
        assert_eq!(all.plan_count(), 15);
    }

    #[test]
    fn artifacts_are_written() {
        let h = Harness::tiny();
        let p = h.write_artifact("smoke.txt", "hello");
        assert!(p.exists());
        assert_eq!(std::fs::read_to_string(p).unwrap(), "hello");
    }
}
