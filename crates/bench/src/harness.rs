//! Shared harness state: the workload (served from the workload cache),
//! measurement config, lazily built maps (several figures share the System
//! A map, and the System A map itself is carved out of the all-systems map
//! when both are needed), and artifact output.

use std::cell::{Cell, RefCell};
use std::path::{Path, PathBuf};

use robustmap_core::{build_map1d, build_map2d, Grid1D, Grid2D, Map1D, Map2D, MeasureConfig};
use robustmap_systems::{
    single_predicate_plans, two_predicate_plans, SinglePredPlanSet, SystemId, TwoPredPlan,
};
use robustmap_workload::{TableBuilder, Workload, WorkloadConfig};

/// Harness scale parameters.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Table rows (paper: 60M; default here: 2^20, recorded in
    /// `docs/EXPERIMENTS.md`).
    pub rows: u64,
    /// Grid exponent: axes run `2^-grid_exp ..= 1` in factor-2 steps.
    pub grid_exp: u32,
    /// Where CSV/SVG artifacts go.
    pub out_dir: PathBuf,
    /// Measurement conditions.
    pub measure: MeasureConfig,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            rows: 1 << 20,
            grid_exp: 16,
            out_dir: PathBuf::from("target/figures"),
            measure: MeasureConfig::default(),
        }
    }
}

/// One regenerated figure: its printed report, written artifact files, and
/// how long the regeneration took.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Figure id, e.g. `"fig7"`.
    pub name: String,
    /// The text the harness prints (series, landmarks, statistics).
    pub report: String,
    /// Paths of artifacts written (CSV, SVG).
    pub files: Vec<PathBuf>,
    /// Real (wall clock) seconds the sweep + rendering took, filled in by
    /// [`crate::run_figure`] — the number `BENCH_*.json` trajectories track.
    pub wall_seconds: f64,
}

impl FigureOutput {
    /// A figure output with the wall time still unset (the runner stamps
    /// it).
    pub fn new(name: &str, report: String, files: Vec<PathBuf>) -> Self {
        FigureOutput { name: name.to_string(), report, files, wall_seconds: 0.0 }
    }
}

/// Workload + caches shared by all figure functions.
pub struct Harness {
    /// The built workload.
    pub w: Workload,
    /// Scale parameters.
    pub config: HarnessConfig,
    map_a: RefCell<Option<Map2D>>,
    map_all: RefCell<Option<Map2D>>,
    map1_basic: RefCell<Option<Map1D>>,
    want_all_systems: Cell<bool>,
}

/// Figure ids that need the fifteen-plan all-systems map.  When a run will
/// touch any of these *and* a System-A-only figure, the harness builds the
/// all-systems map once and carves the System A map out of it instead of
/// sweeping the same seven plans twice (cell measurements are independent,
/// so the subset is identical to a dedicated sweep).
pub(crate) const NEEDS_ALL_SYSTEMS: &[&str] = &[
    "fig8",
    "fig9",
    "fig10",
    "ext_worst",
    "ext_shootout",
    "ext_optimizer",
    "ext_regression",
];

impl Harness {
    /// Build (or load from the workload cache) the workload and prepare
    /// the output directory.
    pub fn new(config: HarnessConfig) -> Self {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(config.rows));
        std::fs::create_dir_all(&config.out_dir).expect("create output directory");
        Harness {
            w,
            config,
            map_a: RefCell::new(None),
            map_all: RefCell::new(None),
            map1_basic: RefCell::new(None),
            want_all_systems: Cell::new(false),
        }
    }

    /// A fast harness for tests and Criterion benches: 2^14 rows, 2^-8
    /// grids, artifacts under `target/figures-test`.
    pub fn tiny() -> Self {
        Self::new(HarnessConfig {
            rows: 1 << 14,
            grid_exp: 8,
            out_dir: PathBuf::from("target/figures-test"),
            ..Default::default()
        })
    }

    /// Announce which figures a run will regenerate, letting the harness
    /// choose shared sweeps (see `NEEDS_ALL_SYSTEMS` in this module).
    /// Calling this is optional — figures are correct without it, just
    /// slower when both the System A and all-systems maps end up being
    /// built.
    pub fn plan_for<S: AsRef<str>>(&self, names: &[S]) {
        if names.iter().any(|n| NEEDS_ALL_SYSTEMS.contains(&n.as_ref())) {
            self.want_all_systems.set(true);
        }
    }

    /// Whether the all-systems map has been built — test introspection
    /// keeping `NEEDS_ALL_SYSTEMS` honest against actual figure behaviour.
    #[cfg(test)]
    pub(crate) fn map_all_is_built(&self) -> bool {
        self.map_all.borrow().is_some()
    }

    /// The 2-D grid all two-predicate maps use.
    pub fn grid2d(&self) -> Grid2D {
        Grid2D::pow2(self.config.grid_exp)
    }

    /// System A's seven-plan 2-D map (Figures 4, 5, 7), built once — as a
    /// subset of the all-systems map whenever that map exists or is known
    /// to be coming ([`Harness::plan_for`]).
    pub fn map_system_a(&self) -> Map2D {
        if self.map_a.borrow().is_none() {
            let map = if self.want_all_systems.get() || self.map_all.borrow().is_some() {
                self.map_all_systems().subset_by_prefix("A")
            } else {
                let plans = two_predicate_plans(SystemId::A, &self.w);
                build_map2d(&self.w, &plans, &self.grid2d(), &self.config.measure)
            };
            *self.map_a.borrow_mut() = Some(map);
        }
        self.map_a.borrow().clone().expect("just built")
    }

    /// The all-systems fifteen-plan map (Figures 8-10, extensions), built
    /// once.
    pub fn map_all_systems(&self) -> Map2D {
        if self.map_all.borrow().is_none() {
            let plans: Vec<TwoPredPlan> = SystemId::all()
                .into_iter()
                .flat_map(|s| two_predicate_plans(s, &self.w))
                .collect();
            let map = build_map2d(&self.w, &plans, &self.grid2d(), &self.config.measure);
            *self.map_all.borrow_mut() = Some(map);
        }
        self.map_all.borrow().clone().expect("just built")
    }

    /// The Figure 1 single-predicate map (basic plan set over the full
    /// grid), built once and shared with the regression suite.
    pub fn map1d_basic(&self) -> Map1D {
        if self.map1_basic.borrow().is_none() {
            let plans = single_predicate_plans(SinglePredPlanSet::Basic, &self.w);
            let grid = Grid1D::pow2(self.config.grid_exp);
            let map = build_map1d(&self.w, &plans, &grid, &self.config.measure);
            *self.map1_basic.borrow_mut() = Some(map);
        }
        self.map1_basic.borrow().clone().expect("just built")
    }

    /// Write an artifact file, returning its path.
    pub fn write_artifact(&self, name: &str, contents: &str) -> PathBuf {
        let path = self.config.out_dir.join(name);
        std::fs::write(&path, contents).expect("write artifact");
        path
    }

    /// The output directory.
    pub fn out_dir(&self) -> &Path {
        &self.config.out_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_harness_builds_and_caches_maps() {
        let h = Harness::tiny();
        let m1 = h.map_system_a();
        let m2 = h.map_system_a();
        assert_eq!(m1, m2);
        assert_eq!(m1.plan_count(), 7);
        assert_eq!(m1.dims(), (9, 9));
        let all = h.map_all_systems();
        assert_eq!(all.plan_count(), 15);
    }

    #[test]
    fn system_a_map_is_the_same_standalone_or_carved_from_all_systems() {
        // Standalone: no plan announced, A map swept directly.
        let standalone = Harness::tiny().map_system_a();
        // Carved: fig8 announced, so the A map is a subset of the
        // all-systems sweep.  Cells are measured in isolation, so the two
        // must be identical — this is what keeps CSV artifacts byte-stable
        // whichever figures a run regenerates.
        let h = Harness::tiny();
        h.plan_for(&["fig4", "fig8"]);
        let carved = h.map_system_a();
        assert_eq!(standalone, carved);
        assert_eq!(h.map_all_systems().subset_by_prefix("A"), carved);
    }

    #[test]
    fn artifacts_are_written() {
        let h = Harness::tiny();
        let p = h.write_artifact("smoke.txt", "hello");
        assert!(p.exists());
        assert_eq!(std::fs::read_to_string(p).unwrap(), "hello");
    }
}
