//! # robustmap-bench
//!
//! The figure-regeneration harness: one function per figure of the paper
//! (and per extension experiment), each of which measures the maps, prints
//! the same series/statistics the paper's figure shows, and writes CSV +
//! SVG artifacts.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p robustmap-bench --bin figures -- all
//! ```
//!
//! or a single figure with `-- fig7`, etc.  Criterion benchmarks under
//! `benches/` exercise the same code paths at reduced scale so `cargo
//! bench` regenerates every figure and times the substrate.

pub mod baseline;
pub mod figures_ext;
pub mod figures_paper;
pub mod harness;

pub use harness::{FigureOutput, Harness, HarnessConfig};

/// All figure names known to the harness, in presentation order.
pub const ALL_FIGURES: &[&str] = &[
    "legends",
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ext_sort_spill",
    "ext_memory",
    "ext_worst",
    "ext_shootout",
    "ext_ablation",
    "ext_buffer",
    "ext_join",
    "ext_parallel",
    "ext_skew",
    "ext_optimizer",
    "ext_correlated",
    "ext_robust_choice",
    "ext_adaptive",
    "ext_concurrency",
    "ext_trace",
    "ext_churn",
    "ext_regression",
];

/// Run one named figure against a harness, stamping
/// [`FigureOutput::wall_seconds`] with the real time the regeneration
/// took.  Unknown names return `None`.
pub fn run_figure(h: &Harness, name: &str) -> Option<FigureOutput> {
    let t0 = std::time::Instant::now();
    let mut out = run_figure_inner(h, name)?;
    out.wall_seconds = t0.elapsed().as_secs_f64();
    Some(out)
}

fn run_figure_inner(h: &Harness, name: &str) -> Option<FigureOutput> {
    Some(match name {
        "legends" => figures_paper::legends(h),
        "fig1" => figures_paper::fig1(h),
        "fig2" => figures_paper::fig2(h),
        "fig4" => figures_paper::fig4(h),
        "fig5" => figures_paper::fig5(h),
        "fig7" => figures_paper::fig7(h),
        "fig8" => figures_paper::fig8(h),
        "fig9" => figures_paper::fig9(h),
        "fig10" => figures_paper::fig10(h),
        "ext_sort_spill" => figures_ext::ext_sort_spill(h),
        "ext_memory" => figures_ext::ext_memory(h),
        "ext_worst" => figures_ext::ext_worst(h),
        "ext_shootout" => figures_ext::ext_shootout(h),
        "ext_ablation" => figures_ext::ext_ablation(h),
        "ext_buffer" => figures_ext::ext_buffer(h),
        "ext_join" => figures_ext::ext_join(h),
        "ext_parallel" => figures_ext::ext_parallel(h),
        "ext_skew" => figures_ext::ext_skew(h),
        "ext_optimizer" => figures_ext::ext_optimizer(h),
        "ext_correlated" => figures_ext::ext_correlated(h),
        "ext_robust_choice" => figures_ext::ext_robust_choice(h),
        "ext_adaptive" => figures_ext::ext_adaptive(h),
        "ext_concurrency" => figures_ext::ext_concurrency(h),
        "ext_trace" => figures_ext::ext_trace(h),
        "ext_churn" => figures_ext::ext_churn(h),
        "ext_regression" => figures_ext::ext_regression(h),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_figure_is_runnable() {
        let h = Harness::tiny();
        h.plan_for(ALL_FIGURES);
        for name in ALL_FIGURES {
            let out = run_figure(&h, name).expect("known figure");
            assert!(!out.report.is_empty(), "{name} produced an empty report");
            assert!(out.wall_seconds > 0.0, "{name} wall time not stamped");
        }
    }

    #[test]
    fn needs_all_systems_list_matches_figure_behaviour() {
        // The shared-sweep bookkeeping is a hand-maintained list; this
        // pins it to what the figure bodies actually do.  Each figure runs
        // on its own harness with nothing announced, so `map_all` is built
        // exactly when the figure itself asks for it.
        for name in ALL_FIGURES {
            let h = Harness::tiny();
            run_figure(&h, name).expect("known figure");
            assert_eq!(
                h.map_all_is_built(),
                crate::harness::NEEDS_ALL_SYSTEMS.contains(name),
                "{name}: NEEDS_ALL_SYSTEMS out of sync with actual map_all_systems() usage"
            );
        }
    }

    #[test]
    fn unknown_figure_is_none() {
        let h = Harness::tiny();
        assert!(run_figure(&h, "fig99").is_none());
    }
}
