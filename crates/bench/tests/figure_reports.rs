//! Every figure's report must actually say what its paper figure shows —
//! not just run without panicking.  These run against the tiny harness, so
//! the assertions are about structure and key markers, not full-scale
//! landmark values (those live in the workspace integration tests).

use robustmap_bench::{run_figure, Harness};

fn report(h: &Harness, name: &str) -> String {
    run_figure(h, name).expect("known figure").report
}

#[test]
fn figure_reports_contain_their_key_markers() {
    let h = Harness::tiny();
    let expectations: &[(&str, &[&str])] = &[
        ("legends", &["Execution time", "Factor 1", "0.001-0.01 seconds"]),
        ("fig1", &["table scan", "improved index scan", "landmarks", "selectivity"]),
        ("fig2", &["rid join (merge)", "rid join (hash, build a)", "factor vs. best"]),
        ("fig4", &["max spread along sel_a", "no effect"]),
        ("fig5", &["merge join symmetry", "hash join symmetry"]),
        ("fig7", &["worst quotient", "optimality region", "A2 idx(a) fetch"]),
        ("fig8", &["near-optimal", "B1 idx(a,b) bitmap fetch", "worst quotient"]),
        ("fig9", &["C1 mdam(a,b) covering", "reasonable across the entire parameter space"]),
        ("fig10", &["optimal plan(s)", "points have several"]),
        ("ext_sort_spill", &["abrupt", "graceful", "changepoints", "cliff"]),
        ("ext_memory", &["memory grant x input size"]),
        ("ext_worst", &["danger map", "worst choice"]),
        ("ext_shootout", &["holds the best plan", "leaderboard", "headline"]),
        ("ext_ablation", &["traditional (no sort)", "improved (sort + read-ahead)", "mdam"]),
        ("ext_buffer", &["LRU", "Clock"]),
        ("ext_join", &["sort-merge", "hash build-left", "hash build-right", "wins at"]),
        ("ext_parallel", &["dop", "speedup at dop 16", "skew"]),
        ("ext_skew", &["Zipf", "improved"]),
        ("ext_optimizer", &["estimate error", "mean regret", "exact", "16x under"]),
        (
            "ext_correlated",
            &[
                "independence",
                "rho",
                "regret",
                "crossovers along the rho = 1.0 diagonal",
                "best-plan share",
                "regression checks over the correlated scenario",
            ],
        ),
        ("ext_regression", &["monotone", "contiguous optimality region", "verdict"]),
    ];
    for (fig, needles) in expectations {
        let r = report(&h, fig);
        for needle in *needles {
            assert!(
                r.contains(needle),
                "{fig}: expected {needle:?} in report:\n{r}"
            );
        }
    }
}

#[test]
fn regression_suite_passes_at_test_scale() {
    let h = Harness::tiny();
    let r = report(&h, "ext_regression");
    assert!(r.contains("verdict: PASS"), "regression suite failed:\n{r}");
}

#[test]
fn figure_artifacts_exist_and_are_nonempty() {
    let h = Harness::tiny();
    for fig in ["fig1", "fig7", "ext_join"] {
        let out = run_figure(&h, fig).unwrap();
        assert!(!out.files.is_empty(), "{fig} wrote no artifacts");
        for f in &out.files {
            let meta = std::fs::metadata(f).unwrap_or_else(|e| panic!("{fig}: {e}"));
            assert!(meta.len() > 100, "{fig}: {} suspiciously small", f.display());
        }
    }
}

#[test]
fn svg_artifacts_are_well_formed() {
    let h = Harness::tiny();
    let out = run_figure(&h, "fig7").unwrap();
    let svg_path = out.files.iter().find(|f| f.extension().is_some_and(|e| e == "svg")).unwrap();
    let svg = std::fs::read_to_string(svg_path).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.trim_end().ends_with("</svg>"));
    assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
}

#[test]
fn csv_artifacts_have_headers_and_rows() {
    let h = Harness::tiny();
    let out = run_figure(&h, "fig1").unwrap();
    let csv_path = out.files.iter().find(|f| f.extension().is_some_and(|e| e == "csv")).unwrap();
    let csv = std::fs::read_to_string(csv_path).unwrap();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("selectivity,rows,"));
    let cols = header.split(',').count();
    let mut rows = 0;
    for line in lines {
        assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        rows += 1;
    }
    assert!(rows >= 9, "expected a full sweep, got {rows} rows");
}
