//! Changepoint detection: cost cliffs and knees in log–log space.
//!
//! §4: "we expect that some implementations of sorting spill their entire
//! input to disk if the input size exceeds the memory size by merely a
//! single record.  Those sort implementations lacking graceful degradation
//! will show discontinuous execution costs."
//!
//! The detector fits the curve piecewise in log–log coordinates and flags
//! two kinds of structure:
//!
//! * a **cliff** — a *level shift*: between two adjacent grid points the
//!   cost jumps by far more than the local slope explains (the abrupt
//!   sort's "entire input ... by merely a single record");
//! * a **knee** — a *slope break*: the local log–log slope changes regime
//!   without a level shift (the graceful sort bending as overflow I/O
//!   starts to accrue).
//!
//! ## Why not a threshold ratio test
//!
//! The previous detector flagged `cost_ratio > k × work_ratio` between
//! adjacent points.  That criterion is **grid-dependent**: refining the
//! grid 2× halves every smooth curve's per-step ratios but leaves a level
//! shift's ratio intact, so one fixed `k` either under-counts cliffs on
//! coarse grids or false-positives steep-but-smooth curves on fine ones —
//! and it cannot see knees at all.  The quantities used here are invariant
//! under both uniform cost scaling and grid refinement:
//!
//! * the **unexplained log jump** of a segment, `Δy − ref_slope · Δx`
//!   (`x = ln work`, `y = ln cost`): for a level shift of factor `J` this
//!   converges to `ln J` however fine the grid, while for any locally
//!   power-law curve it converges to 0.  The reference slope is the median
//!   slope of nearby segments on *each* side, and the smaller of the two
//!   excesses is used — a genuine level shift is unexplained by both
//!   sides, whereas a steep regime's own segments explain each other;
//! * the **slope break** at a point, the difference between the mean
//!   log–log slope over a fixed log-space window before and after it:
//!   window content is an `x`-range, not a point count, so refinement
//!   adds points without moving the estimate.
//!
//! Non-finite or non-positive inputs are not silently skipped (the old
//! detector's `continue` let a zero-cost cell mask a real cliff next to
//! it): invalid points are excluded from the fit, reported as
//! [`ChangepointAnalysis::diagnostics`], and detection proceeds across the
//! gap.  `docs/DESIGN.md` records the design argument; the invariance
//! properties are asserted in `crates/core/tests/prop_core.rs`.

/// What kind of structure a changepoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeClass {
    /// A level shift: cost jumps beyond what the local slope explains.
    Cliff,
    /// A slope break: the log–log slope changes regime without a shift.
    Knee,
}

/// One detected changepoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Changepoint {
    /// Index into the input arrays: for a [`ChangeClass::Cliff`] the right
    /// endpoint of the jump segment; for a [`ChangeClass::Knee`] the break
    /// point itself.  The jump's left endpoint is the nearest *valid*
    /// input cell before `index` — not necessarily `index - 1` when
    /// invalid cells were excluded; read the flanking values from
    /// [`Changepoint::cost`] rather than from `index - 1`.
    pub index: usize,
    /// Work coordinate of the changepoint: the log-space midpoint of the
    /// jump segment for cliffs, the break point's work value for knees.
    pub at_work: f64,
    /// Cliff or knee.
    pub class: ChangeClass,
    /// Severity.  Cliffs: the unexplained cost factor (always
    /// `>= cliff_factor`); knees: the absolute log–log slope break.
    pub severity: f64,
    /// Cost at the valid samples flanking the changepoint (excluded cells
    /// are skipped over).
    pub cost: (f64, f64),
}

/// Detection thresholds.  All three are scale- and grid-free quantities
/// (factors and log–log slopes), which is what makes the detector
/// invariant to uniform cost scaling and to grid refinement.
#[derive(Debug, Clone)]
pub struct ChangepointConfig {
    /// Unexplained cost factor that counts as a cliff (a segment whose
    /// cost jump exceeds the locally expected growth by this factor).
    pub cliff_factor: f64,
    /// Minimum absolute log–log slope change that counts as a knee.
    pub knee_slope_break: f64,
    /// Log-space half-width of the slope-estimation window (default two
    /// factor-2 grid steps).
    pub window: f64,
}

impl Default for ChangepointConfig {
    fn default() -> Self {
        ChangepointConfig {
            cliff_factor: 3.0,
            knee_slope_break: 0.75,
            window: 2.0 * std::f64::consts::LN_2,
        }
    }
}

/// The detector's result: classified changepoints in axis order, plus
/// diagnostics for every input cell that could not take part in the fit.
#[derive(Debug, Clone, Default)]
pub struct ChangepointAnalysis {
    /// Detected changepoints, ordered by `at_work`.
    pub changepoints: Vec<Changepoint>,
    /// One message per invalid input cell (non-finite or non-positive cost
    /// or work, non-ascending work).  Invalid cells are excluded from the
    /// fit rather than silently masking their neighbours.
    pub diagnostics: Vec<String>,
}

impl ChangepointAnalysis {
    /// The cliffs, in axis order.
    pub fn cliffs(&self) -> impl Iterator<Item = &Changepoint> {
        self.changepoints.iter().filter(|c| c.class == ChangeClass::Cliff)
    }

    /// The knees, in axis order.
    pub fn knees(&self) -> impl Iterator<Item = &Changepoint> {
        self.changepoints.iter().filter(|c| c.class == ChangeClass::Knee)
    }

    /// Number of cliffs.
    pub fn cliff_count(&self) -> usize {
        self.cliffs().count()
    }

    /// Number of knees.
    pub fn knee_count(&self) -> usize {
        self.knees().count()
    }

    /// No changepoints and no diagnostics.
    pub fn is_clean(&self) -> bool {
        self.changepoints.is_empty() && self.diagnostics.is_empty()
    }
}

fn median(values: &mut [f64]) -> f64 {
    debug_assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite slopes"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

/// Detect cost cliffs and knees over an ascending positive `work` axis.
///
/// Needs at least three valid points (a jump is only a jump relative to a
/// local trend); shorter inputs return an empty analysis.
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn detect_changepoints(
    work: &[f64],
    cost: &[f64],
    cfg: &ChangepointConfig,
) -> ChangepointAnalysis {
    assert_eq!(work.len(), cost.len(), "axis/cost length mismatch");
    let mut out = ChangepointAnalysis::default();

    // Validity pass: log–log needs positive finite values and a strictly
    // ascending axis.  Offenders are excluded (with a diagnostic) and the
    // fit continues across the gap, so a zero-cost cell cannot mask a
    // cliff at the next point.
    let mut xs: Vec<f64> = Vec::with_capacity(work.len());
    let mut ys: Vec<f64> = Vec::with_capacity(work.len());
    let mut idx: Vec<usize> = Vec::with_capacity(work.len());
    for i in 0..work.len() {
        let (w, c) = (work[i], cost[i]);
        if !w.is_finite() || w <= 0.0 {
            out.diagnostics.push(format!("work[{i}] = {w} is not positive finite; cell excluded"));
            continue;
        }
        if !c.is_finite() {
            out.diagnostics
                .push(format!("cost[{i}] = {c} (work {w}) is not finite; cell excluded"));
            continue;
        }
        if c <= 0.0 {
            out.diagnostics
                .push(format!("cost[{i}] = {c} (work {w}) is not positive; cell excluded"));
            continue;
        }
        if let Some(&last) = xs.last() {
            if w.ln() <= last {
                out.diagnostics
                    .push(format!("work[{i}] = {w} does not ascend; cell excluded"));
                continue;
            }
        }
        xs.push(w.ln());
        ys.push(c.ln());
        idx.push(i);
    }
    let n = xs.len();
    if n < 3 {
        return out;
    }

    let nseg = n - 1;
    let slopes: Vec<f64> = (1..n).map(|k| (ys[k] - ys[k - 1]) / (xs[k] - xs[k - 1])).collect();
    let mids: Vec<f64> = (1..n).map(|k| 0.5 * (xs[k] + xs[k - 1])).collect();
    // Window-inclusion tolerance: factor-2 grids place segment midpoints at
    // exact multiples of ln 2 up to rounding; a strict comparison would let
    // 1-ulp noise move segments in and out of windows between grids.
    let wtol = cfg.window * (1.0 + 1e-9);

    // --- Cliff pass: unexplained log jump per segment, measured against
    // the median slope of nearby segments on each side separately.  A
    // level shift is unexplained by *both* sides; a steep regime is
    // explained by its own side, so taking the smaller excess keeps strong
    // knees near the series edge from masquerading as cliffs.
    //
    // Flagged segments are excluded from the reference medians and the
    // pass iterates to a fixpoint: one cliff's steep segment would
    // otherwise contaminate the references around it and mask a second
    // cliff inside the same window (or halve the severity of twin
    // cliffs).  Exclusion only ever lowers the reference toward the true
    // trend, so the flagged set grows monotonically and the loop
    // terminates in at most `nseg` sweeps.
    let ln_cliff = cfg.cliff_factor.ln();
    let mut is_cliff = vec![false; nseg];
    let excess_of = |k: usize, is_cliff: &[bool]| -> Option<f64> {
        let side = |pred: &dyn Fn(usize) -> bool| -> Option<f64> {
            let mut s: Vec<f64> = (0..nseg)
                .filter(|&j| {
                    j != k && !is_cliff[j] && pred(j) && (mids[j] - mids[k]).abs() <= wtol
                })
                .map(|j| slopes[j])
                .collect();
            if s.is_empty() {
                None
            } else {
                Some(median(&mut s))
            }
        };
        let left = side(&|j| j < k);
        let right = side(&|j| j > k);
        let excess_vs = |r: f64| (ys[k + 1] - ys[k]) - r * (xs[k + 1] - xs[k]);
        match (left, right) {
            (Some(l), Some(r)) => Some(excess_vs(l).min(excess_vs(r))),
            (Some(l), None) => Some(excess_vs(l)),
            (None, Some(r)) => Some(excess_vs(r)),
            (None, None) => None,
        }
    };
    loop {
        let newly: Vec<usize> = (0..nseg)
            .filter(|&k| {
                !is_cliff[k] && excess_of(k, &is_cliff).is_some_and(|e| e > ln_cliff)
            })
            .collect();
        if newly.is_empty() {
            break;
        }
        for k in newly {
            is_cliff[k] = true;
        }
    }
    let no_flags = vec![false; nseg];
    for k in 0..nseg {
        if !is_cliff[k] {
            continue;
        }
        // Severity against the final (cliff-free) references; on jagged
        // series where later sweeps flagged every neighbour, fall back to
        // the unfiltered reference the segment was first flagged under.
        // Either reference can yield a smaller excess than the one the
        // segment was flagged under (even a negative one, on noisy
        // series), so clamp to the configured factor — severity must
        // honour its documented `>= cliff_factor` invariant, and a
        // sub-1 value would *reduce* the score's log-severity penalty.
        let excess = excess_of(k, &is_cliff)
            .or_else(|| excess_of(k, &no_flags))
            .expect("a flagged segment had a reference at flag time");
        out.changepoints.push(Changepoint {
            index: idx[k + 1],
            at_work: (0.5 * (xs[k] + xs[k + 1])).exp(),
            class: ChangeClass::Cliff,
            severity: excess.exp().max(cfg.cliff_factor),
            cost: (cost[idx[k]], cost[idx[k + 1]]),
        });
    }

    // --- Knee pass: slope break between the window means before and after
    // each interior point.  Cliff segments are excluded from the windows
    // (a level shift would contaminate every slope estimate crossing it),
    // and points flanking a cliff segment are not knee candidates — the
    // cliff already explains them.
    let mut candidates: Vec<(usize, f64)> = Vec::new();
    for p in 1..n - 1 {
        if is_cliff[p - 1] || is_cliff[p] {
            continue;
        }
        let left: Vec<f64> = (0..p)
            .filter(|&j| !is_cliff[j] && xs[p] - xs[j] <= wtol)
            .map(|j| slopes[j])
            .collect();
        let right: Vec<f64> = (p..nseg)
            .filter(|&j| !is_cliff[j] && xs[j + 1] - xs[p] <= wtol)
            .map(|j| slopes[j])
            .collect();
        if left.is_empty() || right.is_empty() {
            continue;
        }
        let delta = mean(&right) - mean(&left);
        if delta.abs() >= cfg.knee_slope_break {
            candidates.push((p, delta));
        }
    }
    // Non-maximum suppression: one knee per window-connected run of
    // candidates (the window is the detector's resolution limit), keeping
    // the strongest break.  The strict comparison makes the leftmost of
    // exactly-tied candidates win, deterministically.
    let mut i = 0;
    while i < candidates.len() {
        let mut j = i;
        let mut best = i;
        while j + 1 < candidates.len() && xs[candidates[j + 1].0] - xs[candidates[j].0] <= wtol {
            j += 1;
            if candidates[j].1.abs() > candidates[best].1.abs() {
                best = j;
            }
        }
        let (p, delta) = candidates[best];
        out.changepoints.push(Changepoint {
            index: idx[p],
            at_work: work[idx[p]],
            class: ChangeClass::Knee,
            severity: delta.abs(),
            cost: (cost[idx[p - 1]], cost[idx[p + 1]]),
        });
        i = j + 1;
    }

    out.changepoints
        .sort_by(|a, b| a.at_work.partial_cmp(&b.at_work).expect("finite work"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChangepointConfig {
        ChangepointConfig::default()
    }

    /// The `ext_sort_spill` fine sweep at the default scale (2^20 rows,
    /// 256 KiB sort grant), as measured — the curves the detector exists
    /// for.  The abrupt sort jumps 4.6x over a 2% input growth at the
    /// memory threshold; the graceful sort bends there without a level
    /// shift.
    const SORT_ROWS: [f64; 12] = [
        1638.0, 2621.0, 3112.0, 3243.0, 3309.0, 3440.0, 3931.0, 4914.0, 6552.0, 13104.0,
        52416.0, 209664.0,
    ];
    const SORT_ABRUPT: [f64; 12] = [
        1.7199e-4, 2.8831e-4, 3.4232e-4, 3.5673e-4, 1.64298e-3, 1.79576e-3, 2.54895e-3,
        4.06036e-3, 3.00036e-3, 6.06624e-3, 2.47891e-2, 1.01253e-1,
    ];
    const SORT_GRACEFUL: [f64; 12] = [
        9.009e-5, 1.44155e-4, 1.7116e-4, 1.78365e-4, 3.21995e-4, 3.6929e-4, 5.98005e-4,
        1.06791e-3, 1.85274e-3, 4.888e-3, 2.32575e-2, 9.8355e-2,
    ];

    #[test]
    fn abrupt_sort_curve_is_a_cliff() {
        let a = detect_changepoints(&SORT_ROWS, &SORT_ABRUPT, &cfg());
        assert!(a.diagnostics.is_empty());
        let cliffs: Vec<_> = a.cliffs().collect();
        assert_eq!(cliffs.len(), 1, "{a:?}");
        let c = cliffs[0];
        // The jump sits between 3243 and 3309 rows — the ~3.2k-row memory
        // threshold — with a ~4.5x unexplained factor.
        assert_eq!(c.index, 4);
        assert!(c.at_work > 3243.0 && c.at_work < 3309.0, "at {}", c.at_work);
        assert!(c.severity > 3.0 && c.severity < 8.0, "severity {}", c.severity);
    }

    #[test]
    fn graceful_sort_curve_is_a_knee_not_a_cliff() {
        let a = detect_changepoints(&SORT_ROWS, &SORT_GRACEFUL, &cfg());
        assert!(a.diagnostics.is_empty());
        assert_eq!(a.cliff_count(), 0, "graceful degradation must not be a cliff: {a:?}");
        let knees: Vec<_> = a.knees().collect();
        assert_eq!(knees.len(), 1, "{a:?}");
        let k = knees[0];
        // The bend is at the spill threshold: slope ~1 below, several
        // above as overflow I/O accrues.
        assert!(k.at_work >= 3243.0 && k.at_work <= 3440.0, "at {}", k.at_work);
        assert!(k.severity >= cfg().knee_slope_break);
    }

    #[test]
    fn smooth_power_laws_are_clean() {
        for exponent in [0.0, 0.5, 1.0, 1.7] {
            let work: Vec<f64> = (0..12).map(|k| (1u64 << k) as f64).collect();
            let cost: Vec<f64> = work.iter().map(|w| 0.003 * w.powf(exponent)).collect();
            let a = detect_changepoints(&work, &cost, &cfg());
            assert!(a.is_clean(), "exponent {exponent}: {a:?}");
        }
    }

    #[test]
    fn gentle_slope_wobble_is_clean() {
        // The measured Figure 1 improved index scan: the log–log slope
        // wanders between ~0 and ~0.8 (B-tree descent vs per-row regimes)
        // without a cliff or a regime break.  A regression guard for the
        // default thresholds.
        let work: Vec<f64> = (0..17).map(|k| (16u64 << k) as f64).collect();
        let cost = [
            1.2104e-2, 1.9107e-2, 2.6595e-2, 3.1890e-2, 3.5062e-2, 5.3806e-2, 9.2656e-2,
            1.5438e-1, 2.1029e-1, 2.3051e-1, 2.3546e-1, 2.4297e-1, 2.5799e-1, 2.8840e-1,
            3.4986e-1, 4.7411e-1, 7.2521e-1,
        ];
        let a = detect_changepoints(&work, &cost, &cfg());
        assert!(a.is_clean(), "{a:?}");
    }

    #[test]
    fn zero_cost_cell_does_not_mask_the_cliff() {
        // The old threshold detector `continue`d on a non-positive
        // predecessor, so the jump right after the zero went uncounted.
        let work = [1.0, 2.0, 4.0, 8.0, 16.0];
        let cost = [1.0, 2.0, 0.0, 40.0, 80.0];
        let a = detect_changepoints(&work, &cost, &cfg());
        assert_eq!(a.diagnostics.len(), 1);
        assert!(a.diagnostics[0].contains("cost[2]"), "{:?}", a.diagnostics);
        assert_eq!(a.cliff_count(), 1, "{a:?}");
        let c = a.cliffs().next().unwrap();
        assert_eq!(c.index, 3, "the cliff lands across the excluded cell");
    }

    #[test]
    fn non_finite_inputs_are_diagnosed() {
        let work = [1.0, 2.0, 4.0, 8.0];
        let a = detect_changepoints(&work, &[1.0, f64::NAN, 4.0, 8.0], &cfg());
        assert_eq!(a.diagnostics.len(), 1);
        assert!(a.diagnostics[0].contains("not finite"));
        let a = detect_changepoints(&work, &[1.0, f64::INFINITY, 4.0, 8.0], &cfg());
        assert!(a.diagnostics[0].contains("not finite"));
        let a = detect_changepoints(&[1.0, 0.0, 4.0, 8.0], &[1.0, 2.0, 4.0, 8.0], &cfg());
        assert!(a.diagnostics[0].contains("work[1]"));
        let a = detect_changepoints(&[1.0, 4.0, 2.0, 8.0], &[1.0, 2.0, 4.0, 8.0], &cfg());
        assert!(a.diagnostics[0].contains("ascend"));
    }

    #[test]
    fn level_shift_is_classified_cliff_with_its_factor() {
        // cost = w below 16, 12·w from 16 on: severity converges on 12.
        let work: Vec<f64> = (0..10).map(|k| (1u64 << k) as f64).collect();
        let cost: Vec<f64> = work.iter().map(|&w| if w >= 16.0 { 12.0 * w } else { w }).collect();
        let a = detect_changepoints(&work, &cost, &cfg());
        assert_eq!(a.changepoints.len(), 1, "{a:?}");
        let c = &a.changepoints[0];
        assert_eq!(c.class, ChangeClass::Cliff);
        assert!((c.severity - 12.0).abs() < 0.5, "severity {}", c.severity);
        assert!(c.at_work > 8.0 && c.at_work < 16.0);
    }

    #[test]
    fn second_cliff_in_the_window_is_not_masked() {
        // Two level shifts two grid steps apart: the first cliff's steep
        // segment must not contaminate the reference median that should
        // flag the second (the fixpoint iteration's reason to exist).
        let work: Vec<f64> = (0..10).map(|k| (1u64 << k) as f64).collect();
        let cost: Vec<f64> = work
            .iter()
            .map(|&w| w * if w >= 32.0 { 150.0 } else if w >= 8.0 { 30.0 } else { 1.0 })
            .collect();
        let a = detect_changepoints(&work, &cost, &cfg());
        let cliffs: Vec<_> = a.cliffs().collect();
        assert_eq!(cliffs.len(), 2, "{a:?}");
        assert!((cliffs[0].severity - 30.0).abs() < 1.0, "first {}", cliffs[0].severity);
        assert!((cliffs[1].severity - 5.0).abs() < 0.5, "second {}", cliffs[1].severity);
        assert_eq!(a.knee_count(), 0, "{a:?}");
    }

    #[test]
    fn twin_cliffs_keep_their_full_severity() {
        // Two 10x shifts near each other must each report ~10x, not the
        // ~sqrt(10) a contaminated shared reference would yield.
        let work: Vec<f64> = (0..10).map(|k| (1u64 << k) as f64).collect();
        let cost: Vec<f64> = work
            .iter()
            .map(|&w| w * if w >= 32.0 { 100.0 } else if w >= 8.0 { 10.0 } else { 1.0 })
            .collect();
        let a = detect_changepoints(&work, &cost, &cfg());
        let cliffs: Vec<_> = a.cliffs().collect();
        assert_eq!(cliffs.len(), 2, "{a:?}");
        for c in cliffs {
            assert!((c.severity - 10.0).abs() < 0.5, "severity {}", c.severity);
        }
    }

    #[test]
    fn slope_break_is_classified_knee_at_the_break_point() {
        // Continuous curve, slope 0.5 below 32 and 2.5 above.
        let work: Vec<f64> = (0..12).map(|k| (1u64 << k) as f64).collect();
        let cost: Vec<f64> = work
            .iter()
            .map(|&w| if w <= 32.0 { w.powf(0.5) } else { 32.0f64.powf(0.5) * (w / 32.0).powf(2.5) })
            .collect();
        let a = detect_changepoints(&work, &cost, &cfg());
        assert_eq!(a.cliff_count(), 0, "{a:?}");
        assert_eq!(a.knee_count(), 1, "{a:?}");
        let k = a.knees().next().unwrap();
        assert_eq!(k.at_work, 32.0);
        assert!((k.severity - 2.0).abs() < 0.2, "severity {}", k.severity);
    }

    #[test]
    fn jagged_series_never_report_sub_threshold_severity() {
        // A sawtooth flags many segments; once most neighbours are
        // flagged, the fallback reference can yield a tiny (even
        // negative) excess — severity must still honour its
        // `>= cliff_factor` contract, or downstream log-severity sums go
        // negative and *reward* the noisiest curves.
        let work: Vec<f64> = (0..7).map(|k| (1u64 << k) as f64).collect();
        let cost = [6154.98, 8.2e-4, 149.4, 7.3e-4, 10.87, 5.5e-4, 676.9];
        let a = detect_changepoints(&work, &cost, &cfg());
        assert!(a.cliff_count() > 0, "{a:?}");
        for c in a.cliffs() {
            assert!(c.severity >= cfg().cliff_factor, "severity {} too small", c.severity);
        }
    }

    #[test]
    fn too_short_series_return_empty() {
        assert!(detect_changepoints(&[1.0, 2.0], &[1.0, 50.0], &cfg()).changepoints.is_empty());
        assert!(detect_changepoints(&[], &[], &cfg()).is_clean());
    }
}
