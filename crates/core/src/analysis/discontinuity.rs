//! Discontinuity detection.
//!
//! §4: "we expect that some implementations of sorting spill their entire
//! input to disk if the input size exceeds the memory size by merely a
//! single record.  Those sort implementations lacking graceful degradation
//! will show discontinuous execution costs."  A discontinuity is a jump in
//! cost between adjacent parameter points far beyond the change in work.

/// A jump in cost between adjacent grid points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discontinuity {
    /// Index `i`: the jump is from point `i - 1` to `i`.
    pub index: usize,
    /// Cost before and after.
    pub cost: (f64, f64),
    /// Cost ratio `cost_i / cost_{i-1}`.
    pub cost_ratio: f64,
    /// Work ratio `work_i / work_{i-1}` for context.
    pub work_ratio: f64,
}

/// Find points where cost grows by more than `jump_factor` times the work
/// growth between adjacent points (e.g. `jump_factor = 4.0` on a
/// factor-of-2 grid flags cost jumps above 8x).  Works on any ascending
/// positive `work` axis.
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn detect_discontinuities(work: &[f64], cost: &[f64], jump_factor: f64) -> Vec<Discontinuity> {
    assert_eq!(work.len(), cost.len(), "axis/cost length mismatch");
    let mut out = Vec::new();
    for i in 1..cost.len() {
        if cost[i - 1] <= 0.0 || work[i - 1] <= 0.0 {
            continue;
        }
        let cost_ratio = cost[i] / cost[i - 1];
        let work_ratio = work[i] / work[i - 1];
        if cost_ratio > jump_factor * work_ratio {
            out.push(Discontinuity { index: i, cost: (cost[i - 1], cost[i]), cost_ratio, work_ratio });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_curve_is_clean() {
        let work = [1.0, 2.0, 4.0, 8.0];
        let cost = [1.0, 2.0, 4.0, 8.0];
        assert!(detect_discontinuities(&work, &cost, 2.0).is_empty());
    }

    #[test]
    fn detects_a_spill_cliff() {
        // Cost explodes by 50x between adjacent points (work only 2x):
        // the abrupt-sort signature.
        let work = [1.0, 2.0, 4.0, 8.0];
        let cost = [0.1, 0.2, 10.0, 11.0];
        let d = detect_discontinuities(&work, &cost, 4.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].index, 2);
        assert!((d[0].cost_ratio - 50.0).abs() < 1e-9);
        assert!((d[0].work_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn jump_factor_scales_with_work_growth() {
        // Work grows 10x and cost grows 25x: ratio-over-work is only 2.5x,
        // clean at factor 4, flagged at factor 2.
        let work = [1.0, 10.0];
        let cost = [1.0, 25.0];
        assert!(detect_discontinuities(&work, &cost, 4.0).is_empty());
        assert_eq!(detect_discontinuities(&work, &cost, 2.0).len(), 1);
    }
}
