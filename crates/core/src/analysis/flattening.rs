//! Cost-curve flattening checks.
//!
//! "The cost curve should flatten, i.e., its first derivative should
//! monotonically decrease.  Fetching more rows should cost more, but the
//! difference between fetching 100 and 200 rows should not be greater than
//! between fetching 1,000 and 1,100 rows.  This last condition is not true
//! for the improved index scan in Figure 1 as it shows a flat cost growth
//! followed by a steeper cost growth for very large result sizes." (§3.1)

/// A segment where the marginal cost per unit of work *increased*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatteningViolation {
    /// Index of the segment start (the violation is between segments
    /// `index-1 -> index` and `index -> index+1`).
    pub index: usize,
    /// Marginal cost (d cost / d work) of the earlier segment.
    pub slope_before: f64,
    /// Marginal cost of the later segment.
    pub slope_after: f64,
    /// Ratio `slope_after / slope_before` (> 1 means steepening).
    pub steepening: f64,
}

/// Find segments where the first derivative of cost w.r.t. work increases
/// by more than `factor_tolerance` (e.g. `1.25` flags slopes growing by
/// more than 25%).  Work must be ascending.
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn flattening_violations(
    work: &[f64],
    cost: &[f64],
    factor_tolerance: f64,
) -> Vec<FlatteningViolation> {
    assert_eq!(work.len(), cost.len(), "axis/cost length mismatch");
    if work.len() < 3 {
        return Vec::new();
    }
    let slopes: Vec<f64> = work
        .windows(2)
        .zip(cost.windows(2))
        .map(|(w, c)| {
            let dw = w[1] - w[0];
            debug_assert!(dw > 0.0, "work must be strictly ascending");
            (c[1] - c[0]) / dw
        })
        .collect();
    let mut out = Vec::new();
    for i in 1..slopes.len() {
        let (before, after) = (slopes[i - 1], slopes[i]);
        if before <= 0.0 {
            // Flat or declining before: any positive slope afterwards is a
            // steepening if it is materially positive.
            if after > 0.0 && before == 0.0 {
                out.push(FlatteningViolation {
                    index: i,
                    slope_before: before,
                    slope_after: after,
                    steepening: f64::INFINITY,
                });
            }
            continue;
        }
        let steepening = after / before;
        if steepening > factor_tolerance {
            out.push(FlatteningViolation { index: i, slope_before: before, slope_after: after, steepening });
        }
    }
    out
}

/// [`flattening_violations`] on log2-log2 axes — the way the paper's
/// figures are drawn and read ("result sizes differ by a factor of 2
/// between data points", costs on a log scale).
///
/// The distinction matters: Figure 1's improved index scan is *concave* in
/// linear space (early rows cost a random read each, late rows ride
/// sequential read-ahead), yet on the paper's log-log axes it shows "a flat
/// cost growth followed by a steeper cost growth for very large result
/// sizes" — the log-log slope falls to near zero where the B-tree traversal
/// dominates and then climbs back toward one as per-row work takes over.
/// This variant detects exactly that steepening.
///
/// # Panics
/// Panics if the inputs differ in length or any value is not positive
/// (log axes need positive coordinates).
pub fn flattening_violations_log2(
    work: &[f64],
    cost: &[f64],
    factor_tolerance: f64,
) -> Vec<FlatteningViolation> {
    assert!(
        work.iter().chain(cost).all(|&v| v > 0.0),
        "log-log flattening needs positive work and cost"
    );
    let lw: Vec<f64> = work.iter().map(|w| w.log2()).collect();
    let lc: Vec<f64> = cost.iter().map(|c| c.log2()).collect();
    flattening_violations(&lw, &lc, factor_tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concave_curve_is_clean() {
        // Slopes: 10, 5, 2 — monotonically decreasing.
        let work = [0.0, 1.0, 2.0, 3.0];
        let cost = [0.0, 10.0, 15.0, 17.0];
        assert!(flattening_violations(&work, &cost, 1.0).is_empty());
    }

    #[test]
    fn detects_the_improved_scan_tail() {
        // Flat growth followed by steeper growth (Figure 1's improved
        // index scan): slopes 1, 1, 4.
        let work = [0.0, 1.0, 2.0, 3.0];
        let cost = [0.0, 1.0, 2.0, 6.0];
        let v = flattening_violations(&work, &cost, 1.25);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 2);
        assert!((v[0].steepening - 4.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_suppresses_mild_steepening() {
        let work = [0.0, 1.0, 2.0];
        let cost = [0.0, 1.0, 2.1]; // slopes 1.0 then 1.1
        assert!(flattening_violations(&work, &cost, 1.25).is_empty());
        assert_eq!(flattening_violations(&work, &cost, 1.05).len(), 1);
    }

    #[test]
    fn short_series_has_no_violations() {
        assert!(flattening_violations(&[1.0, 2.0], &[1.0, 2.0], 1.0).is_empty());
    }

    #[test]
    fn loglog_flags_constant_plus_linear_cost() {
        // cost = 1 + n/64 on a geometric grid: concave in linear space
        // (slopes are constant), but on log-log axes the growth steepens
        // from ~0 toward 1 — the improved-index-scan shape.
        let work: Vec<f64> = (0..10).map(|i| (1u64 << i) as f64).collect();
        let cost: Vec<f64> = work.iter().map(|n| 1.0 + n / 64.0).collect();
        assert!(flattening_violations(&work, &cost, 1.25).is_empty());
        assert!(!flattening_violations_log2(&work, &cost, 1.25).is_empty());
    }

    #[test]
    fn loglog_power_law_is_clean() {
        // Any pure power law is a straight line on log-log axes.
        let work: Vec<f64> = (0..10).map(|i| (1u64 << i) as f64).collect();
        let cost: Vec<f64> = work.iter().map(|n| 3.0 * n.powf(0.7)).collect();
        assert!(flattening_violations_log2(&work, &cost, 1.01).is_empty());
    }
}
