//! Break-even landmarks between plans.
//!
//! Figure 1's reading hinges on landmarks: "The break-even point between
//! table scan and traditional index scan is at about 30K result rows or
//! 2^-11 of the rows in the table.  The cost of the improved index scan
//! remains competitive with the table scan all the way up to about 4M
//! result rows or 2^-4."  [`crossovers`] locates such points on a pair of
//! measured series, interpolating in log-log space (the scale the paper
//! plots in).

/// A crossover between two cost series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossover {
    /// The crossover lies between grid indices `index - 1` and `index`.
    pub index: usize,
    /// Interpolated axis value (e.g. selectivity) of the crossing.
    pub at: f64,
    /// `true` if series `a` is cheaper after the crossing.
    pub a_wins_after: bool,
}

/// Find all points where series `a` and `b` swap which one is cheaper,
/// over a shared positive ascending `axis`.  Exact ties are attributed to
/// the earlier segment.
///
/// # Panics
/// Panics if lengths differ.
pub fn crossovers(axis: &[f64], a: &[f64], b: &[f64]) -> Vec<Crossover> {
    assert!(axis.len() == a.len() && a.len() == b.len(), "series length mismatch");
    let mut out = Vec::new();
    let sign = |i: usize| -> i8 {
        match a[i].partial_cmp(&b[i]) {
            Some(std::cmp::Ordering::Less) => -1,
            Some(std::cmp::Ordering::Greater) => 1,
            _ => 0,
        }
    };
    let mut prev_sign = 0i8;
    let mut prev_idx = 0usize;
    for i in 0..axis.len() {
        let s = sign(i);
        if s == 0 {
            continue;
        }
        if prev_sign != 0 && s != prev_sign {
            out.push(Crossover {
                index: i,
                at: interpolate_crossing(axis, a, b, prev_idx, i),
                a_wins_after: s < 0,
            });
        }
        prev_sign = s;
        prev_idx = i;
    }
    out
}

/// Interpolate where `a` and `b` cross between indices `i0` and `i1`,
/// in log-log space when all values are positive.
fn interpolate_crossing(axis: &[f64], a: &[f64], b: &[f64], i0: usize, i1: usize) -> f64 {
    let (x0, x1) = (axis[i0], axis[i1]);
    let vals = [a[i0], a[i1], b[i0], b[i1], x0, x1];
    if vals.iter().any(|&v| v <= 0.0) {
        // Fall back to the midpoint.
        return 0.5 * (x0 + x1);
    }
    // Solve ln(a) - ln(b) = 0 linearly in ln(x).
    let d0 = a[i0].ln() - b[i0].ln();
    let d1 = a[i1].ln() - b[i1].ln();
    if (d1 - d0).abs() < f64::EPSILON {
        return 0.5 * (x0 + x1);
    }
    let t = d0 / (d0 - d1);
    (x0.ln() + t * (x1.ln() - x0.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_crossing_when_one_dominates() {
        let axis = [1.0, 2.0, 4.0];
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        assert!(crossovers(&axis, &a, &b).is_empty());
    }

    #[test]
    fn single_crossing_located_between_points() {
        // a constant at 4; b = axis: crossing at axis = 4.
        let axis = [1.0, 2.0, 8.0, 16.0];
        let a = [4.0, 4.0, 4.0, 4.0];
        let b = [1.0, 2.0, 8.0, 16.0];
        let xs = crossovers(&axis, &a, &b);
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].index, 2);
        assert!(xs[0].a_wins_after, "a becomes the cheaper one after the crossing");
        assert!((xs[0].at - 4.0).abs() < 0.2, "interpolated at {}", xs[0].at);
    }

    #[test]
    fn double_crossing() {
        let axis = [1.0, 2.0, 4.0, 8.0];
        let a = [1.0, 3.0, 3.0, 1.0];
        let b = [2.0, 2.0, 2.0, 2.0];
        let xs = crossovers(&axis, &a, &b);
        assert_eq!(xs.len(), 2);
        assert!(!xs[0].a_wins_after);
        assert!(xs[1].a_wins_after);
    }

    #[test]
    fn ties_do_not_double_count() {
        let axis = [1.0, 2.0, 4.0];
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 2.0]; // touches at index 1, crosses after
        let xs = crossovers(&axis, &a, &b);
        assert_eq!(xs.len(), 1);
        assert!(!xs[0].a_wins_after);
    }
}
