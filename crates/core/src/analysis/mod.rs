//! The paper's analysis vocabulary for reading robustness maps.
//!
//! §3.1: "One of the first things to verify in such a diagram is that the
//! actual execution cost is monotonic across the parameter space. ...
//! Moreover, the cost curve should flatten, i.e., its first derivative
//! should monotonically decrease."  §4 adds discontinuity detection (sort
//! spills), §3.2 symmetry (merge join vs. hash join), and Figure 1's
//! break-even landmarks.  §4 sketches a benchmark that "will identify
//! weaknesses in the algorithms ... track progress ... and permit daily
//! regression testing"; [`score`] is that benchmark.

pub mod changepoint;
pub mod flattening;
pub mod landmarks;
pub mod monotonicity;
pub mod score;
pub mod symmetry;

pub use changepoint::{
    detect_changepoints, ChangeClass, Changepoint, ChangepointAnalysis, ChangepointConfig,
};
pub use flattening::{flattening_violations, flattening_violations_log2, FlatteningViolation};
pub use landmarks::{crossovers, Crossover};
pub use monotonicity::{monotonicity_violations, MonotonicityViolation};
pub use score::{score_map2d, score_series, RobustnessScore};
pub use symmetry::{symmetry_of, Symmetry};
