//! Monotonicity checks.
//!
//! "Fetching rows should become more expensive with additional rows; if
//! cases exist in which fetching more rows is cheaper than fetching fewer
//! rows, something is amiss.  For example, the governing policy or some
//! implementation mechanisms might be faulty in the algorithms that switch
//! to pre-fetching large pages" (§3.1).

/// A point where cost *decreased* although work increased.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonotonicityViolation {
    /// Index `i` such that `cost[i] < cost[i - 1]`.
    pub index: usize,
    /// Work (result rows / selectivity) at `i - 1` and `i`.
    pub work: (f64, f64),
    /// Cost at `i - 1` and `i`.
    pub cost: (f64, f64),
    /// Relative drop `1 - cost_i / cost_{i-1}` in `(0, 1]`.
    pub drop: f64,
}

/// Find all monotonicity violations of `cost` as a function of ascending
/// `work`, ignoring drops smaller than `tolerance` (relative; e.g. `0.01`
/// forgives 1% measurement jitter).
///
/// # Panics
/// Panics if the inputs differ in length.
pub fn monotonicity_violations(
    work: &[f64],
    cost: &[f64],
    tolerance: f64,
) -> Vec<MonotonicityViolation> {
    assert_eq!(work.len(), cost.len(), "axis/cost length mismatch");
    let mut out = Vec::new();
    for i in 1..cost.len() {
        if cost[i - 1] <= 0.0 {
            continue;
        }
        let drop = 1.0 - cost[i] / cost[i - 1];
        if drop > tolerance {
            out.push(MonotonicityViolation {
                index: i,
                work: (work[i - 1], work[i]),
                cost: (cost[i - 1], cost[i]),
                drop,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_series_is_clean() {
        let work = [1.0, 2.0, 4.0, 8.0];
        let cost = [1.0, 1.5, 3.0, 3.0];
        assert!(monotonicity_violations(&work, &cost, 0.0).is_empty());
    }

    #[test]
    fn detects_a_dip() {
        let work = [1.0, 2.0, 4.0];
        let cost = [1.0, 0.5, 2.0];
        let v = monotonicity_violations(&work, &cost, 0.01);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 1);
        assert!((v[0].drop - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tolerance_forgives_jitter() {
        let work = [1.0, 2.0];
        let cost = [1.0, 0.995];
        assert!(monotonicity_violations(&work, &cost, 0.01).is_empty());
        assert_eq!(monotonicity_violations(&work, &cost, 0.001).len(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        monotonicity_violations(&[1.0], &[1.0, 2.0], 0.0);
    }
}
