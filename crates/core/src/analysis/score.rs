//! Robustness scores: the benchmark the paper sketches in §4.
//!
//! "With the experience thus gained, we will then define a benchmark that
//! focuses on robustness of query execution ...  This benchmark will
//! identify weaknesses in the algorithms and their implementation, track
//! progress against these weaknesses, and permit daily regression testing."
//!
//! A [`RobustnessScore`] condenses one plan's map into the quantities the
//! paper reads off its figures: worst-case quotient, coverage within small
//! factors of the best plan, smoothness, and contiguity of the optimality
//! region.  Scores order plans by *robustness*, not by peak performance —
//! the trade-off §3.3 ends on ("robustness might well trump performance").
//!
//! Smoothness is judged by the changepoint detector
//! ([`crate::analysis::changepoint`]) and enters the headline as a
//! *severity-weighted* penalty: a 1000x spill cliff costs far more than a
//! marginal 4x one, and a knee (slope break without a level shift) costs
//! less than any cliff — raw changepoint counts would rank a plan with one
//! catastrophic cliff above one with two benign knees.

use crate::analysis::changepoint::{detect_changepoints, ChangeClass, ChangepointConfig};
use crate::analysis::monotonicity::monotonicity_violations;
use crate::regions::RegionStats;
use crate::relative::{OptimalityTolerance, RelativeMap2D};

/// Condensed robustness metrics for one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessScore {
    /// Plan name.
    pub plan: String,
    /// Worst quotient vs. the best plan anywhere in the space.
    pub worst_quotient: f64,
    /// Fraction of the space within 2x of the best plan.
    pub area_within_2x: f64,
    /// Fraction of the space within 10x of the best plan.
    pub area_within_10x: f64,
    /// Cost cliffs (level shifts) along axis-parallel sweeps.
    pub cliffs: usize,
    /// Cost knees (slope breaks) along axis-parallel sweeps.
    pub knees: usize,
    /// Σ log10 of cliff severities — the severity-weighted cliff penalty
    /// (one 1000x cliff weighs like three 10x ones).
    pub cliff_log10_severity: f64,
    /// Σ knee slope-break magnitudes.
    pub knee_severity: f64,
    /// Number of monotonicity violations along axis-parallel sweeps.
    pub monotonicity_violations: usize,
    /// Cells the changepoint detector had to exclude (non-finite or
    /// non-positive measurements) across all sweeps.  A non-zero count
    /// means the smoothness numbers describe an incomplete curve — the
    /// score CSV carries it so a leaderboard entry cannot look clean by
    /// silently dropping broken cells.
    pub excluded_cells: usize,
    /// Stats of the plan's strict-ish optimality region (factor 1.2).
    pub region: RegionStats,
}

impl RobustnessScore {
    /// A single headline number in `[0, 1]`: the harmonic blend of
    /// coverage terms penalised by the worst-case quotient and by
    /// severity-weighted smoothness defects.  Designed for regression
    /// tracking, not for cross-paper comparison.
    pub fn headline(&self) -> f64 {
        let coverage = 0.5 * self.area_within_2x + 0.5 * self.area_within_10x;
        let worst_penalty = 1.0 / (1.0 + self.worst_quotient.log10().max(0.0));
        let smooth_penalty = 1.0
            / (1.0
                + 2.0 * self.cliff_log10_severity
                + 0.5 * self.knee_severity
                + self.monotonicity_violations as f64);
        coverage * worst_penalty.sqrt() * smooth_penalty.sqrt()
    }
}

/// Smoothness defects of one axis-parallel sweep, accumulated.
#[derive(Debug, Clone, Copy, Default)]
struct Smoothness {
    cliffs: usize,
    knees: usize,
    cliff_log10: f64,
    knee_severity: f64,
    monos: usize,
    excluded: usize,
}

impl Smoothness {
    fn absorb(&mut self, work: &[f64], cost: &[f64], cp: &ChangepointConfig, mono_tol: f64) {
        let analysis = detect_changepoints(work, cost, cp);
        self.excluded += analysis.diagnostics.len();
        for c in &analysis.changepoints {
            match c.class {
                ChangeClass::Cliff => {
                    self.cliffs += 1;
                    self.cliff_log10 += c.severity.log10();
                }
                ChangeClass::Knee => {
                    self.knees += 1;
                    self.knee_severity += c.severity;
                }
            }
        }
        self.monos += monotonicity_violations(work, cost, mono_tol).len();
    }
}

/// Score one plan of a 2-D relative map.  Sweeps rows and columns for
/// smoothness checks (cost as a function of each selectivity axis).
pub fn score_map2d(rel: &RelativeMap2D, plan: usize, absolute_seconds: &[f64]) -> RobustnessScore {
    let (na, nb) = rel.dims();
    assert_eq!(absolute_seconds.len(), na * nb, "seconds grid size mismatch");
    let cp = ChangepointConfig::default();
    let mut smooth = Smoothness::default();
    // Row sweeps (fix ib, vary ia).
    for ib in 0..nb {
        let work: Vec<f64> = rel.sel_a.to_vec();
        let cost: Vec<f64> = (0..na).map(|ia| absolute_seconds[ia * nb + ib]).collect();
        smooth.absorb(&work, &cost, &cp, 0.05);
    }
    // Column sweeps (fix ia, vary ib).
    for ia in 0..na {
        let work: Vec<f64> = rel.sel_b.to_vec();
        let cost: Vec<f64> = (0..nb).map(|ib| absolute_seconds[ia * nb + ib]).collect();
        smooth.absorb(&work, &cost, &cp, 0.05);
    }
    let region = RegionStats::of(&rel.optimal_region(plan, OptimalityTolerance::Factor(1.2)));
    RobustnessScore {
        plan: rel.plans[plan].clone(),
        worst_quotient: rel.worst_quotient(plan),
        area_within_2x: rel.area_within(plan, 2.0),
        area_within_10x: rel.area_within(plan, 10.0),
        cliffs: smooth.cliffs,
        knees: smooth.knees,
        cliff_log10_severity: smooth.cliff_log10,
        knee_severity: smooth.knee_severity,
        monotonicity_violations: smooth.monos,
        excluded_cells: smooth.excluded,
        region,
    }
}

/// Score a 1-D series: worst quotient and smoothness against the best of
/// the map's plans.
pub fn score_series(
    plan: &str,
    sels: &[f64],
    seconds: &[f64],
    best_seconds: &[f64],
) -> RobustnessScore {
    assert!(sels.len() == seconds.len() && seconds.len() == best_seconds.len());
    let quotients: Vec<f64> = seconds
        .iter()
        .zip(best_seconds)
        .map(|(&s, &b)| if b > 0.0 { s / b } else { 1.0 })
        .collect();
    let worst = quotients.iter().copied().fold(1.0, f64::max);
    let within = |f: f64| quotients.iter().filter(|&&q| q <= f).count() as f64 / quotients.len() as f64;
    let mut grid = crate::regions::BoolGrid::new(sels.len(), 1);
    for (i, &q) in quotients.iter().enumerate() {
        grid.set(i, 0, q <= 1.2);
    }
    let mut smooth = Smoothness::default();
    smooth.absorb(sels, seconds, &ChangepointConfig::default(), 0.05);
    RobustnessScore {
        plan: plan.to_string(),
        worst_quotient: worst,
        area_within_2x: within(2.0),
        area_within_10x: within(10.0),
        cliffs: smooth.cliffs,
        knees: smooth.knees,
        cliff_log10_severity: smooth.cliff_log10,
        knee_severity: smooth.knee_severity,
        monotonicity_violations: smooth.monos,
        excluded_cells: smooth.excluded,
        region: RegionStats::of(&grid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Map2D;
    use crate::measure::Measurement;

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, ..Default::default() }
    }

    fn rel_map() -> (RelativeMap2D, Vec<Vec<f64>>) {
        // 2x2: robust plan (always within 2x) vs. fragile plan (optimal at
        // one corner, catastrophic at another).
        let robust = vec![m(2.0), m(2.0), m(2.0), m(2.0)];
        let fragile = vec![m(1.0), m(1.5), m(3.0), m(2000.0)];
        let map = Map2D::new(
            vec![0.5, 1.0],
            vec![0.5, 1.0],
            vec!["robust".into(), "fragile".into()],
            vec![robust, fragile],
        );
        let grids = vec![map.seconds_grid(0), map.seconds_grid(1)];
        (RelativeMap2D::from_map(&map), grids)
    }

    #[test]
    fn robust_plan_scores_higher() {
        let (rel, grids) = rel_map();
        let s_robust = score_map2d(&rel, 0, &grids[0]);
        let s_fragile = score_map2d(&rel, 1, &grids[1]);
        assert!(s_robust.worst_quotient <= 2.0);
        assert!(s_fragile.worst_quotient >= 1000.0);
        assert!(s_robust.headline() > s_fragile.headline());
    }

    #[test]
    fn fragile_plan_shows_a_severity_weighted_cliff() {
        // 4x1: the fragile plan's cost explodes 800x between adjacent
        // selectivities while the robust plan stays flat.
        let robust = vec![m(2.0), m(2.0), m(2.0), m(2.0)];
        let fragile = vec![m(1.0), m(1.1), m(900.0), m(990.0)];
        let map = Map2D::new(
            vec![0.125, 0.25, 0.5, 1.0],
            vec![1.0],
            vec!["robust".into(), "fragile".into()],
            vec![robust, fragile],
        );
        let rel = RelativeMap2D::from_map(&map);
        let s = score_map2d(&rel, 1, &map.seconds_grid(1));
        assert!(s.cliffs > 0, "1.1 -> 900 along an axis is a cliff: {s:?}");
        assert!(
            s.cliff_log10_severity > 2.0,
            "an ~800x jump carries its severity: {}",
            s.cliff_log10_severity
        );
        let clean = score_map2d(&rel, 0, &map.seconds_grid(0));
        assert_eq!(clean.cliffs + clean.knees, 0);
        assert!(clean.headline() > s.headline());
    }

    #[test]
    fn series_score_counts_coverage() {
        let sels = [0.25, 0.5, 1.0];
        let best = [1.0, 2.0, 4.0];
        let mine = [1.0, 3.0, 100.0];
        let s = score_series("p", &sels, &mine, &best);
        assert!((s.area_within_2x - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.worst_quotient - 25.0).abs() < 1e-12);
        assert_eq!(s.region.total_area, 1);
        // The 33x jump from 3 to 100 over a factor-2 step is a cliff, and
        // its severity feeds the headline penalty.
        assert_eq!(s.cliffs, 1);
        assert!(s.cliff_log10_severity > 0.5);
    }
}
