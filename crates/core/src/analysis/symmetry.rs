//! Symmetry of 2-D maps.
//!
//! §3.2, about Figure 5: "the symmetry in this diagram indicates that the
//! two dimensions have very similar effects.  Hash join plans perform
//! better in some cases but do not exhibit this symmetry, as predicted
//! also in our prior research \[GLS94\]."
//!
//! For a plan measured on a square grid, we compare `cost(ia, ib)` with
//! `cost(ib, ia)`; the asymmetry score is the maximum (and mean) absolute
//! log-ratio between mirrored cells.

/// Symmetry summary of one plan's grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Symmetry {
    /// Maximum `|ln(cost(i,j) / cost(j,i))|` over all mirrored pairs.
    pub max_log_ratio: f64,
    /// Mean of the same quantity.
    pub mean_log_ratio: f64,
}

impl Symmetry {
    /// Whether the map is symmetric within `factor` (e.g. `1.15` tolerates
    /// 15% mirrored differences).
    pub fn is_symmetric_within(&self, factor: f64) -> bool {
        assert!(factor >= 1.0);
        self.max_log_ratio <= factor.ln()
    }
}

/// Compute the symmetry of an ia-major `grid` over a square `n x n` space.
///
/// # Panics
/// Panics if `grid.len() != n * n`.
pub fn symmetry_of(grid: &[f64], n: usize) -> Symmetry {
    assert_eq!(grid.len(), n * n, "grid must be square");
    let mut max_lr = 0.0f64;
    let mut sum = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let x = grid[i * n + j];
            let y = grid[j * n + i];
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let lr = (x / y).ln().abs();
            max_lr = max_lr.max(lr);
            sum += lr;
            pairs += 1;
        }
    }
    Symmetry {
        max_log_ratio: max_lr,
        mean_log_ratio: if pairs > 0 { sum / pairs as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_symmetric_grid() {
        // cost = f(i) + f(j) is symmetric.
        let n = 4;
        let grid: Vec<f64> =
            (0..n).flat_map(|i| (0..n).map(move |j| (i + j + 1) as f64)).collect();
        let s = symmetry_of(&grid, n);
        assert_eq!(s.max_log_ratio, 0.0);
        assert!(s.is_symmetric_within(1.01));
    }

    #[test]
    fn asymmetric_grid_is_flagged() {
        // cost depends on i only (Figure 4's single-index plan): mirrored
        // cells differ wildly.
        let n = 4;
        let grid: Vec<f64> = (0..n).flat_map(|i| (0..n).map(move |_| 10f64.powi(i as i32))).collect();
        let s = symmetry_of(&grid, n);
        assert!(!s.is_symmetric_within(2.0));
        assert!(s.max_log_ratio > 6.0); // ratio up to 10^3
    }

    #[test]
    fn mild_noise_stays_within_tolerance() {
        let n = 3;
        let mut grid: Vec<f64> = (0..n).flat_map(|i| (0..n).map(move |j| (i + j + 1) as f64)).collect();
        grid[1] *= 1.05; // 5% wobble in cell (0, 1)
        let s = symmetry_of(&grid, n);
        assert!(s.is_symmetric_within(1.10));
        assert!(!s.is_symmetric_within(1.01));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_grid_panics() {
        symmetry_of(&[1.0, 2.0], 3);
    }
}
