//! # robustmap-core
//!
//! **Robustness maps** for database query execution — the primary
//! contribution of Graefe, Kuno & Wiener, *Visualizing the robustness of
//! query execution* (CIDR 2009), as a reusable library.
//!
//! A robustness map measures a *fixed* query execution plan at every point
//! of a parameter space (predicate selectivities, memory, input sizes) and
//! turns the measurements into diagrams and analyses:
//!
//! * [`param`] — log-scale parameter grids ("result sizes differ by a
//!   factor of 2 between data points");
//! * [`measure`] — the map builder: sweeps plan × grid against the
//!   workload, one isolated session per cell, in parallel and
//!   deterministically;
//! * [`map`] — 1-D series maps (Figures 1-2) and 2-D grid maps (Figures
//!   4-9);
//! * [`relative`] — performance relative to the best plan at each point
//!   (Figures 2, 7, 8, 9);
//! * [`regions`] — regions of optimality, their size, shape and
//!   contiguity, and multi-optimal counting (Figure 10, §3.4);
//! * [`analysis`] — the paper's reading vocabulary: monotonicity checks,
//!   cost-curve flattening, changepoint detection (cost cliffs vs knees),
//!   symmetry (Figure 5), break-even landmarks (Figure 1), and the
//!   robustness scores sketched as a benchmark in §4;
//! * [`render`] — the order-of-magnitude color scales of Figures 3 and 6,
//!   ANSI terminal heat maps, SVG heat maps and log-log line plots, CSV;
//! * [`report`] — plain-text tables that print the same series the paper's
//!   figures show;
//! * [`serve`] — deterministic concurrent serving: bursts of queries over
//!   one shared buffer pool, interleaved round-robin at charge-event
//!   quanta, making contention a sweepable run-time condition.

pub mod analysis;
pub mod map;
pub mod measure;
pub mod param;
pub mod regions;
pub mod regression;
pub mod relative;
pub mod render;
pub mod report;
pub mod serve;

pub use map::{Map1D, Map2D, Series};
pub use measure::{
    build_map1d, build_map2d, measure_batch, measure_plan, MeasureConfig, Measurement,
    SweepArena,
};
pub use param::{Grid1D, Grid2D};
pub use regions::{connected_components, BoolGrid, Region, RegionStats};
pub use regression::{CheckConfig, CheckResult, RegressionSuite};
pub use relative::{OptimalityTolerance, RelativeMap2D};
pub use serve::{serve_concurrent, QueryOutcome, ServeConfig, ServeReport, ENV_QUANTUM};
