//! Robustness map data structures.
//!
//! A map holds one [`crate::measure::Measurement`] per plan
//! per parameter point.  1-D maps (Figures 1, 2) are families of series
//! over a selectivity axis; 2-D maps (Figures 4-9) are per-plan grids over
//! two selectivity axes.

use crate::measure::Measurement;

/// One plan's measurements across a 1-D sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Plan name (map legend label).
    pub plan: String,
    /// One measurement per grid point, in axis order.
    pub points: Vec<Measurement>,
}

impl Series {
    /// The simulated seconds of each point.
    pub fn seconds(&self) -> Vec<f64> {
        self.points.iter().map(|m| m.seconds).collect()
    }
}

/// A 1-D robustness map: several plans over one selectivity axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Map1D {
    /// The selectivity axis (ascending).
    pub sels: Vec<f64>,
    /// Result sizes (rows) at each axis point — the paper labels its x-axis
    /// in result rows.
    pub result_rows: Vec<u64>,
    /// One series per plan.
    pub series: Vec<Series>,
}

impl Map1D {
    /// Number of axis points.
    pub fn len(&self) -> usize {
        self.sels.len()
    }

    /// Whether the map has no points.
    pub fn is_empty(&self) -> bool {
        self.sels.is_empty()
    }

    /// Find a series by plan name.
    pub fn series_named(&self, plan: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.plan == plan)
    }

    /// The best (minimum) seconds at each axis point across all plans.
    pub fn best_seconds(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| {
                self.series
                    .iter()
                    .map(|s| s.points[i].seconds)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Per-plan quotient series relative to the best plan at each point
    /// (the paper's "performance relative to the best plan", Figure 2).
    pub fn relative(&self) -> Vec<(String, Vec<f64>)> {
        let best = self.best_seconds();
        self.series
            .iter()
            .map(|s| {
                let q = s
                    .points
                    .iter()
                    .zip(&best)
                    .map(|(m, &b)| if b > 0.0 { m.seconds / b } else { 1.0 })
                    .collect();
                (s.plan.clone(), q)
            })
            .collect()
    }
}

/// A 2-D robustness map: several plans over a selectivity × selectivity
/// grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Map2D {
    /// The `a` (x) axis, ascending.
    pub sel_a: Vec<f64>,
    /// The `b` (y) axis, ascending.
    pub sel_b: Vec<f64>,
    /// Plan names, indexing the outer dimension of `data`.
    pub plans: Vec<String>,
    /// `data[plan][ia * sel_b.len() + ib]`.
    data: Vec<Vec<Measurement>>,
}

impl Map2D {
    /// Assemble a map; `data` must have one inner vector per plan, each of
    /// length `sel_a.len() * sel_b.len()` in `ia`-major order.
    pub fn new(
        sel_a: Vec<f64>,
        sel_b: Vec<f64>,
        plans: Vec<String>,
        data: Vec<Vec<Measurement>>,
    ) -> Self {
        assert_eq!(plans.len(), data.len(), "one grid per plan");
        let cells = sel_a.len() * sel_b.len();
        assert!(data.iter().all(|d| d.len() == cells), "grid size mismatch");
        Map2D { sel_a, sel_b, plans, data }
    }

    /// Grid dimensions `(|a|, |b|)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.sel_a.len(), self.sel_b.len())
    }

    /// Number of plans.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// Flat cell index for `(ia, ib)`.
    #[inline]
    pub fn cell(&self, ia: usize, ib: usize) -> usize {
        debug_assert!(ia < self.sel_a.len() && ib < self.sel_b.len());
        ia * self.sel_b.len() + ib
    }

    /// Measurement of `plan` at `(ia, ib)`.
    pub fn get(&self, plan: usize, ia: usize, ib: usize) -> &Measurement {
        &self.data[plan][self.cell(ia, ib)]
    }

    /// The whole grid of one plan (ia-major).
    pub fn plan_grid(&self, plan: usize) -> &[Measurement] {
        &self.data[plan]
    }

    /// Seconds of `plan` as an ia-major vector.
    pub fn seconds_grid(&self, plan: usize) -> Vec<f64> {
        self.data[plan].iter().map(|m| m.seconds).collect()
    }

    /// Index of a plan by name.
    pub fn plan_index(&self, name: &str) -> Option<usize> {
        self.plans.iter().position(|p| p == name)
    }

    /// Min and max seconds of one plan across the grid (the paper reports
    /// e.g. "ranging from 4 seconds to 890 seconds" for Figure 4).
    pub fn seconds_range(&self, plan: usize) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for m in &self.data[plan] {
            lo = lo.min(m.seconds);
            hi = hi.max(m.seconds);
        }
        (lo, hi)
    }

    /// Restrict to a single plan (useful for rendering).
    pub fn single_plan(&self, plan: usize) -> Map2D {
        self.subset(&[plan])
    }

    /// Restrict to a subset of plans, in the given order — e.g. one
    /// system's repertoire out of an all-systems map.
    pub fn subset(&self, plans: &[usize]) -> Map2D {
        Map2D {
            sel_a: self.sel_a.clone(),
            sel_b: self.sel_b.clone(),
            plans: plans.iter().map(|&p| self.plans[p].clone()).collect(),
            data: plans.iter().map(|&p| self.data[p].clone()).collect(),
        }
    }

    /// Restrict to the plans whose names start with `prefix`.
    pub fn subset_by_prefix(&self, prefix: &str) -> Map2D {
        let idx: Vec<usize> = self
            .plans
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with(prefix))
            .map(|(i, _)| i)
            .collect();
        self.subset(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Measurement;

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, io: Default::default(), rows: 0, spilled: false }
    }

    fn tiny_map() -> Map2D {
        // 2x3 grid, 2 plans.
        let a = vec![0.25, 1.0];
        let b = vec![0.1, 0.5, 1.0];
        let p0: Vec<Measurement> = (0..6).map(|i| m(i as f64 + 1.0)).collect();
        let p1: Vec<Measurement> = (0..6).map(|i| m(10.0 - i as f64)).collect();
        Map2D::new(a, b, vec!["p0".into(), "p1".into()], vec![p0, p1])
    }

    #[test]
    fn map2d_indexing() {
        let map = tiny_map();
        assert_eq!(map.dims(), (2, 3));
        assert_eq!(map.get(0, 0, 0).seconds, 1.0);
        assert_eq!(map.get(0, 1, 2).seconds, 6.0);
        assert_eq!(map.get(1, 0, 1).seconds, 9.0);
        assert_eq!(map.seconds_range(0), (1.0, 6.0));
        assert_eq!(map.plan_index("p1"), Some(1));
        assert_eq!(map.plan_index("zz"), None);
    }

    #[test]
    #[should_panic(expected = "grid size mismatch")]
    fn map2d_rejects_bad_sizes() {
        Map2D::new(vec![0.5], vec![0.5], vec!["p".into()], vec![vec![]]);
    }

    #[test]
    fn map1d_relative_quotients() {
        let map = Map1D {
            sels: vec![0.5, 1.0],
            result_rows: vec![5, 10],
            series: vec![
                Series { plan: "fast".into(), points: vec![m(1.0), m(2.0)] },
                Series { plan: "slow".into(), points: vec![m(3.0), m(2.0)] },
            ],
        };
        assert_eq!(map.best_seconds(), vec![1.0, 2.0]);
        let rel = map.relative();
        assert_eq!(rel[0].1, vec![1.0, 1.0]);
        assert_eq!(rel[1].1, vec![3.0, 1.0]);
        assert!(map.series_named("slow").is_some());
    }

    #[test]
    fn single_plan_projection() {
        let map = tiny_map();
        let solo = map.single_plan(1);
        assert_eq!(solo.plan_count(), 1);
        assert_eq!(solo.plans[0], "p1");
        assert_eq!(solo.get(0, 1, 2).seconds, 5.0);
    }
}
