//! The map builder: measuring plans across parameter grids.
//!
//! Each (plan, grid point) pair executes in a fresh [`Session`] — cold
//! buffer pool, private simulated clock — so every cell is independent and
//! the whole map is deterministic no matter how many threads sweep it.
//! That mirrors the paper's methodology of measuring each plan/parameter
//! combination in isolation.

use robustmap_executor::{execute_count, ExecCtx, PlanSpec};
use robustmap_storage::{BufferPool, CostModel, Database, EvictionPolicy, IoStats, Session};
use robustmap_systems::{SinglePredPlan, TwoPredPlan};
use robustmap_workload::Workload;

use crate::map::{Map1D, Map2D, Series};
use crate::param::{Grid1D, Grid2D};

/// One measured plan execution: the paper's unit of data.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Measurement {
    /// Simulated elapsed seconds (the map's z value).
    pub seconds: f64,
    /// I/O and CPU counters.
    pub io: IoStats,
    /// Result rows.
    pub rows: u64,
    /// Whether any operator spilled.
    pub spilled: bool,
}

/// Run-time conditions shared by every cell of a map.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Buffer pool size in pages for each execution (a run-time resource
    /// dimension in its own right).
    pub pool_pages: usize,
    /// Replacement policy.
    pub policy: EvictionPolicy,
    /// Memory grant per query, in bytes.
    pub memory_bytes: usize,
    /// Cost model (hardware generation).
    pub model: CostModel,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            pool_pages: 1024, // 8 MiB: upper index levels stay hot, tables do not fit
            policy: EvictionPolicy::Lru,
            // 8 MiB: hash builds over roughly half the default table spill,
            // so the hash join's build-side memory cliff — the asymmetry
            // the paper contrasts with the merge join — is inside the
            // swept parameter space.
            memory_bytes: 8 << 20,
            model: CostModel::hdd_2009(),
            threads: 0,
        }
    }
}

impl MeasureConfig {
    fn effective_threads(&self, work_items: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, work_items.max(1))
    }

    fn session(&self) -> Session {
        Session::new(self.model.clone(), BufferPool::new(self.pool_pages, self.policy))
    }
}

/// Execute one plan under the configured run-time conditions and return its
/// measurement.  The building block for custom sweeps (sort-spill maps,
/// memory maps, buffer-pool maps).
pub fn measure_plan(db: &Database, plan: &PlanSpec, cfg: &MeasureConfig) -> Measurement {
    let session = cfg.session();
    let ctx = ExecCtx::new(db, &session, cfg.memory_bytes);
    let stats = execute_count(plan, &ctx).expect("measured plans must be well-formed");
    Measurement {
        seconds: stats.seconds,
        io: stats.io,
        rows: stats.rows_out,
        spilled: stats.spilled,
    }
}

/// Sweep single-predicate plans over a 1-D selectivity grid (Figures 1, 2).
pub fn build_map1d(
    w: &Workload,
    plans: &[SinglePredPlan],
    grid: &Grid1D,
    cfg: &MeasureConfig,
) -> Map1D {
    let thresholds: Vec<(i64, u64)> =
        grid.sels().iter().map(|&s| w.cal_a.threshold_with_count(s)).collect();
    // Work item = (plan index, grid index).
    let specs: Vec<(usize, usize, PlanSpec)> = plans
        .iter()
        .enumerate()
        .flat_map(|(pi, plan)| {
            thresholds
                .iter()
                .enumerate()
                .map(move |(gi, &(t, _))| (pi, gi, plan.build(t)))
        })
        .collect();
    let results = run_parallel(&w.db, &specs, cfg, plans.len(), grid.len());
    let series = plans
        .iter()
        .enumerate()
        .map(|(pi, plan)| Series {
            plan: plan.name.clone(),
            points: (0..grid.len()).map(|gi| results[pi * grid.len() + gi]).collect(),
        })
        .collect();
    Map1D {
        sels: grid.sels().to_vec(),
        result_rows: thresholds.iter().map(|&(_, c)| c).collect(),
        series,
    }
}

/// Sweep two-predicate plans over a 2-D selectivity grid (Figures 4-10).
pub fn build_map2d(
    w: &Workload,
    plans: &[TwoPredPlan],
    grid: &Grid2D,
    cfg: &MeasureConfig,
) -> Map2D {
    let ta: Vec<i64> = grid.sel_a().iter().map(|&s| w.cal_a.threshold(s)).collect();
    let tb: Vec<i64> = grid.sel_b().iter().map(|&s| w.cal_b.threshold(s)).collect();
    let (na, nb) = grid.dims();
    let specs: Vec<(usize, usize, PlanSpec)> = plans
        .iter()
        .enumerate()
        .flat_map(|(pi, plan)| {
            let ta = &ta;
            let tb = &tb;
            (0..na).flat_map(move |ia| {
                (0..nb).map(move |ib| (pi, ia * nb + ib, plan.build(ta[ia], tb[ib])))
            })
        })
        .collect();
    let cells = na * nb;
    let results = run_parallel(&w.db, &specs, cfg, plans.len(), cells);
    let data: Vec<Vec<Measurement>> = plans
        .iter()
        .enumerate()
        .map(|(pi, _)| results[pi * cells..(pi + 1) * cells].to_vec())
        .collect();
    Map2D::new(
        grid.sel_a().to_vec(),
        grid.sel_b().to_vec(),
        plans.iter().map(|p| p.name.clone()).collect(),
        data,
    )
}

/// Execute all work items across worker threads.  Returns a dense
/// plan-major result vector: slot `pi * cells + cell` holds the measurement
/// of work item `(pi, cell, _)`.  Deterministic: cell results do not depend
/// on scheduling, because every execution has a private session.
fn run_parallel(
    db: &Database,
    specs: &[(usize, usize, PlanSpec)],
    cfg: &MeasureConfig,
    plan_count: usize,
    cells: usize,
) -> Vec<Measurement> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let total_slots = plan_count * cells;
    let mut results = vec![Measurement::default(); total_slots];
    let threads = cfg.effective_threads(specs.len());
    if threads <= 1 {
        for (pi, cell, spec) in specs {
            results[pi * cells + cell] = measure_plan(db, spec, cfg);
        }
        return results;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Measurement)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((pi, cell, spec)) = specs.get(i) else { break };
                let m = measure_plan(db, spec, cfg);
                tx.send((pi * cells + cell, m)).expect("collector alive");
            });
        }
        // Workers hold the remaining senders; dropping ours lets the
        // collector loop end once every worker has finished.
        drop(tx);
        for (slot, m) in rx {
            results[slot] = m;
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_systems::{
        single_predicate_plans, two_predicate_plans, SinglePredPlanSet, SystemId,
    };
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    fn quick_cfg(threads: usize) -> MeasureConfig {
        MeasureConfig { threads, ..Default::default() }
    }

    #[test]
    fn map1d_has_expected_shape_and_counts() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
        let grid = Grid1D::pow2(6);
        let map = build_map1d(&w, &plans, &grid, &quick_cfg(2));
        assert_eq!(map.len(), 7);
        assert_eq!(map.series.len(), 3);
        // Result sizes double along the axis.
        for win in map.result_rows.windows(2) {
            assert_eq!(win[1], win[0] * 2);
        }
        // Every plan agrees on row counts at every point.
        for s in &map.series {
            for (i, p) in s.points.iter().enumerate() {
                assert_eq!(p.rows, map.result_rows[i], "{} point {i}", s.plan);
            }
        }
    }

    #[test]
    fn parallel_and_serial_maps_are_identical() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans = two_predicate_plans(SystemId::A, &w);
        let grid = Grid2D::pow2(3);
        let serial = build_map2d(&w, &plans, &grid, &quick_cfg(1));
        let parallel = build_map2d(&w, &plans, &grid, &quick_cfg(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn table_scan_series_is_flat() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
        let grid = Grid1D::pow2(8);
        let map = build_map1d(&w, &plans, &grid, &quick_cfg(0));
        let scan = map.series_named("table scan").unwrap();
        let secs = scan.seconds();
        let (lo, hi) = secs.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &s| (l.min(s), h.max(s)));
        // Constant within CPU noise of the predicate/projection work.
        assert!(hi / lo < 1.2, "table scan varies: {lo} .. {hi}");
    }

    #[test]
    fn measure_plan_reports_spills() {
        use robustmap_executor::{PlanSpec, Predicate, Projection, SpillMode};
        let w = TableBuilder::build(WorkloadConfig::small());
        let plan = PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::always_true(),
                project: Projection::All,
            }),
            key_cols: vec![0],
            mode: SpillMode::Abrupt,
            memory_bytes: 4096,
        };
        let m = measure_plan(&w.db, &plan, &MeasureConfig::default());
        assert!(m.spilled);
        assert!(m.io.page_writes > 0);
        assert_eq!(m.rows, w.rows());
    }
}
