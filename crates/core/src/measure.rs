//! The map builder: measuring plans across parameter grids.
//!
//! Each (plan, grid point) pair executes under cold-session conditions —
//! cold buffer pool, clock at zero — so every cell is independent and the
//! whole map is deterministic no matter how many threads sweep it.  That
//! mirrors the paper's methodology of measuring each plan/parameter
//! combination in isolation.
//!
//! ## The warm path
//!
//! Cold *conditions* do not require a cold *allocation*: constructing a
//! [`Session`] per cell rebuilds the buffer pool's map and slot arena
//! thousands of times per map.  Instead, each worker thread owns one
//! [`SweepArena`] — a session it [`Session::reset`]s between cells, which
//! restores exactly the as-constructed state (zero clock, empty pool, same
//! capacity and policy).  `warm_sessions_measure_like_cold_sessions` in
//! this module and `tests/warm_sweep_equivalence.rs` assert cell-for-cell
//! that the two paths produce identical [`Measurement`]s; the design
//! argument is recorded in `docs/DESIGN.md`.

use robustmap_executor::{execute_count_batched, ExecConfig, ExecCtx, PlanSpec};
use robustmap_storage::{BufferPool, CostModel, Database, EvictionPolicy, IoStats, Session};
use robustmap_systems::{SinglePredPlan, TwoPredPlan};
use robustmap_workload::Workload;

use crate::map::{Map1D, Map2D, Series};
use crate::param::{Grid1D, Grid2D};

/// One measured plan execution: the paper's unit of data.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Measurement {
    /// Simulated elapsed seconds (the map's z value).
    pub seconds: f64,
    /// I/O and CPU counters.
    pub io: IoStats,
    /// Result rows.
    pub rows: u64,
    /// Whether any operator spilled.
    pub spilled: bool,
}

/// Run-time conditions shared by every cell of a map.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Buffer pool size in pages for each execution (a run-time resource
    /// dimension in its own right).
    pub pool_pages: usize,
    /// Replacement policy.
    pub policy: EvictionPolicy,
    /// Memory grant per query, in bytes.
    pub memory_bytes: usize,
    /// Cost model (hardware generation).
    pub model: CostModel,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            pool_pages: 1024, // 8 MiB: upper index levels stay hot, tables do not fit
            policy: EvictionPolicy::Lru,
            // 8 MiB: hash builds over roughly half the default table spill,
            // so the hash join's build-side memory cliff — the asymmetry
            // the paper contrasts with the merge join — is inside the
            // swept parameter space.
            memory_bytes: 8 << 20,
            model: CostModel::hdd_2009(),
            threads: 0,
        }
    }
}

impl MeasureConfig {
    fn effective_threads(&self, work_items: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, work_items.max(1))
    }

    fn session(&self) -> Session {
        Session::new(self.model.clone(), BufferPool::new(self.pool_pages, self.policy))
    }
}

/// A reusable per-thread measurement context: one [`Session`] that is
/// [`Session::reset`] before every plan execution.
///
/// Resetting restores the exact state of a freshly constructed session —
/// cold buffer pool, clock at zero — while keeping the pool's allocations,
/// so a sweep pays the session setup once per thread instead of once per
/// cell.  Measurements taken through an arena are identical to
/// [`measure_plan`]'s fresh-session measurements (asserted by this
/// module's tests and `tests/warm_sweep_equivalence.rs`).
pub struct SweepArena {
    session: Session,
    memory_bytes: usize,
    exec_cfg: ExecConfig,
}

impl SweepArena {
    /// An arena measuring under `cfg`'s run-time conditions.
    pub fn new(cfg: &MeasureConfig) -> Self {
        SweepArena {
            session: cfg.session(),
            memory_bytes: cfg.memory_bytes,
            exec_cfg: ExecConfig::from_env(),
        }
    }

    /// Execute `plan` under cold-session conditions and return its
    /// measurement.  Plans run through the batched executor; the simulated
    /// charges are bit-identical to the row path's (see
    /// `tests/batch_equivalence.rs`), so sweeps are faster but never
    /// different.
    pub fn measure(&mut self, db: &Database, plan: &PlanSpec) -> Measurement {
        self.session.reset();
        let ctx = ExecCtx::new(db, &self.session, self.memory_bytes);
        let stats = execute_count_batched(plan, &ctx, &self.exec_cfg)
            .expect("measured plans must be well-formed");
        Measurement {
            seconds: stats.seconds,
            io: stats.io,
            rows: stats.rows_out,
            spilled: stats.spilled,
        }
    }
}

/// Execute one plan under the configured run-time conditions and return its
/// measurement.  The building block for one-off measurements; sweeps over
/// many plans should use [`measure_batch`] (or a [`SweepArena`] directly)
/// so the session is constructed once, not per cell.
pub fn measure_plan(db: &Database, plan: &PlanSpec, cfg: &MeasureConfig) -> Measurement {
    SweepArena::new(cfg).measure(db, plan)
}

/// Measure every plan in `plans`, returning measurements in input order.
///
/// This is the warm-path sweep engine all maps are built on: work items are
/// distributed over worker threads, each thread reuses one [`SweepArena`],
/// and results are written into their input slots — so the output is
/// deterministic regardless of thread count or scheduling.
pub fn measure_batch(db: &Database, plans: &[PlanSpec], cfg: &MeasureConfig) -> Vec<Measurement> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = cfg.effective_threads(plans.len());
    if threads <= 1 {
        let mut arena = SweepArena::new(cfg);
        return plans.iter().map(|p| arena.measure(db, p)).collect();
    }
    let mut results = vec![Measurement::default(); plans.len()];
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Measurement)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || {
                let mut arena = SweepArena::new(cfg);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(plan) = plans.get(i) else { break };
                    let m = arena.measure(db, plan);
                    tx.send((i, m)).expect("collector alive");
                }
            });
        }
        // Workers hold the remaining senders; dropping ours lets the
        // collector loop end once every worker has finished.
        drop(tx);
        for (slot, m) in rx {
            results[slot] = m;
        }
    });
    results
}

/// Sweep single-predicate plans over a 1-D selectivity grid (Figures 1, 2).
pub fn build_map1d(
    w: &Workload,
    plans: &[SinglePredPlan],
    grid: &Grid1D,
    cfg: &MeasureConfig,
) -> Map1D {
    let thresholds: Vec<(i64, u64)> =
        grid.sels().iter().map(|&s| w.cal_a.threshold_with_count(s)).collect();
    // All plans are constructed up front, in plan-major slot order, then
    // swept in one batch.
    let specs: Vec<PlanSpec> = plans
        .iter()
        .flat_map(|plan| thresholds.iter().map(|&(t, _)| plan.build(t)))
        .collect();
    let results = measure_batch(&w.db, &specs, cfg);
    let series = plans
        .iter()
        .enumerate()
        .map(|(pi, plan)| Series {
            plan: plan.name.clone(),
            points: (0..grid.len()).map(|gi| results[pi * grid.len() + gi]).collect(),
        })
        .collect();
    Map1D {
        sels: grid.sels().to_vec(),
        result_rows: thresholds.iter().map(|&(_, c)| c).collect(),
        series,
    }
}

/// Sweep two-predicate plans over a 2-D selectivity grid (Figures 4-10).
pub fn build_map2d(
    w: &Workload,
    plans: &[TwoPredPlan],
    grid: &Grid2D,
    cfg: &MeasureConfig,
) -> Map2D {
    let ta: Vec<i64> = grid.sel_a().iter().map(|&s| w.cal_a.threshold(s)).collect();
    let tb: Vec<i64> = grid.sel_b().iter().map(|&s| w.cal_b.threshold(s)).collect();
    let (na, nb) = grid.dims();
    // All plans constructed up front (thresholds computed once per axis,
    // not once per cell), in plan-major row-major slot order.
    let specs: Vec<PlanSpec> = plans
        .iter()
        .flat_map(|plan| {
            let ta = &ta;
            let tb = &tb;
            (0..na).flat_map(move |ia| (0..nb).map(move |ib| plan.build(ta[ia], tb[ib])))
        })
        .collect();
    let cells = na * nb;
    let results = measure_batch(&w.db, &specs, cfg);
    let data: Vec<Vec<Measurement>> = plans
        .iter()
        .enumerate()
        .map(|(pi, _)| results[pi * cells..(pi + 1) * cells].to_vec())
        .collect();
    Map2D::new(
        grid.sel_a().to_vec(),
        grid.sel_b().to_vec(),
        plans.iter().map(|p| p.name.clone()).collect(),
        data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_systems::{
        single_predicate_plans, two_predicate_plans, SinglePredPlanSet, SystemId,
    };
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    fn quick_cfg(threads: usize) -> MeasureConfig {
        MeasureConfig { threads, ..Default::default() }
    }

    #[test]
    fn map1d_has_expected_shape_and_counts() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
        let grid = Grid1D::pow2(6);
        let map = build_map1d(&w, &plans, &grid, &quick_cfg(2));
        assert_eq!(map.len(), 7);
        assert_eq!(map.series.len(), 3);
        // Result sizes double along the axis.
        for win in map.result_rows.windows(2) {
            assert_eq!(win[1], win[0] * 2);
        }
        // Every plan agrees on row counts at every point.
        for s in &map.series {
            for (i, p) in s.points.iter().enumerate() {
                assert_eq!(p.rows, map.result_rows[i], "{} point {i}", s.plan);
            }
        }
    }

    #[test]
    fn parallel_and_serial_maps_are_identical() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans = two_predicate_plans(SystemId::A, &w);
        let grid = Grid2D::pow2(3);
        let serial = build_map2d(&w, &plans, &grid, &quick_cfg(1));
        let parallel = build_map2d(&w, &plans, &grid, &quick_cfg(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn table_scan_series_is_flat() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
        let grid = Grid1D::pow2(8);
        let map = build_map1d(&w, &plans, &grid, &quick_cfg(0));
        let scan = map.series_named("table scan").unwrap();
        let secs = scan.seconds();
        let (lo, hi) = secs.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &s| (l.min(s), h.max(s)));
        // Constant within CPU noise of the predicate/projection work.
        assert!(hi / lo < 1.2, "table scan varies: {lo} .. {hi}");
    }

    #[test]
    fn warm_sessions_measure_like_cold_sessions() {
        // The warm-path contract: one arena measuring N plans in sequence
        // (including a spilling plan that dirties temp-file state) gives
        // exactly the Measurements that N fresh sessions give.
        use robustmap_executor::{PlanSpec, Predicate, Projection, SpillMode};
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans_a = single_predicate_plans(SinglePredPlanSet::WithIndexJoins, &w);
        let mut specs: Vec<PlanSpec> = Vec::new();
        for sel_exp in [0, 2, 5] {
            let t = w.cal_a.threshold(0.5f64.powi(sel_exp));
            for p in &plans_a {
                specs.push(p.build(t));
            }
            // A spilling sort between map cells: a reset must also clear
            // any pool residue of temp-file pages.
            specs.push(PlanSpec::Sort {
                input: Box::new(PlanSpec::TableScan {
                    table: w.table,
                    pred: Predicate::single(
                        robustmap_executor::ColRange::at_most(0, t),
                    ),
                    project: Projection::All,
                }),
                key_cols: vec![0],
                mode: SpillMode::Abrupt,
                memory_bytes: 4096,
            });
        }
        let cfg = MeasureConfig { threads: 1, ..Default::default() };
        let mut arena = SweepArena::new(&cfg);
        for (i, spec) in specs.iter().enumerate() {
            let warm = arena.measure(&w.db, spec);
            let cold = {
                let session = cfg.session();
                let ctx =
                    robustmap_executor::ExecCtx::new(&w.db, &session, cfg.memory_bytes);
                let stats = robustmap_executor::execute_count(spec, &ctx).unwrap();
                Measurement {
                    seconds: stats.seconds,
                    io: stats.io,
                    rows: stats.rows_out,
                    spilled: stats.spilled,
                }
            };
            assert_eq!(warm, cold, "plan #{i} diverged between warm and cold sessions");
        }
    }

    #[test]
    fn measure_batch_matches_per_plan_measurement() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
        let specs: Vec<_> =
            [0.25, 1.0].iter().flat_map(|&s| {
                let t = w.cal_a.threshold(s);
                plans.iter().map(move |p| p.build(t))
            }).collect();
        for threads in [1, 4] {
            let cfg = quick_cfg(threads);
            let batch = measure_batch(&w.db, &specs, &cfg);
            for (spec, got) in specs.iter().zip(&batch) {
                assert_eq!(*got, measure_plan(&w.db, spec, &cfg));
            }
        }
    }

    #[test]
    fn measure_plan_reports_spills() {
        use robustmap_executor::{PlanSpec, Predicate, Projection, SpillMode};
        let w = TableBuilder::build(WorkloadConfig::small());
        let plan = PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::always_true(),
                project: Projection::All,
            }),
            key_cols: vec![0],
            mode: SpillMode::Abrupt,
            memory_bytes: 4096,
        };
        let m = measure_plan(&w.db, &plan, &MeasureConfig::default());
        assert!(m.spilled);
        assert!(m.io.page_writes > 0);
        assert_eq!(m.rows, w.rows());
    }
}
