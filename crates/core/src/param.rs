//! Parameter grids.
//!
//! The paper sweeps selectivities geometrically: "Query result sizes differ
//! by a factor of 2 between data points", from `2^-16` of the table up to
//! the full table.  [`Grid1D`] and [`Grid2D`] encode such sweeps; axes are
//! ascending selectivity.

/// A 1-D sweep over selectivities (ascending, in `(0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid1D {
    sels: Vec<f64>,
}

impl Grid1D {
    /// The paper's sweep: `2^-min_exp, 2^-(min_exp-1), ..., 2^0`
    /// (`min_exp + 1` points, factor 2 apart).
    pub fn pow2(min_exp: u32) -> Self {
        let sels = (0..=min_exp).rev().map(|k| 0.5f64.powi(k as i32)).collect();
        Grid1D { sels }
    }

    /// An explicit grid; must be ascending and within `(0, 1]`.
    pub fn explicit(sels: Vec<f64>) -> Self {
        assert!(!sels.is_empty(), "empty grid");
        assert!(
            sels.windows(2).all(|w| w[0] < w[1]),
            "selectivities must be strictly ascending"
        );
        assert!(sels.iter().all(|&s| s > 0.0 && s <= 1.0), "selectivities must be in (0, 1]");
        Grid1D { sels }
    }

    /// The selectivities, ascending.
    pub fn sels(&self) -> &[f64] {
        &self.sels
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.sels.len()
    }

    /// Whether the grid is empty (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.sels.is_empty()
    }
}

/// A 2-D sweep: the cross product of two selectivity axes.
///
/// Axis `a` is the map's x dimension, axis `b` the y dimension — matching
/// the paper's "selectivities of the two predicate clauses".
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2D {
    a: Grid1D,
    b: Grid1D,
}

impl Grid2D {
    /// A square power-of-two grid for both axes.
    pub fn pow2(min_exp: u32) -> Self {
        Grid2D { a: Grid1D::pow2(min_exp), b: Grid1D::pow2(min_exp) }
    }

    /// Explicit axes.
    pub fn new(a: Grid1D, b: Grid1D) -> Self {
        Grid2D { a, b }
    }

    /// The `a` (x) axis.
    pub fn sel_a(&self) -> &[f64] {
        self.a.sels()
    }

    /// The `b` (y) axis.
    pub fn sel_b(&self) -> &[f64] {
        self.b.sels()
    }

    /// Grid dimensions `(|a|, |b|)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.a.len(), self.b.len())
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.a.len() * self.b.len()
    }

    /// Whether the two axes are identical (symmetry analysis needs this).
    pub fn is_square(&self) -> bool {
        self.a == self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_grid_matches_paper_sweep() {
        let g = Grid1D::pow2(16);
        assert_eq!(g.len(), 17);
        assert!((g.sels()[0] - 2f64.powi(-16)).abs() < 1e-18);
        assert_eq!(*g.sels().last().unwrap(), 1.0);
        // Factor 2 between points.
        for w in g.sels().windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_grid_validates() {
        let g = Grid1D::explicit(vec![0.1, 0.5, 1.0]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_grid_panics() {
        Grid1D::explicit(vec![0.5, 0.1]);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn out_of_range_grid_panics() {
        Grid1D::explicit(vec![0.0, 0.5]);
    }

    #[test]
    fn grid2d_dims() {
        let g = Grid2D::pow2(8);
        assert_eq!(g.dims(), (9, 9));
        assert_eq!(g.cells(), 81);
        assert!(g.is_square());
        let g2 = Grid2D::new(Grid1D::pow2(4), Grid1D::pow2(8));
        assert!(!g2.is_square());
        assert_eq!(g2.dims(), (5, 9));
    }
}
