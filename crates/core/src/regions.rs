//! Regions of optimality: size, shape, and contiguity.
//!
//! §3.4 of the paper: "The most interesting aspects of these maps would be
//! the size and the shape of each plan's optimality region.  Ideally, these
//! regions would be continuous, simple shapes. ... it might be interesting
//! to focus on irregular shapes of optimality regions — chances are good
//! that some implementation idiosyncrasy rather than the algorithm itself
//! causes the irregular shape."
//!
//! This module quantifies that: connected components (4-connectivity) of a
//! boolean grid, their area and perimeter, and an isoperimetric
//! irregularity measure.

/// A boolean grid over a 2-D parameter space (`ia`-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolGrid {
    width: usize,  // |a|
    height: usize, // |b|
    cells: Vec<bool>,
}

impl BoolGrid {
    /// An all-false grid of the given dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        BoolGrid { width, height, cells: vec![false; width * height] }
    }

    /// Build from a predicate over `(ia, ib)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut g = Self::new(width, height);
        for ia in 0..width {
            for ib in 0..height {
                g.set(ia, ib, f(ia, ib));
            }
        }
        g
    }

    /// Grid dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Value at `(ia, ib)`.
    #[inline]
    pub fn get(&self, ia: usize, ib: usize) -> bool {
        self.cells[ia * self.height + ib]
    }

    /// Set `(ia, ib)`.
    #[inline]
    pub fn set(&mut self, ia: usize, ib: usize, v: bool) {
        self.cells[ia * self.height + ib] = v;
    }

    /// Number of true cells.
    pub fn count(&self) -> usize {
        self.cells.iter().filter(|&&c| c).count()
    }

    /// Fraction of true cells.
    pub fn fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.count() as f64 / self.cells.len() as f64
    }
}

/// One connected component of true cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Member cells as `(ia, ib)` pairs, sorted.
    pub cells: Vec<(usize, usize)>,
    /// Number of cells.
    pub area: usize,
    /// Boundary edge count (edges to false cells or the grid border).
    pub perimeter: usize,
}

impl Region {
    /// Isoperimetric irregularity: `perimeter^2 / (16 * area)`, normalised
    /// so a square region scores 1.0; elongated or ragged regions score
    /// higher.
    pub fn irregularity(&self) -> f64 {
        if self.area == 0 {
            return 0.0;
        }
        (self.perimeter * self.perimeter) as f64 / (16.0 * self.area as f64)
    }
}

/// Connected components of the true cells under 4-connectivity, largest
/// first.
pub fn connected_components(grid: &BoolGrid) -> Vec<Region> {
    let (w, h) = grid.dims();
    let mut visited = BoolGrid::new(w, h);
    let mut regions = Vec::new();
    for start_a in 0..w {
        for start_b in 0..h {
            if !grid.get(start_a, start_b) || visited.get(start_a, start_b) {
                continue;
            }
            // BFS flood fill.
            let mut cells = Vec::new();
            let mut perimeter = 0usize;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back((start_a, start_b));
            visited.set(start_a, start_b, true);
            while let Some((a, b)) = queue.pop_front() {
                cells.push((a, b));
                let neighbours = [
                    (a.wrapping_sub(1), b),
                    (a + 1, b),
                    (a, b.wrapping_sub(1)),
                    (a, b + 1),
                ];
                for (na, nb) in neighbours {
                    if na >= w || nb >= h || !grid.get(na, nb) {
                        perimeter += 1;
                        continue;
                    }
                    if !visited.get(na, nb) {
                        visited.set(na, nb, true);
                        queue.push_back((na, nb));
                    }
                }
            }
            cells.sort_unstable();
            regions.push(Region { area: cells.len(), cells, perimeter });
        }
    }
    regions.sort_by_key(|r| std::cmp::Reverse(r.area));
    regions
}

/// Summary statistics of a plan's optimality region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Number of connected components ("this region is not continuous,
    /// which is rather surprising" — Figure 7).
    pub component_count: usize,
    /// Total true cells.
    pub total_area: usize,
    /// Cells in the largest component.
    pub largest_area: usize,
    /// Fraction of the whole grid covered.
    pub coverage: f64,
    /// Irregularity of the largest component (1.0 = square).
    pub largest_irregularity: f64,
}

impl RegionStats {
    /// Compute stats for a boolean grid.
    pub fn of(grid: &BoolGrid) -> RegionStats {
        let regions = connected_components(grid);
        let largest = regions.first();
        RegionStats {
            component_count: regions.len(),
            total_area: grid.count(),
            largest_area: largest.map_or(0, |r| r.area),
            coverage: grid.fraction(),
            largest_irregularity: largest.map_or(0.0, Region::irregularity),
        }
    }

    /// Whether the region is one contiguous piece (or empty).
    pub fn is_contiguous(&self) -> bool {
        self.component_count <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_from(rows: &[&str]) -> BoolGrid {
        // rows[ib reversed] of '#'/'.' strings, width = row length.
        let h = rows.len();
        let w = rows[0].len();
        BoolGrid::from_fn(w, h, |ia, ib| rows[h - 1 - ib].as_bytes()[ia] == b'#')
    }

    #[test]
    fn empty_grid_has_no_regions() {
        let g = BoolGrid::new(4, 4);
        assert!(connected_components(&g).is_empty());
        let stats = RegionStats::of(&g);
        assert_eq!(stats.component_count, 0);
        assert!(stats.is_contiguous());
        assert_eq!(stats.coverage, 0.0);
    }

    #[test]
    fn single_square_region() {
        let g = grid_from(&["....", ".##.", ".##.", "...."]);
        let regions = connected_components(&g);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].area, 4);
        assert_eq!(regions[0].perimeter, 8);
        assert!((regions[0].irregularity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_cells_are_separate_components() {
        let g = grid_from(&["#.", ".#"]);
        let regions = connected_components(&g);
        assert_eq!(regions.len(), 2);
        assert!(!RegionStats::of(&g).is_contiguous());
    }

    #[test]
    fn l_shape_is_more_irregular_than_square() {
        let square = grid_from(&["##", "##"]);
        let line = grid_from(&["####", "....", "....", "...."]);
        let sq = connected_components(&square)[0].irregularity();
        let ln = connected_components(&line)[0].irregularity();
        assert!(ln > sq, "line {ln} should exceed square {sq}");
    }

    #[test]
    fn components_sorted_largest_first() {
        let g = grid_from(&["##..", "##..", "....", "...#"]);
        let regions = connected_components(&g);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].area, 4);
        assert_eq!(regions[1].area, 1);
        let stats = RegionStats::of(&g);
        assert_eq!(stats.largest_area, 4);
        assert_eq!(stats.total_area, 5);
        assert_eq!(stats.component_count, 2);
    }

    #[test]
    fn full_grid_is_one_region_touching_borders() {
        let g = BoolGrid::from_fn(3, 3, |_, _| true);
        let regions = connected_components(&g);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].area, 9);
        assert_eq!(regions[0].perimeter, 12); // grid border only
        assert_eq!(RegionStats::of(&g).coverage, 1.0);
    }
}
