//! The robustness regression benchmark (paper §4).
//!
//! "This benchmark will identify weaknesses in the algorithms and their
//! implementation, track progress against these weaknesses, and permit
//! daily regression testing in order to protect the progress against
//! accidental regression due to other, seemingly unrelated, software
//! changes."
//!
//! A [`RegressionSuite`] runs named checks over measured maps and reports
//! pass/fail with details — the artifact a CI job would gate on.  The
//! standard checks encode the paper's reading rules: monotone cost curves,
//! flattening, no unexplained discontinuities, bounded worst-case
//! quotients, contiguous optimality regions.

use crate::analysis::changepoint::{detect_changepoints, ChangepointConfig};
use crate::analysis::flattening::flattening_violations;
use crate::analysis::monotonicity::monotonicity_violations;
use crate::map::{Map1D, Map2D};
use crate::regions::RegionStats;
use crate::relative::{OptimalityTolerance, RelativeMap2D};

/// Thresholds for the standard checks.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Relative cost decrease tolerated before a monotonicity violation is
    /// flagged (measurement jitter allowance).
    pub monotonicity_tolerance: f64,
    /// Slope-growth factor tolerated before flattening is violated.
    pub flattening_tolerance: f64,
    /// The changepoint criterion behind the continuity checks: a cliff
    /// (level shift beyond `cliff_factor`) fails the check; a knee (slope
    /// break) is reported but does not fail — the paper expects graceful
    /// degradation to bend, just not to jump.
    pub changepoint: ChangepointConfig,
    /// Largest acceptable worst-case quotient for a plan advertised as
    /// robust.
    pub max_worst_quotient: f64,
    /// Optimality tolerance used for region-contiguity checks.
    pub region_tolerance: OptimalityTolerance,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            monotonicity_tolerance: 0.05,
            flattening_tolerance: 2.0,
            changepoint: ChangepointConfig::default(),
            max_worst_quotient: 100.0,
            region_tolerance: OptimalityTolerance::Factor(1.2),
        }
    }
}

/// Outcome of one named check.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckResult {
    /// Check identifier, e.g. `"monotone: improved index scan"`.
    pub name: String,
    /// Whether the check passed.
    pub passed: bool,
    /// Human-readable findings (empty when passed without remarks).
    pub details: String,
}

/// A collection of check results with a pass/fail summary.
#[derive(Debug, Clone, Default)]
pub struct RegressionSuite {
    /// All results, in execution order.
    pub results: Vec<CheckResult>,
}

impl RegressionSuite {
    /// An empty suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.passed).count()
    }

    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    fn push(&mut self, name: String, passed: bool, details: String) {
        self.results.push(CheckResult { name, passed, details });
    }

    /// Record an externally evaluated check — experiment-specific criteria
    /// that do not fit the standard map checks (e.g. `ext_robust_choice`'s
    /// chooser-vs-chooser comparisons), reported and gated alongside them.
    pub fn check_named(&mut self, name: &str, passed: bool, details: String) {
        self.push(name.to_string(), passed, details);
    }

    /// Run the 1-D checks on every series of a map: monotonicity and
    /// discontinuities (flattening is reported but informational, since
    /// the paper *expects* some plans to fail it).
    pub fn check_map1d(&mut self, map: &Map1D, cfg: &CheckConfig) {
        let raw_work: Vec<f64> = map.result_rows.iter().map(|&r| (r.max(1)) as f64).collect();
        // Discrete grids legitimately produce tied result counts (tiny
        // selectivities clamping to the same row count): grid cells with
        // equal work measure the same effective point, so keep only cells
        // that strictly advance past the last *kept* value rather than
        // letting the detector flag a non-ascending axis on a healthy
        // curve.  Dropped cells are remembered with their kept twin: a
        // cost jump between same-work cells is an (infinite-slope)
        // discontinuity the filtered sweep cannot see, and outright
        // non-monotone result counts are surfaced as reduced coverage.
        let mut last_kept = f64::NEG_INFINITY;
        let mut keep: Vec<usize> = Vec::with_capacity(raw_work.len());
        let mut dropped: Vec<(usize, usize, bool)> = Vec::new(); // (cell, kept twin, is_tie)
        for (i, &w) in raw_work.iter().enumerate() {
            if w > last_kept {
                keep.push(i);
                last_kept = w;
            } else {
                let twin = *keep.last().expect("the first cell is always kept");
                dropped.push((i, twin, w == last_kept));
            }
        }
        let work: Vec<f64> = keep.iter().map(|&i| raw_work[i]).collect();
        let dips = dropped.iter().filter(|&&(_, _, is_tie)| !is_tie).count();
        for series in &map.series {
            let all_secs = series.seconds();
            let secs: Vec<f64> = keep.iter().map(|&i| all_secs[i]).collect();
            let monos = monotonicity_violations(&work, &secs, cfg.monotonicity_tolerance);
            self.push(
                format!("monotone: {}", series.plan),
                monos.is_empty(),
                if monos.is_empty() {
                    String::new()
                } else {
                    format!("{} cost dip(s), worst {:.1}%", monos.len(), monos
                        .iter()
                        .map(|v| v.drop)
                        .fold(0.0f64, f64::max)
                        * 100.0)
                },
            );
            let analysis = detect_changepoints(&work, &secs, &cfg.changepoint);
            let cliffs = analysis.cliff_count();
            let knees = analysis.knee_count();
            // A cost jump between tied-work cells (same result count,
            // different threshold) is a discontinuity in its own right.
            let tie_jump = dropped
                .iter()
                .filter(|&&(_, _, is_tie)| is_tie)
                .filter_map(|&(i, twin, _)| {
                    let (a, b) = (all_secs[twin], all_secs[i]);
                    (a > 0.0 && b > 0.0).then(|| (b / a).max(a / b))
                })
                .filter(|&r| r > cfg.changepoint.cliff_factor)
                .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a| a.max(r))));
            let ok = cliffs == 0 && analysis.diagnostics.is_empty() && tie_jump.is_none();
            let mut details = String::new();
            let mut add = |s: &str| {
                if !details.is_empty() {
                    details.push_str("; ");
                }
                details.push_str(s);
            };
            if cliffs > 0 {
                add(&format!(
                    "{cliffs} cliff(s), worst {:.0}x unexplained",
                    analysis.cliffs().map(|c| c.severity).fold(0.0f64, f64::max)
                ));
            }
            if let Some(r) = tie_jump {
                add(&format!("cost jumps {r:.0}x between cells with tied result counts"));
            }
            for diag in &analysis.diagnostics {
                add(diag);
            }
            if ok && knees > 0 {
                add(&format!(
                    "{knees} knee(s) — slope break without a level shift, informational"
                ));
            }
            if dips > 0 {
                add(&format!(
                    "{dips} cell(s) with non-ascending result counts excluded from the sweep"
                ));
            }
            self.push(format!("continuous: {}", series.plan), ok, details);
            let flats = flattening_violations(&work, &secs, cfg.flattening_tolerance);
            self.push(
                format!("flattening (informational): {}", series.plan),
                true, // informational: the paper expects e.g. Figure 1 to fail
                if flats.is_empty() {
                    String::new()
                } else {
                    format!("steepens at {} segment(s)", flats.len())
                },
            );
        }
    }

    /// Run the 2-D checks: per-plan worst quotient and region contiguity,
    /// plus the global every-cell-has-an-optimum invariant.
    pub fn check_map2d(&mut self, map: &Map2D, robust_plans: &[&str], cfg: &CheckConfig) {
        let rel = RelativeMap2D::from_map(map);
        for (p, name) in rel.plans.iter().enumerate() {
            let worst = rel.worst_quotient(p);
            if robust_plans.iter().any(|r| name.starts_with(r)) {
                self.push(
                    format!("bounded worst case: {name}"),
                    worst <= cfg.max_worst_quotient,
                    format!("worst quotient {worst:.1}x (limit {:.0}x)", cfg.max_worst_quotient),
                );
            }
            let stats = RegionStats::of(&rel.optimal_region(p, cfg.region_tolerance));
            self.push(
                format!("contiguous optimality region: {name}"),
                stats.is_contiguous(),
                if stats.is_contiguous() {
                    String::new()
                } else {
                    format!(
                        "{} components (largest {} of {} cells) — §3.4: suspect an \
                         implementation idiosyncrasy",
                        stats.component_count, stats.largest_area, stats.total_area
                    )
                },
            );
        }
    }

    /// Plain-text report (one line per check).
    pub fn report(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!(
                "[{}] {}{}\n",
                if r.passed { "PASS" } else { "FAIL" },
                r.name,
                if r.details.is_empty() { String::new() } else { format!(" — {}", r.details) }
            ));
        }
        out.push_str(&format!(
            "{} checks, {} failed\n",
            self.results.len(),
            self.failures()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Series;
    use crate::measure::Measurement;

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, ..Default::default() }
    }

    fn map1d(series: Vec<(&str, Vec<f64>)>) -> Map1D {
        let n = series[0].1.len();
        Map1D {
            sels: (1..=n).map(|i| i as f64 / n as f64).collect(),
            result_rows: (1..=n).map(|i| (i * i) as u64).collect(),
            series: series
                .into_iter()
                .map(|(name, secs)| Series {
                    plan: name.into(),
                    points: secs.into_iter().map(m).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn clean_map_passes() {
        let map = map1d(vec![("good", vec![1.0, 1.5, 2.0, 2.5])]);
        let mut suite = RegressionSuite::new();
        suite.check_map1d(&map, &CheckConfig::default());
        assert!(suite.passed(), "{}", suite.report());
    }

    #[test]
    fn cost_dip_fails_monotonicity() {
        let map = map1d(vec![("dippy", vec![1.0, 3.0, 0.5, 4.0])]);
        let mut suite = RegressionSuite::new();
        suite.check_map1d(&map, &CheckConfig::default());
        assert!(!suite.passed());
        let fail = suite.results.iter().find(|r| !r.passed).unwrap();
        assert!(fail.name.contains("monotone"));
        assert!(fail.details.contains("dip"));
    }

    #[test]
    fn spill_cliff_fails_continuity() {
        let map = map1d(vec![("cliffy", vec![0.001, 0.002, 1.0, 1.1])]);
        let mut suite = RegressionSuite::new();
        suite.check_map1d(&map, &CheckConfig::default());
        assert!(suite.results.iter().any(|r| !r.passed && r.name.contains("continuous")));
    }

    #[test]
    fn tied_result_counts_do_not_fail_continuity() {
        // Tiny selectivities clamp to the same result count on discrete
        // grids; the duplicated work values must not trip any check.
        let map = Map1D {
            sels: vec![0.125, 0.25, 0.5, 0.75, 1.0],
            result_rows: vec![1, 1, 2, 4, 8],
            series: vec![Series {
                plan: "tiny".into(),
                points: vec![m(1.0), m(1.0), m(1.4), m(2.0), m(2.9)],
            }],
        };
        let mut suite = RegressionSuite::new();
        suite.check_map1d(&map, &CheckConfig::default());
        assert!(suite.passed(), "{}", suite.report());
    }

    #[test]
    fn cost_jump_at_tied_result_counts_fails_continuity() {
        // Two cells with the same result count but a 900x cost gap: an
        // infinite-slope discontinuity that the dedup filter must not
        // hide from the continuity check.
        let map = Map1D {
            sels: vec![0.125, 0.25, 0.5, 1.0],
            result_rows: vec![1, 1, 2, 4],
            series: vec![Series {
                plan: "tie jump".into(),
                points: vec![m(1.0), m(900.0), m(1.4), m(2.0)],
            }],
        };
        let mut suite = RegressionSuite::new();
        suite.check_map1d(&map, &CheckConfig::default());
        let cont = suite.results.iter().find(|r| r.name.contains("continuous")).unwrap();
        assert!(!cont.passed, "{}", suite.report());
        assert!(cont.details.contains("tied result counts"), "{}", cont.details);
    }

    #[test]
    fn non_monotone_result_counts_do_not_fail_continuity() {
        // A dip in result counts must drop every cell until the axis
        // strictly advances past the last kept value — comparing only
        // adjacent cells would keep the partial recovery and hand the
        // detector a non-ascending axis (a false continuity FAIL).
        let map = Map1D {
            sels: vec![0.125, 0.25, 0.5, 1.0],
            result_rows: vec![100, 40, 60, 200],
            series: vec![Series {
                plan: "dip".into(),
                points: vec![m(1.0), m(1.0), m(1.0), m(1.4)],
            }],
        };
        let mut suite = RegressionSuite::new();
        suite.check_map1d(&map, &CheckConfig::default());
        let cont = suite.results.iter().find(|r| r.name.contains("continuous")).unwrap();
        assert!(cont.passed, "{}", suite.report());
    }

    #[test]
    fn flattening_is_informational_only() {
        // Steepening tail (Figure 1's improved scan): reported, not failed.
        let map = map1d(vec![("steep tail", vec![1.0, 1.1, 1.2, 9.0])]);
        let mut suite = RegressionSuite::new();
        let cfg = CheckConfig {
            changepoint: ChangepointConfig { cliff_factor: 1e9, ..Default::default() },
            ..Default::default()
        };
        suite.check_map1d(&map, &cfg);
        assert!(suite.passed(), "{}", suite.report());
        let flat = suite.results.iter().find(|r| r.name.contains("flattening")).unwrap();
        assert!(flat.details.contains("steepens"));
    }

    #[test]
    fn named_checks_gate_like_standard_ones() {
        let mut suite = RegressionSuite::new();
        suite.check_named("robust chooser beats the point chooser", true, "2% vs 55%".into());
        assert!(suite.passed());
        suite.check_named("worst regret shrank", false, "14.5x unchanged".into());
        assert!(!suite.passed());
        assert_eq!(suite.failures(), 1);
        let report = suite.report();
        assert!(report.contains("[PASS] robust chooser beats the point chooser — 2% vs 55%"));
        assert!(report.contains("[FAIL] worst regret shrank"));
        assert!(report.contains("2 checks, 1 failed"));
    }

    #[test]
    fn map2d_checks_worst_case_and_contiguity() {
        // Plan "robust" stays within 2x; plan "wild" hits 1000x and has a
        // split optimality region.
        let robust = vec![m(2.0), m(2.0), m(2.0), m(2.0), m(2.0), m(2.0), m(2.0), m(2.0), m(2.0)];
        let wild = vec![m(1.0), m(3.0), m(1.0), m(3.0), m(3.0), m(3.0), m(1.0), m(3.0), m(2000.0)];
        let map = Map2D::new(
            vec![0.25, 0.5, 1.0],
            vec![0.25, 0.5, 1.0],
            vec!["robust".into(), "wild".into()],
            vec![robust, wild],
        );
        let mut suite = RegressionSuite::new();
        suite.check_map2d(&map, &["robust"], &CheckConfig::default());
        assert!(suite
            .results
            .iter()
            .any(|r| r.passed && r.name == "bounded worst case: robust"));
        // "wild" is not in the robust set, so no worst-case gate for it,
        // but its region contiguity is still reported.
        assert!(suite
            .results
            .iter()
            .any(|r| r.name == "contiguous optimality region: wild" && !r.passed));
        let report = suite.report();
        assert!(report.contains("FAIL"));
        assert!(report.contains("idiosyncrasy"));
    }
}
