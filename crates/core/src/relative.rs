//! Relative performance: quotients against the best plan at each point.
//!
//! "We then plotted the relative performance of each individual plan
//! compared to the optimal plan at each point in the parameter space.  A
//! given plan is optimal if its performance is equal to the optimal
//! performance among all plans, i.e., the quotient of costs is 1." (§3.3)
//!
//! [`RelativeMap2D`] derives those quotients from an absolute [`Map2D`] and
//! answers the questions Figures 7-9 pose: worst-case quotient, the area a
//! plan covers within a factor of the best, and its region of optimality
//! under a tolerance.

use crate::map::Map2D;
use crate::regions::BoolGrid;

/// When are two costs "practically equivalent"?  (§3.4: "two plans with
/// actual execution costs within 1% of each other are practically
/// equivalent.  Whether this tolerance ends at 1% difference, at 20%
/// difference, or at a factor of 2 depends on one's tradeoff between
/// performance and robustness"; Figure 10 uses 0.1 sec measurement error.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimalityTolerance {
    /// Within a multiplicative factor of the best (1.01 = 1%, 2.0 = 2x).
    Factor(f64),
    /// Within an absolute number of simulated seconds of the best.
    Seconds(f64),
}

impl OptimalityTolerance {
    /// Whether `seconds` is considered optimal given the best cost.
    pub fn admits(&self, seconds: f64, best: f64) -> bool {
        match *self {
            OptimalityTolerance::Factor(f) => seconds <= best * f,
            OptimalityTolerance::Seconds(eps) => seconds <= best + eps,
        }
    }
}

/// Quotient map: per plan and per cell, `cost / best cost at that cell`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelativeMap2D {
    /// The `a` (x) axis.
    pub sel_a: Vec<f64>,
    /// The `b` (y) axis.
    pub sel_b: Vec<f64>,
    /// Plan names.
    pub plans: Vec<String>,
    /// `quotients[plan][ia * |b| + ib]`, always `>= 1`.
    quotients: Vec<Vec<f64>>,
    /// Index of the best plan per cell (lowest seconds; ties -> lowest
    /// plan index, deterministically).
    best_plan: Vec<usize>,
    /// Best seconds per cell.
    best_seconds: Vec<f64>,
}

impl RelativeMap2D {
    /// Derive the quotient map from an absolute map.
    pub fn from_map(map: &Map2D) -> Self {
        let (na, nb) = map.dims();
        let cells = na * nb;
        assert!(map.plan_count() > 0, "relative map needs at least one plan");
        let mut best_plan = vec![0usize; cells];
        let mut best_seconds = vec![f64::INFINITY; cells];
        for p in 0..map.plan_count() {
            let grid = map.plan_grid(p);
            for (c, m) in grid.iter().enumerate() {
                if m.seconds < best_seconds[c] {
                    best_seconds[c] = m.seconds;
                    best_plan[c] = p;
                }
            }
        }
        let quotients = (0..map.plan_count())
            .map(|p| {
                map.plan_grid(p)
                    .iter()
                    .enumerate()
                    .map(|(c, m)| {
                        if best_seconds[c] > 0.0 {
                            m.seconds / best_seconds[c]
                        } else {
                            1.0
                        }
                    })
                    .collect()
            })
            .collect();
        RelativeMap2D {
            sel_a: map.sel_a.clone(),
            sel_b: map.sel_b.clone(),
            plans: map.plans.clone(),
            quotients,
            best_plan,
            best_seconds,
        }
    }

    /// Grid dimensions `(|a|, |b|)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.sel_a.len(), self.sel_b.len())
    }

    /// Quotient of `plan` at `(ia, ib)`.
    pub fn quotient(&self, plan: usize, ia: usize, ib: usize) -> f64 {
        self.quotients[plan][ia * self.sel_b.len() + ib]
    }

    /// The full quotient grid of one plan (ia-major).
    pub fn quotient_grid(&self, plan: usize) -> &[f64] {
        &self.quotients[plan]
    }

    /// Index of the best plan at `(ia, ib)`.
    pub fn best_plan_at(&self, ia: usize, ib: usize) -> usize {
        self.best_plan[ia * self.sel_b.len() + ib]
    }

    /// Best cost at `(ia, ib)`.
    pub fn best_seconds_at(&self, ia: usize, ib: usize) -> f64 {
        self.best_seconds[ia * self.sel_b.len() + ib]
    }

    /// The worst (largest) quotient of a plan anywhere on the map —
    /// Figure 7 reports "a factor of 101,000" for the single-index plan.
    pub fn worst_quotient(&self, plan: usize) -> f64 {
        self.quotients[plan].iter().copied().fold(1.0, f64::max)
    }

    /// Fraction of cells where the plan is within `factor` of the best.
    pub fn area_within(&self, plan: usize, factor: f64) -> f64 {
        let grid = &self.quotients[plan];
        grid.iter().filter(|&&q| q <= factor).count() as f64 / grid.len() as f64
    }

    /// The plan's region of optimality under `tol` as a boolean grid
    /// (Figures 8-10, §3.4).
    pub fn optimal_region(&self, plan: usize, tol: OptimalityTolerance) -> BoolGrid {
        let (na, nb) = self.dims();
        let mut grid = BoolGrid::new(na, nb);
        for ia in 0..na {
            for ib in 0..nb {
                let c = ia * nb + ib;
                let best = self.best_seconds[c];
                let mine = self.quotients[plan][c] * best;
                grid.set(ia, ib, tol.admits(mine, best));
            }
        }
        grid
    }

    /// Per-cell count of plans that are optimal under `tol` — Figure 10's
    /// observation is that "most points in the parameter space have
    /// multiple optimal plans".
    pub fn optimal_plan_counts(&self, tol: OptimalityTolerance) -> Vec<u32> {
        let cells = self.best_plan.len();
        let mut counts = vec![0u32; cells];
        for grid in &self.quotients {
            for (c, &q) in grid.iter().enumerate() {
                let best = self.best_seconds[c];
                if tol.admits(q * best, best) {
                    counts[c] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Map2D;
    use crate::measure::Measurement;

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, ..Default::default() }
    }

    /// 2x2 grid, 2 plans: p0 best at 3 cells, p1 best at 1.
    fn map() -> Map2D {
        let p0 = vec![m(1.0), m(1.0), m(1.0), m(10.0)];
        let p1 = vec![m(2.0), m(5.0), m(1.05), m(1.0)];
        Map2D::new(vec![0.5, 1.0], vec![0.5, 1.0], vec!["p0".into(), "p1".into()], vec![p0, p1])
    }

    #[test]
    fn quotients_are_at_least_one() {
        let rel = RelativeMap2D::from_map(&map());
        for p in 0..2 {
            for &q in rel.quotient_grid(p) {
                assert!(q >= 1.0);
            }
        }
        assert_eq!(rel.quotient(0, 0, 0), 1.0);
        assert_eq!(rel.quotient(1, 0, 0), 2.0);
        assert_eq!(rel.quotient(0, 1, 1), 10.0);
    }

    #[test]
    fn best_plan_tracking() {
        let rel = RelativeMap2D::from_map(&map());
        assert_eq!(rel.best_plan_at(0, 0), 0);
        assert_eq!(rel.best_plan_at(1, 1), 1);
        assert_eq!(rel.best_seconds_at(1, 1), 1.0);
    }

    #[test]
    fn worst_quotient_and_area() {
        let rel = RelativeMap2D::from_map(&map());
        assert_eq!(rel.worst_quotient(0), 10.0);
        assert_eq!(rel.worst_quotient(1), 5.0);
        assert_eq!(rel.area_within(0, 2.0), 0.75);
        assert_eq!(rel.area_within(1, 2.0), 0.75);
    }

    #[test]
    fn optimality_regions_respect_tolerance() {
        let rel = RelativeMap2D::from_map(&map());
        // Strict: only exact winners.
        let strict = rel.optimal_region(1, OptimalityTolerance::Factor(1.0));
        assert_eq!(strict.count(), 1);
        // 10% factor admits the 1.05 cell too.
        let loose = rel.optimal_region(1, OptimalityTolerance::Factor(1.1));
        assert_eq!(loose.count(), 2);
        // Absolute tolerance of 1.5s admits p1 at (0,0) as well.
        let abs = rel.optimal_region(1, OptimalityTolerance::Seconds(1.5));
        assert_eq!(abs.count(), 3);
    }

    #[test]
    fn multi_optimal_counts() {
        let rel = RelativeMap2D::from_map(&map());
        let counts = rel.optimal_plan_counts(OptimalityTolerance::Factor(1.1));
        // Cell (1,0): p0=1.0, p1=1.05 -> both optimal.
        assert_eq!(counts, vec![1, 1, 2, 1]);
        // Every cell has at least one optimal plan.
        assert!(counts.iter().all(|&c| c >= 1));
    }
}
