//! Terminal rendering: ANSI heat maps and plain-text series tables.
//!
//! `render_map2d_ansi` draws one plan's 2-D map as a colored cell grid with
//! axis labels and the bucket legend — the terminal equivalent of the
//! paper's Figures 4-9.  With `ansi: false` it falls back to the bucket's
//! index character, which is also what tests assert against.

use crate::map::Map1D;
use crate::render::color::ColorScale;

/// Options for terminal rendering.
#[derive(Debug, Clone)]
pub struct AsciiOptions {
    /// Emit ANSI 256-color escapes (false = plain characters).
    pub ansi: bool,
    /// Cell width in characters.
    pub cell_width: usize,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions { ansi: true, cell_width: 2 }
    }
}

/// Characters for plain (non-ANSI) rendering, light to dark.
const SHADES: &[u8] = b" .:-=+*#%@";

/// Render an ia-major `grid` of values over axes `sel_a` (x) and `sel_b`
/// (y, printed top = high) as a heat map under `scale`.
pub fn render_map2d_ansi(
    grid: &[f64],
    sel_a: &[f64],
    sel_b: &[f64],
    scale: &ColorScale,
    title: &str,
    opts: &AsciiOptions,
) -> String {
    assert_eq!(grid.len(), sel_a.len() * sel_b.len(), "grid size mismatch");
    let (na, nb) = (sel_a.len(), sel_b.len());
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    // Rows from high sel_b down to low, so the origin is bottom-left.
    for ib in (0..nb).rev() {
        out.push_str(&format!("{:>9.3e} |", sel_b[ib]));
        for ia in 0..na {
            let v = grid[ia * nb + ib];
            let bucket = scale.bucket_of(v);
            if opts.ansi {
                let color = scale.color_of(v).ansi256();
                out.push_str(&format!(
                    "\x1b[48;5;{}m{}\x1b[0m",
                    color,
                    " ".repeat(opts.cell_width)
                ));
            } else {
                let ch = SHADES[bucket * (SHADES.len() - 1) / (scale.buckets().len() - 1).max(1)]
                    as char;
                out.push_str(&ch.to_string().repeat(opts.cell_width));
            }
        }
        out.push('\n');
    }
    // X axis: min and max labels.
    out.push_str(&format!(
        "{:>9} +{}\n{:>9}  {:<width$.3e}{:>rem$.3e}\n",
        "",
        "-".repeat(na * opts.cell_width),
        "",
        sel_a[0],
        sel_a[na - 1],
        width = (na * opts.cell_width).saturating_sub(9).max(1),
        rem = 9,
    ));
    out.push_str(&legend(scale, opts));
    out
}

fn legend(scale: &ColorScale, opts: &AsciiOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!("legend ({}):\n", scale.title));
    for (i, b) in scale.buckets().iter().enumerate() {
        if opts.ansi {
            out.push_str(&format!(
                "  \x1b[48;5;{}m  \x1b[0m {}\n",
                b.color.ansi256(),
                b.label
            ));
        } else {
            let ch = SHADES[i * (SHADES.len() - 1) / (scale.buckets().len() - 1).max(1)] as char;
            out.push_str(&format!("  {}{} {}\n", ch, ch, b.label));
        }
    }
    out
}

/// Render a 1-D map as a plain-text table: one row per axis point, one
/// column per plan — the same numbers Figure 1 plots.  Values are
/// unit-less (they may be seconds or quotients; the title says which).
pub fn render_map1d_table(map: &Map1D, title: &str) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:>12} {:>12}", "selectivity", "rows"));
    for s in &map.series {
        out.push_str(&format!(" {:>26}", truncate(&s.plan, 26)));
    }
    out.push('\n');
    for i in 0..map.len() {
        out.push_str(&format!("{:>12.3e} {:>12}", map.sels[i], map.result_rows[i]));
        for s in &map.series {
            out.push_str(&format!(" {:>26} ", format_value(s.points[i].seconds)));
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

fn format_value(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Series;
    use crate::measure::Measurement;
    use crate::render::color::{absolute_scale, relative_scale};

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, ..Default::default() }
    }

    #[test]
    fn plain_heatmap_shapes_and_shades() {
        // 2x2 grid: low costs bottom-left, high top-right.
        let grid = vec![0.005, 5.0, 0.5, 500.0]; // ia-major: (0,0),(0,1),(1,0),(1,1)
        let s = render_map2d_ansi(
            &grid,
            &[0.5, 1.0],
            &[0.5, 1.0],
            &absolute_scale(),
            "test map",
            &AsciiOptions { ansi: false, cell_width: 1 },
        );
        assert!(s.starts_with("test map\n"));
        // Two data rows, a separator, an axis row and a legend.
        assert!(s.contains("legend"));
        assert!(s.contains("0.001-0.01 seconds"));
        let lines: Vec<&str> = s.lines().collect();
        // Top row = high sel_b: 5.0 is bucket 3 (shade '+'), 500.0 is
        // bucket 5 (shade '@').
        assert!(lines[1].contains('+'), "top row: {:?}", lines[1]);
        assert!(lines[1].contains('@'), "top row: {:?}", lines[1]);
    }

    #[test]
    fn ansi_heatmap_contains_escapes() {
        let grid = vec![1.0];
        let s = render_map2d_ansi(
            &grid,
            &[1.0],
            &[1.0],
            &relative_scale(),
            "t",
            &AsciiOptions::default(),
        );
        assert!(s.contains("\x1b[48;5;"));
        assert!(s.contains("Factor 1"));
    }

    #[test]
    fn map1d_table_lists_all_plans() {
        let map = Map1D {
            sels: vec![0.25, 1.0],
            result_rows: vec![4, 16],
            series: vec![
                Series { plan: "scan".into(), points: vec![m(0.5), m(0.5)] },
                Series { plan: "fetch".into(), points: vec![m(0.001), m(2.0)] },
            ],
        };
        let t = render_map1d_table(&map, "fig");
        assert!(t.contains("scan"));
        assert!(t.contains("fetch"));
        assert!(t.contains("16"));
        assert_eq!(t.lines().count(), 4); // title + header + 2 rows
    }

    #[test]
    #[should_panic(expected = "grid size mismatch")]
    fn wrong_grid_size_panics() {
        render_map2d_ansi(
            &[1.0, 2.0],
            &[1.0],
            &[1.0],
            &absolute_scale(),
            "t",
            &AsciiOptions::default(),
        );
    }
}
