//! Color scales: Figures 3 and 6.
//!
//! "Figure 3 shows the mapping from elapsed times to colors in the
//! following maps, from green to red and finally black (light gray to
//! black in monochrome) with each color difference indicating an order of
//! magnitude."  Figure 6 is the analogue for relative factors: factor 1
//! (light green) through factor 100,000 (black).

/// An RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color {
    /// Red.
    pub r: u8,
    /// Green.
    pub g: u8,
    /// Blue.
    pub b: u8,
}

impl Color {
    /// CSS hex form (`#rrggbb`).
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Nearest xterm-256 color index (6x6x6 cube region), for ANSI output.
    pub fn ansi256(&self) -> u8 {
        let q = |v: u8| -> u8 {
            if v < 48 {
                0
            } else if v < 115 {
                1
            } else {
                ((v as u16 - 35) / 40).min(5) as u8
            }
        };
        16 + 36 * q(self.r) + 6 * q(self.g) + q(self.b)
    }
}

/// One bucket of a scale: values in `[lo, hi)` get `color`.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
    /// The bucket's color.
    pub color: Color,
    /// Legend label, e.g. `"0.01-0.1 seconds"` or `"Factor 10-100"`.
    pub label: String,
}

/// An ordered bucket scale (order-of-magnitude steps, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ColorScale {
    buckets: Vec<Bucket>,
    /// Scale title for legends.
    pub title: String,
}

impl ColorScale {
    /// The buckets, ascending.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Color for a value: the containing bucket, clamped at the ends.
    pub fn color_of(&self, value: f64) -> Color {
        let first = self.buckets.first().expect("scale has buckets");
        if value < first.lo {
            return first.color;
        }
        for b in &self.buckets {
            if value < b.hi {
                return b.color;
            }
        }
        self.buckets.last().expect("scale has buckets").color
    }

    /// Index of the bucket a value falls into (clamped).
    pub fn bucket_of(&self, value: f64) -> usize {
        for (i, b) in self.buckets.iter().enumerate() {
            if value < b.hi {
                return i;
            }
        }
        self.buckets.len() - 1
    }
}

/// The paper's green→red→black ramp with `n` steps.
fn ramp(n: usize) -> Vec<Color> {
    // Anchor colors: light green, yellow, orange, red, dark red, black.
    let anchors = [
        Color { r: 0x7f, g: 0xd4, b: 0x4c },
        Color { r: 0xd9, g: 0xd9, b: 0x28 },
        Color { r: 0xe8, g: 0x9c, b: 0x1e },
        Color { r: 0xd6, g: 0x3a, b: 0x2a },
        Color { r: 0x7a, g: 0x12, b: 0x12 },
        Color { r: 0x10, g: 0x10, b: 0x10 },
    ];
    (0..n)
        .map(|i| {
            let t = if n == 1 { 0.0 } else { i as f64 / (n - 1) as f64 };
            let pos = t * (anchors.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(anchors.len() - 1);
            let frac = pos - lo as f64;
            let mix = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * frac).round() as u8;
            Color {
                r: mix(anchors[lo].r, anchors[hi].r),
                g: mix(anchors[lo].g, anchors[hi].g),
                b: mix(anchors[lo].b, anchors[hi].b),
            }
        })
        .collect()
}

/// Figure 3: absolute elapsed times, decade buckets from 0.001s to 1000s.
pub fn absolute_scale() -> ColorScale {
    let bounds = [1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];
    let colors = ramp(6);
    let labels = [
        "0.001-0.01 seconds",
        "0.01-0.1 seconds",
        "0.1-1 seconds",
        "1-10 seconds",
        "10-100 seconds",
        "100-1000 seconds",
    ];
    ColorScale {
        title: "Execution time".to_string(),
        buckets: (0..6)
            .map(|i| Bucket {
                lo: bounds[i],
                hi: bounds[i + 1],
                color: colors[i],
                label: labels[i].to_string(),
            })
            .collect(),
    }
}

/// Figure 6: quotients vs. the best plan, decade buckets from factor 1 to
/// factor 100,000.
pub fn relative_scale() -> ColorScale {
    let bounds = [1.0, 1.0 + 1e-9, 10.0, 100.0, 1000.0, 10_000.0, 100_000.0];
    let colors = ramp(6);
    let labels = [
        "Factor 1",
        "Factor 1-10",
        "Factor 10-100",
        "Factor 100-1,000",
        "Factor 1,000-10,000",
        "Factor 10,000-100,000",
    ];
    ColorScale {
        title: "Cost factor vs. best plan".to_string(),
        buckets: (0..6)
            .map(|i| Bucket {
                lo: bounds[i],
                hi: bounds[i + 1],
                color: colors[i],
                label: labels[i].to_string(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_scale_has_six_decades() {
        let s = absolute_scale();
        assert_eq!(s.buckets().len(), 6);
        assert_eq!(s.bucket_of(0.005), 0);
        assert_eq!(s.bucket_of(0.5), 2);
        assert_eq!(s.bucket_of(500.0), 5);
        // Clamping.
        assert_eq!(s.bucket_of(1e-9), 0);
        assert_eq!(s.bucket_of(1e9), 5);
    }

    #[test]
    fn relative_scale_isolates_factor_one() {
        let s = relative_scale();
        assert_eq!(s.bucket_of(1.0), 0);
        assert_eq!(s.bucket_of(1.5), 1);
        assert_eq!(s.bucket_of(99.0), 2);
        assert_eq!(s.bucket_of(101_000.0), 5);
    }

    #[test]
    fn ramp_goes_green_to_black() {
        let s = absolute_scale();
        let first = s.buckets().first().unwrap().color;
        let last = s.buckets().last().unwrap().color;
        assert!(first.g > first.r, "first bucket should be green-ish: {first:?}");
        assert!(last.r < 0x40 && last.g < 0x40 && last.b < 0x40, "last should be near black");
    }

    #[test]
    fn hex_and_ansi() {
        let c = Color { r: 255, g: 0, b: 16 };
        assert_eq!(c.hex(), "#ff0010");
        let a = c.ansi256();
        assert!((16..=231).contains(&a));
    }

    #[test]
    fn colors_monotonically_darken_in_green_channel_tail() {
        let s = absolute_scale();
        let greens: Vec<u8> = s.buckets().iter().map(|b| b.color.g).collect();
        // The tail of the ramp must lose green (toward red/black).
        assert!(greens[5] < greens[0]);
    }
}
