//! CSV export for external plotting tools.
//!
//! Plain `written-by-hand` CSV: no quoting is needed because plan names are
//! sanitised (commas replaced) and all other fields are numeric.

use crate::map::{Map1D, Map2D};
use crate::relative::RelativeMap2D;

/// Make a plan name safe for an unquoted CSV field (commas become
/// semicolons) — the one sanitisation rule every CSV artifact shares.
pub fn sanitize(name: &str) -> String {
    name.replace(',', ";")
}

/// `selectivity,rows,<plan...>` with one row per axis point (seconds).
pub fn map1d_to_csv(map: &Map1D) -> String {
    let mut out = String::from("selectivity,rows");
    for s in &map.series {
        out.push(',');
        out.push_str(&sanitize(&s.plan));
    }
    out.push('\n');
    for i in 0..map.len() {
        out.push_str(&format!("{:e},{}", map.sels[i], map.result_rows[i]));
        for s in &map.series {
            out.push_str(&format!(",{:e}", s.points[i].seconds));
        }
        out.push('\n');
    }
    out
}

/// Long form: `plan,sel_a,sel_b,seconds,rows,seq_reads,single_reads,random_reads,page_writes,spilled`.
pub fn map2d_to_csv(map: &Map2D) -> String {
    let mut out = String::from(
        "plan,sel_a,sel_b,seconds,rows,seq_reads,single_reads,random_reads,page_writes,spilled\n",
    );
    let (na, nb) = map.dims();
    for p in 0..map.plan_count() {
        let name = sanitize(&map.plans[p]);
        for ia in 0..na {
            for ib in 0..nb {
                let m = map.get(p, ia, ib);
                out.push_str(&format!(
                    "{name},{:e},{:e},{:e},{},{},{},{},{},{}\n",
                    map.sel_a[ia],
                    map.sel_b[ib],
                    m.seconds,
                    m.rows,
                    m.io.seq_reads,
                    m.io.single_reads,
                    m.io.random_reads,
                    m.io.page_writes,
                    m.spilled,
                ));
            }
        }
    }
    out
}

/// Long form quotients: `plan,sel_a,sel_b,quotient,best_plan`.
pub fn quotients_to_csv(rel: &RelativeMap2D) -> String {
    let mut out = String::from("plan,sel_a,sel_b,quotient,best_plan\n");
    let (na, nb) = rel.dims();
    for p in 0..rel.plans.len() {
        let name = sanitize(&rel.plans[p]);
        for ia in 0..na {
            for ib in 0..nb {
                out.push_str(&format!(
                    "{name},{:e},{:e},{:e},{}\n",
                    rel.sel_a[ia],
                    rel.sel_b[ib],
                    rel.quotient(p, ia, ib),
                    sanitize(&rel.plans[rel.best_plan_at(ia, ib)]),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{Map2D, Series};
    use crate::measure::Measurement;
    use crate::relative::RelativeMap2D;

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, rows: 7, ..Default::default() }
    }

    #[test]
    fn map1d_csv_shape() {
        let map = Map1D {
            sels: vec![0.5, 1.0],
            result_rows: vec![2, 4],
            series: vec![Series { plan: "a,b".into(), points: vec![m(1.0), m(2.0)] }],
        };
        let csv = map1d_to_csv(&map);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "selectivity,rows,a;b"); // comma sanitised
        assert!(lines[1].starts_with("5e-1,2,"));
    }

    #[test]
    fn map2d_csv_has_row_per_cell_per_plan() {
        let data = vec![vec![m(1.0), m(2.0)], vec![m(3.0), m(4.0)]];
        let map =
            Map2D::new(vec![1.0], vec![0.5, 1.0], vec!["p0".into(), "p1".into()], data);
        let csv = map2d_to_csv(&map);
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("p1,1e0,5e-1,3e0,7"));
    }

    #[test]
    fn quotient_csv_names_best_plan() {
        let data = vec![vec![m(1.0)], vec![m(2.0)]];
        let map = Map2D::new(vec![1.0], vec![1.0], vec!["fast".into(), "slow".into()], data);
        let rel = RelativeMap2D::from_map(&map);
        let csv = quotients_to_csv(&rel);
        assert!(csv.contains("slow,1e0,1e0,2e0,fast"));
    }
}
