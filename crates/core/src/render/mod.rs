//! Rendering robustness maps.
//!
//! The paper's visual language is order-of-magnitude color coding:
//! Figure 3 maps absolute times (0.001s … 1000s) "from green to red and
//! finally black ... with each color difference indicating an order of
//! magnitude", and Figure 6 does the same for quotients (factor 1 …
//! 100,000).  This module reproduces those scales and renders maps as ANSI
//! terminal heat maps, SVG files, and CSV for external tooling.

pub mod ascii;
pub mod color;
pub mod csv;
pub mod svg;

pub use ascii::{render_map1d_table, render_map2d_ansi, AsciiOptions};
pub use color::{absolute_scale, relative_scale, Color, ColorScale};
pub use csv::{map1d_to_csv, map2d_to_csv, quotients_to_csv, sanitize};
pub use svg::{heatmap_svg, line_plot_svg, timeline_svg, TimelineMark, TimelineSpan};
