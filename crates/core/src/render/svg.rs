//! SVG rendering: heat maps and log-log line plots.
//!
//! Hand-rolled SVG keeps the artifact dependency-free; output is plain
//! `<rect>`/`<polyline>`/`<text>` elements that any browser renders.  The
//! heat map reproduces the paper's Figures 4-9; the line plot its Figures
//! 1-2 (log-log axes, one polyline per plan).

use crate::map::Map1D;
use crate::render::color::ColorScale;

const CELL: f64 = 22.0;
const MARGIN_LEFT: f64 = 90.0;
const MARGIN_TOP: f64 = 40.0;
const LEGEND_WIDTH: f64 = 230.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Render an ia-major `grid` over `sel_a` × `sel_b` as an SVG heat map
/// with the scale's legend.  Returns the SVG document as a string.
pub fn heatmap_svg(
    grid: &[f64],
    sel_a: &[f64],
    sel_b: &[f64],
    scale: &ColorScale,
    title: &str,
) -> String {
    assert_eq!(grid.len(), sel_a.len() * sel_b.len(), "grid size mismatch");
    let (na, nb) = (sel_a.len(), sel_b.len());
    let width = MARGIN_LEFT + na as f64 * CELL + LEGEND_WIDTH + 20.0;
    let height = MARGIN_TOP + nb as f64 * CELL + 60.0;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    svg.push_str(&format!(
        "<text x=\"{MARGIN_LEFT}\" y=\"20\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        esc(title)
    ));
    // Cells: ib = 0 at the bottom.
    for ia in 0..na {
        for ib in 0..nb {
            let v = grid[ia * nb + ib];
            let x = MARGIN_LEFT + ia as f64 * CELL;
            let y = MARGIN_TOP + (nb - 1 - ib) as f64 * CELL;
            svg.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{CELL:.1}\" height=\"{CELL:.1}\" \
                 fill=\"{}\"><title>sel_a={:.3e} sel_b={:.3e} value={v:.4}</title></rect>\n",
                scale.color_of(v).hex(),
                sel_a[ia],
                sel_b[ib],
            ));
        }
    }
    // Axis labels (ends only, log-spaced grids are self-explanatory).
    let y_axis = MARGIN_TOP + nb as f64 * CELL;
    svg.push_str(&format!(
        "<text x=\"{MARGIN_LEFT}\" y=\"{:.1}\">{:.1e}</text>\n",
        y_axis + 16.0,
        sel_a[0]
    ));
    svg.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{:.1e}</text>\n",
        MARGIN_LEFT + na as f64 * CELL,
        y_axis + 16.0,
        sel_a[na - 1]
    ));
    svg.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{:.1e}</text>\n",
        MARGIN_LEFT - 6.0,
        y_axis,
        sel_b[0]
    ));
    svg.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{:.1e}</text>\n",
        MARGIN_LEFT - 6.0,
        MARGIN_TOP + 12.0,
        sel_b[nb - 1]
    ));
    svg.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\">selectivity a →</text>\n",
        MARGIN_LEFT,
        y_axis + 34.0
    ));
    // Legend.
    let lx = MARGIN_LEFT + na as f64 * CELL + 24.0;
    svg.push_str(&format!(
        "<text x=\"{lx:.1}\" y=\"{:.1}\" font-weight=\"bold\">{}</text>\n",
        MARGIN_TOP + 4.0,
        esc(&scale.title)
    ));
    for (i, b) in scale.buckets().iter().enumerate() {
        let ly = MARGIN_TOP + 14.0 + i as f64 * 18.0;
        svg.push_str(&format!(
            "<rect x=\"{lx:.1}\" y=\"{ly:.1}\" width=\"14\" height=\"14\" fill=\"{}\"/>\n",
            b.color.hex()
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\">{}</text>\n",
            lx + 20.0,
            ly + 11.0,
            esc(&b.label)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Plot colors for line series.
const SERIES_COLORS: &[&str] =
    &["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"];

/// Render a 1-D map as a log-log line plot (Figure 1/2 style): x =
/// result rows, y = seconds, one polyline per plan.
pub fn line_plot_svg(map: &Map1D, title: &str, y_label: &str) -> String {
    let (w, h) = (640.0, 420.0);
    let (ml, mr, mt, mb) = (70.0, 170.0, 40.0, 50.0);
    let plot_w = w - ml - mr;
    let plot_h = h - mt - mb;
    let xs: Vec<f64> = map.result_rows.iter().map(|&r| (r.max(1)) as f64).collect();
    let mut ys_all: Vec<f64> = Vec::new();
    for s in &map.series {
        for p in &s.points {
            if p.seconds > 0.0 {
                ys_all.push(p.seconds);
            }
        }
    }
    let (xmin, xmax) = (xs[0].min(1.0), xs[xs.len() - 1].max(2.0));
    let ymin = ys_all.iter().copied().fold(f64::INFINITY, f64::min).max(1e-9);
    let ymax = ys_all.iter().copied().fold(0.0f64, f64::max).max(ymin * 10.0);
    let x_of = |v: f64| ml + (v.ln() - xmin.ln()) / (xmax.ln() - xmin.ln()) * plot_w;
    let y_of = |v: f64| mt + plot_h - (v.ln() - ymin.ln()) / (ymax.ln() - ymin.ln()) * plot_h;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    svg.push_str(&format!(
        "<text x=\"{ml}\" y=\"20\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        esc(title)
    ));
    // Frame.
    svg.push_str(&format!(
        "<rect x=\"{ml}\" y=\"{mt}\" width=\"{plot_w}\" height=\"{plot_h}\" fill=\"none\" \
         stroke=\"#888\"/>\n"
    ));
    // Decade grid lines on y.
    let mut decade = 10f64.powf(ymin.log10().ceil());
    while decade < ymax {
        let y = y_of(decade);
        svg.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>\n",
            ml + plot_w
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{decade:.0e}</text>\n",
            ml - 6.0,
            y + 4.0
        ));
        decade *= 10.0;
    }
    // Series.
    for (si, s) in map.series.iter().enumerate() {
        let color = SERIES_COLORS[si % SERIES_COLORS.len()];
        let points: Vec<String> = s
            .points
            .iter()
            .zip(&xs)
            .filter(|(p, _)| p.seconds > 0.0)
            .map(|(p, &x)| format!("{:.1},{:.1}", x_of(x), y_of(p.seconds)))
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            points.join(" ")
        ));
        let ly = mt + 10.0 + si as f64 * 16.0;
        svg.push_str(&format!(
            "<line x1=\"{:.1}\" y1=\"{ly:.1}\" x2=\"{:.1}\" y2=\"{ly:.1}\" stroke=\"{color}\" \
             stroke-width=\"2\"/>\n",
            w - mr + 8.0,
            w - mr + 28.0
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\">{}</text>\n",
            w - mr + 34.0,
            ly + 4.0,
            esc(&s.plan)
        ));
    }
    // Axis captions.
    svg.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\">result rows (log)</text>\n",
        ml + plot_w / 2.0 - 40.0,
        h - 12.0
    ));
    svg.push_str(&format!(
        "<text x=\"14\" y=\"{:.1}\" transform=\"rotate(-90 14 {:.1})\">{}</text>\n",
        mt + plot_h / 2.0,
        mt + plot_h / 2.0,
        esc(y_label)
    ));
    svg.push_str("</svg>\n");
    svg
}

/// One horizontal bar on a [`timeline_svg`] lane: `[start, end]` on the
/// shared x axis (usually global virtual seconds).
#[derive(Debug, Clone)]
pub struct TimelineSpan {
    /// Lane index (row), indexed into the `tracks` labels.
    pub track: usize,
    /// Span start on the x axis.
    pub start: f64,
    /// Span end on the x axis.
    pub end: f64,
    /// Color index into the series palette.
    pub color: usize,
    /// Tooltip text.
    pub label: String,
}

/// A point marker on a [`timeline_svg`] lane (checkpoints, bails,
/// admissions, completions).
#[derive(Debug, Clone)]
pub struct TimelineMark {
    /// Lane index (row).
    pub track: usize,
    /// Position on the x axis.
    pub at: f64,
    /// Tooltip text.
    pub label: String,
}

/// Render a multi-lane execution timeline: one horizontal lane per
/// track, spans as bars, marks as diamonds.  This is the Gantt view of
/// the concurrent scheduler's baton slices (and of traced operator
/// spans), with a linear x axis in `x_label` units.
pub fn timeline_svg(
    tracks: &[String],
    spans: &[TimelineSpan],
    marks: &[TimelineMark],
    title: &str,
    x_label: &str,
) -> String {
    const LANE: f64 = 26.0;
    const BAR: f64 = 16.0;
    let (ml, mr, mt, mb) = (190.0, 30.0, 48.0, 46.0);
    let plot_w = 720.0;
    let n = tracks.len().max(1);
    let w = ml + plot_w + mr;
    let h = mt + n as f64 * LANE + mb;
    let xmax = spans
        .iter()
        .map(|s| s.end)
        .chain(marks.iter().map(|m| m.at))
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let x_of = |v: f64| ml + (v / xmax) * plot_w;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n"
    ));
    svg.push_str(&format!(
        "<text x=\"14\" y=\"20\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        esc(title)
    ));
    // Lanes: label + faint baseline.
    for (t, label) in tracks.iter().enumerate() {
        let y = mt + t as f64 * LANE;
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            ml - 8.0,
            y + LANE / 2.0 + 4.0,
            esc(label)
        ));
        svg.push_str(&format!(
            "<line x1=\"{ml}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#eee\"/>\n",
            y + LANE / 2.0,
            ml + plot_w,
            y + LANE / 2.0
        ));
    }
    // Quarter grid lines with captions.
    for i in 0..=4 {
        let v = xmax * i as f64 / 4.0;
        let x = x_of(v);
        svg.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{mt}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#ddd\"/>\n",
            mt + n as f64 * LANE
        ));
        svg.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{v:.3}</text>\n",
            mt + n as f64 * LANE + 16.0
        ));
    }
    // Spans as bars.
    for s in spans {
        let y = mt + s.track as f64 * LANE + (LANE - BAR) / 2.0;
        let x0 = x_of(s.start);
        let x1 = x_of(s.end);
        let color = SERIES_COLORS[s.color % SERIES_COLORS.len()];
        svg.push_str(&format!(
            "<rect x=\"{x0:.2}\" y=\"{y:.1}\" width=\"{:.2}\" height=\"{BAR:.1}\" \
             fill=\"{color}\" fill-opacity=\"0.8\"><title>{}</title></rect>\n",
            (x1 - x0).max(0.75),
            esc(&s.label)
        ));
    }
    // Marks as diamonds.
    for m in marks {
        let x = x_of(m.at);
        let y = mt + m.track as f64 * LANE + LANE / 2.0;
        svg.push_str(&format!(
            "<path d=\"M {x:.2} {:.1} L {:.2} {y:.1} L {x:.2} {:.1} L {:.2} {y:.1} Z\" \
             fill=\"#222\"><title>{}</title></path>\n",
            y - 6.0,
            x + 4.0,
            y + 6.0,
            x - 4.0,
            esc(&m.label)
        ));
    }
    svg.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\">{}</text>\n",
        ml + plot_w / 2.0 - 60.0,
        h - 10.0,
        esc(x_label)
    ));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Series;
    use crate::measure::Measurement;
    use crate::render::color::absolute_scale;

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, ..Default::default() }
    }

    #[test]
    fn heatmap_svg_is_well_formed() {
        let grid = vec![0.01, 1.0, 10.0, 500.0];
        let svg = heatmap_svg(&grid, &[0.5, 1.0], &[0.5, 1.0], &absolute_scale(), "Figure 4");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 4 + 6); // cells + legend
        assert!(svg.contains("Figure 4"));
        assert!(svg.contains("0.001-0.01 seconds"));
        // Every open tag closes.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn heatmap_escapes_titles() {
        let svg = heatmap_svg(&[1.0], &[1.0], &[1.0], &absolute_scale(), "a < b & c");
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn line_plot_has_one_polyline_per_plan() {
        let map = Map1D {
            sels: vec![0.25, 0.5, 1.0],
            result_rows: vec![4, 8, 16],
            series: vec![
                Series { plan: "p1".into(), points: vec![m(1.0), m(1.0), m(1.0)] },
                Series { plan: "p2".into(), points: vec![m(0.1), m(0.4), m(4.0)] },
            ],
        };
        let svg = line_plot_svg(&map, "Figure 1", "seconds (log)");
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("p1"));
        assert!(svg.contains("p2"));
        assert!(svg.contains("result rows"));
    }

    #[test]
    fn timeline_svg_renders_lanes_spans_and_marks() {
        let tracks = vec!["scheduler".to_string(), "q0: scan".to_string()];
        let spans = vec![
            TimelineSpan { track: 1, start: 0.0, end: 2.5, color: 1, label: "slice 1".into() },
            TimelineSpan { track: 1, start: 3.0, end: 4.0, color: 1, label: "slice 2".into() },
        ];
        let marks = vec![TimelineMark { track: 0, at: 4.0, label: "done & dusted".into() }];
        let svg = timeline_svg(&tracks, &spans, &marks, "Baton timeline", "global sim seconds");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 2);
        assert_eq!(svg.matches("<path").count(), 1);
        assert!(svg.contains("q0: scan"));
        assert!(svg.contains("done &amp; dusted"));
        assert!(svg.contains("global sim seconds"));
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn zero_second_points_are_dropped_not_plotted() {
        let map = Map1D {
            sels: vec![0.5, 1.0],
            result_rows: vec![1, 2],
            series: vec![Series { plan: "p".into(), points: vec![m(0.0), m(1.0)] }],
        };
        let svg = line_plot_svg(&map, "t", "s");
        // The polyline must have exactly one coordinate pair.
        let poly = svg.split("points=\"").nth(1).unwrap().split('"').next().unwrap();
        assert_eq!(poly.split(' ').filter(|p| !p.is_empty()).count(), 1);
    }
}
