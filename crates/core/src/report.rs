//! Plain-text reports: the numbers behind each figure, printed.
//!
//! The benchmark harness prints these for every regenerated figure so the
//! run's stdout alone documents the reproduction (series, landmarks,
//! worst-case quotients, region statistics).

use crate::analysis::landmarks::crossovers;
use crate::analysis::score::RobustnessScore;
use crate::map::Map1D;
use crate::regions::RegionStats;
use crate::relative::{OptimalityTolerance, RelativeMap2D};

/// Landmark summary of a 1-D map: every pairwise crossover, in the terms
/// the paper uses ("the break-even point ... is at about 2^-11 of the rows
/// in the table").
pub fn landmark_report(map: &Map1D) -> String {
    let mut out = String::new();
    out.push_str("landmarks (pairwise break-even points):\n");
    let mut found = false;
    for i in 0..map.series.len() {
        for j in (i + 1)..map.series.len() {
            let a = map.series[i].seconds();
            let b = map.series[j].seconds();
            for c in crossovers(&map.sels, &a, &b) {
                found = true;
                let winner =
                    if c.a_wins_after { &map.series[i].plan } else { &map.series[j].plan };
                out.push_str(&format!(
                    "  {} vs {}: break-even at selectivity {:.3e} (~2^{:.1}); {} cheaper beyond\n",
                    map.series[i].plan,
                    map.series[j].plan,
                    c.at,
                    c.at.log2(),
                    winner,
                ));
            }
        }
    }
    if !found {
        out.push_str("  none (one plan dominates every pair)\n");
    }
    out
}

/// Relative-performance summary of a 2-D map: per plan, worst quotient,
/// coverage, and optimality-region shape — the quantities the paper reads
/// off Figures 7-9.
pub fn relative_report(rel: &RelativeMap2D) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>14} {:>9} {:>9} {:>8} {:>7} {:>7}\n",
        "plan", "worst quotient", "<=2x", "<=10x", "opt.area", "regions", "irreg."
    ));
    for p in 0..rel.plans.len() {
        let region = RegionStats::of(&rel.optimal_region(p, OptimalityTolerance::Factor(1.2)));
        out.push_str(&format!(
            "{:<28} {:>14.1} {:>8.1}% {:>8.1}% {:>7.1}% {:>7} {:>7.2}\n",
            rel.plans[p],
            rel.worst_quotient(p),
            rel.area_within(p, 2.0) * 100.0,
            rel.area_within(p, 10.0) * 100.0,
            region.coverage * 100.0,
            region.component_count,
            region.largest_irregularity,
        ));
    }
    out
}

/// Figure 10's observation as numbers: the distribution of how many plans
/// are optimal per point, under the given tolerance.
pub fn multi_optimal_report(rel: &RelativeMap2D, tol: OptimalityTolerance) -> String {
    let counts = rel.optimal_plan_counts(tol);
    let max = counts.iter().copied().max().unwrap_or(0);
    let mut histogram = vec![0usize; max as usize + 1];
    for &c in &counts {
        histogram[c as usize] += 1;
    }
    let total = counts.len().max(1);
    let multi = counts.iter().filter(|&&c| c >= 2).count();
    let mut out = String::new();
    out.push_str(&format!(
        "optimal plans per point (tolerance {tol:?}): {:.1}% of points have several\n",
        multi as f64 / total as f64 * 100.0
    ));
    for (k, &n) in histogram.iter().enumerate().skip(1) {
        if n > 0 {
            out.push_str(&format!(
                "  {k} optimal plan(s): {n} points ({:.1}%)\n",
                n as f64 / total as f64 * 100.0
            ));
        }
    }
    out
}

/// Robustness-benchmark leaderboard (§4): plans sorted by headline score.
/// Cliffs and knees come from the changepoint detector; `cliff sev.` is
/// the summed log10 cliff severity that weights the headline penalty.
pub fn score_report(scores: &[RobustnessScore]) -> String {
    let mut order: Vec<&RobustnessScore> = scores.iter().collect();
    order.sort_by(|a, b| b.headline().partial_cmp(&a.headline()).expect("finite scores"));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>9} {:>14} {:>7} {:>7} {:>10} {:>6} {:>6}\n",
        "plan", "headline", "worst quotient", "<=2x", "cliffs", "cliff sev.", "knees", "mono."
    ));
    for s in order {
        out.push_str(&format!(
            "{:<28} {:>9.3} {:>14.1} {:>6.1}% {:>7} {:>10.1} {:>6} {:>6}\n",
            s.plan,
            s.headline(),
            s.worst_quotient,
            s.area_within_2x * 100.0,
            s.cliffs,
            s.cliff_log10_severity,
            s.knees,
            s.monotonicity_violations,
        ));
    }
    out
}

/// The leaderboard as CSV (one row per plan, headline order) — the
/// machine-readable artifact a CI trajectory would track.
pub fn score_csv(scores: &[RobustnessScore]) -> String {
    let mut order: Vec<&RobustnessScore> = scores.iter().collect();
    order.sort_by(|a, b| b.headline().partial_cmp(&a.headline()).expect("finite scores"));
    let mut out = String::from(
        "plan,headline,worst_quotient,area_within_2x,area_within_10x,cliffs,\
         cliff_log10_severity,knees,knee_severity,monotonicity_violations,\
         excluded_cells,region_components,region_coverage\n",
    );
    for s in order {
        out.push_str(&format!(
            "{},{:e},{:e},{:e},{:e},{},{:e},{},{:e},{},{},{},{:e}\n",
            crate::render::csv::sanitize(&s.plan),
            s.headline(),
            s.worst_quotient,
            s.area_within_2x,
            s.area_within_10x,
            s.cliffs,
            s.cliff_log10_severity,
            s.knees,
            s.knee_severity,
            s.monotonicity_violations,
            s.excluded_cells,
            s.region.component_count,
            s.region.coverage,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{Map2D, Series};
    use crate::measure::Measurement;

    fn m(seconds: f64) -> Measurement {
        Measurement { seconds, ..Default::default() }
    }

    #[test]
    fn landmark_report_names_the_winner() {
        let map = Map1D {
            sels: vec![0.25, 0.5, 1.0],
            result_rows: vec![1, 2, 4],
            series: vec![
                Series { plan: "scan".into(), points: vec![m(4.0), m(4.0), m(4.0)] },
                Series { plan: "index".into(), points: vec![m(1.0), m(3.0), m(9.0)] },
            ],
        };
        let r = landmark_report(&map);
        assert!(r.contains("scan vs index"));
        assert!(r.contains("scan cheaper beyond"));
    }

    #[test]
    fn landmark_report_handles_domination() {
        let map = Map1D {
            sels: vec![0.5, 1.0],
            result_rows: vec![1, 2],
            series: vec![
                Series { plan: "x".into(), points: vec![m(1.0), m(1.0)] },
                Series { plan: "y".into(), points: vec![m(2.0), m(2.0)] },
            ],
        };
        assert!(landmark_report(&map).contains("none"));
    }

    #[test]
    fn relative_report_has_one_row_per_plan() {
        let data = vec![vec![m(1.0), m(2.0)], vec![m(2.0), m(1.0)]];
        let map =
            Map2D::new(vec![1.0], vec![0.5, 1.0], vec!["p0".into(), "p1".into()], data);
        let rel = RelativeMap2D::from_map(&map);
        let r = relative_report(&rel);
        assert_eq!(r.lines().count(), 3);
        assert!(r.contains("p0"));
        assert!(r.contains("p1"));
    }

    #[test]
    fn score_csv_sanitizes_commas_and_sorts_by_headline() {
        use crate::regions::{BoolGrid, RegionStats};
        let mut grid = BoolGrid::new(1, 1);
        grid.set(0, 0, true);
        let score = |plan: &str, worst: f64| crate::analysis::score::RobustnessScore {
            plan: plan.into(),
            worst_quotient: worst,
            area_within_2x: 1.0,
            area_within_10x: 1.0,
            cliffs: 0,
            knees: 0,
            cliff_log10_severity: 0.0,
            knee_severity: 0.0,
            monotonicity_violations: 0,
            excluded_cells: 0,
            region: RegionStats::of(&grid),
        };
        let csv = score_csv(&[score("hash(a,b) intersect", 100.0), score("scan", 1.0)]);
        let mut lines = csv.lines();
        let cols = lines.next().unwrap().split(',').count();
        let rows: Vec<&str> = lines.collect();
        assert!(rows[0].starts_with("scan,"), "sorted by headline: {}", rows[0]);
        assert!(rows[1].starts_with("hash(a;b) intersect,"), "{}", rows[1]);
        for row in rows {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn multi_optimal_report_counts_points() {
        let data = vec![vec![m(1.0)], vec![m(1.0)]];
        let map = Map2D::new(vec![1.0], vec![1.0], vec!["p0".into(), "p1".into()], data);
        let rel = RelativeMap2D::from_map(&map);
        let r = multi_optimal_report(&rel, OptimalityTolerance::Factor(1.01));
        assert!(r.contains("100.0% of points have several"));
        assert!(r.contains("2 optimal plan(s): 1 points"));
    }
}
