//! Deterministic concurrent serving: N queries over one shared buffer pool.
//!
//! The paper measures each plan/parameter combination in isolation; real
//! servers run many queries at once, competing for the buffer pool and for
//! memory grants.  [`serve_concurrent`] executes a burst of queries over a
//! single [`SharedBufferPool`], interleaved by a deterministic round-robin
//! scheduler, so contention becomes a sweepable run-time condition like
//! selectivity or pool size — same inputs, bit-identical outputs, every
//! run.
//!
//! ## Determinism by construction
//!
//! Concurrency is usually where determinism dies, so the scheduler is
//! built to make every nondeterministic choice impossible rather than
//! unlikely:
//!
//! * **One runnable query at a time.**  Each query runs on its own thread,
//!   but a thread only executes while it holds the *baton* — a message on
//!   its private channel.  Everyone else is parked inside their session's
//!   yield hook waiting for the baton.  Threads exist purely to hold
//!   suspended executor stacks; there is no parallel execution and hence
//!   no racing on the shared pool.
//! * **Yielding at charge granularity.**  The [`Session`] invokes its
//!   yield hook every `quantum` charge events, *between* charges — never
//!   in the middle of one.  Suspend/resume therefore cannot split or
//!   reorder any simulated charge.
//! * **All decisions from deterministic state.**  Which query runs next
//!   (round-robin over the admitted set), who is admitted
//!   ([`AdmissionPolicy`] over a FIFO arrival queue), and with what grant
//!   are all pure functions of the burst and the config.  The only racy
//!   moment is the initial "ready" announcement from each thread, which
//!   happens before any query has charged anything — the order those
//!   messages arrive in is irrelevant.
//!
//! ## The concurrency-1 contract
//!
//! Whenever the server goes idle between admissions (nothing running,
//! queries still queued), it resets the shared pool.  A burst served at
//! `max_in_flight = 1` therefore degenerates to cold-session-per-query —
//! bit-identical (`seconds.to_bits()`, [`IoStats`](robustmap_storage::IoStats),
//! per-operator stats) to
//! measuring each query alone with today's static executor.  The
//! differential suite `tests/concurrent_equivalence.rs` enforces this
//! across the whole 15-plan catalog, and `ext_concurrency` re-checks it at
//! figure scale.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use robustmap_executor::{execute_count_batched, ExecConfig, ExecCtx, ExecStats, PlanSpec};
use robustmap_obs::trace::{TraceEventKind, TraceSink};
use robustmap_storage::{
    CostModel, Database, EvictionPolicy, QueryShare, Session, SharedBufferPool,
};
use robustmap_systems::{apply_grant, AdmissionConfig, AdmissionDecision, AdmissionPolicy};

use crate::measure::Measurement;

/// Environment variable overriding [`ServeConfig::quantum`] (charge events
/// between yields).  `scripts/verify.sh` re-runs the concurrent
/// equivalence suite at an odd quantum to prove slicing is unobservable.
pub const ENV_QUANTUM: &str = "ROBUSTMAP_QUANTUM";

/// Run-time conditions for one served burst.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shared buffer pool size in pages (one pool for the whole burst).
    pub pool_pages: usize,
    /// Replacement policy of the shared pool.
    pub policy: EvictionPolicy,
    /// Cost model (hardware generation).
    pub model: CostModel,
    /// Charge events between yields (0 = never yield: each admitted query
    /// runs to completion once scheduled).
    pub quantum: u64,
    /// Admission control limits (in-flight slots, memory budget, grants).
    pub admission: AdmissionConfig,
    /// Optional trace sink: the scheduler pre-allocates one track per
    /// query (plus one for itself) and records admissions, baton slices
    /// and completions on the **global virtual clock** — the sum of
    /// every query's charge deltas in schedule order.  `None` falls
    /// back to the process-wide sink (`ROBUSTMAP_TRACE`), if any.
    /// Tracing is charge-free: `tests/concurrent_equivalence.rs` passes
    /// with it enabled.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool_pages: 1024,
            policy: EvictionPolicy::Lru,
            model: CostModel::hdd_2009(),
            quantum: 1024,
            admission: AdmissionConfig::default(),
            trace: None,
        }
    }
}

impl ServeConfig {
    /// The default config with the quantum read from [`ENV_QUANTUM`]
    /// (invalid or unset values keep the default).
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(q) = std::env::var(ENV_QUANTUM).ok().and_then(|v| v.parse::<u64>().ok()) {
            cfg.quantum = q;
        }
        cfg
    }
}

/// What one served query produced.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Full executor statistics (rows, seconds, I/O, per-operator).
    pub stats: ExecStats,
    /// The memory grant the query ran under, in bytes.
    pub grant: usize,
    /// Shared-pool hits attributed to this query.
    pub pool_hits: u64,
    /// Shared-pool misses attributed to this query.
    pub pool_misses: u64,
    /// Times the query yielded the baton before completing.
    pub yields: u64,
    /// Global-virtual-time seconds the query waited in the admission
    /// queue (arrival is burst start, i.e. global sim 0).
    pub queue_wait: f64,
    /// Global-virtual-time seconds from arrival to the query's first
    /// baton slice (admission delay + scheduling delay).
    pub first_baton: f64,
    /// Global-virtual-time seconds from arrival to completion.  Under
    /// interleaving this exceeds `stats.seconds` (the query's own
    /// charges) by exactly the time other queries held the baton.
    pub turnaround: f64,
}

impl QueryOutcome {
    /// This outcome as a map-builder [`Measurement`], for comparing served
    /// executions against isolated [`crate::measure_plan`] cells.
    pub fn measurement(&self) -> Measurement {
        Measurement {
            seconds: self.stats.seconds,
            io: self.stats.io,
            rows: self.stats.rows_out,
            spilled: self.stats.spilled,
        }
    }
}

/// Everything a served burst produced, in arrival order.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-query outcomes, indexed like the input `specs`.
    pub queries: Vec<QueryOutcome>,
    /// Query indices in completion order.
    pub completion_order: Vec<usize>,
    /// Query indices in admission order (FIFO arrivals, so this is the
    /// order the policy let them start).
    pub admission_order: Vec<usize>,
    /// Shared-pool `(hits, misses, evictions)` accumulated since the last
    /// idle reset (the whole burst, if the server never went idle).
    pub pool_counters: (u64, u64, u64),
    /// Times the server went idle with queries still queued and reset the
    /// shared pool (this is what makes `max_in_flight = 1` serving
    /// cold-session-per-query).
    pub idle_resets: u64,
}

/// A finished thread's payload, boxed to keep [`Event`] small.
struct ThreadOutcome {
    stats: ExecStats,
    share: QueryShare,
    yields: u64,
    /// Final session clock, so the scheduler can account the last slice
    /// onto the global virtual clock.
    elapsed: f64,
}

enum Event {
    /// Query `i` yielded the baton (or announced readiness, before its
    /// first slice), with its session clock at the yield point.
    Yield(usize, f64),
    /// Query `i` completed.
    Done(usize, Box<ThreadOutcome>),
}

/// Serve a burst of queries concurrently over one shared buffer pool and
/// return every outcome.  Queries arrive in `specs` order; admission is
/// FIFO; scheduling is round-robin at `cfg.quantum` charge-event
/// granularity.  Deterministic: identical inputs produce bit-identical
/// reports (see module docs for why).
pub fn serve_concurrent(db: &Database, specs: &[PlanSpec], cfg: &ServeConfig) -> ServeReport {
    let n = specs.len();
    let pool = Arc::new(SharedBufferPool::new(cfg.pool_pages, cfg.policy));
    let default_grant = cfg.admission.default_grant;

    // Charge-free tracing: the explicitly configured sink, else the
    // process-wide one.  Tracks are pre-allocated here so the scheduler's
    // global-clock events and each session's query-clock events land on
    // the same lane per query.
    let sink: Option<Arc<TraceSink>> =
        cfg.trace.clone().or_else(robustmap_obs::trace::global_sink);
    let (tracks, sched_track) = match &sink {
        Some(s) => (
            specs
                .iter()
                .enumerate()
                .map(|(i, spec)| s.alloc_track(&format!("q{i}: {}", spec.synopsis())))
                .collect::<Vec<u32>>(),
            s.alloc_track("scheduler"),
        ),
        None => (vec![0; n], 0),
    };
    let emit = |track: u32, sim: f64, kind: TraceEventKind| {
        if let Some(s) = &sink {
            s.emit(track, sim, kind);
        }
    };

    let (evt_tx, evt_rx) = mpsc::channel::<Event>();
    let mut batons: Vec<mpsc::Sender<usize>> = Vec::with_capacity(n);

    let mut outcomes: Vec<Option<QueryOutcome>> = (0..n).map(|_| None).collect();
    let mut completion_order = Vec::with_capacity(n);
    let mut admission_order = Vec::with_capacity(n);
    let mut idle_resets = 0u64;

    std::thread::scope(|scope| {
        for (i, spec) in specs.iter().enumerate() {
            let (go_tx, go_rx) = mpsc::channel::<usize>();
            batons.push(go_tx);
            let evt_tx = evt_tx.clone();
            let pool = Arc::clone(&pool);
            let model = cfg.model.clone();
            let quantum = cfg.quantum;
            let sink = sink.clone();
            let track = tracks[i];
            scope.spawn(move || {
                let session = Session::on_shared(model, pool);
                if let Some(s) = sink {
                    // Replace any auto-attached global track with the
                    // scheduler's pre-allocated, synopsis-labelled one.
                    session.attach_tracer_track(s, track);
                }
                // The hook parks this thread until the scheduler hands the
                // baton back; the baton message carries the memory grant
                // (only the first one matters — later batons repeat it).
                let granted = Arc::new(AtomicUsize::new(default_grant));
                let yields = Arc::new(AtomicU64::new(0));
                let hook = {
                    let granted = Arc::clone(&granted);
                    let yields = Arc::clone(&yields);
                    let evt_tx = evt_tx.clone();
                    Box::new(move |elapsed: f64| {
                        yields.fetch_add(1, Ordering::Relaxed);
                        evt_tx.send(Event::Yield(i, elapsed)).expect("scheduler hung up");
                        let g = go_rx.recv().expect("scheduler dropped the baton");
                        granted.store(g, Ordering::Relaxed);
                    })
                };
                session.install_yield_hook(quantum, hook);
                // Announce readiness and wait to be scheduled.  Nothing has
                // been charged yet, so the racy arrival order of these
                // ready events cannot affect any measurement.
                session.yield_now();
                let grant = granted.load(Ordering::Relaxed);
                session.set_memory_grant(grant);
                // A shrunk grant reshapes the plan (operators clamp to the
                // grant and may now spill); a full grant leaves the plan
                // and its charges byte-for-byte untouched.
                let spec = if grant < default_grant {
                    apply_grant(spec, grant)
                } else {
                    spec.clone()
                };
                let ctx = ExecCtx::new(db, &session, grant);
                let stats = execute_count_batched(&spec, &ctx, &ExecConfig::from_env())
                    .expect("served plans must be well-formed");
                let share = session.query_pool_counters();
                let elapsed = session.elapsed();
                session.clear_yield_hook();
                session.detach_tracer();
                // The first yield was the ready announcement, not a slice.
                let yields = yields.load(Ordering::Relaxed).saturating_sub(1);
                evt_tx
                    .send(Event::Done(
                        i,
                        Box::new(ThreadOutcome { stats, share, yields, elapsed }),
                    ))
                    .expect("scheduler hung up");
            });
        }
        drop(evt_tx);

        // Phase 1: wait for every thread to park in its hook.  After this
        // point exactly one thread runs at a time — the baton holder.
        for _ in 0..n {
            match evt_rx.recv().expect("a serving thread died before ready") {
                Event::Yield(..) => {}
                Event::Done(i, _) => unreachable!("query {i} finished before being scheduled"),
            }
        }

        // Phase 2: admit and round-robin until the burst drains.  The
        // global virtual clock advances by the running query's charge
        // delta at every yield — the shared timeline every scheduler
        // trace event and latency figure is stamped with.
        let mut global_sim = 0.0f64;
        let mut last_elapsed = vec![0.0f64; n];
        let mut queue_wait = vec![0.0f64; n];
        let mut first_baton = vec![f64::NAN; n];
        let mut turnaround = vec![0.0f64; n];
        for track in tracks.iter().take(n) {
            emit(*track, 0.0, TraceEventKind::Queued);
        }
        let mut policy = AdmissionPolicy::new(cfg.admission.clone());
        let mut pending: std::collections::VecDeque<usize> = (0..n).collect();
        let mut running: Vec<usize> = Vec::new();
        let mut grants = vec![0usize; n];
        let mut cursor = 0usize;
        let mut completed = 0usize;
        while completed < n {
            if running.is_empty() && completed > 0 && !pending.is_empty() {
                // Idle between admissions: restore cold conditions, so a
                // serialized burst measures exactly like isolated queries.
                pool.reset();
                idle_resets += 1;
                emit(sched_track, global_sim, TraceEventKind::IdleReset);
            }
            while !pending.is_empty() {
                match policy.admit() {
                    AdmissionDecision::Run { grant } => {
                        let q = pending.pop_front().expect("checked non-empty");
                        grants[q] = grant;
                        queue_wait[q] = global_sim;
                        admission_order.push(q);
                        running.push(q);
                        emit(tracks[q], global_sim, TraceEventKind::Admit {
                            grant: grant as u64,
                        });
                    }
                    AdmissionDecision::Queue => break,
                }
            }
            assert!(!running.is_empty(), "admission deadlock: nothing running or admissible");
            let q = running[cursor];
            if first_baton[q].is_nan() {
                first_baton[q] = global_sim;
            }
            emit(tracks[q], global_sim, TraceEventKind::SliceBegin);
            batons[q].send(grants[q]).expect("query thread died holding work");
            match evt_rx.recv().expect("query thread died mid-slice") {
                Event::Yield(i, elapsed) => {
                    debug_assert_eq!(i, q, "baton discipline violated");
                    global_sim += elapsed - last_elapsed[i];
                    last_elapsed[i] = elapsed;
                    emit(tracks[i], global_sim, TraceEventKind::SliceEnd);
                    cursor = (cursor + 1) % running.len();
                }
                Event::Done(i, out) => {
                    debug_assert_eq!(i, q, "baton discipline violated");
                    global_sim += out.elapsed - last_elapsed[i];
                    last_elapsed[i] = out.elapsed;
                    turnaround[i] = global_sim;
                    emit(tracks[i], global_sim, TraceEventKind::SliceEnd);
                    emit(tracks[i], global_sim, TraceEventKind::QueryDone {
                        rows: out.stats.rows_out,
                    });
                    outcomes[i] = Some(QueryOutcome {
                        stats: out.stats,
                        grant: grants[i],
                        pool_hits: out.share.hits,
                        pool_misses: out.share.misses,
                        yields: out.yields,
                        queue_wait: queue_wait[i],
                        first_baton: if first_baton[i].is_nan() { 0.0 } else { first_baton[i] },
                        turnaround: turnaround[i],
                    });
                    completion_order.push(i);
                    policy.release(grants[i]);
                    running.remove(cursor);
                    if cursor >= running.len() {
                        cursor = 0;
                    }
                    completed += 1;
                }
            }
        }
    });

    ServeReport {
        queries: outcomes
            .into_iter()
            .map(|o| o.expect("every query completed"))
            .collect(),
        completion_order,
        admission_order,
        pool_counters: pool.counters(),
        idle_resets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_executor::{ColRange, Predicate, Projection};
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    fn scan_spec(w: &robustmap_workload::Workload, sel: f64) -> PlanSpec {
        PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(0, w.cal_a.threshold(sel))),
            project: Projection::All,
        }
    }

    #[test]
    fn empty_burst_is_a_no_op() {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let report = serve_concurrent(&w.db, &[], &ServeConfig::default());
        assert!(report.queries.is_empty());
        assert!(report.completion_order.is_empty());
        assert_eq!(report.idle_resets, 0);
    }

    #[test]
    fn burst_of_scans_completes_with_correct_rows() {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let specs = vec![scan_spec(&w, 0.25), scan_spec(&w, 0.5), scan_spec(&w, 1.0)];
        let report = serve_concurrent(&w.db, &specs, &ServeConfig::default());
        assert_eq!(report.queries.len(), 3);
        assert_eq!(report.queries[2].stats.rows_out, 1 << 10);
        assert!(report.queries[0].stats.rows_out < report.queries[1].stats.rows_out);
        // Unbounded admission: everyone admitted up front, FIFO.
        assert_eq!(report.admission_order, vec![0, 1, 2]);
        assert_eq!(report.idle_resets, 0);
        // Identical scans interleaved over one pool share pages.
        assert!(report.queries.iter().any(|q| q.pool_hits > 0));
        // Latency accounting: unbounded admission means zero queue wait,
        // and each query's turnaround is at least its own run time and at
        // least its first-baton latency.
        for q in &report.queries {
            assert_eq!(q.queue_wait, 0.0);
            assert!(q.first_baton >= q.queue_wait);
            assert!(q.turnaround >= q.first_baton);
            assert!(q.turnaround >= q.stats.seconds * (1.0 - 1e-9));
        }
        // The last completion's turnaround is the burst makespan: the sum
        // of everyone's charges (the global clock only advances by
        // charges, never idles).
        let makespan: f64 = report.queries.iter().map(|q| q.stats.seconds).sum();
        let last = *report.completion_order.last().unwrap();
        assert!((report.queries[last].turnaround - makespan).abs() <= 1e-9 * makespan);
    }

    #[test]
    fn bounded_slots_make_queue_wait_visible() {
        use robustmap_systems::AdmissionConfig;
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let specs = vec![scan_spec(&w, 1.0), scan_spec(&w, 1.0), scan_spec(&w, 1.0)];
        let cfg = ServeConfig {
            admission: AdmissionConfig { max_in_flight: 1, ..AdmissionConfig::default() },
            ..ServeConfig::default()
        };
        let report = serve_concurrent(&w.db, &specs, &cfg);
        assert_eq!(report.queries[0].queue_wait, 0.0);
        // With one slot, query 1 waits exactly as long as query 0 runs.
        assert!(report.queries[1].queue_wait > 0.0);
        assert!(report.queries[2].queue_wait > report.queries[1].queue_wait);
        assert!(
            (report.queries[1].queue_wait - report.queries[0].stats.seconds).abs()
                <= 1e-9 * report.queries[0].stats.seconds
        );
    }

    #[test]
    fn traced_serving_is_bit_identical_and_timeline_reconciles() {
        use robustmap_obs::trace::{slice_totals, validate_trace, TraceDetail};
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let specs = vec![scan_spec(&w, 0.25), scan_spec(&w, 0.5), scan_spec(&w, 1.0)];
        let plain = serve_concurrent(&w.db, &specs, &ServeConfig::default());
        let sink = Arc::new(TraceSink::memory(TraceDetail::Spans));
        let cfg = ServeConfig { trace: Some(Arc::clone(&sink)), ..ServeConfig::default() };
        let traced = serve_concurrent(&w.db, &specs, &cfg);
        // The charge-free contract at the serving layer: recording the
        // full timeline must not move a single bit of simulated cost.
        for (p, t) in plain.queries.iter().zip(traced.queries.iter()) {
            assert_eq!(p.stats.seconds.to_bits(), t.stats.seconds.to_bits());
            assert_eq!(p.stats.io, t.stats.io);
            assert_eq!(p.yields, t.yields);
            assert_eq!(p.turnaround.to_bits(), t.turnaround.to_bits());
        }
        assert_eq!(plain.completion_order, traced.completion_order);
        // The recorded timeline is well-formed and its per-query slice
        // totals reconcile with the reported run times.
        let events = sink.events();
        validate_trace(&events).expect("served trace must be well-formed");
        let totals = slice_totals(&events);
        for (i, q) in traced.queries.iter().enumerate() {
            let total = totals.get(&(i as u32)).copied().unwrap_or(0.0);
            assert!(
                (total - q.stats.seconds).abs() <= 1e-9 * q.stats.seconds.max(1e-12),
                "query {i}: slice total {total} != seconds {}",
                q.stats.seconds
            );
        }
        // Scheduler bookkeeping made it into the trace.
        let m = sink.metrics();
        assert_eq!(m.counter("sched.admissions"), 3);
        assert_eq!(m.counter("sched.completions"), 3);
        assert!(m.counter("sched.slices") >= 3);
    }

    #[test]
    fn zero_quantum_serializes_each_admitted_query() {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let specs = vec![scan_spec(&w, 1.0), scan_spec(&w, 1.0)];
        let cfg = ServeConfig { quantum: 0, ..ServeConfig::default() };
        let report = serve_concurrent(&w.db, &specs, &cfg);
        assert_eq!(report.completion_order, vec![0, 1]);
        assert!(report.queries.iter().all(|q| q.yields == 0));
    }
}
