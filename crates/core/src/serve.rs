//! Deterministic concurrent serving: N queries over one shared buffer pool.
//!
//! The paper measures each plan/parameter combination in isolation; real
//! servers run many queries at once, competing for the buffer pool and for
//! memory grants.  [`serve_concurrent`] executes a burst of queries over a
//! single [`SharedBufferPool`], interleaved by a deterministic round-robin
//! scheduler, so contention becomes a sweepable run-time condition like
//! selectivity or pool size — same inputs, bit-identical outputs, every
//! run.
//!
//! ## Determinism by construction
//!
//! Concurrency is usually where determinism dies, so the scheduler is
//! built to make every nondeterministic choice impossible rather than
//! unlikely:
//!
//! * **One runnable query at a time.**  Each query runs on its own thread,
//!   but a thread only executes while it holds the *baton* — a message on
//!   its private channel.  Everyone else is parked inside their session's
//!   yield hook waiting for the baton.  Threads exist purely to hold
//!   suspended executor stacks; there is no parallel execution and hence
//!   no racing on the shared pool.
//! * **Yielding at charge granularity.**  The [`Session`] invokes its
//!   yield hook every `quantum` charge events, *between* charges — never
//!   in the middle of one.  Suspend/resume therefore cannot split or
//!   reorder any simulated charge.
//! * **All decisions from deterministic state.**  Which query runs next
//!   (round-robin over the admitted set), who is admitted
//!   ([`AdmissionPolicy`] over a FIFO arrival queue), and with what grant
//!   are all pure functions of the burst and the config.  The only racy
//!   moment is the initial "ready" announcement from each thread, which
//!   happens before any query has charged anything — the order those
//!   messages arrive in is irrelevant.
//!
//! ## The concurrency-1 contract
//!
//! Whenever the server goes idle between admissions (nothing running,
//! queries still queued), it resets the shared pool.  A burst served at
//! `max_in_flight = 1` therefore degenerates to cold-session-per-query —
//! bit-identical (`seconds.to_bits()`, [`IoStats`](robustmap_storage::IoStats),
//! per-operator stats) to
//! measuring each query alone with today's static executor.  The
//! differential suite `tests/concurrent_equivalence.rs` enforces this
//! across the whole 15-plan catalog, and `ext_concurrency` re-checks it at
//! figure scale.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use robustmap_executor::{execute_count_batched, ExecConfig, ExecCtx, ExecStats, PlanSpec};
use robustmap_storage::{
    CostModel, Database, EvictionPolicy, QueryShare, Session, SharedBufferPool,
};
use robustmap_systems::{apply_grant, AdmissionConfig, AdmissionDecision, AdmissionPolicy};

use crate::measure::Measurement;

/// Environment variable overriding [`ServeConfig::quantum`] (charge events
/// between yields).  `scripts/verify.sh` re-runs the concurrent
/// equivalence suite at an odd quantum to prove slicing is unobservable.
pub const ENV_QUANTUM: &str = "ROBUSTMAP_QUANTUM";

/// Run-time conditions for one served burst.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shared buffer pool size in pages (one pool for the whole burst).
    pub pool_pages: usize,
    /// Replacement policy of the shared pool.
    pub policy: EvictionPolicy,
    /// Cost model (hardware generation).
    pub model: CostModel,
    /// Charge events between yields (0 = never yield: each admitted query
    /// runs to completion once scheduled).
    pub quantum: u64,
    /// Admission control limits (in-flight slots, memory budget, grants).
    pub admission: AdmissionConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool_pages: 1024,
            policy: EvictionPolicy::Lru,
            model: CostModel::hdd_2009(),
            quantum: 1024,
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The default config with the quantum read from [`ENV_QUANTUM`]
    /// (invalid or unset values keep the default).
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(q) = std::env::var(ENV_QUANTUM).ok().and_then(|v| v.parse::<u64>().ok()) {
            cfg.quantum = q;
        }
        cfg
    }
}

/// What one served query produced.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Full executor statistics (rows, seconds, I/O, per-operator).
    pub stats: ExecStats,
    /// The memory grant the query ran under, in bytes.
    pub grant: usize,
    /// Shared-pool hits attributed to this query.
    pub pool_hits: u64,
    /// Shared-pool misses attributed to this query.
    pub pool_misses: u64,
    /// Times the query yielded the baton before completing.
    pub yields: u64,
}

impl QueryOutcome {
    /// This outcome as a map-builder [`Measurement`], for comparing served
    /// executions against isolated [`crate::measure_plan`] cells.
    pub fn measurement(&self) -> Measurement {
        Measurement {
            seconds: self.stats.seconds,
            io: self.stats.io,
            rows: self.stats.rows_out,
            spilled: self.stats.spilled,
        }
    }
}

/// Everything a served burst produced, in arrival order.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-query outcomes, indexed like the input `specs`.
    pub queries: Vec<QueryOutcome>,
    /// Query indices in completion order.
    pub completion_order: Vec<usize>,
    /// Query indices in admission order (FIFO arrivals, so this is the
    /// order the policy let them start).
    pub admission_order: Vec<usize>,
    /// Shared-pool `(hits, misses, evictions)` accumulated since the last
    /// idle reset (the whole burst, if the server never went idle).
    pub pool_counters: (u64, u64, u64),
    /// Times the server went idle with queries still queued and reset the
    /// shared pool (this is what makes `max_in_flight = 1` serving
    /// cold-session-per-query).
    pub idle_resets: u64,
}

/// A finished thread's payload, boxed to keep [`Event`] small.
struct ThreadOutcome {
    stats: ExecStats,
    share: QueryShare,
    yields: u64,
}

enum Event {
    /// Query `i` yielded the baton (or announced readiness, before its
    /// first slice).
    Yield(usize),
    /// Query `i` completed.
    Done(usize, Box<ThreadOutcome>),
}

/// Serve a burst of queries concurrently over one shared buffer pool and
/// return every outcome.  Queries arrive in `specs` order; admission is
/// FIFO; scheduling is round-robin at `cfg.quantum` charge-event
/// granularity.  Deterministic: identical inputs produce bit-identical
/// reports (see module docs for why).
pub fn serve_concurrent(db: &Database, specs: &[PlanSpec], cfg: &ServeConfig) -> ServeReport {
    let n = specs.len();
    let pool = Arc::new(SharedBufferPool::new(cfg.pool_pages, cfg.policy));
    let default_grant = cfg.admission.default_grant;

    let (evt_tx, evt_rx) = mpsc::channel::<Event>();
    let mut batons: Vec<mpsc::Sender<usize>> = Vec::with_capacity(n);

    let mut outcomes: Vec<Option<QueryOutcome>> = (0..n).map(|_| None).collect();
    let mut completion_order = Vec::with_capacity(n);
    let mut admission_order = Vec::with_capacity(n);
    let mut idle_resets = 0u64;

    std::thread::scope(|scope| {
        for (i, spec) in specs.iter().enumerate() {
            let (go_tx, go_rx) = mpsc::channel::<usize>();
            batons.push(go_tx);
            let evt_tx = evt_tx.clone();
            let pool = Arc::clone(&pool);
            let model = cfg.model.clone();
            let quantum = cfg.quantum;
            scope.spawn(move || {
                let session = Session::on_shared(model, pool);
                // The hook parks this thread until the scheduler hands the
                // baton back; the baton message carries the memory grant
                // (only the first one matters — later batons repeat it).
                let granted = Arc::new(AtomicUsize::new(default_grant));
                let yields = Arc::new(AtomicU64::new(0));
                let hook = {
                    let granted = Arc::clone(&granted);
                    let yields = Arc::clone(&yields);
                    let evt_tx = evt_tx.clone();
                    Box::new(move || {
                        yields.fetch_add(1, Ordering::Relaxed);
                        evt_tx.send(Event::Yield(i)).expect("scheduler hung up");
                        let g = go_rx.recv().expect("scheduler dropped the baton");
                        granted.store(g, Ordering::Relaxed);
                    })
                };
                session.install_yield_hook(quantum, hook);
                // Announce readiness and wait to be scheduled.  Nothing has
                // been charged yet, so the racy arrival order of these
                // ready events cannot affect any measurement.
                session.yield_now();
                let grant = granted.load(Ordering::Relaxed);
                session.set_memory_grant(grant);
                // A shrunk grant reshapes the plan (operators clamp to the
                // grant and may now spill); a full grant leaves the plan
                // and its charges byte-for-byte untouched.
                let spec = if grant < default_grant {
                    apply_grant(spec, grant)
                } else {
                    spec.clone()
                };
                let ctx = ExecCtx::new(db, &session, grant);
                let stats = execute_count_batched(&spec, &ctx, &ExecConfig::from_env())
                    .expect("served plans must be well-formed");
                let share = session.query_pool_counters();
                session.clear_yield_hook();
                // The first yield was the ready announcement, not a slice.
                let yields = yields.load(Ordering::Relaxed).saturating_sub(1);
                evt_tx
                    .send(Event::Done(i, Box::new(ThreadOutcome { stats, share, yields })))
                    .expect("scheduler hung up");
            });
        }
        drop(evt_tx);

        // Phase 1: wait for every thread to park in its hook.  After this
        // point exactly one thread runs at a time — the baton holder.
        for _ in 0..n {
            match evt_rx.recv().expect("a serving thread died before ready") {
                Event::Yield(_) => {}
                Event::Done(i, _) => unreachable!("query {i} finished before being scheduled"),
            }
        }

        // Phase 2: admit and round-robin until the burst drains.
        let mut policy = AdmissionPolicy::new(cfg.admission.clone());
        let mut pending: std::collections::VecDeque<usize> = (0..n).collect();
        let mut running: Vec<usize> = Vec::new();
        let mut grants = vec![0usize; n];
        let mut cursor = 0usize;
        let mut completed = 0usize;
        while completed < n {
            if running.is_empty() && completed > 0 && !pending.is_empty() {
                // Idle between admissions: restore cold conditions, so a
                // serialized burst measures exactly like isolated queries.
                pool.reset();
                idle_resets += 1;
            }
            while !pending.is_empty() {
                match policy.admit() {
                    AdmissionDecision::Run { grant } => {
                        let q = pending.pop_front().expect("checked non-empty");
                        grants[q] = grant;
                        admission_order.push(q);
                        running.push(q);
                    }
                    AdmissionDecision::Queue => break,
                }
            }
            assert!(!running.is_empty(), "admission deadlock: nothing running or admissible");
            let q = running[cursor];
            batons[q].send(grants[q]).expect("query thread died holding work");
            match evt_rx.recv().expect("query thread died mid-slice") {
                Event::Yield(i) => {
                    debug_assert_eq!(i, q, "baton discipline violated");
                    cursor = (cursor + 1) % running.len();
                }
                Event::Done(i, out) => {
                    debug_assert_eq!(i, q, "baton discipline violated");
                    outcomes[i] = Some(QueryOutcome {
                        stats: out.stats,
                        grant: grants[i],
                        pool_hits: out.share.hits,
                        pool_misses: out.share.misses,
                        yields: out.yields,
                    });
                    completion_order.push(i);
                    policy.release(grants[i]);
                    running.remove(cursor);
                    if cursor >= running.len() {
                        cursor = 0;
                    }
                    completed += 1;
                }
            }
        }
    });

    ServeReport {
        queries: outcomes
            .into_iter()
            .map(|o| o.expect("every query completed"))
            .collect(),
        completion_order,
        admission_order,
        pool_counters: pool.counters(),
        idle_resets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_executor::{ColRange, Predicate, Projection};
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    fn scan_spec(w: &robustmap_workload::Workload, sel: f64) -> PlanSpec {
        PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(0, w.cal_a.threshold(sel))),
            project: Projection::All,
        }
    }

    #[test]
    fn empty_burst_is_a_no_op() {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let report = serve_concurrent(&w.db, &[], &ServeConfig::default());
        assert!(report.queries.is_empty());
        assert!(report.completion_order.is_empty());
        assert_eq!(report.idle_resets, 0);
    }

    #[test]
    fn burst_of_scans_completes_with_correct_rows() {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let specs = vec![scan_spec(&w, 0.25), scan_spec(&w, 0.5), scan_spec(&w, 1.0)];
        let report = serve_concurrent(&w.db, &specs, &ServeConfig::default());
        assert_eq!(report.queries.len(), 3);
        assert_eq!(report.queries[2].stats.rows_out, 1 << 10);
        assert!(report.queries[0].stats.rows_out < report.queries[1].stats.rows_out);
        // Unbounded admission: everyone admitted up front, FIFO.
        assert_eq!(report.admission_order, vec![0, 1, 2]);
        assert_eq!(report.idle_resets, 0);
        // Identical scans interleaved over one pool share pages.
        assert!(report.queries.iter().any(|q| q.pool_hits > 0));
    }

    #[test]
    fn zero_quantum_serializes_each_admitted_query() {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 10));
        let specs = vec![scan_spec(&w, 1.0), scan_spec(&w, 1.0)];
        let cfg = ServeConfig { quantum: 0, ..ServeConfig::default() };
        let report = serve_concurrent(&w.db, &specs, &cfg);
        assert_eq!(report.completion_order, vec![0, 1]);
        assert!(report.queries.iter().all(|q| q.yields == 0));
    }
}
