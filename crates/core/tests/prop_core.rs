//! Property-based tests for the map/analysis layer: invariants that must
//! hold for *any* map, not just measured ones.

use proptest::prelude::*;
use robustmap_core::analysis::changepoint::{
    detect_changepoints, ChangeClass, ChangepointConfig,
};
use robustmap_core::analysis::landmarks::crossovers;
use robustmap_core::analysis::monotonicity::monotonicity_violations;
use robustmap_core::analysis::symmetry::symmetry_of;
use robustmap_core::map::Map2D;
use robustmap_core::measure::Measurement;
use robustmap_core::regions::{connected_components, BoolGrid, RegionStats};
use robustmap_core::relative::{OptimalityTolerance, RelativeMap2D};

fn meas(seconds: f64) -> Measurement {
    Measurement { seconds, ..Default::default() }
}

fn map_strategy() -> impl Strategy<Value = Map2D> {
    // 1..=4 plans over small grids with positive costs.
    (1usize..=4, 1usize..=6, 1usize..=6).prop_flat_map(|(plans, na, nb)| {
        let cells = na * nb;
        (
            prop::collection::vec(
                prop::collection::vec(0.001f64..1000.0, cells..=cells),
                plans..=plans,
            ),
            Just((na, nb)),
        )
            .prop_map(move |(grids, (na, nb))| {
                let sel_a: Vec<f64> = (0..na).map(|i| 0.5f64.powi((na - 1 - i) as i32)).collect();
                let sel_b: Vec<f64> = (0..nb).map(|i| 0.5f64.powi((nb - 1 - i) as i32)).collect();
                let names = (0..grids.len()).map(|i| format!("p{i}")).collect();
                let data = grids
                    .into_iter()
                    .map(|g| g.into_iter().map(meas).collect())
                    .collect();
                Map2D::new(sel_a, sel_b, names, data)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Relative maps: quotients >= 1, the best plan has quotient 1, every
    /// cell is covered by some strict optimality region, and multi-optimal
    /// counts are consistent with the regions.
    #[test]
    fn relative_map_invariants(map in map_strategy()) {
        let rel = RelativeMap2D::from_map(&map);
        let (na, nb) = rel.dims();
        for p in 0..map.plan_count() {
            prop_assert!(rel.worst_quotient(p) >= 1.0);
            for &q in rel.quotient_grid(p) {
                prop_assert!(q >= 1.0 - 1e-12 && q.is_finite());
            }
            // area_within is monotone in the factor.
            prop_assert!(rel.area_within(p, 2.0) <= rel.area_within(p, 10.0));
            prop_assert!(rel.area_within(p, f64::INFINITY) == 1.0);
        }
        let tol = OptimalityTolerance::Factor(1.0 + 1e-9);
        let counts = rel.optimal_plan_counts(tol);
        for ia in 0..na {
            for ib in 0..nb {
                let best = rel.best_plan_at(ia, ib);
                prop_assert!((rel.quotient(best, ia, ib) - 1.0).abs() < 1e-12);
                prop_assert!(counts[ia * nb + ib] >= 1);
            }
        }
        // Sum over plans of region cells equals sum of per-cell counts.
        let total_regions: usize = (0..map.plan_count())
            .map(|p| rel.optimal_region(p, tol).count())
            .sum();
        let total_counts: u32 = counts.iter().sum();
        prop_assert_eq!(total_regions as u32, total_counts);
    }

    /// Widening the tolerance can only grow optimality regions.
    #[test]
    fn tolerance_monotonicity(map in map_strategy()) {
        let rel = RelativeMap2D::from_map(&map);
        for p in 0..rel.plans.len() {
            let tight = rel.optimal_region(p, OptimalityTolerance::Factor(1.1));
            let loose = rel.optimal_region(p, OptimalityTolerance::Factor(2.0));
            let (na, nb) = rel.dims();
            for ia in 0..na {
                for ib in 0..nb {
                    prop_assert!(!tight.get(ia, ib) || loose.get(ia, ib));
                }
            }
        }
    }

    /// Connected components partition the true cells exactly: areas sum to
    /// the count, cells are disjoint, and each component is connected.
    #[test]
    fn components_partition_grid(cells in prop::collection::vec(any::<bool>(), 1..64), w in 1usize..8) {
        let h = cells.len().div_ceil(w);
        let grid = BoolGrid::from_fn(w, h, |ia, ib| {
            cells.get(ia * h + ib).copied().unwrap_or(false)
        });
        let regions = connected_components(&grid);
        let total: usize = regions.iter().map(|r| r.area).sum();
        prop_assert_eq!(total, grid.count());
        let mut seen = std::collections::HashSet::new();
        for r in &regions {
            prop_assert_eq!(r.area, r.cells.len());
            for &c in &r.cells {
                prop_assert!(seen.insert(c), "cell in two regions");
                prop_assert!(grid.get(c.0, c.1));
            }
            // Components are sorted largest-first.
        }
        prop_assert!(regions.windows(2).all(|w| w[0].area >= w[1].area));
        let stats = RegionStats::of(&grid);
        prop_assert_eq!(stats.component_count, regions.len());
        prop_assert_eq!(stats.total_area, total);
    }

    /// Monotone series never trigger monotonicity violations, and a series
    /// plus its recorded violations reconstructs consistently.
    #[test]
    fn monotone_series_are_clean(steps in prop::collection::vec(0.0f64..10.0, 2..40)) {
        let work: Vec<f64> = (1..=steps.len()).map(|i| i as f64).collect();
        let mut cost = Vec::with_capacity(steps.len());
        let mut acc = 1.0;
        for s in &steps {
            acc += s;
            cost.push(acc);
        }
        prop_assert!(monotonicity_violations(&work, &cost, 0.0).is_empty());
        // Reversing the series produces one violation per strict decrease.
        let rev: Vec<f64> = cost.iter().rev().copied().collect();
        let violations = monotonicity_violations(&work, &rev, 0.0);
        let strict_decreases = rev.windows(2).filter(|w| w[1] < w[0]).count();
        prop_assert_eq!(violations.len(), strict_decreases);
    }

    /// Scaling both series by the same factor leaves crossovers unchanged.
    #[test]
    fn crossovers_are_scale_invariant(
        a in prop::collection::vec(0.01f64..100.0, 3..20),
        scale in 0.01f64..100.0,
    ) {
        let axis: Vec<f64> = (1..=a.len()).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|&x| x * 1.5).collect(); // never crosses
        prop_assert!(crossovers(&axis, &a, &b).is_empty());
        let a2: Vec<f64> = a.iter().map(|&x| x * scale).collect();
        let b2: Vec<f64> = a.iter().rev().map(|&x| x * scale).collect();
        let x1 = crossovers(&axis, &a, &a.iter().rev().copied().collect::<Vec<_>>());
        let x2 = crossovers(&axis, &a2, &b2);
        prop_assert_eq!(x1.len(), x2.len());
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert_eq!(u.index, v.index);
            prop_assert!((u.at - v.at).abs() < 1e-6 * u.at.max(1.0));
        }
    }

    /// A symmetric grid scores zero asymmetry; transposing never changes
    /// the score; changepoint detection is invariant under scaling.
    #[test]
    fn symmetry_and_changepoint_props(vals in prop::collection::vec(0.01f64..100.0, 9..=9)) {
        let n = 3;
        // Symmetrise: m[i][j] = v[i] + v[j].
        let vals_ref = &vals;
        let sym: Vec<f64> = (0..n)
            .flat_map(|i| (0..n).map(move |j| vals_ref[i] + vals_ref[j]))
            .collect::<Vec<_>>();
        let s = symmetry_of(&sym, n);
        prop_assert!(s.max_log_ratio < 1e-9);
        // Transpose invariance on the raw grid.
        let transposed: Vec<f64> =
            (0..n).flat_map(|i| (0..n).map(move |j| vals_ref[j * n + i])).collect();
        let s1 = symmetry_of(&vals, n);
        let s2 = symmetry_of(&transposed, n);
        prop_assert!((s1.max_log_ratio - s2.max_log_ratio).abs() < 1e-12);
        // Changepoint count is scale invariant on arbitrary positive data.
        let axis = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
        let scaled: Vec<f64> = vals.iter().map(|&x| x * 7.0).collect();
        let cfg = ChangepointConfig::default();
        prop_assert_eq!(
            detect_changepoints(&axis, &vals, &cfg).changepoints.len(),
            detect_changepoints(&axis, &scaled, &cfg).changepoints.len()
        );
    }

    /// Tentpole invariance (cliffs): a level shift on a power-law curve is
    /// flagged as exactly one cliff with the shift's factor as severity —
    /// the same under uniform cost scaling and under 2x grid refinement —
    /// and the smooth curve without the shift is clean on both grids.
    #[test]
    fn cliff_detection_survives_scaling_and_refinement(
        exponent in 0.2f64..2.2,
        scale in 1e-3f64..1e3,
        jump in 4.0f64..64.0,
        jump_at in 3u32..6,
    ) {
        let cfg = ChangepointConfig::default();
        let wstar = (1u64 << jump_at) as f64;
        let shifted = |w: f64| if w >= wstar { jump * w.powf(exponent) } else { w.powf(exponent) };
        let smooth = |w: f64| w.powf(exponent);
        let coarse_w: Vec<f64> = (0..=8).map(|k| (1u64 << k) as f64).collect();
        let fine_w: Vec<f64> = (0..=16).map(|k| 2f64.powf(k as f64 / 2.0)).collect();

        // Smooth power laws are clean at any resolution and scale.
        for w_axis in [&coarse_w, &fine_w] {
            let c: Vec<f64> = w_axis.iter().map(|&w| scale * smooth(w)).collect();
            prop_assert!(detect_changepoints(w_axis, &c, &cfg).is_clean());
        }

        let coarse_c: Vec<f64> = coarse_w.iter().map(|&w| shifted(w)).collect();
        let a = detect_changepoints(&coarse_w, &coarse_c, &cfg);
        prop_assert_eq!(a.changepoints.len(), 1, "{:?}", a);
        let c = a.changepoints[0];
        prop_assert_eq!(c.class, ChangeClass::Cliff);
        prop_assert!((c.severity - jump).abs() / jump < 0.05, "severity {}", c.severity);

        // Uniform cost scaling: identical changepoint set.
        let scaled: Vec<f64> = coarse_c.iter().map(|&v| v * scale).collect();
        let s = detect_changepoints(&coarse_w, &scaled, &cfg);
        prop_assert_eq!(s.changepoints.len(), 1);
        prop_assert_eq!(s.changepoints[0].class, ChangeClass::Cliff);
        prop_assert_eq!(s.changepoints[0].index, c.index);
        prop_assert!((s.changepoints[0].severity - c.severity).abs() < 1e-6 * c.severity);

        // 2x grid refinement: same single cliff, same severity, located
        // inside the same coarse segment.
        let fine_c: Vec<f64> = fine_w.iter().map(|&w| shifted(w)).collect();
        let f = detect_changepoints(&fine_w, &fine_c, &cfg);
        prop_assert_eq!(f.changepoints.len(), 1, "{:?}", f);
        let fc = f.changepoints[0];
        prop_assert_eq!(fc.class, ChangeClass::Cliff);
        prop_assert!((fc.severity - c.severity).abs() / c.severity < 0.05,
            "coarse {} vs fine {}", c.severity, fc.severity);
        prop_assert!((fc.at_work.log2() - c.at_work.log2()).abs() <= 1.0 + 1e-9,
            "coarse at {} vs fine at {}", c.at_work, fc.at_work);
    }

    /// Tentpole invariance (knees): a pure slope break on a grid point is
    /// flagged as exactly one knee at that point — the identical point,
    /// with the identical break magnitude — on the coarse and the
    /// 2x-refined grid, and under uniform cost scaling.
    #[test]
    fn knee_detection_survives_scaling_and_refinement(
        p1 in 0.2f64..1.2,
        dp in 1.0f64..2.8,
        knee_at in 3u32..6,
        scale in 1e-3f64..1e3,
    ) {
        let cfg = ChangepointConfig::default();
        let wstar = (1u64 << knee_at) as f64;
        let curve = |w: f64| {
            if w <= wstar { w.powf(p1) } else { wstar.powf(p1) * (w / wstar).powf(p1 + dp) }
        };
        let coarse_w: Vec<f64> = (0..=8).map(|k| (1u64 << k) as f64).collect();
        let fine_w: Vec<f64> = (0..=16).map(|k| 2f64.powf(k as f64 / 2.0)).collect();
        let analyze = |w_axis: &[f64], s: f64| {
            let c: Vec<f64> = w_axis.iter().map(|&w| s * curve(w)).collect();
            detect_changepoints(w_axis, &c, &cfg)
        };
        for (w_axis, s) in [(&coarse_w, 1.0), (&coarse_w, scale), (&fine_w, 1.0)] {
            let a = analyze(w_axis, s);
            prop_assert_eq!(a.cliff_count(), 0, "{:?}", a);
            prop_assert_eq!(a.knee_count(), 1, "{:?}", a);
            let k = a.knees().next().unwrap();
            prop_assert!((k.at_work - wstar).abs() < 1e-9 * wstar,
                "knee at {} expected {}", k.at_work, wstar);
            prop_assert!((k.severity - dp).abs() < 0.05 * dp.max(1.0),
                "severity {} expected {}", k.severity, dp);
        }
    }
}
