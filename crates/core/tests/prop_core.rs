//! Property-based tests for the map/analysis layer: invariants that must
//! hold for *any* map, not just measured ones.

use proptest::prelude::*;
use robustmap_core::analysis::discontinuity::detect_discontinuities;
use robustmap_core::analysis::landmarks::crossovers;
use robustmap_core::analysis::monotonicity::monotonicity_violations;
use robustmap_core::analysis::symmetry::symmetry_of;
use robustmap_core::map::Map2D;
use robustmap_core::measure::Measurement;
use robustmap_core::regions::{connected_components, BoolGrid, RegionStats};
use robustmap_core::relative::{OptimalityTolerance, RelativeMap2D};

fn meas(seconds: f64) -> Measurement {
    Measurement { seconds, ..Default::default() }
}

fn map_strategy() -> impl Strategy<Value = Map2D> {
    // 1..=4 plans over small grids with positive costs.
    (1usize..=4, 1usize..=6, 1usize..=6).prop_flat_map(|(plans, na, nb)| {
        let cells = na * nb;
        (
            prop::collection::vec(
                prop::collection::vec(0.001f64..1000.0, cells..=cells),
                plans..=plans,
            ),
            Just((na, nb)),
        )
            .prop_map(move |(grids, (na, nb))| {
                let sel_a: Vec<f64> = (0..na).map(|i| 0.5f64.powi((na - 1 - i) as i32)).collect();
                let sel_b: Vec<f64> = (0..nb).map(|i| 0.5f64.powi((nb - 1 - i) as i32)).collect();
                let names = (0..grids.len()).map(|i| format!("p{i}")).collect();
                let data = grids
                    .into_iter()
                    .map(|g| g.into_iter().map(meas).collect())
                    .collect();
                Map2D::new(sel_a, sel_b, names, data)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Relative maps: quotients >= 1, the best plan has quotient 1, every
    /// cell is covered by some strict optimality region, and multi-optimal
    /// counts are consistent with the regions.
    #[test]
    fn relative_map_invariants(map in map_strategy()) {
        let rel = RelativeMap2D::from_map(&map);
        let (na, nb) = rel.dims();
        for p in 0..map.plan_count() {
            prop_assert!(rel.worst_quotient(p) >= 1.0);
            for &q in rel.quotient_grid(p) {
                prop_assert!(q >= 1.0 - 1e-12 && q.is_finite());
            }
            // area_within is monotone in the factor.
            prop_assert!(rel.area_within(p, 2.0) <= rel.area_within(p, 10.0));
            prop_assert!(rel.area_within(p, f64::INFINITY) == 1.0);
        }
        let tol = OptimalityTolerance::Factor(1.0 + 1e-9);
        let counts = rel.optimal_plan_counts(tol);
        for ia in 0..na {
            for ib in 0..nb {
                let best = rel.best_plan_at(ia, ib);
                prop_assert!((rel.quotient(best, ia, ib) - 1.0).abs() < 1e-12);
                prop_assert!(counts[ia * nb + ib] >= 1);
            }
        }
        // Sum over plans of region cells equals sum of per-cell counts.
        let total_regions: usize = (0..map.plan_count())
            .map(|p| rel.optimal_region(p, tol).count())
            .sum();
        let total_counts: u32 = counts.iter().sum();
        prop_assert_eq!(total_regions as u32, total_counts);
    }

    /// Widening the tolerance can only grow optimality regions.
    #[test]
    fn tolerance_monotonicity(map in map_strategy()) {
        let rel = RelativeMap2D::from_map(&map);
        for p in 0..rel.plans.len() {
            let tight = rel.optimal_region(p, OptimalityTolerance::Factor(1.1));
            let loose = rel.optimal_region(p, OptimalityTolerance::Factor(2.0));
            let (na, nb) = rel.dims();
            for ia in 0..na {
                for ib in 0..nb {
                    prop_assert!(!tight.get(ia, ib) || loose.get(ia, ib));
                }
            }
        }
    }

    /// Connected components partition the true cells exactly: areas sum to
    /// the count, cells are disjoint, and each component is connected.
    #[test]
    fn components_partition_grid(cells in prop::collection::vec(any::<bool>(), 1..64), w in 1usize..8) {
        let h = cells.len().div_ceil(w);
        let grid = BoolGrid::from_fn(w, h, |ia, ib| {
            cells.get(ia * h + ib).copied().unwrap_or(false)
        });
        let regions = connected_components(&grid);
        let total: usize = regions.iter().map(|r| r.area).sum();
        prop_assert_eq!(total, grid.count());
        let mut seen = std::collections::HashSet::new();
        for r in &regions {
            prop_assert_eq!(r.area, r.cells.len());
            for &c in &r.cells {
                prop_assert!(seen.insert(c), "cell in two regions");
                prop_assert!(grid.get(c.0, c.1));
            }
            // Components are sorted largest-first.
        }
        prop_assert!(regions.windows(2).all(|w| w[0].area >= w[1].area));
        let stats = RegionStats::of(&grid);
        prop_assert_eq!(stats.component_count, regions.len());
        prop_assert_eq!(stats.total_area, total);
    }

    /// Monotone series never trigger monotonicity violations, and a series
    /// plus its recorded violations reconstructs consistently.
    #[test]
    fn monotone_series_are_clean(steps in prop::collection::vec(0.0f64..10.0, 2..40)) {
        let work: Vec<f64> = (1..=steps.len()).map(|i| i as f64).collect();
        let mut cost = Vec::with_capacity(steps.len());
        let mut acc = 1.0;
        for s in &steps {
            acc += s;
            cost.push(acc);
        }
        prop_assert!(monotonicity_violations(&work, &cost, 0.0).is_empty());
        // Reversing the series produces one violation per strict decrease.
        let rev: Vec<f64> = cost.iter().rev().copied().collect();
        let violations = monotonicity_violations(&work, &rev, 0.0);
        let strict_decreases = rev.windows(2).filter(|w| w[1] < w[0]).count();
        prop_assert_eq!(violations.len(), strict_decreases);
    }

    /// Scaling both series by the same factor leaves crossovers unchanged.
    #[test]
    fn crossovers_are_scale_invariant(
        a in prop::collection::vec(0.01f64..100.0, 3..20),
        scale in 0.01f64..100.0,
    ) {
        let axis: Vec<f64> = (1..=a.len()).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|&x| x * 1.5).collect(); // never crosses
        prop_assert!(crossovers(&axis, &a, &b).is_empty());
        let a2: Vec<f64> = a.iter().map(|&x| x * scale).collect();
        let b2: Vec<f64> = a.iter().rev().map(|&x| x * scale).collect();
        let x1 = crossovers(&axis, &a, &a.iter().rev().copied().collect::<Vec<_>>());
        let x2 = crossovers(&axis, &a2, &b2);
        prop_assert_eq!(x1.len(), x2.len());
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert_eq!(u.index, v.index);
            prop_assert!((u.at - v.at).abs() < 1e-6 * u.at.max(1.0));
        }
    }

    /// A symmetric grid scores zero asymmetry; transposing never changes
    /// the score; discontinuity detection is invariant under scaling.
    #[test]
    fn symmetry_and_discontinuity_props(vals in prop::collection::vec(0.01f64..100.0, 9..=9)) {
        let n = 3;
        // Symmetrise: m[i][j] = v[i] + v[j].
        let vals_ref = &vals;
        let sym: Vec<f64> = (0..n)
            .flat_map(|i| (0..n).map(move |j| vals_ref[i] + vals_ref[j]))
            .collect::<Vec<_>>();
        let s = symmetry_of(&sym, n);
        prop_assert!(s.max_log_ratio < 1e-9);
        // Transpose invariance on the raw grid.
        let transposed: Vec<f64> =
            (0..n).flat_map(|i| (0..n).map(move |j| vals_ref[j * n + i])).collect();
        let s1 = symmetry_of(&vals, n);
        let s2 = symmetry_of(&transposed, n);
        prop_assert!((s1.max_log_ratio - s2.max_log_ratio).abs() < 1e-12);
        // Discontinuity count is scale invariant.
        let axis = [1.0, 2.0, 4.0];
        let row = &vals[..3];
        let scaled: Vec<f64> = row.iter().map(|&x| x * 7.0).collect();
        prop_assert_eq!(
            detect_discontinuities(&axis, row, 4.0).len(),
            detect_discontinuities(&axis, &scaled, 4.0).len()
        );
    }
}
