//! Batched (vectorized) execution primitives.
//!
//! The row-at-a-time Volcano loop in [`crate::exec`] is the *reference*
//! semantics of this crate: every simulated charge a plan makes on its
//! [`Session`](robustmap_storage::Session) is defined by that path.  The
//! batch executor re-implements the same plans over columnar
//! [`RowBatch`] chunks so the real-time interpreter overhead (per-row
//! `Row` materialisation, virtual sink dispatch, full-row decoding) is
//! amortised — while replaying **bit-identical** charge sequences.
//!
//! Bit-identity is stricter than "the same total": the simulated clock
//! accumulates `f64` seconds, and floating-point addition is not
//! associative, so the batch path must issue the *same charge calls with
//! the same arguments in the same order* as the row path.  Concretely:
//!
//! * per-row charges (predicate comparisons, per-entry `charge_rows`)
//!   stay per-row — batching never coalesces them;
//! * batching only moves work that is *free* on the simulated clock:
//!   decoding, projection, sink dispatch, and intermediate-row copies;
//! * operators whose `push` interleaves charges with their producer's
//!   (external sort, hash aggregation) keep a row-lockstep input edge.
//!
//! `tests/batch_equivalence.rs` pins the equivalence cell-for-cell and
//! bit-for-bit across all fifteen catalog plans.

use robustmap_storage::Row;

/// Environment variable overriding [`ExecConfig::batch_rows`].
pub const ENV_BATCH_ROWS: &str = "ROBUSTMAP_BATCH_ROWS";

/// Knobs of the batch executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Rows per [`RowBatch`] flowing between operators.  `1` degenerates
    /// to row-at-a-time delivery; the default amortises interpreter
    /// overhead without hurting cache residency.
    pub batch_rows: usize,
}

impl ExecConfig {
    /// Default batch size in rows.
    pub const DEFAULT_BATCH_ROWS: usize = 1024;

    /// A config with an explicit batch size (clamped to at least 1).
    pub fn with_batch_rows(batch_rows: usize) -> Self {
        ExecConfig { batch_rows: batch_rows.max(1) }
    }

    /// Read the batch size from [`ENV_BATCH_ROWS`], falling back to
    /// [`ExecConfig::DEFAULT_BATCH_ROWS`] when unset or unparsable.
    pub fn from_env() -> Self {
        Self::with_batch_rows(parse_batch_rows(std::env::var(ENV_BATCH_ROWS).ok().as_deref()))
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { batch_rows: Self::DEFAULT_BATCH_ROWS }
    }
}

/// Parse an optional env-var value into a batch size.  Zero, negative and
/// malformed values fall back to the default (a knob must never turn the
/// executor off).
fn parse_batch_rows(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => ExecConfig::DEFAULT_BATCH_ROWS,
    }
}

/// A columnar chunk of rows: one `Vec<i64>` per output column.
///
/// All columns have the same length.  Batches are reused (cleared, not
/// reallocated) by the emitting operator, so a sink must copy out anything
/// it wants to keep.
#[derive(Debug, Clone, Default)]
pub struct RowBatch {
    cols: Vec<Vec<i64>>,
    rows: usize,
}

impl RowBatch {
    /// An empty batch of the given arity.
    pub fn new(arity: usize) -> Self {
        RowBatch { cols: vec![Vec::new(); arity], rows: 0 }
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `c` as a slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[i64] {
        &self.cols[c]
    }

    /// Append one row given as a value slice (must match the arity).
    #[inline]
    pub fn push_row(&mut self, vals: &[i64]) {
        debug_assert_eq!(vals.len(), self.cols.len());
        for (col, &v) in self.cols.iter_mut().zip(vals) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Materialise row `i` (gathers across columns).
    #[inline]
    pub fn row(&self, i: usize) -> Row {
        let mut row = Row::empty();
        for col in &self.cols {
            row.push(col[i]);
        }
        row
    }

    /// Remove all rows, keeping column allocations.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.rows = 0;
    }

    /// Append all rows of `other` (an accumulation buffer for operators
    /// that materialise a whole input, e.g. join sides).
    pub fn append(&mut self, other: &RowBatch) {
        debug_assert_eq!(self.arity(), other.arity());
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            dst.extend_from_slice(src);
        }
        self.rows += other.rows;
    }
}

/// A selection bitmap over the rows of one batch (or one heap page).
///
/// Stored as 64-bit words; bit `i` set means row `i` survives.  The
/// branch-free predicate evaluator ([`crate::expr::Predicate::eval_batch`])
/// clears bits with masked stores instead of conditional jumps.
#[derive(Debug, Default)]
pub struct Selection {
    words: Vec<u64>,
    len: usize,
}

impl Selection {
    /// An empty selection.
    pub fn new() -> Self {
        Selection::default()
    }

    /// Resize to `n` rows with every bit set.
    pub fn reset_ones(&mut self, n: usize) {
        let nwords = n.div_ceil(64);
        self.words.clear();
        self.words.resize(nwords, u64::MAX);
        if !n.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        self.len = n;
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the selection covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Keep row `i` only if `keep` (branch-free masked clear).
    #[inline]
    pub fn mask(&mut self, i: usize, keep: bool) {
        self.words[i / 64] &= !(((!keep) as u64) << (i % 64));
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Call `f` with every selected row index, ascending.
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

/// Read column `col` of a row stored as little-endian `i64`s (the heap's
/// record encoding) without decoding the whole row.
#[inline]
pub fn col_from_bytes(bytes: &[u8], col: usize) -> i64 {
    let at = col * 8;
    i64::from_le_bytes(bytes[at..at + 8].try_into().expect("column in record"))
}

/// Accumulates output rows into a [`RowBatch`] and flushes it to a batch
/// sink whenever it reaches the configured size (and once more at the
/// end, for the final partial batch).  Emission is charge-free, so flush
/// boundaries never affect the simulated clock.
pub struct BatchEmitter {
    batch: RowBatch,
    cap: usize,
    produced: u64,
}

impl BatchEmitter {
    /// An emitter producing batches of `cap` rows with `arity` columns.
    pub fn new(arity: usize, cap: usize) -> Self {
        BatchEmitter { batch: RowBatch::new(arity), cap: cap.max(1), produced: 0 }
    }

    /// Rows emitted so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    #[inline]
    fn row_done(&mut self, sink: &mut dyn FnMut(&RowBatch)) {
        self.batch.rows += 1;
        self.produced += 1;
        if self.batch.rows >= self.cap {
            self.flush(sink);
        }
    }

    /// Emit one row by gathering `proj` columns out of an encoded record.
    #[inline]
    pub fn push_projected_bytes(
        &mut self,
        bytes: &[u8],
        proj: &[usize],
        sink: &mut dyn FnMut(&RowBatch),
    ) {
        debug_assert_eq!(proj.len(), self.batch.arity());
        for (col, &src) in self.batch.cols.iter_mut().zip(proj) {
            col.push(col_from_bytes(bytes, src));
        }
        self.row_done(sink);
    }

    /// Emit one row by gathering `proj` positions out of a value slice.
    #[inline]
    pub fn push_projected_slice(
        &mut self,
        vals: &[i64],
        proj: &[usize],
        sink: &mut dyn FnMut(&RowBatch),
    ) {
        debug_assert_eq!(proj.len(), self.batch.arity());
        for (col, &src) in self.batch.cols.iter_mut().zip(proj) {
            col.push(vals[src]);
        }
        self.row_done(sink);
    }

    /// Flush the pending partial batch, if any.
    pub fn flush(&mut self, sink: &mut dyn FnMut(&RowBatch)) {
        if !self.batch.is_empty() {
            sink(&self.batch);
            self.batch.clear();
        }
    }
}

/// Threshold below which the standard library sort beats the radix passes
/// (counting buffers dominate on small inputs).
const RADIX_MIN: usize = 1 << 12;

/// Stable LSD radix sort by a `u64` key, 16 bits per pass, skipping
/// passes in which every key shares the same digit (rid pages and slots
/// rarely use the upper halves of their words).
///
/// Sorting is *real* work but its simulated cost is charged analytically
/// (`n log2 n` comparisons) by the callers, so swapping the comparison
/// sort for a distribution sort changes wall time only — the measured
/// order and every charge stay identical.  Stability makes the output
/// order equal to a stable comparison sort's even with duplicate keys.
pub fn radix_sort_by_u64_key<T: Copy>(items: &mut Vec<T>, key: impl Fn(&T) -> u64) {
    let n = items.len();
    if n < 2 {
        return;
    }
    if n < RADIX_MIN {
        items.sort_by_key(&key); // stable, like the radix passes
        return;
    }
    let mut src = std::mem::take(items);
    let mut dst = src.clone();
    let mut counts = vec![0u32; 1 << 16];
    for pass in 0..4 {
        let shift = pass * 16;
        let first = (key(&src[0]) >> shift) & 0xffff;
        let mut uniform = true;
        counts.iter_mut().for_each(|c| *c = 0);
        for it in &src {
            let d = (key(it) >> shift) & 0xffff;
            counts[d as usize] += 1;
            uniform &= d == first;
        }
        if uniform {
            continue; // every key agrees on this digit: order unchanged
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let next = sum + *c;
            *c = sum;
            sum = next;
        }
        for it in &src {
            let d = ((key(it) >> shift) & 0xffff) as usize;
            dst[counts[d] as usize] = *it;
            counts[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *items = src;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_batch_rows_defaults_and_bounds() {
        assert_eq!(parse_batch_rows(None), ExecConfig::DEFAULT_BATCH_ROWS);
        assert_eq!(parse_batch_rows(Some("")), ExecConfig::DEFAULT_BATCH_ROWS);
        assert_eq!(parse_batch_rows(Some("garbage")), ExecConfig::DEFAULT_BATCH_ROWS);
        assert_eq!(parse_batch_rows(Some("0")), ExecConfig::DEFAULT_BATCH_ROWS);
        assert_eq!(parse_batch_rows(Some("-3")), ExecConfig::DEFAULT_BATCH_ROWS);
        assert_eq!(parse_batch_rows(Some("1")), 1);
        assert_eq!(parse_batch_rows(Some(" 1000 ")), 1000); // non-power-of-two
    }

    #[test]
    fn env_knob_reaches_from_env() {
        // Edition 2021: set_var is safe; the variable name is private to
        // this single test.
        std::env::set_var(ENV_BATCH_ROWS, "513");
        assert_eq!(ExecConfig::from_env().batch_rows, 513);
        std::env::remove_var(ENV_BATCH_ROWS);
        assert_eq!(ExecConfig::from_env().batch_rows, ExecConfig::DEFAULT_BATCH_ROWS);
    }

    #[test]
    fn row_batch_roundtrip() {
        let mut b = RowBatch::new(3);
        assert!(b.is_empty());
        b.push_row(&[1, 2, 3]);
        b.push_row(&[4, 5, 6]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.col(1), &[2, 5]);
        assert_eq!(b.row(1).values(), &[4, 5, 6]);
        let mut acc = RowBatch::new(3);
        acc.append(&b);
        acc.append(&b);
        assert_eq!(acc.len(), 4);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.arity(), 3);
    }

    #[test]
    fn selection_bit_ops() {
        let mut s = Selection::new();
        for n in [0usize, 1, 63, 64, 65, 130] {
            s.reset_ones(n);
            assert_eq!(s.len(), n);
            assert_eq!(s.count(), n, "n={n}");
            if n > 0 {
                s.mask(0, false);
                s.mask(n - 1, false);
                s.mask(n / 2, true);
                let expect = n.saturating_sub(2);
                assert_eq!(s.count(), expect, "n={n}");
                let mut seen = Vec::new();
                s.for_each_set(|i| seen.push(i));
                assert_eq!(seen.len(), s.count());
                assert!(seen.iter().all(|&i| s.get(i)));
                assert!(seen.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn emitter_flushes_on_cap_and_at_end() {
        let mut em = BatchEmitter::new(2, 3);
        let mut sizes = Vec::new();
        let mut rows = Vec::new();
        let mut sink = |b: &RowBatch| {
            sizes.push(b.len());
            for i in 0..b.len() {
                rows.push(b.row(i).values().to_vec());
            }
        };
        for i in 0..7i64 {
            em.push_projected_slice(&[i, 10 + i, 20 + i], &[2, 0], &mut sink);
        }
        em.flush(&mut sink);
        em.flush(&mut sink); // idempotent on empty
        assert_eq!(em.produced(), 7);
        assert_eq!(sizes, vec![3, 3, 1]);
        assert_eq!(rows[4], vec![24, 4]);
    }

    #[test]
    fn emitter_batch_size_one_is_row_at_a_time() {
        let mut em = BatchEmitter::new(1, 1);
        let mut sizes = Vec::new();
        let mut sink = |b: &RowBatch| sizes.push(b.len());
        for i in 0..4i64 {
            em.push_projected_slice(&[i], &[0], &mut sink);
        }
        em.flush(&mut sink);
        assert_eq!(sizes, vec![1, 1, 1, 1]);
    }

    #[test]
    fn col_from_bytes_reads_encoded_records() {
        let vals: [i64; 3] = [42, -7, i64::MIN];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(col_from_bytes(&bytes, i), v);
        }
    }

    #[test]
    fn radix_sort_matches_stable_sort() {
        // Deterministic pseudo-random u64s exercising all digit positions.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut items: Vec<(u64, u32)> = (0..20_000u32)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Mix full-range keys with heavy duplicates (stability).
                let k = if i % 3 == 0 { x } else { u64::from(i % 64) };
                (k, i)
            })
            .collect();
        let mut want = items.clone();
        want.sort_by_key(|&(k, _)| k);
        radix_sort_by_u64_key(&mut items, |&(k, _)| k);
        assert_eq!(items, want);
        // Small inputs take the std path.
        let mut small = vec![(3u64, 0u32), (1, 1), (2, 2), (1, 3)];
        radix_sort_by_u64_key(&mut small, |&(k, _)| k);
        assert_eq!(small, vec![(1, 1), (1, 3), (2, 2), (3, 0)]);
    }
}
