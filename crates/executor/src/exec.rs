//! Plan execution: the driver that turns a [`PlanSpec`] into rows.
//!
//! [`execute`] interprets the plan tree, wiring the physical operators in
//! [`crate::ops`] together and pushing output rows into a caller-provided
//! sink.  All costs land on the [`Session`]'s simulated clock; the caller
//! reads elapsed time and I/O statistics from the session afterwards —
//! exactly the measurement the paper's robustness maps are built from.

use std::cell::{Cell, RefCell};

use robustmap_obs::trace::TraceEventKind;
use robustmap_storage::{AccessKind, Database, FileId, IoStats, Row, Session, StorageError};

use crate::batch::{BatchEmitter, ExecConfig, RowBatch};
use crate::expr::Predicate;
use crate::ops;
use crate::ops::sort::PackedRows;
use crate::plan::{FetchKind, PlanSpec};

/// Errors raised during plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The storage layer rejected an access.
    Storage(StorageError),
    /// The plan is malformed (bad column counts, unknown objects, ...).
    BadPlan(String),
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::BadPlan(msg) => write!(f, "bad plan: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-operator execution record (label, output rows, inclusive simulated
/// seconds — children included).
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Operator synopsis.
    pub label: String,
    /// Nesting depth in the plan tree (0 = root).
    pub depth: usize,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Inclusive simulated seconds (includes children).
    pub seconds: f64,
}

/// Summary of one plan execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStats {
    /// Rows delivered to the sink.
    pub rows_out: u64,
    /// Simulated seconds for the whole plan.
    pub seconds: f64,
    /// I/O and CPU counters for the whole plan.
    pub io: IoStats,
    /// Whether any operator spilled to disk.
    pub spilled: bool,
    /// Per-operator breakdown, preorder.
    pub operators: Vec<OpStats>,
}

/// Execution context: the database, the charging session, the query's
/// memory grant, and run-time bookkeeping (temp files, spill flag).
pub struct ExecCtx<'a> {
    /// The (read-only) database.
    pub db: &'a Database,
    /// The session all work is charged to.
    pub session: &'a Session,
    /// Memory grant for memory-intensive operators, in bytes (the paper
    /// hints memory allocation explicitly).
    pub memory_bytes: usize,
    temp_base: u32,
    spilled: Cell<bool>,
    op_stats: RefCell<Vec<OpStats>>,
}

impl<'a> ExecCtx<'a> {
    /// A context with the given memory grant.
    pub fn new(db: &'a Database, session: &'a Session, memory_bytes: usize) -> Self {
        ExecCtx {
            db,
            session,
            memory_bytes,
            temp_base: db.temp_file_base(),
            spilled: Cell::new(false),
            op_stats: RefCell::new(Vec::new()),
        }
    }

    /// Allocate a file id for a temporary (spill) file; never collides
    /// with catalog objects.  Allocation goes through the session's pool
    /// — one central counter per (shared) buffer pool — so interleaved
    /// spills from concurrently served queries can never receive the same
    /// id.  On a private session the sequence is `temp_base + 0, 1, ...`,
    /// exactly the pre-refactor per-context numbering.
    pub fn alloc_temp_file(&self) -> FileId {
        self.session.alloc_temp_file(self.temp_base)
    }

    /// Record that some operator spilled.
    pub fn note_spill(&self) {
        self.spilled.set(true);
    }

    /// Whether any operator spilled so far.
    pub fn spilled(&self) -> bool {
        self.spilled.get()
    }

    pub(crate) fn record_op(&self, label: String, depth: usize, rows_out: u64, seconds: f64) {
        self.op_stats.borrow_mut().push(OpStats { label, depth, rows_out, seconds });
    }

    /// Drain the per-operator records accumulated so far (the execution
    /// drivers call this once, when assembling [`ExecStats`]).
    pub(crate) fn take_op_stats(&self) -> Vec<OpStats> {
        std::mem::take(&mut *self.op_stats.borrow_mut())
    }
}

/// Execute `plan`, pushing every output row into `sink`.  Returns the
/// execution summary; timings/IO are also observable on the session.
pub fn execute(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> Result<ExecStats, ExecError> {
    let t0 = ctx.session.elapsed();
    let io0 = ctx.session.stats();
    let rows = execute_node(plan, ctx, 0, sink)?;
    let mut operators = ctx.op_stats.borrow_mut();
    let stats = ExecStats {
        rows_out: rows,
        seconds: ctx.session.elapsed() - t0,
        io: ctx.session.stats().since(&io0),
        spilled: ctx.spilled(),
        operators: std::mem::take(&mut *operators),
    };
    Ok(stats)
}

/// Execute and count output rows, discarding them.
pub fn execute_count(plan: &PlanSpec, ctx: &ExecCtx<'_>) -> Result<ExecStats, ExecError> {
    execute(plan, ctx, &mut |_| {})
}

/// Execute and collect all output rows (tests and small results only).
pub fn execute_collect(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
) -> Result<(ExecStats, Vec<Row>), ExecError> {
    let mut rows = Vec::new();
    let stats = execute(plan, ctx, &mut |r| rows.push(*r))?;
    Ok((stats, rows))
}

/// Execute `plan` on the batch path, pushing output [`RowBatch`]es into
/// `sink`.  The simulated clock, I/O counters, and per-operator stats are
/// bit-identical to [`execute`]'s — `tests/batch_equivalence.rs` pins this
/// across the whole plan catalog.
pub fn execute_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<ExecStats, ExecError> {
    let t0 = ctx.session.elapsed();
    let io0 = ctx.session.stats();
    let rows = execute_node_batched(plan, ctx, cfg, 0, sink)?;
    let mut operators = ctx.op_stats.borrow_mut();
    let stats = ExecStats {
        rows_out: rows,
        seconds: ctx.session.elapsed() - t0,
        io: ctx.session.stats().since(&io0),
        spilled: ctx.spilled(),
        operators: std::mem::take(&mut *operators),
    };
    Ok(stats)
}

/// Batched [`execute_count`]: the entry point the sweep arenas measure
/// through.
pub fn execute_count_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
) -> Result<ExecStats, ExecError> {
    execute_batched(plan, ctx, cfg, &mut |_| {})
}

/// Batched [`execute_collect`] (tests and small results only).
pub fn execute_collect_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
) -> Result<(ExecStats, Vec<Row>), ExecError> {
    let mut rows = Vec::new();
    let stats = execute_batched(plan, ctx, cfg, &mut |b| {
        for i in 0..b.len() {
            rows.push(b.row(i));
        }
    })?;
    Ok((stats, rows))
}

pub(crate) fn run_fetch(
    heap: &robustmap_storage::HeapFile,
    rids: Vec<robustmap_storage::heap::Rid>,
    fetch: &FetchKind,
    residual: &Predicate,
    project: &crate::plan::Projection,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    match fetch {
        FetchKind::Traditional => {
            ops::fetch::traditional(heap, &rids, residual, project, ctx.session, sink)
        }
        FetchKind::Improved(cfg) => {
            ops::fetch::improved(heap, rids, cfg, residual, project, ctx.session, sink)
        }
        FetchKind::BitmapSorted => {
            ops::fetch::bitmap_sorted(heap, &rids, residual, project, ctx.session, sink)
        }
    }
}

pub(crate) fn execute_node(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    depth: usize,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    // Charge-free operator span: tracing reads the clock, never advances
    // it.  The end event is emitted on the error path too (rows = 0), so
    // an adaptive bail's unwind leaves every span closed.
    let traced = ctx.session.is_traced();
    if traced {
        ctx.session.flush_io_window();
        ctx.session
            .trace_event(TraceEventKind::OpBegin { name: plan.synopsis(), depth: depth as u32 });
    }
    let t0 = ctx.session.elapsed();
    let result = execute_node_inner(plan, ctx, depth, sink);
    if traced {
        ctx.session.flush_io_window();
        ctx.session.trace_event(TraceEventKind::OpEnd {
            name: plan.synopsis(),
            depth: depth as u32,
            rows: *result.as_ref().unwrap_or(&0),
        });
    }
    let rows = result?;
    ctx.record_op(plan.synopsis(), depth, rows, ctx.session.elapsed() - t0);
    Ok(rows)
}

fn execute_node_inner(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    depth: usize,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    let rows = match plan {
        PlanSpec::TableScan { table, pred, project } => {
            ops::table_scan::run(ctx.db.table(*table), pred, project, ctx.session, sink)
        }
        PlanSpec::IndexFetch { scan, key_filter, fetch, residual, project } => {
            let index = ctx.db.index(scan.index);
            let rids = ops::index_scan::collect_rids_filtered(
                index,
                &scan.range,
                key_filter,
                ctx.session,
                AccessKind::Sequential,
            );
            let heap = &ctx.db.table(index.table).heap;
            run_fetch(heap, rids, fetch, residual, project, ctx, sink)?
        }
        PlanSpec::CoveringIndexScan { scan, residual, project } => {
            let index = ctx.db.index(scan.index);
            ops::index_scan::run_covering(index, &scan.range, residual, project, ctx.session, sink)
        }
        PlanSpec::Mdam { index, col_ranges, project } => {
            ops::mdam::run(ctx.db.index(*index), col_ranges, project, ctx.session, sink)?
        }
        PlanSpec::IndexIntersect { left, right, algo, fetch, residual, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan(
                    "index intersection across different tables".into(),
                ));
            }
            let lrids =
                ops::index_scan::collect_rids(li, &left.range, ctx.session, AccessKind::Sequential);
            let rrids =
                ops::index_scan::collect_rids(ri, &right.range, ctx.session, AccessKind::Sequential);
            let surviving = ops::rid_join::intersect_rids(lrids, rrids, *algo, ctx);
            let heap = &ctx.db.table(li.table).heap;
            run_fetch(heap, surviving, fetch, residual, project, ctx, sink)?
        }
        PlanSpec::CoveringRidJoin { left, right, algo, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan("covering rid join across different tables".into()));
            }
            let lentries =
                ops::index_scan::collect_entries(li, &left.range, ctx.session, AccessKind::Sequential);
            let rentries =
                ops::index_scan::collect_entries(ri, &right.range, ctx.session, AccessKind::Sequential);
            let mut produced = 0u64;
            ops::rid_join::covering_join(lentries, rentries, *algo, ctx, &mut |row| {
                let out = project.apply(row);
                sink(&out);
                produced += 1;
            });
            produced
        }
        PlanSpec::Join { left, right, left_key, right_key, algo, memory_bytes, project } => {
            // Materialise the (fixed-arity) inputs packed; collection is
            // charge-free either way.
            let mut lrows = PackedRows::default();
            execute_node(left, ctx, depth + 1, &mut |r| lrows.push(r.values()))?;
            let mut rrows = PackedRows::default();
            execute_node(right, ctx, depth + 1, &mut |r| rrows.push(r.values()))?;
            let mut produced = 0u64;
            let mut project_sink = |row: &Row| {
                let out = project.apply(row);
                sink(&out);
                produced += 1;
            };
            match algo {
                crate::plan::JoinAlgo::SortMerge => {
                    ops::join::sort_merge_join(
                        lrows,
                        rrows,
                        *left_key,
                        *right_key,
                        *memory_bytes,
                        ctx,
                        &mut project_sink,
                    )?;
                }
                crate::plan::JoinAlgo::Hash { build_left } => {
                    let (b, p, bk, pk, swap) = if *build_left {
                        (lrows, rrows, *left_key, *right_key, false)
                    } else {
                        (rrows, lrows, *right_key, *left_key, true)
                    };
                    ops::join::hash_join(b, p, bk, pk, *memory_bytes, swap, ctx, &mut project_sink)?;
                }
            }
            produced
        }
        PlanSpec::ParallelTableScan { table, pred, project, dop, skew_permille } => {
            ops::parallel_scan::run(
                ctx.db.table(*table),
                pred,
                project,
                *dop,
                *skew_permille as f64 / 1000.0,
                ctx.session,
                sink,
            )?
        }
        PlanSpec::Sort { input, key_cols, mode, memory_bytes } => {
            let mut sorter =
                ops::sort::ExternalSorter::new(ctx, key_cols.clone(), *mode, *memory_bytes);
            execute_node(input, ctx, depth + 1, &mut |row| sorter.push(row))?;
            sorter.finish(sink)
        }
        PlanSpec::HashAgg { input, group_cols, aggs, mode, memory_bytes } => {
            let mut agg = ops::agg::HashAggregator::new(
                ctx,
                group_cols.clone(),
                aggs.clone(),
                *mode,
                *memory_bytes,
            );
            execute_node(input, ctx, depth + 1, &mut |row| agg.push(row))?;
            agg.finish(sink)
        }
    };
    Ok(rows)
}

pub(crate) fn run_fetch_batched(
    heap: &robustmap_storage::HeapFile,
    rids: Vec<robustmap_storage::heap::Rid>,
    fetch: &FetchKind,
    residual: &Predicate,
    project: &crate::plan::Projection,
    cfg: &ExecConfig,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    match fetch {
        FetchKind::Traditional => {
            ops::fetch::traditional_batched(heap, &rids, residual, project, cfg, ctx.session, sink)
        }
        FetchKind::Improved(fcfg) => ops::fetch::improved_batched(
            heap,
            rids,
            fcfg,
            residual,
            project,
            cfg,
            ctx.session,
            sink,
        ),
        FetchKind::BitmapSorted => {
            ops::fetch::bitmap_sorted_batched(heap, &rids, residual, project, cfg, ctx.session, sink)
        }
    }
}

/// Output arity of a plan (what its sink receives per row) — the batch
/// driver sizes [`RowBatch`] columns with it.
pub(crate) fn plan_out_arity(plan: &PlanSpec, db: &Database) -> Result<usize, ExecError> {
    Ok(match plan {
        PlanSpec::TableScan { table, project, .. }
        | PlanSpec::ParallelTableScan { table, project, .. } => {
            project.resolve(db.table(*table).heap.schema().arity()).len()
        }
        PlanSpec::IndexFetch { scan, project, .. } => {
            let index = db.index(scan.index);
            project.resolve(db.table(index.table).heap.schema().arity()).len()
        }
        PlanSpec::IndexIntersect { left, project, .. } => {
            let index = db.index(left.index);
            project.resolve(db.table(index.table).heap.schema().arity()).len()
        }
        PlanSpec::CoveringIndexScan { scan, project, .. } => {
            project.resolve(db.index(scan.index).tree.key_arity()).len()
        }
        PlanSpec::Mdam { index, project, .. } => {
            project.resolve(db.index(*index).tree.key_arity()).len()
        }
        PlanSpec::CoveringRidJoin { left, right, project, .. } => {
            let arity =
                db.index(left.index).tree.key_arity() + db.index(right.index).tree.key_arity();
            project.resolve(arity).len()
        }
        PlanSpec::Join { left, right, project, .. } => {
            project.resolve(plan_out_arity(left, db)? + plan_out_arity(right, db)?).len()
        }
        PlanSpec::Sort { input, .. } => plan_out_arity(input, db)?,
        PlanSpec::HashAgg { group_cols, aggs, .. } => group_cols.len() + aggs.len(),
    })
}

/// The batched twin of [`execute_node`].  Every arm issues the same charge
/// calls in the same order as its row twin; only row materialisation, sink
/// granularity, and (for scans and fetches) column decoding differ.
///
/// Two operators keep row-at-a-time *input* edges on purpose: sort and
/// hash aggregation interleave their own per-push charges with the child's
/// production charges, so their subtrees run through [`execute_node`]
/// unchanged and only their (charge-free) output emission is batched.
pub(crate) fn execute_node_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    depth: usize,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    // Same charge-free span protocol as [`execute_node`].
    let traced = ctx.session.is_traced();
    if traced {
        ctx.session.flush_io_window();
        ctx.session
            .trace_event(TraceEventKind::OpBegin { name: plan.synopsis(), depth: depth as u32 });
    }
    let t0 = ctx.session.elapsed();
    let result = execute_node_batched_inner(plan, ctx, cfg, depth, sink);
    if traced {
        ctx.session.flush_io_window();
        ctx.session.trace_event(TraceEventKind::OpEnd {
            name: plan.synopsis(),
            depth: depth as u32,
            rows: *result.as_ref().unwrap_or(&0),
        });
    }
    let rows = result?;
    ctx.record_op(plan.synopsis(), depth, rows, ctx.session.elapsed() - t0);
    Ok(rows)
}

fn execute_node_batched_inner(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    depth: usize,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    let rows = match plan {
        PlanSpec::TableScan { table, pred, project } => {
            ops::table_scan::run_batched(ctx.db.table(*table), pred, project, cfg, ctx.session, sink)
        }
        PlanSpec::IndexFetch { scan, key_filter, fetch, residual, project } => {
            let index = ctx.db.index(scan.index);
            let rids = ops::index_scan::collect_rids_filtered(
                index,
                &scan.range,
                key_filter,
                ctx.session,
                AccessKind::Sequential,
            );
            let heap = &ctx.db.table(index.table).heap;
            run_fetch_batched(heap, rids, fetch, residual, project, cfg, ctx, sink)?
        }
        PlanSpec::CoveringIndexScan { scan, residual, project } => {
            let index = ctx.db.index(scan.index);
            ops::index_scan::run_covering_batched(
                index,
                &scan.range,
                residual,
                project,
                cfg,
                ctx.session,
                sink,
            )
        }
        PlanSpec::Mdam { index, col_ranges, project } => {
            ops::mdam::run_batched(ctx.db.index(*index), col_ranges, project, cfg, ctx.session, sink)?
        }
        PlanSpec::IndexIntersect { left, right, algo, fetch, residual, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan(
                    "index intersection across different tables".into(),
                ));
            }
            let lrids =
                ops::index_scan::collect_rids(li, &left.range, ctx.session, AccessKind::Sequential);
            let rrids =
                ops::index_scan::collect_rids(ri, &right.range, ctx.session, AccessKind::Sequential);
            let surviving = ops::rid_join::intersect_rids(lrids, rrids, *algo, ctx);
            let heap = &ctx.db.table(li.table).heap;
            run_fetch_batched(heap, surviving, fetch, residual, project, cfg, ctx, sink)?
        }
        PlanSpec::CoveringRidJoin { left, right, algo, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan("covering rid join across different tables".into()));
            }
            let lentries =
                ops::index_scan::collect_entries(li, &left.range, ctx.session, AccessKind::Sequential);
            let rentries =
                ops::index_scan::collect_entries(ri, &right.range, ctx.session, AccessKind::Sequential);
            let proj = project.resolve(li.tree.key_arity() + ri.tree.key_arity());
            let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
            ops::rid_join::covering_join(lentries, rentries, *algo, ctx, &mut |row| {
                emitter.push_projected_slice(row.values(), &proj, sink);
            });
            emitter.flush(sink);
            emitter.produced()
        }
        PlanSpec::Join { left, right, left_key, right_key, algo, memory_bytes, project } => {
            // Children run batched; the join joins materialised inputs, so
            // accumulating their batches into packed rows is the row
            // path's sink in columnar clothing (both are charge-free).
            let mut lrows = PackedRows::default();
            execute_node_batched(left, ctx, cfg, depth + 1, &mut |b| {
                for i in 0..b.len() {
                    lrows.push(b.row(i).values());
                }
            })?;
            let mut rrows = PackedRows::default();
            execute_node_batched(right, ctx, cfg, depth + 1, &mut |b| {
                for i in 0..b.len() {
                    rrows.push(b.row(i).values());
                }
            })?;
            let proj =
                project.resolve(plan_out_arity(left, ctx.db)? + plan_out_arity(right, ctx.db)?);
            let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
            let mut project_sink = |row: &Row| {
                emitter.push_projected_slice(row.values(), &proj, sink);
            };
            match algo {
                crate::plan::JoinAlgo::SortMerge => {
                    ops::join::sort_merge_join(
                        lrows,
                        rrows,
                        *left_key,
                        *right_key,
                        *memory_bytes,
                        ctx,
                        &mut project_sink,
                    )?;
                }
                crate::plan::JoinAlgo::Hash { build_left } => {
                    let (b, p, bk, pk, swap) = if *build_left {
                        (lrows, rrows, *left_key, *right_key, false)
                    } else {
                        (rrows, lrows, *right_key, *left_key, true)
                    };
                    ops::join::hash_join(b, p, bk, pk, *memory_bytes, swap, ctx, &mut project_sink)?;
                }
            }
            emitter.flush(sink);
            emitter.produced()
        }
        PlanSpec::ParallelTableScan { table, pred, project, dop, skew_permille } => {
            ops::parallel_scan::run_batched(
                ctx.db.table(*table),
                pred,
                project,
                *dop,
                *skew_permille as f64 / 1000.0,
                cfg,
                ctx.session,
                sink,
            )?
        }
        PlanSpec::Sort { input, key_cols, mode, memory_bytes } => {
            let mut sorter =
                ops::sort::ExternalSorter::new(ctx, key_cols.clone(), *mode, *memory_bytes);
            // Row-lockstep input edge (see the function doc).
            execute_node(input, ctx, depth + 1, &mut |row| sorter.push(row))?;
            let arity = plan_out_arity(input, ctx.db)?;
            let identity: Vec<usize> = (0..arity).collect();
            let mut emitter = BatchEmitter::new(arity, cfg.batch_rows);
            let produced = sorter.finish(&mut |row| {
                emitter.push_projected_slice(row.values(), &identity, sink);
            });
            emitter.flush(sink);
            produced
        }
        PlanSpec::HashAgg { input, group_cols, aggs, mode, memory_bytes } => {
            let mut agg = ops::agg::HashAggregator::new(
                ctx,
                group_cols.clone(),
                aggs.clone(),
                *mode,
                *memory_bytes,
            );
            // Row-lockstep input edge (see the function doc).
            execute_node(input, ctx, depth + 1, &mut |row| agg.push(row))?;
            let arity = group_cols.len() + aggs.len();
            let identity: Vec<usize> = (0..arity).collect();
            let mut emitter = BatchEmitter::new(arity, cfg.batch_rows);
            let produced = agg.finish(&mut |row| {
                emitter.push_projected_slice(row.values(), &identity, sink);
            });
            emitter.flush(sink);
            produced
        }
    };
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColRange;
    use crate::ops::testutil::demo_db;
    use crate::plan::{
        AggFn, ImprovedFetchConfig, IndexRangeSpec, IntersectAlgo, KeyRange, Projection, SpillMode,
    };

    /// Two contexts spilling against one shared pool must never receive
    /// the same temp file id, no matter how their allocations interleave —
    /// the collision the central allocator exists to prevent.  (With the
    /// old per-context counters, both sequences below would have been
    /// `base+0, base+1, ...`.)
    #[test]
    fn interleaved_spills_never_share_temp_files() {
        use robustmap_storage::{CostModel, EvictionPolicy, SharedBufferPool};
        use std::sync::Arc;
        let (db, _t) = demo_db(64);
        let pool = Arc::new(SharedBufferPool::new(16, EvictionPolicy::Lru));
        let s1 = Session::on_shared(CostModel::hdd_2009(), Arc::clone(&pool));
        let s2 = Session::on_shared(CostModel::hdd_2009(), Arc::clone(&pool));
        let ctx1 = ExecCtx::new(&db, &s1, 1 << 20);
        let ctx2 = ExecCtx::new(&db, &s2, 1 << 20);
        let mut seen = std::collections::HashSet::new();
        for _round in 0..5 {
            // The schedule of two interleaved external sorts: each query
            // alternately allocates a run file.
            for ctx in [&ctx1, &ctx2] {
                let id = ctx.alloc_temp_file();
                assert!(id.0 >= db.temp_file_base());
                assert!(seen.insert(id), "temp file {id:?} allocated twice");
            }
        }
        assert_eq!(seen.len(), 10);
    }

    /// All plans answering `SELECT * FROM demo WHERE a <= ca AND b <= cb`
    /// must agree, whatever the physical shape.
    #[test]
    fn all_two_predicate_plans_agree() {
        let n = 2048i64;
        let (mut db, t) = demo_db(n);
        let idx_a = db.create_index("idx_a", t, &[0]).unwrap();
        let idx_b = db.create_index("idx_b", t, &[1]).unwrap();
        let idx_ab = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let (ca, cb) = (511i64, 1023i64);
        let pred = Predicate::all_of(vec![ColRange::at_most(0, ca), ColRange::at_most(1, cb)]);
        let improved = FetchKind::Improved(ImprovedFetchConfig::default());

        let plans: Vec<PlanSpec> = vec![
            PlanSpec::TableScan { table: t, pred: pred.clone(), project: Projection::All },
            PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ca, 1) },
                key_filter: Predicate::always_true(),
                fetch: improved,
                residual: Predicate::single(ColRange::at_most(1, cb)),
                project: Projection::All,
            },
            PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, cb, 1) },
                key_filter: Predicate::always_true(),
                fetch: FetchKind::Traditional,
                residual: Predicate::single(ColRange::at_most(0, ca)),
                project: Projection::All,
            },
            PlanSpec::IndexIntersect {
                left: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ca, 1) },
                right: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, cb, 1) },
                algo: IntersectAlgo::MergeJoin,
                fetch: improved,
                residual: Predicate::always_true(),
                project: Projection::All,
            },
            PlanSpec::IndexIntersect {
                left: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, cb, 1) },
                right: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ca, 1) },
                algo: IntersectAlgo::HashJoin { build_left: false },
                fetch: FetchKind::BitmapSorted,
                residual: Predicate::always_true(),
                project: Projection::All,
            },
        ];

        let mut reference: Option<Vec<Vec<i64>>> = None;
        for plan in &plans {
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            let (stats, rows) = execute_collect(plan, &ctx).unwrap();
            let mut rows: Vec<Vec<i64>> = rows.iter().map(|r| r.values().to_vec()).collect();
            rows.sort();
            assert_eq!(stats.rows_out as usize, rows.len());
            match &reference {
                None => reference = Some(rows),
                Some(want) => assert_eq!(&rows, want, "plan {} disagrees", plan.synopsis()),
            }
        }
        // Covering plan in key space: project (a, b) and compare counts.
        let s = Session::with_pool_pages(256);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let covering = PlanSpec::CoveringIndexScan {
            scan: IndexRangeSpec { index: idx_ab, range: KeyRange::on_leading(i64::MIN, ca, 2) },
            residual: Predicate::single(ColRange::at_most(1, cb)),
            project: Projection::All,
        };
        let (stats, _) = execute_collect(&covering, &ctx).unwrap();
        assert_eq!(stats.rows_out as usize, reference.unwrap().len());
        // MDAM over the same index agrees too.
        let mdam = PlanSpec::Mdam {
            index: idx_ab,
            col_ranges: vec![(i64::MIN, ca), (i64::MIN, cb)],
            project: Projection::All,
        };
        let ctx2 = ExecCtx::new(&db, &s, 1 << 20);
        let (mstats, _) = execute_collect(&mdam, &ctx2).unwrap();
        assert_eq!(mstats.rows_out, stats.rows_out);
    }

    #[test]
    fn covering_rid_join_covers_two_columns() {
        let n = 1024i64;
        let (mut db, t) = demo_db(n);
        let idx_a = db.create_index("idx_a", t, &[0]).unwrap();
        let idx_c = db.create_index("idx_c", t, &[2]).unwrap();
        // SELECT a, c WHERE a <= 99 — no single-column index covers (a, c).
        let plan = PlanSpec::CoveringRidJoin {
            left: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, 99, 1) },
            right: IndexRangeSpec { index: idx_c, range: KeyRange::full(1) },
            algo: IntersectAlgo::HashJoin { build_left: true },
            project: Projection::All,
        };
        let s = Session::with_pool_pages(256);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (stats, rows) = execute_collect(&plan, &ctx).unwrap();
        assert_eq!(stats.rows_out, 100);
        // Verify against the base table: c = 7 * row_number and matches a.
        let truth: std::collections::BTreeSet<(i64, i64)> = {
            let s2 = Session::with_pool_pages(0);
            let mut set = std::collections::BTreeSet::new();
            db.table(t).heap.scan(&s2, |_, row| {
                if row.get(0) <= 99 {
                    set.insert((row.get(0), row.get(2)));
                }
            });
            set
        };
        let got: std::collections::BTreeSet<(i64, i64)> =
            rows.iter().map(|r| (r.get(0), r.get(1))).collect();
        assert_eq!(got, truth);
    }

    #[test]
    fn sort_plan_orders_output() {
        let (mut db, t) = demo_db(512);
        let _ = db.create_index("idx_a", t, &[0]).unwrap();
        let plan = PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: t,
                pred: Predicate::always_true(),
                project: Projection::Columns(vec![1, 2]),
            }),
            key_cols: vec![0],
            mode: SpillMode::Graceful,
            memory_bytes: 1 << 20,
        };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (stats, rows) = execute_collect(&plan, &ctx).unwrap();
        assert_eq!(stats.rows_out, 512);
        assert!(rows.windows(2).all(|w| w[0].get(0) <= w[1].get(0)));
        // Two operators recorded: Sort and its child TableScan.
        assert_eq!(stats.operators.len(), 2);
        assert_eq!(stats.operators[0].depth, 1); // child finishes first
        assert_eq!(stats.operators[1].depth, 0);
    }

    #[test]
    fn agg_plan_counts_groups() {
        let (db, t) = demo_db(1000);
        let plan = PlanSpec::HashAgg {
            input: Box::new(PlanSpec::TableScan {
                table: t,
                pred: Predicate::always_true(),
                project: Projection::Columns(vec![0]),
            }),
            group_cols: vec![],
            aggs: vec![AggFn::CountStar, AggFn::Max(0)],
            mode: SpillMode::Graceful,
            memory_bytes: 1 << 20,
        };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (_, rows) = execute_collect(&plan, &ctx).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values(), &[1000, 999]);
    }

    #[test]
    fn exec_stats_reflect_session_deltas() {
        let (db, t) = demo_db(256);
        let plan = PlanSpec::TableScan {
            table: t,
            pred: Predicate::always_true(),
            project: Projection::All,
        };
        let s = Session::with_pool_pages(64);
        // Pre-charge some unrelated work; stats must only cover the plan.
        s.charge_rows(1_000_000);
        let before = s.elapsed();
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let stats = execute_count(&plan, &ctx).unwrap();
        assert_eq!(stats.rows_out, 256);
        assert!((stats.seconds - (s.elapsed() - before)).abs() < 1e-12);
        assert_eq!(stats.io.cpu_rows, 256);
        assert!(!stats.spilled);
    }

    #[test]
    fn cross_table_intersection_is_rejected() {
        let (mut db, t1) = demo_db(64);
        let schema = robustmap_storage::Schema::new(vec![("x", robustmap_storage::ColumnType::Int)]);
        let t2 = db.create_table("other", schema);
        for i in 0..64 {
            db.insert_row(t2, &Row::from_slice(&[i])).unwrap();
        }
        let i1 = db.create_index("i1", t1, &[0]).unwrap();
        let i2 = db.create_index("i2", t2, &[0]).unwrap();
        let plan = PlanSpec::IndexIntersect {
            left: IndexRangeSpec { index: i1, range: KeyRange::full(1) },
            right: IndexRangeSpec { index: i2, range: KeyRange::full(1) },
            algo: IntersectAlgo::MergeJoin,
            fetch: FetchKind::Traditional,
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        assert!(matches!(execute_count(&plan, &ctx), Err(ExecError::BadPlan(_))));
    }
}
