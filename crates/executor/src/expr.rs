//! Predicates: conjunctions of per-column range restrictions.
//!
//! The paper's experiments use selections of the form
//! `WHERE colA <= ca AND colB <= cb`; the two selectivities are the
//! parameter space of every 2-D robustness map.  A [`Predicate`] is a
//! conjunction of inclusive [`ColRange`]s, which is exactly the class of
//! predicates those plans must evaluate (and what B+-tree ranges and MDAM
//! intervals are derived from).

use robustmap_storage::{Row, Session};

/// An inclusive range restriction on one column: `lo <= row[col] <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColRange {
    /// Column position in the row this predicate will be evaluated against.
    pub col: usize,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl ColRange {
    /// `row[col] <= hi`.
    pub fn at_most(col: usize, hi: i64) -> Self {
        ColRange { col, lo: i64::MIN, hi }
    }

    /// `row[col] >= lo`.
    pub fn at_least(col: usize, lo: i64) -> Self {
        ColRange { col, lo, hi: i64::MAX }
    }

    /// `lo <= row[col] <= hi`.
    pub fn between(col: usize, lo: i64, hi: i64) -> Self {
        ColRange { col, lo, hi }
    }

    /// `row[col] == v`.
    pub fn equals(col: usize, v: i64) -> Self {
        ColRange { col, lo: v, hi: v }
    }

    /// Whether `row` satisfies this restriction.
    #[inline]
    pub fn matches(&self, row: &Row) -> bool {
        let v = row.get(self.col);
        self.lo <= v && v <= self.hi
    }

    /// The same restriction with the column position remapped (used when a
    /// predicate moves from table-row space to index-key space).
    pub fn with_col(&self, col: usize) -> Self {
        ColRange { col, ..*self }
    }
}

/// A conjunction of column ranges.  The empty conjunction is `TRUE`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Predicate {
    terms: Vec<ColRange>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always_true() -> Self {
        Predicate { terms: Vec::new() }
    }

    /// A predicate from conjunctive terms.
    pub fn all_of(terms: Vec<ColRange>) -> Self {
        Predicate { terms }
    }

    /// A single-term predicate.
    pub fn single(term: ColRange) -> Self {
        Predicate { terms: vec![term] }
    }

    /// The conjunctive terms.
    pub fn terms(&self) -> &[ColRange] {
        &self.terms
    }

    /// Whether this predicate is trivially true.
    pub fn is_true(&self) -> bool {
        self.terms.is_empty()
    }

    /// Add a term.
    pub fn and(mut self, term: ColRange) -> Self {
        self.terms.push(term);
        self
    }

    /// Evaluate against a row, charging one comparison per term examined
    /// (short-circuiting, as a compiled predicate would).
    #[inline]
    pub fn eval(&self, row: &Row, session: &Session) -> bool {
        let mut examined = 0u64;
        let mut ok = true;
        for t in &self.terms {
            examined += 1;
            if !t.matches(row) {
                ok = false;
                break;
            }
        }
        if examined > 0 {
            session.charge_compares(examined);
        }
        ok
    }

    /// Evaluate without charging (used on the load path and in tests).
    #[inline]
    pub fn eval_free(&self, row: &Row) -> bool {
        self.terms.iter().all(|t| t.matches(row))
    }

    /// Evaluate against values supplied by position (a record's encoded
    /// bytes, an index key's value slice) with the exact charge behaviour
    /// of [`Predicate::eval`]: short-circuit term scan, one
    /// `charge_compares(examined)` per row when any term was examined.
    #[inline]
    pub fn eval_values(&self, get: impl Fn(usize) -> i64, session: &Session) -> bool {
        let mut examined = 0u64;
        let mut ok = true;
        for t in &self.terms {
            examined += 1;
            let v = get(t.col);
            if !(t.lo <= v && v <= t.hi) {
                ok = false;
                break;
            }
        }
        if examined > 0 {
            session.charge_compares(examined);
        }
        ok
    }

    /// Evaluate a whole batch into a selection bitmap, branch-free, then
    /// replay [`Predicate::eval`]'s charges row by row.
    ///
    /// `term_cols[i]` holds the values of `terms()[i]`'s column for every
    /// row in the batch (column-major, so `term_cols.len() == terms().len()`
    /// and each inner slice has length `n`).  The bitmap pass runs without
    /// conditional jumps in the row loop; the charge pass then issues one
    /// `charge_compares(examined_i)` per row where `examined_i` counts the
    /// terms a short-circuiting evaluator would have looked at — which is
    /// `1 + number of leading satisfied terms` capped at the term count,
    /// recovered from the per-term bitmaps without re-evaluating anything.
    /// Rows with zero terms charge nothing, exactly like `eval`.
    pub fn eval_batch(
        &self,
        term_cols: &[&[i64]],
        n: usize,
        session: &Session,
        sel: &mut crate::batch::Selection,
    ) -> u64 {
        debug_assert_eq!(term_cols.len(), self.terms.len());
        sel.reset_ones(n);
        if self.terms.is_empty() || n == 0 {
            return 0;
        }
        // `examined[i]` counts terms a short-circuit evaluator inspects for
        // row i: a term is inspected iff every earlier term passed.
        let mut examined = vec![0u8; n];
        let mut alive = vec![1u8; n];
        for (t, col) in self.terms.iter().zip(term_cols) {
            debug_assert_eq!(col.len(), n);
            for i in 0..n {
                let v = col[i];
                let pass = (t.lo <= v) & (v <= t.hi);
                examined[i] += alive[i];
                sel.mask(i, pass);
                alive[i] &= pass as u8;
            }
        }
        let mut total = 0u64;
        for &e in &examined {
            // Every row examines at least the first term, so e >= 1 here.
            session.charge_compares(u64::from(e));
            total += u64::from(e);
        }
        total
    }

    /// The bitmap pass of [`Predicate::eval_batch`] without any charges
    /// (the parallel-scan workers charge per row under their own model).
    pub fn eval_batch_free(
        &self,
        term_cols: &[&[i64]],
        n: usize,
        sel: &mut crate::batch::Selection,
    ) {
        debug_assert_eq!(term_cols.len(), self.terms.len());
        sel.reset_ones(n);
        for (t, col) in self.terms.iter().zip(term_cols) {
            debug_assert_eq!(col.len(), n);
            for i in 0..n {
                let v = col[i];
                sel.mask(i, (t.lo <= v) & (v <= t.hi));
            }
        }
    }

    /// The terms that restrict `col`, if any.
    pub fn terms_on(&self, col: usize) -> impl Iterator<Item = &ColRange> {
        self.terms.iter().filter(move |t| t.col == col)
    }

    /// Split into (terms on `cols`, remaining terms) — used by plan builders
    /// to push range terms into an index and keep the rest as a residual.
    pub fn split_on(&self, cols: &[usize]) -> (Predicate, Predicate) {
        let (on, off): (Vec<ColRange>, Vec<ColRange>) =
            self.terms.iter().partition(|t| cols.contains(&t.col));
        (Predicate { terms: on }, Predicate { terms: off })
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            match (t.lo == i64::MIN, t.hi == i64::MAX) {
                (true, true) => write!(f, "col{} IS ANY", t.col)?,
                (true, false) => write!(f, "col{} <= {}", t.col, t.hi)?,
                (false, true) => write!(f, "col{} >= {}", t.col, t.lo)?,
                (false, false) if t.lo == t.hi => write!(f, "col{} = {}", t.col, t.lo)?,
                (false, false) => write!(f, "col{} IN [{}, {}]", t.col, t.lo, t.hi)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::from_slice(vals)
    }

    fn quiet() -> Session {
        Session::with_pool_pages(0)
    }

    #[test]
    fn col_range_constructors() {
        let r = row(&[5, 10]);
        assert!(ColRange::at_most(0, 5).matches(&r));
        assert!(!ColRange::at_most(0, 4).matches(&r));
        assert!(ColRange::at_least(1, 10).matches(&r));
        assert!(!ColRange::at_least(1, 11).matches(&r));
        assert!(ColRange::between(0, 0, 5).matches(&r));
        assert!(ColRange::equals(1, 10).matches(&r));
        assert!(!ColRange::equals(1, 9).matches(&r));
    }

    #[test]
    fn empty_predicate_is_true() {
        let p = Predicate::always_true();
        assert!(p.is_true());
        assert!(p.eval(&row(&[1]), &quiet()));
    }

    #[test]
    fn conjunction_short_circuits() {
        let s = quiet();
        let p = Predicate::all_of(vec![ColRange::at_most(0, 0), ColRange::at_most(1, 0)]);
        assert!(!p.eval(&row(&[5, 5]), &s));
        // Only the first term should have been charged.
        assert_eq!(s.stats().cpu_compares, 1);
        assert!(p.eval(&row(&[0, 0]), &s));
        assert_eq!(s.stats().cpu_compares, 3);
    }

    #[test]
    fn split_on_partitions_terms() {
        let p = Predicate::all_of(vec![
            ColRange::at_most(0, 1),
            ColRange::at_most(1, 2),
            ColRange::at_least(0, 0),
        ]);
        let (on, off) = p.split_on(&[0]);
        assert_eq!(on.terms().len(), 2);
        assert_eq!(off.terms().len(), 1);
        assert!(on.terms().iter().all(|t| t.col == 0));
        assert_eq!(off.terms()[0].col, 1);
    }

    #[test]
    fn with_col_remaps() {
        let t = ColRange::between(3, 1, 9).with_col(0);
        assert_eq!(t.col, 0);
        assert_eq!((t.lo, t.hi), (1, 9));
    }

    #[test]
    fn eval_batch_matches_eval_rows_and_charges() {
        use crate::batch::Selection;
        let p = Predicate::all_of(vec![
            ColRange::at_most(0, 10),
            ColRange::between(1, -5, 5),
            ColRange::at_least(0, 0),
        ]);
        let rows: Vec<[i64; 2]> =
            vec![[0, 0], [11, 0], [5, 9], [10, 5], [-1, -9], [3, -5], [10, 6]];
        let c0: Vec<i64> = rows.iter().map(|r| r[0]).collect();
        let c1: Vec<i64> = rows.iter().map(|r| r[1]).collect();
        // terms: col0, col1, col0 again.
        let term_cols: Vec<&[i64]> = vec![&c0, &c1, &c0];
        let row_s = quiet();
        let batch_s = quiet();
        let mut sel = Selection::new();
        p.eval_batch(&term_cols, rows.len(), &batch_s, &mut sel);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(sel.get(i), p.eval(&row(r), &row_s), "row {i}");
        }
        assert_eq!(batch_s.stats().cpu_compares, row_s.stats().cpu_compares);
        // eval_batch_free agrees on the bitmap.
        let mut free = Selection::new();
        p.eval_batch_free(&term_cols, rows.len(), &mut free);
        for i in 0..rows.len() {
            assert_eq!(free.get(i), sel.get(i));
        }
        // Empty batch and empty predicate charge nothing.
        let s = quiet();
        assert_eq!(p.eval_batch(&term_cols.iter().map(|c| &c[..0]).collect::<Vec<_>>(), 0, &s, &mut sel), 0);
        assert_eq!(Predicate::always_true().eval_batch(&[], 3, &s, &mut sel), 0);
        assert_eq!(s.stats().cpu_compares, 0);
        assert_eq!(sel.count(), 3);
    }

    #[test]
    fn eval_values_matches_eval() {
        let p = Predicate::all_of(vec![ColRange::at_most(0, 0), ColRange::at_most(1, 0)]);
        for vals in [[5i64, 5], [0, 0], [0, 5], [5, 0]] {
            let a = quiet();
            let b = quiet();
            assert_eq!(p.eval_values(|c| vals[c], &a), p.eval(&row(&vals), &b));
            assert_eq!(a.stats().cpu_compares, b.stats().cpu_compares);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Predicate::always_true().to_string(), "TRUE");
        let p = Predicate::all_of(vec![
            ColRange::at_most(0, 7),
            ColRange::at_least(1, 3),
            ColRange::equals(2, 5),
            ColRange::between(3, 1, 2),
        ]);
        assert_eq!(
            p.to_string(),
            "col0 <= 7 AND col1 >= 3 AND col2 = 5 AND col3 IN [1, 2]"
        );
    }
}
