//! # robustmap-executor
//!
//! Query execution substrate for the robustness-map reproduction of Graefe,
//! Kuno & Wiener, *Visualizing the robustness of query execution* (CIDR
//! 2009).
//!
//! The paper fixes query execution plans with hints and measures how each
//! plan behaves across run-time conditions.  This crate implements those
//! plans as real physical operators over [`robustmap_storage`]:
//!
//! * [`ops::table_scan`] — full scan of the main storage structure,
//! * [`ops::index_scan`] — B+-tree range scans (rid-producing and covering),
//! * [`ops::fetch`] — the three row-fetch disciplines the paper contrasts:
//!   **traditional** (one random I/O per row, Figure 1's "traditional index
//!   scan"), **improved** (rid sort + in-order fetch with a read-ahead mode
//!   switch, Figure 1's "improved index scan"), and **bitmap-sorted**
//!   (System B's fetch in Figure 8),
//! * [`ops::mdam`] — multi-dimensional B-tree access (\[LJBY95\], Figure 9),
//! * [`ops::rid_join`] — index intersection by rid merge join or rid hash
//!   join (Figures 5 and 7) and covering rid-to-rid joins (Figure 2),
//! * [`ops::sort`] — external merge sort with *graceful* and *abrupt* spill
//!   modes (the §4 robustness prediction),
//! * [`ops::agg`] — hash aggregation with optional grace spill,
//! * [`ops::join`] — general sort-merge and hybrid hash equi-joins
//!   (\[GLS94\]'s contrast, the paper's §4 future work),
//! * [`ops::parallel_scan`] — parallel table scans with a skew knob
//!   (critical-path timing, summed work).
//!
//! Plans are described by [`plan::PlanSpec`] trees and executed by
//! [`exec::execute`], which pushes rows into a caller-provided sink and
//! charges all work to a [`robustmap_storage::Session`].  A vectorized
//! twin, [`exec::execute_batched`], runs the same plans over columnar
//! [`batch::RowBatch`] chunks with bit-identical simulated charges (see
//! [`batch`] for the equivalence rules).
//!
//! An adaptive layer, [`ops::adaptive`], threads cardinality checkpoints
//! through both executors: at every materialization point the exact
//! observed row count is reported to a [`ops::adaptive::SwitchController`],
//! which may swap the remaining operator choice or bail to a replacement
//! plan mid-flight.  With switching disabled the adaptive executors are
//! bit-identical to the static ones (`tests/adaptive_equivalence.rs`).

pub mod batch;
pub mod exec;
pub mod expr;
pub mod ops;
pub mod plan;

pub use batch::{BatchEmitter, ExecConfig, RowBatch, Selection};
pub use exec::{
    execute, execute_batched, execute_collect, execute_collect_batched, execute_count,
    execute_count_batched, ExecCtx, ExecError, ExecStats, OpStats,
};
pub use expr::{ColRange, Predicate};
pub use ops::adaptive::{
    execute_adaptive, execute_adaptive_batched, execute_adaptive_collect,
    execute_adaptive_collect_batched, execute_adaptive_count, execute_adaptive_count_batched,
    AdaptiveStats, NeverSwitch, Observation, SwitchController, SwitchDirective, SwitchEvent,
};
pub use plan::{
    AggFn, CheckpointKind, FetchKind, ImprovedFetchConfig, IndexRangeSpec, IntersectAlgo, JoinAlgo,
    KeyRange, PlanSpec, Projection, SpillMode,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, exec::ExecError>;
