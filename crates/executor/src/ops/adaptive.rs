//! Adaptive execution: cardinality checkpoints at materialization points.
//!
//! The paper's thesis (§1) is that compile-time plan choice inevitably goes
//! wrong and run-time techniques must absorb the estimation error.  This
//! module is that run-time layer: [`execute_adaptive`] runs a plan exactly
//! like [`crate::exec::execute`], but at every *materialization point* —
//! a collected rid list, an intersection feed or output, a join input, a
//! sort or aggregation input — it pauses to report the **exact** observed
//! cardinality to a [`SwitchController`] before the downstream work that
//! depends on it has been paid for.  The controller may answer with a
//! [`SwitchDirective`]: keep going, swap the remaining operator choice
//! (fetch discipline, intersection algorithm, join algorithm), or bail out
//! to a replacement plan (typically the choice-free MDAM plan).
//!
//! # The no-switch equivalence argument
//!
//! Observation is free: counting rows that the static executor materialises
//! anyway issues no charge on the simulated clock, touches no page, and
//! moves no data.  Every arm below replays the *same* charge calls in the
//! *same order* as its twin in [`crate::exec`], with the checkpoint wedged
//! between the charge that produced the materialisation and the charge that
//! consumes it.  Consequently, when the controller always answers
//! [`SwitchDirective::Continue`] (e.g. [`NeverSwitch`], or a real policy
//! whose thresholds never trip), the adaptive executor is **bit-identical**
//! to the static one — same `SimClock` bits, same `IoStats`, same per-op
//! stats, same output rows.  `tests/adaptive_equivalence.rs` pins this
//! across the plan catalog, batch sizes, and both executors.
//!
//! # Switch-cost accounting
//!
//! Nothing is rolled back.  When a directive swaps an operator choice, the
//! already-charged prefix (index scans, intersection, materialised inputs)
//! is reused and only the remaining pipeline changes.  When a directive
//! bails to a replacement plan, the abandoned prefix's charges stay on the
//! clock — they are recorded under the abandoned operator's label with zero
//! output rows — and the replacement plan then runs in full.  The simulated
//! cost of a bailed execution is therefore *sunk prefix + full fallback*,
//! never less: adaptivity pays for its mistakes in the same currency the
//! robustness maps measure.

use std::cell::RefCell;

use robustmap_storage::{AccessKind, Row};

use crate::batch::{BatchEmitter, ExecConfig, RowBatch};
use crate::exec::{
    execute_node, execute_node_batched, plan_out_arity, run_fetch, run_fetch_batched, ExecCtx,
    ExecError, ExecStats,
};
use crate::ops;
use crate::ops::sort::PackedRows;
use robustmap_obs::trace::TraceEventKind;
use crate::plan::{algo_name, fetch_name, CheckpointKind, FetchKind, IntersectAlgo, JoinAlgo,
    PlanSpec};

/// One cardinality observation at a checkpoint: the kind of
/// materialization point and the exact number of rows (or rids/entries)
/// it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Which materialization point fired.
    pub kind: CheckpointKind,
    /// Exact cardinality observed there.
    pub rows: u64,
}

/// What a [`SwitchController`] tells the executor to do at a checkpoint.
///
/// Directives that do not apply at the observed point (e.g. a
/// [`SwitchDirective::SwitchJoin`] at a [`CheckpointKind::RidFeed`]) are
/// treated as [`SwitchDirective::Continue`]; the observe-only points
/// ([`CheckpointKind::SortInput`], [`CheckpointKind::AggInput`]) ignore
/// every directive because nothing downstream of them is re-plannable.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchDirective {
    /// Proceed with the planned pipeline.
    Continue,
    /// Fetch the pending rids with a different discipline
    /// (valid at [`CheckpointKind::RidFeed`] / [`CheckpointKind::IntersectOut`]).
    SwitchFetch(FetchKind),
    /// Intersect the collected feeds with a different algorithm (valid at
    /// the *right* [`CheckpointKind::IntersectFeed`], when both feeds are
    /// known but the intersection has not run).
    SwitchIntersect(IntersectAlgo),
    /// Join the materialised inputs with a different algorithm (valid at
    /// the second join-input checkpoint).
    SwitchJoin(JoinAlgo),
    /// Abandon the current operator and run this plan instead.  The sunk
    /// prefix stays on the clock; the replacement runs with switching
    /// disabled (it is the hedge — there is nothing left to hedge with).
    Bail(PlanSpec),
}

impl SwitchDirective {
    /// Short human-readable action label for [`SwitchEvent`]s.
    fn describe(&self) -> String {
        match self {
            SwitchDirective::Continue => "continue".to_string(),
            SwitchDirective::SwitchFetch(f) => format!("switch-fetch({})", fetch_name(f)),
            SwitchDirective::SwitchIntersect(a) => {
                format!("switch-intersect({})", algo_name(a))
            }
            SwitchDirective::SwitchJoin(JoinAlgo::SortMerge) => {
                "switch-join(sort-merge)".to_string()
            }
            SwitchDirective::SwitchJoin(JoinAlgo::Hash { build_left }) => {
                format!("switch-join(hash/build-{})", if *build_left { "left" } else { "right" })
            }
            SwitchDirective::Bail(plan) => format!("bail -> {}", plan.synopsis()),
        }
    }
}

/// Decides, at each checkpoint, whether the observed cardinality warrants
/// changing course.  Implementations live above the executor (see
/// `robustmap-systems`' `SwitchPolicy`); the executor only obeys.
pub trait SwitchController {
    /// Inspect one observation and answer with a directive.  Called
    /// synchronously between two charges; must not charge anything itself.
    fn decide(&self, obs: &Observation) -> SwitchDirective;
}

/// The controller that never switches: adaptive execution under it is
/// bit-identical to the static executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverSwitch;

impl SwitchController for NeverSwitch {
    fn decide(&self, _obs: &Observation) -> SwitchDirective {
        SwitchDirective::Continue
    }
}

/// One acted-upon directive, for the execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchEvent {
    /// The checkpoint that fired.
    pub at: CheckpointKind,
    /// The cardinality observed there.
    pub observed: u64,
    /// What the executor did about it (e.g. `bail -> Mdam`).
    pub action: String,
}

/// Summary of one adaptive execution: the usual [`ExecStats`] plus every
/// switch that actually happened (empty = the run was charge-identical to
/// the static executor).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveStats {
    /// The execution summary (same shape as the static executor's).
    pub exec: ExecStats,
    /// Acted-upon directives, in firing order.
    pub switches: Vec<SwitchEvent>,
}

/// Execute `plan` adaptively on the row path, pushing output rows into
/// `sink`.  With a controller that never switches this is bit-identical to
/// [`crate::exec::execute`].
pub fn execute_adaptive(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    ctrl: &dyn SwitchController,
    sink: &mut dyn FnMut(&Row),
) -> Result<AdaptiveStats, ExecError> {
    let t0 = ctx.session.elapsed();
    let io0 = ctx.session.stats();
    let events = RefCell::new(Vec::new());
    let rows = node(plan, ctx, ctrl, &events, 0, sink)?;
    let stats = ExecStats {
        rows_out: rows,
        seconds: ctx.session.elapsed() - t0,
        io: ctx.session.stats().since(&io0),
        spilled: ctx.spilled(),
        operators: ctx.take_op_stats(),
    };
    Ok(AdaptiveStats { exec: stats, switches: events.into_inner() })
}

/// [`execute_adaptive`], counting and discarding output rows.
pub fn execute_adaptive_count(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    ctrl: &dyn SwitchController,
) -> Result<AdaptiveStats, ExecError> {
    execute_adaptive(plan, ctx, ctrl, &mut |_| {})
}

/// [`execute_adaptive`], collecting output rows (tests and small results).
pub fn execute_adaptive_collect(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    ctrl: &dyn SwitchController,
) -> Result<(AdaptiveStats, Vec<Row>), ExecError> {
    let mut rows = Vec::new();
    let stats = execute_adaptive(plan, ctx, ctrl, &mut |r| rows.push(*r))?;
    Ok((stats, rows))
}

/// Execute `plan` adaptively on the batch path.  With a controller that
/// never switches this is bit-identical to [`crate::exec::execute_batched`].
pub fn execute_adaptive_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    ctrl: &dyn SwitchController,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<AdaptiveStats, ExecError> {
    let t0 = ctx.session.elapsed();
    let io0 = ctx.session.stats();
    let events = RefCell::new(Vec::new());
    let rows = node_batched(plan, ctx, cfg, ctrl, &events, 0, sink)?;
    let stats = ExecStats {
        rows_out: rows,
        seconds: ctx.session.elapsed() - t0,
        io: ctx.session.stats().since(&io0),
        spilled: ctx.spilled(),
        operators: ctx.take_op_stats(),
    };
    Ok(AdaptiveStats { exec: stats, switches: events.into_inner() })
}

/// Batched [`execute_adaptive_count`].
pub fn execute_adaptive_count_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    ctrl: &dyn SwitchController,
) -> Result<AdaptiveStats, ExecError> {
    execute_adaptive_batched(plan, ctx, cfg, ctrl, &mut |_| {})
}

/// Batched [`execute_adaptive_collect`].
pub fn execute_adaptive_collect_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    ctrl: &dyn SwitchController,
) -> Result<(AdaptiveStats, Vec<Row>), ExecError> {
    let mut rows = Vec::new();
    let stats = execute_adaptive_batched(plan, ctx, cfg, ctrl, &mut |b| {
        for i in 0..b.len() {
            rows.push(b.row(i));
        }
    })?;
    Ok((stats, rows))
}

/// Stable name of a checkpoint for trace events.
fn checkpoint_name(kind: CheckpointKind) -> &'static str {
    match kind {
        CheckpointKind::RidFeed => "rid_feed",
        CheckpointKind::IntersectFeed { .. } => "intersect_feed",
        CheckpointKind::IntersectOut => "intersect_out",
        CheckpointKind::JoinBuild => "join_build",
        CheckpointKind::JoinProbe => "join_probe",
        CheckpointKind::SortInput => "sort_input",
        CheckpointKind::AggInput => "agg_input",
        CheckpointKind::ScanOut => "scan_out",
    }
}

/// Report one observation and record the directive if it is acted upon.
/// When the session is traced, every checkpoint emits a (charge-free)
/// instant event, and an acted-upon directive emits a switch event — the
/// timeline shows exactly when the cascade fired and when it bailed.
fn observe(
    ctx: &ExecCtx<'_>,
    ctrl: &dyn SwitchController,
    events: &RefCell<Vec<SwitchEvent>>,
    kind: CheckpointKind,
    rows: u64,
) -> SwitchDirective {
    if ctx.session.is_traced() {
        ctx.session
            .trace_event(TraceEventKind::Checkpoint { kind: checkpoint_name(kind), rows });
    }
    let d = ctrl.decide(&Observation { kind, rows });
    if !matches!(d, SwitchDirective::Continue) {
        if ctx.session.is_traced() {
            ctx.session.trace_event(TraceEventKind::Switch {
                at: checkpoint_name(kind),
                observed: rows,
                action: d.describe(),
            });
        }
        events.borrow_mut().push(SwitchEvent { at: kind, observed: rows, action: d.describe() });
    }
    d
}

/// Abandon `abandoned` (its sunk charges recorded under its own label with
/// zero output) and run `alt` in its place on the row path.
fn bail(
    abandoned: &PlanSpec,
    alt: &PlanSpec,
    ctx: &ExecCtx<'_>,
    depth: usize,
    t0: f64,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    ctx.record_op(
        format!("{} [abandoned]", abandoned.synopsis()),
        depth,
        0,
        ctx.session.elapsed() - t0,
    );
    execute_node(alt, ctx, depth, sink)
}

/// Batched twin of [`bail`].
fn bail_batched(
    abandoned: &PlanSpec,
    alt: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    depth: usize,
    t0: f64,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    ctx.record_op(
        format!("{} [abandoned]", abandoned.synopsis()),
        depth,
        0,
        ctx.session.elapsed() - t0,
    );
    execute_node_batched(alt, ctx, cfg, depth, sink)
}

/// The adaptive twin of [`execute_node`].  Checkpointed shapes replay the
/// static arm's charges with observations wedged between materialisation
/// and consumption; shapes without an internal materialization point
/// delegate wholesale (they record their own op stats).
fn node(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    ctrl: &dyn SwitchController,
    events: &RefCell<Vec<SwitchEvent>>,
    depth: usize,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    match plan {
        PlanSpec::TableScan { .. }
        | PlanSpec::CoveringIndexScan { .. }
        | PlanSpec::ParallelTableScan { .. } => return execute_node(plan, ctx, depth, sink),
        _ => {}
    }
    let t0 = ctx.session.elapsed();
    let rows = match plan {
        PlanSpec::Mdam { index, col_ranges, project } => {
            let idx = ctx.db.index(*index);
            // Hold the output back (charge-free, like every emission) so a
            // bail discards it instead of duplicating rows ahead of the
            // fallback plan's own output.
            let mut held: Vec<Row> = Vec::new();
            let mut alt: Option<PlanSpec> = None;
            ops::mdam::run_abortable(idx, col_ranges, ctx.session, &mut |key| {
                held.push(Row::from_slice(key.values()));
                let n = held.len() as u64;
                if n.is_power_of_two() {
                    if let SwitchDirective::Bail(a) =
                        observe(ctx, ctrl, events, CheckpointKind::ScanOut, n)
                    {
                        alt = Some(a);
                        return false;
                    }
                }
                true
            })?;
            if let Some(a) = alt {
                drop(held);
                return bail(plan, &a, ctx, depth, t0, sink);
            }
            let mut produced = 0u64;
            for row in &held {
                let out = project.apply(row);
                sink(&out);
                produced += 1;
            }
            produced
        }
        PlanSpec::IndexFetch { scan, key_filter, fetch, residual, project } => {
            let index = ctx.db.index(scan.index);
            let rids = ops::index_scan::collect_rids_filtered(
                index,
                &scan.range,
                key_filter,
                ctx.session,
                AccessKind::Sequential,
            );
            let mut fetch_eff = *fetch;
            match observe(ctx, ctrl, events, CheckpointKind::RidFeed, rids.len() as u64) {
                SwitchDirective::SwitchFetch(f) => fetch_eff = f,
                SwitchDirective::Bail(alt) => {
                    drop(rids);
                    return bail(plan, &alt, ctx, depth, t0, sink);
                }
                _ => {}
            }
            let heap = &ctx.db.table(index.table).heap;
            run_fetch(heap, rids, &fetch_eff, residual, project, ctx, sink)?
        }
        PlanSpec::IndexIntersect { left, right, algo, fetch, residual, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan(
                    "index intersection across different tables".into(),
                ));
            }
            let lrids =
                ops::index_scan::collect_rids(li, &left.range, ctx.session, AccessKind::Sequential);
            if let SwitchDirective::Bail(alt) = observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: false },
                lrids.len() as u64,
            ) {
                drop(lrids);
                return bail(plan, &alt, ctx, depth, t0, sink);
            }
            let rrids =
                ops::index_scan::collect_rids(ri, &right.range, ctx.session, AccessKind::Sequential);
            let mut algo_eff = *algo;
            match observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: true },
                rrids.len() as u64,
            ) {
                SwitchDirective::SwitchIntersect(a) => algo_eff = a,
                SwitchDirective::Bail(alt) => {
                    drop((lrids, rrids));
                    return bail(plan, &alt, ctx, depth, t0, sink);
                }
                _ => {}
            }
            let surviving = ops::rid_join::intersect_rids(lrids, rrids, algo_eff, ctx);
            let mut fetch_eff = *fetch;
            match observe(ctx, ctrl, events, CheckpointKind::IntersectOut, surviving.len() as u64) {
                SwitchDirective::SwitchFetch(f) => fetch_eff = f,
                SwitchDirective::Bail(alt) => {
                    drop(surviving);
                    return bail(plan, &alt, ctx, depth, t0, sink);
                }
                _ => {}
            }
            let heap = &ctx.db.table(li.table).heap;
            run_fetch(heap, surviving, &fetch_eff, residual, project, ctx, sink)?
        }
        PlanSpec::CoveringRidJoin { left, right, algo, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan("covering rid join across different tables".into()));
            }
            let lentries =
                ops::index_scan::collect_entries(li, &left.range, ctx.session, AccessKind::Sequential);
            if let SwitchDirective::Bail(alt) = observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: false },
                lentries.len() as u64,
            ) {
                drop(lentries);
                return bail(plan, &alt, ctx, depth, t0, sink);
            }
            let rentries =
                ops::index_scan::collect_entries(ri, &right.range, ctx.session, AccessKind::Sequential);
            let mut algo_eff = *algo;
            match observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: true },
                rentries.len() as u64,
            ) {
                SwitchDirective::SwitchIntersect(a) => algo_eff = a,
                SwitchDirective::Bail(alt) => {
                    drop((lentries, rentries));
                    return bail(plan, &alt, ctx, depth, t0, sink);
                }
                _ => {}
            }
            let mut produced = 0u64;
            ops::rid_join::covering_join(lentries, rentries, algo_eff, ctx, &mut |row| {
                let out = project.apply(row);
                sink(&out);
                produced += 1;
            });
            produced
        }
        PlanSpec::Join { left, right, left_key, right_key, algo, memory_bytes, project } => {
            let build_left = match algo {
                JoinAlgo::SortMerge => true,
                JoinAlgo::Hash { build_left } => *build_left,
            };
            let (first, second) = if build_left {
                (CheckpointKind::JoinBuild, CheckpointKind::JoinProbe)
            } else {
                (CheckpointKind::JoinProbe, CheckpointKind::JoinBuild)
            };
            let mut lrows = PackedRows::default();
            node(left, ctx, ctrl, events, depth + 1, &mut |r| lrows.push(r.values()))?;
            if let SwitchDirective::Bail(alt) = observe(ctx, ctrl, events, first, lrows.len() as u64) {
                drop(lrows);
                return bail(plan, &alt, ctx, depth, t0, sink);
            }
            let mut rrows = PackedRows::default();
            node(right, ctx, ctrl, events, depth + 1, &mut |r| rrows.push(r.values()))?;
            let mut algo_eff = *algo;
            match observe(ctx, ctrl, events, second, rrows.len() as u64) {
                SwitchDirective::SwitchJoin(a) => algo_eff = a,
                SwitchDirective::Bail(alt) => {
                    drop((lrows, rrows));
                    return bail(plan, &alt, ctx, depth, t0, sink);
                }
                _ => {}
            }
            let mut produced = 0u64;
            let mut project_sink = |row: &Row| {
                let out = project.apply(row);
                sink(&out);
                produced += 1;
            };
            match algo_eff {
                JoinAlgo::SortMerge => {
                    ops::join::sort_merge_join(
                        lrows,
                        rrows,
                        *left_key,
                        *right_key,
                        *memory_bytes,
                        ctx,
                        &mut project_sink,
                    )?;
                }
                JoinAlgo::Hash { build_left } => {
                    let (b, p, bk, pk, swap) = if build_left {
                        (lrows, rrows, *left_key, *right_key, false)
                    } else {
                        (rrows, lrows, *right_key, *left_key, true)
                    };
                    ops::join::hash_join(b, p, bk, pk, *memory_bytes, swap, ctx, &mut project_sink)?;
                }
            }
            produced
        }
        PlanSpec::Sort { input, key_cols, mode, memory_bytes } => {
            let mut sorter =
                ops::sort::ExternalSorter::new(ctx, key_cols.clone(), *mode, *memory_bytes);
            let mut fed = 0u64;
            node(input, ctx, ctrl, events, depth + 1, &mut |row| {
                fed += 1;
                sorter.push(row);
            })?;
            // Observe-only: once the sorter holds the input there is nothing
            // downstream to re-plan, so directives are not acted upon.
            let _ = ctrl.decide(&Observation { kind: CheckpointKind::SortInput, rows: fed });
            sorter.finish(sink)
        }
        PlanSpec::HashAgg { input, group_cols, aggs, mode, memory_bytes } => {
            let mut agg = ops::agg::HashAggregator::new(
                ctx,
                group_cols.clone(),
                aggs.clone(),
                *mode,
                *memory_bytes,
            );
            let mut fed = 0u64;
            node(input, ctx, ctrl, events, depth + 1, &mut |row| {
                fed += 1;
                agg.push(row);
            })?;
            // Observe-only, as for Sort.
            let _ = ctrl.decide(&Observation { kind: CheckpointKind::AggInput, rows: fed });
            agg.finish(sink)
        }
        // Delegated shapes returned above.
        _ => unreachable!("delegated plan shape reached the checkpointed match"),
    };
    ctx.record_op(plan.synopsis(), depth, rows, ctx.session.elapsed() - t0);
    Ok(rows)
}

/// The adaptive twin of [`execute_node_batched`]: same delegation and
/// checkpoint placement as [`node`], with the static batch path's emitters
/// and (for sort / aggregation) its row-lockstep input edges.
fn node_batched(
    plan: &PlanSpec,
    ctx: &ExecCtx<'_>,
    cfg: &ExecConfig,
    ctrl: &dyn SwitchController,
    events: &RefCell<Vec<SwitchEvent>>,
    depth: usize,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    match plan {
        PlanSpec::TableScan { .. }
        | PlanSpec::CoveringIndexScan { .. }
        | PlanSpec::ParallelTableScan { .. } => {
            return execute_node_batched(plan, ctx, cfg, depth, sink)
        }
        _ => {}
    }
    let t0 = ctx.session.elapsed();
    let rows = match plan {
        PlanSpec::Mdam { index, col_ranges, project } => {
            let idx = ctx.db.index(*index);
            // Output held back until the scan is past its last possible
            // bail point, as in the row path.
            let mut held: Vec<Row> = Vec::new();
            let mut alt: Option<PlanSpec> = None;
            ops::mdam::run_abortable(idx, col_ranges, ctx.session, &mut |key| {
                held.push(Row::from_slice(key.values()));
                let n = held.len() as u64;
                if n.is_power_of_two() {
                    if let SwitchDirective::Bail(a) =
                        observe(ctx, ctrl, events, CheckpointKind::ScanOut, n)
                    {
                        alt = Some(a);
                        return false;
                    }
                }
                true
            })?;
            if let Some(a) = alt {
                drop(held);
                return bail_batched(plan, &a, ctx, cfg, depth, t0, sink);
            }
            let proj = project.resolve(idx.tree.key_arity());
            let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
            for row in &held {
                emitter.push_projected_slice(row.values(), &proj, sink);
            }
            emitter.flush(sink);
            emitter.produced()
        }
        PlanSpec::IndexFetch { scan, key_filter, fetch, residual, project } => {
            let index = ctx.db.index(scan.index);
            let rids = ops::index_scan::collect_rids_filtered(
                index,
                &scan.range,
                key_filter,
                ctx.session,
                AccessKind::Sequential,
            );
            let mut fetch_eff = *fetch;
            match observe(ctx, ctrl, events, CheckpointKind::RidFeed, rids.len() as u64) {
                SwitchDirective::SwitchFetch(f) => fetch_eff = f,
                SwitchDirective::Bail(alt) => {
                    drop(rids);
                    return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
                }
                _ => {}
            }
            let heap = &ctx.db.table(index.table).heap;
            run_fetch_batched(heap, rids, &fetch_eff, residual, project, cfg, ctx, sink)?
        }
        PlanSpec::IndexIntersect { left, right, algo, fetch, residual, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan(
                    "index intersection across different tables".into(),
                ));
            }
            let lrids =
                ops::index_scan::collect_rids(li, &left.range, ctx.session, AccessKind::Sequential);
            if let SwitchDirective::Bail(alt) = observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: false },
                lrids.len() as u64,
            ) {
                drop(lrids);
                return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
            }
            let rrids =
                ops::index_scan::collect_rids(ri, &right.range, ctx.session, AccessKind::Sequential);
            let mut algo_eff = *algo;
            match observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: true },
                rrids.len() as u64,
            ) {
                SwitchDirective::SwitchIntersect(a) => algo_eff = a,
                SwitchDirective::Bail(alt) => {
                    drop((lrids, rrids));
                    return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
                }
                _ => {}
            }
            let surviving = ops::rid_join::intersect_rids(lrids, rrids, algo_eff, ctx);
            let mut fetch_eff = *fetch;
            match observe(ctx, ctrl, events, CheckpointKind::IntersectOut, surviving.len() as u64) {
                SwitchDirective::SwitchFetch(f) => fetch_eff = f,
                SwitchDirective::Bail(alt) => {
                    drop(surviving);
                    return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
                }
                _ => {}
            }
            let heap = &ctx.db.table(li.table).heap;
            run_fetch_batched(heap, surviving, &fetch_eff, residual, project, cfg, ctx, sink)?
        }
        PlanSpec::CoveringRidJoin { left, right, algo, project } => {
            let li = ctx.db.index(left.index);
            let ri = ctx.db.index(right.index);
            if li.table != ri.table {
                return Err(ExecError::BadPlan("covering rid join across different tables".into()));
            }
            let lentries =
                ops::index_scan::collect_entries(li, &left.range, ctx.session, AccessKind::Sequential);
            if let SwitchDirective::Bail(alt) = observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: false },
                lentries.len() as u64,
            ) {
                drop(lentries);
                return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
            }
            let rentries =
                ops::index_scan::collect_entries(ri, &right.range, ctx.session, AccessKind::Sequential);
            let mut algo_eff = *algo;
            match observe(
                ctx,
                ctrl,
                events,
                CheckpointKind::IntersectFeed { right: true },
                rentries.len() as u64,
            ) {
                SwitchDirective::SwitchIntersect(a) => algo_eff = a,
                SwitchDirective::Bail(alt) => {
                    drop((lentries, rentries));
                    return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
                }
                _ => {}
            }
            let proj = project.resolve(li.tree.key_arity() + ri.tree.key_arity());
            let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
            ops::rid_join::covering_join(lentries, rentries, algo_eff, ctx, &mut |row| {
                emitter.push_projected_slice(row.values(), &proj, sink);
            });
            emitter.flush(sink);
            emitter.produced()
        }
        PlanSpec::Join { left, right, left_key, right_key, algo, memory_bytes, project } => {
            let build_left = match algo {
                JoinAlgo::SortMerge => true,
                JoinAlgo::Hash { build_left } => *build_left,
            };
            let (first, second) = if build_left {
                (CheckpointKind::JoinBuild, CheckpointKind::JoinProbe)
            } else {
                (CheckpointKind::JoinProbe, CheckpointKind::JoinBuild)
            };
            let mut lrows = PackedRows::default();
            node_batched(left, ctx, cfg, ctrl, events, depth + 1, &mut |b| {
                for i in 0..b.len() {
                    lrows.push(b.row(i).values());
                }
            })?;
            if let SwitchDirective::Bail(alt) = observe(ctx, ctrl, events, first, lrows.len() as u64) {
                drop(lrows);
                return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
            }
            let mut rrows = PackedRows::default();
            node_batched(right, ctx, cfg, ctrl, events, depth + 1, &mut |b| {
                for i in 0..b.len() {
                    rrows.push(b.row(i).values());
                }
            })?;
            let mut algo_eff = *algo;
            match observe(ctx, ctrl, events, second, rrows.len() as u64) {
                SwitchDirective::SwitchJoin(a) => algo_eff = a,
                SwitchDirective::Bail(alt) => {
                    drop((lrows, rrows));
                    return bail_batched(plan, &alt, ctx, cfg, depth, t0, sink);
                }
                _ => {}
            }
            let proj =
                project.resolve(plan_out_arity(left, ctx.db)? + plan_out_arity(right, ctx.db)?);
            let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
            let mut project_sink = |row: &Row| {
                emitter.push_projected_slice(row.values(), &proj, sink);
            };
            match algo_eff {
                JoinAlgo::SortMerge => {
                    ops::join::sort_merge_join(
                        lrows,
                        rrows,
                        *left_key,
                        *right_key,
                        *memory_bytes,
                        ctx,
                        &mut project_sink,
                    )?;
                }
                JoinAlgo::Hash { build_left } => {
                    let (b, p, bk, pk, swap) = if build_left {
                        (lrows, rrows, *left_key, *right_key, false)
                    } else {
                        (rrows, lrows, *right_key, *left_key, true)
                    };
                    ops::join::hash_join(b, p, bk, pk, *memory_bytes, swap, ctx, &mut project_sink)?;
                }
            }
            emitter.flush(sink);
            emitter.produced()
        }
        PlanSpec::Sort { input, key_cols, mode, memory_bytes } => {
            let mut sorter =
                ops::sort::ExternalSorter::new(ctx, key_cols.clone(), *mode, *memory_bytes);
            // Row-lockstep input edge, as in the static batch path.
            let mut fed = 0u64;
            node(input, ctx, ctrl, events, depth + 1, &mut |row| {
                fed += 1;
                sorter.push(row);
            })?;
            let _ = ctrl.decide(&Observation { kind: CheckpointKind::SortInput, rows: fed });
            let arity = plan_out_arity(input, ctx.db)?;
            let identity: Vec<usize> = (0..arity).collect();
            let mut emitter = BatchEmitter::new(arity, cfg.batch_rows);
            let produced = sorter.finish(&mut |row| {
                emitter.push_projected_slice(row.values(), &identity, sink);
            });
            emitter.flush(sink);
            produced
        }
        PlanSpec::HashAgg { input, group_cols, aggs, mode, memory_bytes } => {
            let mut agg = ops::agg::HashAggregator::new(
                ctx,
                group_cols.clone(),
                aggs.clone(),
                *mode,
                *memory_bytes,
            );
            // Row-lockstep input edge, as in the static batch path.
            let mut fed = 0u64;
            node(input, ctx, ctrl, events, depth + 1, &mut |row| {
                fed += 1;
                agg.push(row);
            })?;
            let _ = ctrl.decide(&Observation { kind: CheckpointKind::AggInput, rows: fed });
            let arity = group_cols.len() + aggs.len();
            let identity: Vec<usize> = (0..arity).collect();
            let mut emitter = BatchEmitter::new(arity, cfg.batch_rows);
            let produced = agg.finish(&mut |row| {
                emitter.push_projected_slice(row.values(), &identity, sink);
            });
            emitter.flush(sink);
            produced
        }
        // Delegated shapes returned above.
        _ => unreachable!("delegated plan shape reached the checkpointed match"),
    };
    ctx.record_op(plan.synopsis(), depth, rows, ctx.session.elapsed() - t0);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_collect;
    use crate::expr::{ColRange, Predicate};
    use crate::ops::testutil::demo_db;
    use crate::plan::{
        ImprovedFetchConfig, IndexRangeSpec, KeyRange, Projection, SpillMode,
    };
    use robustmap_storage::Session;

    /// Controller that records every observation and always continues.
    #[derive(Default)]
    struct Recording {
        log: RefCell<Vec<(CheckpointKind, u64)>>,
    }

    impl SwitchController for Recording {
        fn decide(&self, obs: &Observation) -> SwitchDirective {
            self.log.borrow_mut().push((obs.kind, obs.rows));
            SwitchDirective::Continue
        }
    }

    /// Controller that bails to `alt` the first time `at` fires.
    struct BailAt {
        at: CheckpointKind,
        alt: PlanSpec,
    }

    impl SwitchController for BailAt {
        fn decide(&self, obs: &Observation) -> SwitchDirective {
            if obs.kind == self.at {
                SwitchDirective::Bail(self.alt.clone())
            } else {
                SwitchDirective::Continue
            }
        }
    }

    fn run_all_paths(
        db: &robustmap_storage::Database,
        plan: &PlanSpec,
        cfgs: &[ExecConfig],
    ) -> Vec<(Vec<(CheckpointKind, u64)>, u64)> {
        let mut out = Vec::new();
        // Scalar path.
        let ctrl = Recording::default();
        let s = Session::with_pool_pages(256);
        let ctx = ExecCtx::new(db, &s, 1 << 20);
        let stats = execute_adaptive_count(plan, &ctx, &ctrl).unwrap();
        out.push((ctrl.log.into_inner(), stats.exec.rows_out));
        // Batched paths.
        for cfg in cfgs {
            let ctrl = Recording::default();
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(db, &s, 1 << 20);
            let stats = execute_adaptive_count_batched(plan, &ctx, cfg, &ctrl).unwrap();
            out.push((ctrl.log.into_inner(), stats.exec.rows_out));
        }
        out
    }

    fn both_cfgs() -> [ExecConfig; 2] {
        [ExecConfig::default(), ExecConfig::with_batch_rows(513)]
    }

    /// Rid-feed placement: the checkpoint observes exactly the rid count
    /// the fetch consumes (= output rows with a true residual).
    #[test]
    fn rid_feed_checkpoint_observes_fetch_input() {
        let n = 1024i64;
        let (mut db, t) = demo_db(n);
        let idx_a = db.create_index("idx_a", t, &[0]).unwrap();
        let ca = 199i64;
        let plan = PlanSpec::IndexFetch {
            scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ca, 1) },
            key_filter: Predicate::always_true(),
            fetch: FetchKind::Improved(ImprovedFetchConfig::default()),
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        for (log, rows_out) in run_all_paths(&db, &plan, &both_cfgs()) {
            assert_eq!(rows_out, (ca + 1) as u64);
            assert_eq!(log, vec![(CheckpointKind::RidFeed, rows_out)]);
        }
    }

    /// Intersect-feed placement: both feeds and the surviving output are
    /// observed, and the output count equals what the fetch consumes.
    #[test]
    fn intersect_checkpoints_observe_feeds_and_survivors() {
        let n = 1024i64;
        let (mut db, t) = demo_db(n);
        let idx_a = db.create_index("idx_a", t, &[0]).unwrap();
        let idx_b = db.create_index("idx_b", t, &[1]).unwrap();
        let (ca, cb) = (299i64, 499i64);
        let plan = PlanSpec::IndexIntersect {
            left: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ca, 1) },
            right: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, cb, 1) },
            algo: IntersectAlgo::MergeJoin,
            fetch: FetchKind::Improved(ImprovedFetchConfig::default()),
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        for (log, rows_out) in run_all_paths(&db, &plan, &both_cfgs()) {
            assert_eq!(
                log,
                vec![
                    (CheckpointKind::IntersectFeed { right: false }, (ca + 1) as u64),
                    (CheckpointKind::IntersectFeed { right: true }, (cb + 1) as u64),
                    (CheckpointKind::IntersectOut, rows_out),
                ]
            );
        }
    }

    /// Hash-build placement: the build-side checkpoint observes exactly the
    /// row count the hash join consumes as its build input.
    #[test]
    fn join_checkpoints_observe_build_and_probe_inputs() {
        let n = 512i64;
        let (db, t) = demo_db(n);
        let ca = 99i64;
        let filtered = PlanSpec::TableScan {
            table: t,
            pred: Predicate::single(ColRange::at_most(0, ca)),
            project: Projection::All,
        };
        let full = PlanSpec::TableScan {
            table: t,
            pred: Predicate::always_true(),
            project: Projection::All,
        };
        // Build on the left (the full input), probe with the filtered one.
        let plan = PlanSpec::Join {
            left: Box::new(full.clone()),
            right: Box::new(filtered.clone()),
            left_key: 0,
            right_key: 0,
            algo: JoinAlgo::Hash { build_left: true },
            memory_bytes: 8 << 20,
            project: Projection::All,
        };
        for (log, rows_out) in run_all_paths(&db, &plan, &both_cfgs()) {
            assert_eq!(rows_out, (ca + 1) as u64, "a is a permutation: unique join keys");
            assert_eq!(
                log,
                vec![
                    (CheckpointKind::JoinBuild, n as u64),
                    (CheckpointKind::JoinProbe, (ca + 1) as u64),
                ]
            );
        }
        // Swapping the build side swaps the checkpoint labels, not the
        // firing order (left input always materialises first).
        let swapped = PlanSpec::Join {
            left: Box::new(full),
            right: Box::new(filtered),
            left_key: 0,
            right_key: 0,
            algo: JoinAlgo::Hash { build_left: false },
            memory_bytes: 8 << 20,
            project: Projection::All,
        };
        for (log, _) in run_all_paths(&db, &swapped, &both_cfgs()) {
            assert_eq!(
                log,
                vec![
                    (CheckpointKind::JoinProbe, n as u64),
                    (CheckpointKind::JoinBuild, (ca + 1) as u64),
                ]
            );
        }
    }

    /// Sort-input placement: the checkpoint observes exactly the row count
    /// the sorter consumed (= the sorted output count).
    #[test]
    fn sort_input_checkpoint_observes_consumed_rows() {
        let n = 512i64;
        let (db, t) = demo_db(n);
        let ca = 149i64;
        let plan = PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: t,
                pred: Predicate::single(ColRange::at_most(0, ca)),
                project: Projection::All,
            }),
            key_cols: vec![1],
            mode: SpillMode::Graceful,
            memory_bytes: 1 << 20,
        };
        for (log, rows_out) in run_all_paths(&db, &plan, &both_cfgs()) {
            assert_eq!(rows_out, (ca + 1) as u64);
            assert_eq!(log, vec![(CheckpointKind::SortInput, rows_out)]);
        }
    }

    /// ScanOut placement: MDAM milestones fire at each power of two of
    /// the produced count, mid-scan, on both executor paths.
    #[test]
    fn mdam_scan_out_milestones_fire_at_powers_of_two() {
        let n = 1024i64;
        let (mut db, t) = demo_db(n);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let ca = 299i64;
        let plan = PlanSpec::Mdam {
            index: idx,
            col_ranges: vec![(i64::MIN, ca), (i64::MIN, i64::MAX)],
            project: Projection::All,
        };
        for (log, rows_out) in run_all_paths(&db, &plan, &both_cfgs()) {
            assert_eq!(rows_out, (ca + 1) as u64);
            let want: Vec<(CheckpointKind, u64)> = (0..)
                .map(|k| 1u64 << k)
                .take_while(|&m| m <= rows_out)
                .map(|m| (CheckpointKind::ScanOut, m))
                .collect();
            assert_eq!(log, want);
        }
    }

    /// A bail at a mid-scan milestone discards the held output: the run
    /// produces exactly the fallback plan's rows, never a mix.
    #[test]
    fn mdam_bail_mid_scan_does_not_duplicate_rows() {
        let n = 1024i64;
        let (mut db, t) = demo_db(n);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let ca = 299i64;
        let plan = PlanSpec::Mdam {
            index: idx,
            col_ranges: vec![(i64::MIN, ca), (i64::MIN, i64::MAX)],
            project: Projection::All,
        };
        let fallback = PlanSpec::TableScan {
            table: t,
            pred: Predicate::single(ColRange::at_most(0, ca)),
            project: Projection::All,
        };
        let s = Session::with_pool_pages(256);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (want_stats, mut want) = execute_collect(&fallback, &ctx).unwrap();
        for milestone in [1u64, 16, 256] {
            struct BailPast {
                milestone: u64,
                alt: PlanSpec,
            }
            impl SwitchController for BailPast {
                fn decide(&self, obs: &Observation) -> SwitchDirective {
                    if obs.kind == CheckpointKind::ScanOut && obs.rows >= self.milestone {
                        SwitchDirective::Bail(self.alt.clone())
                    } else {
                        SwitchDirective::Continue
                    }
                }
            }
            let ctrl = BailPast { milestone, alt: fallback.clone() };
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            let (stats, mut got) = execute_adaptive_collect(&plan, &ctx, &ctrl).unwrap();
            assert_eq!(stats.switches.len(), 1);
            assert_eq!(stats.switches[0].at, CheckpointKind::ScanOut);
            assert_eq!(stats.switches[0].observed, milestone);
            got.sort_by_key(|r| r.values().to_vec());
            want.sort_by_key(|r| r.values().to_vec());
            assert_eq!(got.len(), want.len(), "milestone {milestone}");
            assert_eq!(got, want, "milestone {milestone}");
            assert!(
                stats.exec.seconds >= want_stats.seconds,
                "sunk prefix must stay on the clock"
            );
        }
    }

    /// The observed checkpoint sequence matches `PlanSpec::checkpoints()`.
    #[test]
    fn fired_checkpoints_match_plan_declaration() {
        let n = 256i64;
        let (mut db, t) = demo_db(n);
        let idx_a = db.create_index("idx_a", t, &[0]).unwrap();
        let idx_b = db.create_index("idx_b", t, &[1]).unwrap();
        let plans = vec![
            PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, 99, 1) },
                key_filter: Predicate::always_true(),
                fetch: FetchKind::Traditional,
                residual: Predicate::always_true(),
                project: Projection::All,
            },
            PlanSpec::IndexIntersect {
                left: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, 99, 1) },
                right: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, 49, 1) },
                algo: IntersectAlgo::HashJoin { build_left: true },
                fetch: FetchKind::BitmapSorted,
                residual: Predicate::always_true(),
                project: Projection::All,
            },
            PlanSpec::Sort {
                input: Box::new(PlanSpec::TableScan {
                    table: t,
                    pred: Predicate::always_true(),
                    project: Projection::All,
                }),
                key_cols: vec![2],
                mode: SpillMode::Graceful,
                memory_bytes: 1 << 20,
            },
        ];
        for plan in &plans {
            let ctrl = Recording::default();
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            execute_adaptive_count(plan, &ctx, &ctrl).unwrap();
            let fired: Vec<CheckpointKind> =
                ctrl.log.into_inner().iter().map(|(k, _)| *k).collect();
            assert_eq!(fired, plan.checkpoints(), "plan {}", plan.synopsis());
        }
    }

    /// A bail mid-flight produces exactly the fallback plan's rows and
    /// costs at least as much as the fallback alone (sunk prefix stays on
    /// the clock).
    #[test]
    fn bail_reproduces_fallback_rows_and_keeps_sunk_cost() {
        let n = 1024i64;
        let (mut db, t) = demo_db(n);
        let idx_a = db.create_index("idx_a", t, &[0]).unwrap();
        let idx_b = db.create_index("idx_b", t, &[1]).unwrap();
        let (ca, cb) = (399i64, 499i64);
        let chosen = PlanSpec::IndexIntersect {
            left: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ca, 1) },
            right: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, cb, 1) },
            algo: IntersectAlgo::HashJoin { build_left: true },
            fetch: FetchKind::Traditional,
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        let fallback = PlanSpec::TableScan {
            table: t,
            pred: Predicate::all_of(vec![
                ColRange::at_most(0, ca),
                ColRange::at_most(1, cb),
            ]),
            project: Projection::All,
        };

        let s = Session::with_pool_pages(256);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let ctrl = BailAt { at: CheckpointKind::IntersectOut, alt: fallback.clone() };
        let (astats, arows) = execute_adaptive_collect(&chosen, &ctx, &ctrl).unwrap();
        assert_eq!(astats.switches.len(), 1);
        assert!(astats.switches[0].action.starts_with("bail -> TableScan"));

        let s2 = Session::with_pool_pages(256);
        let ctx2 = ExecCtx::new(&db, &s2, 1 << 20);
        let (fstats, frows) = execute_collect(&fallback, &ctx2).unwrap();

        let sort = |mut v: Vec<Vec<i64>>| {
            v.sort();
            v
        };
        let a = sort(arows.iter().map(|r| r.values().to_vec()).collect());
        let f = sort(frows.iter().map(|r| r.values().to_vec()).collect());
        assert_eq!(a, f);
        assert!(
            astats.exec.seconds > fstats.seconds,
            "sunk prefix must stay charged: {} vs {}",
            astats.exec.seconds,
            fstats.seconds
        );
        // The abandoned operator is recorded with zero output rows.
        assert!(astats
            .exec
            .operators
            .iter()
            .any(|op| op.label.ends_with("[abandoned]") && op.rows_out == 0));
    }

    /// A mid-flight fetch switch produces the same rows as statically
    /// planning that fetch kind, and reuses the collected rids (clock equals
    /// prefix + switched fetch, i.e. exactly the static plan with the other
    /// fetch kind).
    #[test]
    fn switch_fetch_matches_static_plan_with_that_fetch() {
        let n = 1024i64;
        let (mut db, t) = demo_db(n);
        let idx_a = db.create_index("idx_a", t, &[0]).unwrap();
        let ca = 299i64;
        let mk = |fetch: FetchKind| PlanSpec::IndexFetch {
            scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ca, 1) },
            key_filter: Predicate::always_true(),
            fetch,
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        struct FetchSwitcher;
        impl SwitchController for FetchSwitcher {
            fn decide(&self, obs: &Observation) -> SwitchDirective {
                if obs.kind == CheckpointKind::RidFeed {
                    SwitchDirective::SwitchFetch(FetchKind::BitmapSorted)
                } else {
                    SwitchDirective::Continue
                }
            }
        }
        let s = Session::with_pool_pages(256);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let planned = mk(FetchKind::Traditional);
        let (astats, arows) = execute_adaptive_collect(&planned, &ctx, &FetchSwitcher).unwrap();
        assert_eq!(astats.switches.len(), 1);

        let s2 = Session::with_pool_pages(256);
        let ctx2 = ExecCtx::new(&db, &s2, 1 << 20);
        let (sstats, srows) = execute_collect(&mk(FetchKind::BitmapSorted), &ctx2).unwrap();
        let a: Vec<Vec<i64>> = arows.iter().map(|r| r.values().to_vec()).collect();
        let b: Vec<Vec<i64>> = srows.iter().map(|r| r.values().to_vec()).collect();
        assert_eq!(a, b, "switched fetch must emit the static plan's rows in its order");
        assert_eq!(
            astats.exec.seconds.to_bits(),
            sstats.seconds.to_bits(),
            "prefix reuse: switching the fetch costs exactly the re-planned pipeline"
        );
    }
}
