//! Hash aggregation with graceful and abrupt overflow disciplines.
//!
//! The same §4 robustness story as sorting, applied to aggregation: an
//! operator whose memory-overflow behaviour is all-or-nothing shows a cost
//! cliff the moment the group count no longer fits, while a graceful
//! implementation degrades in proportion to the overflow.
//!
//! * [`SpillMode::Abrupt`] — on first overflow the whole hash table is
//!   dumped to partitions and *all* remaining input bypasses the table.
//! * [`SpillMode::Graceful`] — resident groups keep aggregating; only rows
//!   of non-resident groups spill.
//!
//! All aggregates here (count/sum/min/max) are combinable, so spilled
//! partial aggregates and raw rows can be merged on the final pass.

use std::collections::hash_map::Entry as MapEntry;
use robustmap_storage::FxHashMap;

use robustmap_storage::{AccessKind, PageId, Row, Session, PAGE_SIZE};

use crate::exec::ExecCtx;
use crate::plan::{AggFn, SpillMode};

/// Accumulator state for one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AggState {
    count: i64,
    sum: i64,
    min: i64,
    max: i64,
}

impl AggState {
    fn new() -> Self {
        AggState { count: 0, sum: 0, min: i64::MAX, max: i64::MIN }
    }

    fn update(&mut self, v: i64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Bytes one resident group is accounted as (key + per-agg state +
/// table overhead).
const GROUP_BYTES: usize = 128;
/// Rows per spill page (key + value payload).
const SPILL_ROWS_PER_PAGE: usize = PAGE_SIZE / 48;
/// Number of spill partitions.
const PARTITIONS: usize = 16;

/// A hash aggregator fed row-by-row and drained by
/// [`HashAggregator::finish`].  Output rows are `group columns ++ one value
/// per aggregate`, emitted in ascending group order (deterministic).
pub struct HashAggregator<'a, 'b> {
    ctx: &'a ExecCtx<'b>,
    group_cols: Vec<usize>,
    aggs: Vec<AggFn>,
    mode: SpillMode,
    max_groups: usize,
    table: FxHashMap<Row, Vec<AggState>>,
    /// Spilled rows, partitioned by group-key hash: `(group key, per-agg
    /// partial state)`.
    partitions: Vec<Vec<(Row, Vec<AggState>)>>,
    spill_buffered: usize,
    bypass: bool,
    input_rows: u64,
}

impl<'a, 'b> HashAggregator<'a, 'b> {
    /// A new aggregator grouping by `group_cols` and computing `aggs`.
    pub fn new(
        ctx: &'a ExecCtx<'b>,
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        mode: SpillMode,
        memory_bytes: usize,
    ) -> Self {
        HashAggregator {
            ctx,
            group_cols,
            aggs,
            mode,
            max_groups: (memory_bytes / GROUP_BYTES).max(1),
            table: FxHashMap::default(),
            partitions: vec![Vec::new(); PARTITIONS],
            spill_buffered: 0,
            bypass: false,
            input_rows: 0,
        }
    }

    /// Whether any data spilled.
    pub fn spilled(&self) -> bool {
        self.partitions.iter().any(|p| !p.is_empty()) || self.spill_buffered > 0
    }

    fn agg_inputs(&self, row: &Row) -> Vec<AggState> {
        self.aggs
            .iter()
            .map(|agg| {
                let mut st = AggState::new();
                match agg {
                    AggFn::CountStar => st.update(0),
                    AggFn::Sum(c) | AggFn::Min(c) | AggFn::Max(c) => st.update(row.get(*c)),
                }
                st
            })
            .collect()
    }

    fn update_states(states: &mut [AggState], aggs: &[AggFn], row: &Row) {
        for (st, agg) in states.iter_mut().zip(aggs) {
            match agg {
                AggFn::CountStar => st.update(0),
                AggFn::Sum(c) | AggFn::Min(c) | AggFn::Max(c) => st.update(row.get(*c)),
            }
        }
    }

    fn partition_of(key: &Row) -> usize {
        // Cheap deterministic hash over the key values.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in key.values() {
            h ^= v as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h as usize) % PARTITIONS
    }

    fn spill(&mut self, key: Row, states: Vec<AggState>) {
        let p = Self::partition_of(&key);
        self.partitions[p].push((key, states));
        self.spill_buffered += 1;
        if self.spill_buffered.is_multiple_of(SPILL_ROWS_PER_PAGE) {
            let file = self.ctx.alloc_temp_file();
            self.ctx.session.write_page(PageId::new(file, 0));
        }
        self.ctx.note_spill();
    }

    /// Accept one input row.
    pub fn push(&mut self, row: &Row) {
        self.input_rows += 1;
        let session: &Session = self.ctx.session;
        session.charge_hashes(1);
        let key = row.project(&self.group_cols);
        if self.bypass {
            // Abrupt overflow mode: everything goes straight to partitions.
            let states = self.agg_inputs(row);
            self.spill(key, states);
            return;
        }
        let have_room = self.table.len() < self.max_groups;
        match self.table.entry(key) {
            MapEntry::Occupied(mut e) => {
                Self::update_states(e.get_mut(), &self.aggs, row);
            }
            MapEntry::Vacant(v) if have_room => {
                let mut states: Vec<AggState> =
                    self.aggs.iter().map(|_| AggState::new()).collect();
                Self::update_states(&mut states, &self.aggs, row);
                v.insert(states);
            }
            MapEntry::Vacant(_) => {
                if self.mode == SpillMode::Abrupt {
                    // Dump the entire table and bypass from now on.
                    let drained: Vec<(Row, Vec<AggState>)> = self.table.drain().collect();
                    for (k, st) in drained {
                        self.spill(k, st);
                    }
                    self.bypass = true;
                }
                // Graceful: resident groups stay; this row spills alone.
                let states = self.agg_inputs(row);
                let key = row.project(&self.group_cols);
                self.spill(key, states);
            }
        }
    }

    /// Finish: merge spilled partitions and emit `group ++ aggregates`
    /// rows in ascending group order.  Returns rows emitted.
    pub fn finish(mut self, sink: &mut dyn FnMut(&Row)) -> u64 {
        let session: &Session = self.ctx.session;
        // Read back what was spilled.
        let spilled_pages = self.spill_buffered.div_ceil(SPILL_ROWS_PER_PAGE) as u32;
        if self.spill_buffered > 0 {
            let file = self.ctx.alloc_temp_file();
            for p in 0..spilled_pages {
                session.read_page(PageId::new(file, p), AccessKind::Sequential);
            }
            session.invalidate_file(file);
        }
        let mut final_groups: FxHashMap<Row, Vec<AggState>> = std::mem::take(&mut self.table);
        for part in std::mem::take(&mut self.partitions) {
            session.charge_hashes(part.len() as u64);
            for (key, states) in part {
                match final_groups.entry(key) {
                    MapEntry::Occupied(mut e) => {
                        for (a, b) in e.get_mut().iter_mut().zip(&states) {
                            a.merge(b);
                        }
                    }
                    MapEntry::Vacant(v) => {
                        v.insert(states);
                    }
                }
            }
        }
        // Deterministic output order: sort by group key.
        let mut out: Vec<(Row, Vec<AggState>)> = final_groups.into_iter().collect();
        let n = out.len() as u64;
        if n > 1 {
            session.charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
        }
        out.sort_unstable_by(|a, b| a.0.values().cmp(b.0.values()));
        for (key, states) in &out {
            let mut row = *key;
            for (st, agg) in states.iter().zip(&self.aggs) {
                row.push(match agg {
                    AggFn::CountStar => st.count,
                    AggFn::Sum(_) => st.sum,
                    AggFn::Min(_) => st.min,
                    AggFn::Max(_) => st.max,
                });
            }
            session.charge_rows(1);
            sink(&row);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecCtx;
    use crate::ops::testutil::demo_db;

    fn run_agg(
        rows: &[Row],
        group_cols: Vec<usize>,
        aggs: Vec<AggFn>,
        mode: SpillMode,
        memory: usize,
    ) -> (Vec<Vec<i64>>, robustmap_storage::IoStats, bool) {
        let (db, _) = demo_db(4);
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, memory);
        let mut agg = HashAggregator::new(&ctx, group_cols, aggs, mode, memory);
        for r in rows {
            agg.push(r);
        }
        let mut out = Vec::new();
        agg.finish(&mut |r| out.push(r.values().to_vec()));
        (out, s.stats(), ctx.spilled())
    }

    fn mod_rows(n: i64, m: i64) -> Vec<Row> {
        (0..n).map(|i| Row::from_slice(&[i % m, i])).collect()
    }

    #[test]
    fn count_sum_min_max_in_memory() {
        let rows = mod_rows(100, 4);
        let (out, io, spilled) = run_agg(
            &rows,
            vec![0],
            vec![AggFn::CountStar, AggFn::Sum(1), AggFn::Min(1), AggFn::Max(1)],
            SpillMode::Graceful,
            1 << 20,
        );
        assert!(!spilled);
        assert_eq!(io.page_writes, 0);
        assert_eq!(out.len(), 4);
        for row in out {
            let g = row[0];
            assert_eq!(row[1], 25); // count
            let members: Vec<i64> = (0..100).filter(|i| i % 4 == g).collect();
            assert_eq!(row[2], members.iter().sum::<i64>());
            assert_eq!(row[3], *members.iter().min().unwrap());
            assert_eq!(row[4], *members.iter().max().unwrap());
        }
    }

    #[test]
    fn output_is_sorted_by_group() {
        let rows = mod_rows(1000, 37);
        let (out, _, _) =
            run_agg(&rows, vec![0], vec![AggFn::CountStar], SpillMode::Graceful, 1 << 20);
        let groups: Vec<i64> = out.iter().map(|r| r[0]).collect();
        assert_eq!(groups, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn both_modes_agree_with_reference_when_spilling() {
        let rows = mod_rows(20_000, 1000);
        let reference = {
            let (out, _, spilled) =
                run_agg(&rows, vec![0], vec![AggFn::CountStar, AggFn::Sum(1)], SpillMode::Graceful, 1 << 24);
            assert!(!spilled);
            out
        };
        for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
            // Memory for only ~128 groups; 1000 distinct groups overflow.
            let (out, io, spilled) =
                run_agg(&rows, vec![0], vec![AggFn::CountStar, AggFn::Sum(1)], mode, 16 * 1024);
            assert!(spilled, "{mode:?}");
            assert!(io.page_writes > 0, "{mode:?}");
            assert_eq!(out, reference, "{mode:?}");
        }
    }

    #[test]
    fn abrupt_spills_much_more_than_graceful() {
        // Most rows belong to a few hot groups that stay resident under
        // graceful overflow; abrupt bypasses the table entirely.
        let n = 30_000i64;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                // 90% of rows hit 8 hot groups; the rest are unique-ish.
                let g = if i % 10 != 0 { i % 8 } else { 1000 + i };
                Row::from_slice(&[g, i])
            })
            .collect();
        let memory = 64 * 1024; // 512 groups resident
        let (_, io_abrupt, _) =
            run_agg(&rows, vec![0], vec![AggFn::CountStar], SpillMode::Abrupt, memory);
        let (_, io_graceful, _) =
            run_agg(&rows, vec![0], vec![AggFn::CountStar], SpillMode::Graceful, memory);
        assert!(
            io_abrupt.page_writes > 3 * io_graceful.page_writes.max(1),
            "abrupt {} vs graceful {}",
            io_abrupt.page_writes,
            io_graceful.page_writes
        );
    }

    #[test]
    fn global_aggregate_single_group() {
        let rows = mod_rows(500, 500);
        let (out, _, _) = run_agg(
            &rows,
            vec![],
            vec![AggFn::CountStar, AggFn::Min(1), AggFn::Max(1)],
            SpillMode::Graceful,
            1 << 20,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![500, 0, 499]);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let (out, _, _) =
            run_agg(&[], vec![0], vec![AggFn::CountStar], SpillMode::Abrupt, 1024);
        assert!(out.is_empty());
    }
}
