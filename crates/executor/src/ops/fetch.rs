//! Row fetch disciplines: how a plan turns rids into rows.
//!
//! Figure 1 of the paper contrasts three plans for a simple selection, and
//! the *fetch* is what separates them:
//!
//! * the **traditional index scan** fetches each qualifying row with a
//!   random page read, in key order — excellent for a handful of rows,
//!   catastrophic ("multiple orders of magnitude" worse than a table scan)
//!   for large results;
//! * the **improved index scan** first sorts the rids into physical order
//!   and then sweeps the heap front-to-back, letting sequential read-ahead
//!   absorb small gaps and short seeks absorb medium ones — low latency for
//!   small results *and* scan-like bandwidth for large ones;
//! * **System B** (Figure 8) sorts rids "very efficiently using a bitmap"
//!   and fetches in physical order, but without the read-ahead regime.
//!
//! All three really fetch every row; they differ only in visit order and in
//! the access kinds they are charged.

use robustmap_storage::heap::Rid;
use robustmap_storage::{AccessKind, HeapFile, RidBitmap, Row, Session, StorageError};

use crate::batch::{col_from_bytes, radix_sort_by_u64_key, BatchEmitter, ExecConfig, RowBatch};
use crate::exec::ExecError;
use crate::expr::Predicate;
use crate::plan::{ImprovedFetchConfig, Projection};

/// Fetch rows in the order given (key order from the index), one random
/// page read per row — the traditional index scan.
pub fn traditional(
    heap: &HeapFile,
    rids: &[Rid],
    residual: &Predicate,
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    let mut produced = 0u64;
    for &rid in rids {
        let row = heap.fetch(rid, session, AccessKind::Random)?;
        if residual.eval(&row, session) {
            let out = project.apply(&row);
            sink(&out);
            produced += 1;
        }
    }
    Ok(produced)
}

/// The improved index scan's fetch: sort rids into physical order, then
/// sweep the heap with gap-dependent access costs (see
/// [`ImprovedFetchConfig`]).
///
/// Consumes the rid list (it must be sorted in place; the caller has no
/// further use for the unsorted order).
pub fn improved(
    heap: &HeapFile,
    mut rids: Vec<Rid>,
    cfg: &ImprovedFetchConfig,
    residual: &Predicate,
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    let n = rids.len() as u64;
    if n > 0 {
        // Sort cost: n log2 n comparisons.
        session.charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
    }
    // The simulated cost above is the contract; the real sort is free to be
    // a radix sort (rids order by their u64 encoding).
    radix_sort_by_u64_key(&mut rids, |r| r.to_u64());
    fetch_in_physical_order(heap, &rids, Some(cfg), residual, project, session, sink)
}

/// System B's bitmap-sorted fetch: rids are deduplicated and ordered by a
/// bitmap (one hash-insert per rid — cheaper than a comparison sort), then
/// fetched in physical order with short seeks but no sequential read-ahead
/// regime.
pub fn bitmap_sorted(
    heap: &HeapFile,
    rids: &[Rid],
    residual: &Predicate,
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    session.charge_hashes(rids.len() as u64);
    let bitmap = RidBitmap::from_rids(rids.iter().copied());
    let ordered: Vec<Rid> = bitmap.iter_rids().collect();
    fetch_in_physical_order(heap, &ordered, None, residual, project, session, sink)
}

/// Shared physical-order sweep.  `cfg` enables the improved scan's
/// sequential read-ahead regime; `None` (bitmap fetch) uses only the short
/// seek / random distinction with the default prefetch gap.
fn fetch_in_physical_order(
    heap: &HeapFile,
    rids: &[Rid],
    cfg: Option<&ImprovedFetchConfig>,
    residual: &Predicate,
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    debug_assert!(rids.windows(2).all(|w| w[0] <= w[1]), "rids must be in physical order");
    let prefetch_gap = cfg.map_or(ImprovedFetchConfig::default().prefetch_gap, |c| c.prefetch_gap);
    let scan_gap = cfg.map(|c| c.scan_gap);
    let mut produced = 0u64;
    let mut prev_page: Option<u32> = None;
    for &rid in rids {
        match prev_page {
            Some(p) if rid.page == p => {
                // Same page: the fetch below hits the buffer pool.
            }
            Some(p) => {
                let gap = rid.page - p;
                match scan_gap {
                    Some(sg) if gap <= sg => {
                        // Read-ahead covers the gap: intervening pages are
                        // read too, all at sequential cost.
                        for skipped in p + 1..=rid.page {
                            session.read_page(heap.page_id(skipped), AccessKind::Sequential);
                        }
                    }
                    _ if gap <= prefetch_gap => {
                        session.read_page(heap.page_id(rid.page), AccessKind::SinglePage);
                    }
                    _ => {
                        session.read_page(heap.page_id(rid.page), AccessKind::Random);
                    }
                }
            }
            None => {
                // First page: a seek.
                session.read_page(heap.page_id(rid.page), AccessKind::Random);
            }
        }
        prev_page = Some(rid.page);
        let row = heap.fetch(rid, session, AccessKind::Random)?;
        if residual.eval(&row, session) {
            let out = project.apply(&row);
            sink(&out);
            produced += 1;
        }
    }
    Ok(produced)
}

/// Read one record's bytes with exactly [`HeapFile::fetch`]'s charge
/// sequence (page existence checked before any charge, then a page read of
/// `kind`, then one row charge) — but without decoding the row.  The batch
/// path evaluates residuals and gathers projections straight from these
/// bytes.
fn record_bytes<'h>(
    heap: &'h HeapFile,
    rid: Rid,
    session: &Session,
    kind: AccessKind,
) -> Result<&'h [u8], ExecError> {
    let page = heap.page(rid.page).ok_or(StorageError::InvalidRid(rid))?;
    session.read_page(heap.page_id(rid.page), kind);
    session.charge_rows(1);
    Ok(page.get(rid.slot as usize).ok_or(StorageError::InvalidRid(rid))?)
}

/// Batched twin of [`traditional`].
pub fn traditional_batched(
    heap: &HeapFile,
    rids: &[Rid],
    residual: &Predicate,
    project: &Projection,
    cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    let proj = project.resolve(heap.schema().arity());
    let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
    for &rid in rids {
        let bytes = record_bytes(heap, rid, session, AccessKind::Random)?;
        if residual.eval_values(|c| col_from_bytes(bytes, c), session) {
            emitter.push_projected_bytes(bytes, &proj, sink);
        }
    }
    emitter.flush(sink);
    Ok(emitter.produced())
}

/// Batched twin of [`improved`].
pub fn improved_batched(
    heap: &HeapFile,
    mut rids: Vec<Rid>,
    cfg: &ImprovedFetchConfig,
    residual: &Predicate,
    project: &Projection,
    exec_cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    let n = rids.len() as u64;
    if n > 0 {
        session.charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
    }
    radix_sort_by_u64_key(&mut rids, |r| r.to_u64());
    fetch_in_physical_order_batched(heap, &rids, Some(cfg), residual, project, exec_cfg, session, sink)
}

/// Batched twin of [`bitmap_sorted`].
pub fn bitmap_sorted_batched(
    heap: &HeapFile,
    rids: &[Rid],
    residual: &Predicate,
    project: &Projection,
    cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    session.charge_hashes(rids.len() as u64);
    let bitmap = RidBitmap::from_rids(rids.iter().copied());
    let ordered: Vec<Rid> = bitmap.iter_rids().collect();
    fetch_in_physical_order_batched(heap, &ordered, None, residual, project, cfg, session, sink)
}

/// Batched twin of [`fetch_in_physical_order`]: the gap-regime page reads
/// are identical, and each row fetch replays [`HeapFile::fetch`]'s charges
/// via [`record_bytes`].
#[allow(clippy::too_many_arguments)]
fn fetch_in_physical_order_batched(
    heap: &HeapFile,
    rids: &[Rid],
    cfg: Option<&ImprovedFetchConfig>,
    residual: &Predicate,
    project: &Projection,
    exec_cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    debug_assert!(rids.windows(2).all(|w| w[0] <= w[1]), "rids must be in physical order");
    let prefetch_gap = cfg.map_or(ImprovedFetchConfig::default().prefetch_gap, |c| c.prefetch_gap);
    let scan_gap = cfg.map(|c| c.scan_gap);
    let proj = project.resolve(heap.schema().arity());
    let mut emitter = BatchEmitter::new(proj.len(), exec_cfg.batch_rows);
    let mut prev_page: Option<u32> = None;
    for &rid in rids {
        match prev_page {
            Some(p) if rid.page == p => {}
            Some(p) => {
                let gap = rid.page - p;
                match scan_gap {
                    Some(sg) if gap <= sg => {
                        for skipped in p + 1..=rid.page {
                            session.read_page(heap.page_id(skipped), AccessKind::Sequential);
                        }
                    }
                    _ if gap <= prefetch_gap => {
                        session.read_page(heap.page_id(rid.page), AccessKind::SinglePage);
                    }
                    _ => {
                        session.read_page(heap.page_id(rid.page), AccessKind::Random);
                    }
                }
            }
            None => {
                session.read_page(heap.page_id(rid.page), AccessKind::Random);
            }
        }
        prev_page = Some(rid.page);
        let bytes = record_bytes(heap, rid, session, AccessKind::Random)?;
        if residual.eval_values(|c| col_from_bytes(bytes, c), session) {
            emitter.push_projected_bytes(bytes, &proj, sink);
        }
    }
    emitter.flush(sink);
    Ok(emitter.produced())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColRange;
    use crate::ops::index_scan::collect_rids;
    use crate::ops::testutil::demo_db;
    use crate::plan::KeyRange;

    /// All fetch disciplines over the same rid set: shared setup.
    fn setup(n: i64, hi: i64) -> (robustmap_storage::Database, robustmap_storage::TableId, Vec<Rid>)
    {
        let (mut db, t) = demo_db(n);
        let idx = db.create_index("idx_a", t, &[0]).unwrap();
        let s = Session::with_pool_pages(64);
        let rids = collect_rids(
            db.index(idx),
            &KeyRange::on_leading(0, hi, 1),
            &s,
            AccessKind::Sequential,
        );
        (db, t, rids)
    }

    #[test]
    fn all_disciplines_return_the_same_rows() {
        let (db, t, rids) = setup(512, 199);
        let heap = &db.table(t).heap;
        type FetchRunner<'a> = dyn Fn(&Session, &mut dyn FnMut(&Row)) -> u64 + 'a;
        let collect = |f: &FetchRunner| {
            let s = Session::with_pool_pages(64);
            let mut rows: Vec<Vec<i64>> = Vec::new();
            let n = f(&s, &mut |r: &Row| rows.push(r.values().to_vec()));
            rows.sort();
            (n, rows)
        };
        let (n1, r1) = collect(&|s, sink| {
            traditional(heap, &rids, &Predicate::always_true(), &Projection::All, s, sink).unwrap()
        });
        let (n2, r2) = collect(&|s, sink| {
            improved(
                heap,
                rids.clone(),
                &ImprovedFetchConfig::default(),
                &Predicate::always_true(),
                &Projection::All,
                s,
                sink,
            )
            .unwrap()
        });
        let (n3, r3) = collect(&|s, sink| {
            bitmap_sorted(heap, &rids, &Predicate::always_true(), &Projection::All, s, sink)
                .unwrap()
        });
        assert_eq!(n1, 200);
        assert_eq!(n1, n2);
        assert_eq!(n2, n3);
        assert_eq!(r1, r2);
        assert_eq!(r2, r3);
    }

    #[test]
    fn residual_filters_fetched_rows() {
        let (db, t, rids) = setup(512, 255);
        let heap = &db.table(t).heap;
        let s = Session::with_pool_pages(64);
        let residual = Predicate::single(ColRange::at_most(1, 127));
        let mut count = 0u64;
        let n = improved(
            heap,
            rids,
            &ImprovedFetchConfig::default(),
            &residual,
            &Projection::All,
            &s,
            &mut |_| count += 1,
        )
        .unwrap();
        assert_eq!(n, count);
        // Both predicates have selectivity 1/2 over permutations of 0..512.
        let truth = {
            let s2 = Session::with_pool_pages(0);
            let mut c = 0;
            heap.scan(&s2, |_, row| {
                if row.get(0) <= 255 && row.get(1) <= 127 {
                    c += 1;
                }
            });
            c
        };
        assert_eq!(count, truth);
    }

    #[test]
    fn traditional_pays_random_reads_per_row() {
        // 64Ki rows span ~225 heap pages; an 8-page pool cannot absorb
        // key-ordered fetches that scatter across all of them.
        let (db, t, rids) = setup(65_536, 2047);
        let heap = &db.table(t).heap;
        let s = Session::with_pool_pages(8); // tiny pool: mostly misses
        traditional(heap, &rids, &Predicate::always_true(), &Projection::All, &s, &mut |_| {})
            .unwrap();
        let stats = s.stats();
        // Key-ordered rids land on scattered pages: overwhelmingly random.
        assert!(stats.random_reads > (rids.len() as u64) / 2, "stats: {stats:?}");
    }

    #[test]
    fn improved_fetch_is_cheaper_than_traditional_at_high_selectivity() {
        let (db, t, rids) = setup(4096, 2047); // half the table
        let heap = &db.table(t).heap;
        let cost = |f: &dyn Fn(&Session)| {
            let s = Session::with_pool_pages(64);
            f(&s);
            s.elapsed()
        };
        let t_trad = cost(&|s| {
            traditional(heap, &rids, &Predicate::always_true(), &Projection::All, s, &mut |_| {})
                .unwrap();
        });
        let t_impr = cost(&|s| {
            improved(
                heap,
                rids.clone(),
                &ImprovedFetchConfig::default(),
                &Predicate::always_true(),
                &Projection::All,
                s,
                &mut |_| {},
            )
            .unwrap();
        });
        assert!(
            t_impr * 5.0 < t_trad,
            "improved {t_impr} should be much cheaper than traditional {t_trad}"
        );
    }

    #[test]
    fn improved_switches_to_sequential_when_dense() {
        let (db, t, rids) = setup(4096, 4095); // everything qualifies
        let heap = &db.table(t).heap;
        let s = Session::with_pool_pages(64);
        improved(
            heap,
            rids,
            &ImprovedFetchConfig::default(),
            &Predicate::always_true(),
            &Projection::All,
            &s,
            &mut |_| {},
        )
        .unwrap();
        let stats = s.stats();
        // Dense rid set: nearly all page reads ride the read-ahead regime.
        assert!(stats.seq_reads > stats.random_reads * 10, "stats: {stats:?}");
        assert!(stats.seq_reads > stats.single_reads * 10, "stats: {stats:?}");
    }

    #[test]
    fn bitmap_fetch_never_uses_readahead() {
        let (db, t, rids) = setup(4096, 4095);
        let heap = &db.table(t).heap;
        let s = Session::with_pool_pages(64);
        bitmap_sorted(heap, &rids, &Predicate::always_true(), &Projection::All, &s, &mut |_| {})
            .unwrap();
        let stats = s.stats();
        // Physical order, but every new page is an individual read.
        assert_eq!(stats.seq_reads, 0, "stats: {stats:?}");
        assert!(stats.single_reads > 0);
    }

    #[test]
    fn batched_fetch_disciplines_are_bit_identical() {
        let (db, t, rids) = setup(4096, 1023);
        let heap = &db.table(t).heap;
        let residual = Predicate::single(ColRange::at_most(1, 2047));
        let proj = Projection::Columns(vec![1, 0]);
        let bcfg = ExecConfig::with_batch_rows(100); // non-power-of-two
        let icfg = ImprovedFetchConfig::default();
        type RowDriver<'a> = &'a dyn Fn(&Session, &mut dyn FnMut(&Row)) -> u64;
        type BatchDriver<'a> = &'a dyn Fn(&Session, &mut dyn FnMut(&RowBatch)) -> u64;
        let row_run = |f: RowDriver| {
            let s = Session::with_pool_pages(64);
            let mut rows = Vec::new();
            let n = f(&s, &mut |r: &Row| rows.push(r.values().to_vec()));
            (n, rows, s.elapsed().to_bits(), s.stats())
        };
        let batch_run = |f: BatchDriver| {
            let s = Session::with_pool_pages(64);
            let mut rows = Vec::new();
            let n = f(&s, &mut |b: &RowBatch| {
                for i in 0..b.len() {
                    rows.push(b.row(i).values().to_vec());
                }
            });
            (n, rows, s.elapsed().to_bits(), s.stats())
        };
        // Traditional.
        assert_eq!(
            row_run(&|s, sink| traditional(heap, &rids, &residual, &proj, s, sink).unwrap()),
            batch_run(&|s, sink| {
                traditional_batched(heap, &rids, &residual, &proj, &bcfg, s, sink).unwrap()
            }),
        );
        // Improved.
        assert_eq!(
            row_run(&|s, sink| {
                improved(heap, rids.clone(), &icfg, &residual, &proj, s, sink).unwrap()
            }),
            batch_run(&|s, sink| {
                improved_batched(heap, rids.clone(), &icfg, &residual, &proj, &bcfg, s, sink)
                    .unwrap()
            }),
        );
        // Bitmap-sorted.
        assert_eq!(
            row_run(&|s, sink| bitmap_sorted(heap, &rids, &residual, &proj, s, sink).unwrap()),
            batch_run(&|s, sink| {
                bitmap_sorted_batched(heap, &rids, &residual, &proj, &bcfg, s, sink).unwrap()
            }),
        );
    }

    #[test]
    fn empty_rid_list_is_free() {
        let (db, t, _) = setup(64, 0);
        let heap = &db.table(t).heap;
        let s = Session::with_pool_pages(64);
        let n = improved(
            heap,
            Vec::new(),
            &ImprovedFetchConfig::default(),
            &Predicate::always_true(),
            &Projection::All,
            &s,
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(n, 0);
        assert_eq!(s.stats().pages_read(), 0);
    }
}
