//! Index range scans: rid-producing and covering (index-only).
//!
//! A non-clustered index scan yields `(key, rid)` entries in key order.
//! Used either to produce a rid stream for a fetch / intersection, or — when
//! the index covers the query — to answer it without touching the table at
//! all (the class of plans Systems B and C exploit in Figures 8 and 9).

use robustmap_storage::btree::Entry;
use robustmap_storage::heap::Rid;
use robustmap_storage::{AccessKind, IndexDef, Row, Session};

use crate::batch::{BatchEmitter, ExecConfig, RowBatch};
use crate::expr::Predicate;
use crate::plan::{KeyRange, Projection};

/// Scan `range` of the index and collect the qualifying rids, in key order.
/// Leaf pages are charged at `leaf_access`.
pub fn collect_rids(
    index: &IndexDef,
    range: &KeyRange,
    session: &Session,
    leaf_access: AccessKind,
) -> Vec<Rid> {
    let mut rids = Vec::new();
    index.tree.scan_range(&range.lo, &range.hi, session, leaf_access, |(_, rid)| {
        rids.push(rid);
    });
    rids
}

/// Scan `range` of the index and collect rids whose *keys* satisfy
/// `key_filter` (a predicate in key-column space).  This is how a plan
/// applies a second predicate inside a composite index before fetching
/// (System B's Figure 8 plan).
pub fn collect_rids_filtered(
    index: &IndexDef,
    range: &KeyRange,
    key_filter: &Predicate,
    session: &Session,
    leaf_access: AccessKind,
) -> Vec<Rid> {
    if key_filter.is_true() {
        return collect_rids(index, range, session, leaf_access);
    }
    let mut rids = Vec::new();
    index.tree.scan_range(&range.lo, &range.hi, session, leaf_access, |(key, rid)| {
        let row = key_row(&key);
        if key_filter.eval(&row, session) {
            rids.push(rid);
        }
    });
    rids
}

/// Scan `range` of the index and collect full `(key, rid)` entries.
pub fn collect_entries(
    index: &IndexDef,
    range: &KeyRange,
    session: &Session,
    leaf_access: AccessKind,
) -> Vec<Entry> {
    let mut entries = Vec::new();
    index.tree.scan_range(&range.lo, &range.hi, session, leaf_access, |e| entries.push(e));
    entries
}

/// Turn an index key into a row in key-column space.
#[inline]
pub fn key_row(key: &robustmap_storage::Key) -> Row {
    Row::from_slice(key.values())
}

/// Covering (index-only) scan: emit projected key rows for entries in
/// `range` that satisfy `residual`.  Both `residual` and `project` are in
/// key-column space.  Returns rows produced.
pub fn run_covering(
    index: &IndexDef,
    range: &KeyRange,
    residual: &Predicate,
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    let mut produced = 0u64;
    index.tree.scan_range(&range.lo, &range.hi, session, AccessKind::Sequential, |(key, _)| {
        let row = key_row(&key);
        if residual.eval(&row, session) {
            let out = project.apply(&row);
            sink(&out);
            produced += 1;
        }
    });
    produced
}

/// Batched twin of [`run_covering`]: residual evaluation reads key values
/// by position (same short-circuit charges as the row path's `eval` on the
/// materialised key row) and survivors gather straight into the output
/// batch without an intermediate [`Row`].
pub fn run_covering_batched(
    index: &IndexDef,
    range: &KeyRange,
    residual: &Predicate,
    project: &Projection,
    cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> u64 {
    let proj = project.resolve(index.tree.key_arity());
    let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
    index.tree.scan_range(&range.lo, &range.hi, session, AccessKind::Sequential, |(key, _)| {
        if residual.eval_values(|c| key.get(c), session) {
            emitter.push_projected_slice(key.values(), &proj, sink);
        }
    });
    emitter.flush(sink);
    emitter.produced()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColRange;
    use crate::ops::testutil::demo_db;

    #[test]
    fn collect_rids_matches_predicate_count() {
        let (mut db, t) = demo_db(512);
        let idx = db.create_index("idx_a", t, &[0]).unwrap();
        let s = Session::with_pool_pages(64);
        let range = KeyRange::on_leading(0, 99, 1);
        let rids = collect_rids(db.index(idx), &range, &s, AccessKind::Sequential);
        assert_eq!(rids.len(), 100);
        // Every rid's row really satisfies the range.
        for rid in rids {
            let row = db.table(t).heap.fetch(rid, &s, AccessKind::Random).unwrap();
            assert!(row.get(0) <= 99);
        }
    }

    #[test]
    fn collect_entries_in_key_order() {
        let (mut db, t) = demo_db(256);
        let idx = db.create_index("idx_b", t, &[1]).unwrap();
        let s = Session::with_pool_pages(64);
        let entries =
            collect_entries(db.index(idx), &KeyRange::full(1), &s, AccessKind::Sequential);
        assert_eq!(entries.len(), 256);
        assert!(entries.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn covering_scan_projects_key_columns() {
        let (mut db, t) = demo_db(128);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let s = Session::with_pool_pages(64);
        let mut rows = Vec::new();
        // Key space: position 0 = a, position 1 = b.  Keep a <= 9, emit b.
        let n = run_covering(
            db.index(idx),
            &KeyRange::on_leading(0, 9, 2),
            &Predicate::always_true(),
            &Projection::Columns(vec![1]),
            &s,
            &mut |r| rows.push(r.get(0)),
        );
        assert_eq!(n, 10);
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn covering_scan_residual_in_key_space() {
        let (mut db, t) = demo_db(128);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let s = Session::with_pool_pages(64);
        let mut count = 0u64;
        // a <= 63 via the range, b <= 31 via the residual (key position 1).
        run_covering(
            db.index(idx),
            &KeyRange::on_leading(0, 63, 2),
            &Predicate::single(ColRange::at_most(1, 31)),
            &Projection::All,
            &s,
            &mut |_| count += 1,
        );
        // Independent-ish permutations: count must equal the true count.
        let truth = {
            let s2 = Session::with_pool_pages(0);
            let mut n = 0;
            db.table(t).heap.scan(&s2, |_, row| {
                if row.get(0) <= 63 && row.get(1) <= 31 {
                    n += 1;
                }
            });
            n
        };
        assert_eq!(count, truth);
    }

    #[test]
    fn index_scan_cost_scales_with_range_not_table() {
        let (mut db, t) = demo_db(4096);
        let idx = db.create_index("idx_a", t, &[0]).unwrap();
        let narrow = {
            let s = Session::with_pool_pages(64);
            collect_rids(db.index(idx), &KeyRange::on_leading(0, 15, 1), &s, AccessKind::Sequential);
            s.stats().pages_read()
        };
        let wide = {
            let s = Session::with_pool_pages(64);
            collect_rids(db.index(idx), &KeyRange::full(1), &s, AccessKind::Sequential);
            s.stats().pages_read()
        };
        assert!(narrow < wide, "narrow {narrow} vs wide {wide}");
    }
}
