//! General equi-joins between row streams: sort-merge and hybrid hash.
//!
//! The paper's future work (§4) extends robustness maps to "additional
//! query execution algorithms including sort, aggregation, join algorithms,
//! and join order", and its §3.2 discussion leans on the authors' earlier
//! *Sort versus Hash Revisited* (\[GLS94\]) — symmetric merge joins versus
//! asymmetric hash joins with build-side memory cliffs.  This module
//! provides both algorithms over arbitrary child plans so those maps can be
//! drawn:
//!
//! * [`sort_merge_join`] — external-sorts both inputs (graceful spill) and
//!   merges, handling many-to-many keys; cost is symmetric in the inputs;
//! * [`hash_join`] — builds on one side, probes with the other; spills by
//!   grace partitioning when the build side exceeds the memory grant.
//!
//! Output rows are `left columns ++ right columns` (within the global
//! [`robustmap_storage::MAX_COLUMNS`] limit); callers project children
//! accordingly.

use robustmap_storage::{AccessKind, FxBuildHasher, FxHashMap, PageId, Row, PAGE_SIZE};

use crate::exec::{ExecCtx, ExecError};
use crate::ops::sort::ExternalSorter;
use crate::plan::SpillMode;

fn combined(left: &Row, right: &Row) -> Row {
    let mut out = *left;
    for &v in right.values() {
        out.push(v);
    }
    out
}

/// Sort-merge join of two materialised inputs on single key columns.
/// Symmetric: swapping the inputs (and keys) gives the same cost.
pub fn sort_merge_join(
    left: Vec<Row>,
    right: Vec<Row>,
    left_key: usize,
    right_key: usize,
    memory_bytes: usize,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    // Each input gets half the grant, as a memory-broker would split it.
    let half = (memory_bytes / 2).max(1);
    let sort = |rows: Vec<Row>, key: usize| -> Vec<Row> {
        let mut sorter = ExternalSorter::new(ctx, vec![key], SpillMode::Graceful, half);
        for r in &rows {
            sorter.push(r);
        }
        let mut out = Vec::with_capacity(rows.len());
        sorter.finish(&mut |r| out.push(*r));
        out
    };
    let left = sort(left, left_key);
    let right = sort(right, right_key);

    let session = ctx.session;
    let mut produced = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    let mut compares = 0u64;
    while i < left.len() && j < right.len() {
        compares += 1;
        let lk = left[i].get(left_key);
        let rk = right[j].get(right_key);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of the two equal-key groups.
                let j_group_end = {
                    let mut e = j;
                    while e < right.len() && right[e].get(right_key) == rk {
                        e += 1;
                    }
                    e
                };
                while i < left.len() && left[i].get(left_key) == lk {
                    for r in &right[j..j_group_end] {
                        session.charge_rows(1);
                        let row = combined(&left[i], r);
                        sink(&row);
                        produced += 1;
                    }
                    i += 1;
                }
                j = j_group_end;
            }
        }
    }
    session.charge_compares(compares);
    Ok(produced)
}

/// Hybrid hash join: build a table on `build`, probe with `probe`.
/// Asymmetric: the build side determines memory behaviour, and building
/// costs roughly twice per row what probing does.  When the build side
/// exceeds `memory_bytes`, both inputs are grace-partitioned to temp files
/// (charged as page writes + reads) and joined partition by partition.
///
/// `swap_output`: emit `probe ++ build` columns instead (used when the
/// physical build side is the plan's right input but output order must
/// stay `left ++ right`).
#[allow(clippy::too_many_arguments)]
pub fn hash_join(
    build: Vec<Row>,
    probe: Vec<Row>,
    build_key: usize,
    probe_key: usize,
    memory_bytes: usize,
    swap_output: bool,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    let session = ctx.session;
    let row_bytes = |r: &Row| r.arity() * 8 + 16;
    let build_bytes: usize = build.iter().map(row_bytes).sum::<usize>() * 2;
    if build_bytes <= memory_bytes || build.is_empty() {
        return Ok(hash_join_in_memory(&build, &probe, build_key, probe_key, swap_output, ctx, sink));
    }
    // Grace partitioning: hash both sides to partitions, write + read both.
    ctx.note_spill();
    let partitions = (build_bytes / memory_bytes.max(1) + 1).next_power_of_two();
    session.charge_hashes((build.len() + probe.len()) as u64);
    let mut build_parts: Vec<Vec<Row>> = vec![Vec::new(); partitions];
    let mut probe_parts: Vec<Vec<Row>> = vec![Vec::new(); partitions];
    let hash = |v: i64| (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) as usize;
    for r in build {
        build_parts[hash(r.get(build_key)) & (partitions - 1)].push(r);
    }
    for r in probe {
        probe_parts[hash(r.get(probe_key)) & (partitions - 1)].push(r);
    }
    for part in build_parts.iter().chain(probe_parts.iter()) {
        let bytes: usize = part.iter().map(row_bytes).sum();
        let pages = bytes.div_ceil(PAGE_SIZE) as u32;
        let file = ctx.alloc_temp_file();
        for p in 0..pages {
            session.write_page(PageId::new(file, p));
        }
        for p in 0..pages {
            session.read_page(PageId::new(file, p), AccessKind::Sequential);
        }
        session.invalidate_file(file);
    }
    let mut produced = 0u64;
    for (b, p) in build_parts.into_iter().zip(probe_parts) {
        produced += hash_join_in_memory(&b, &p, build_key, probe_key, swap_output, ctx, sink);
    }
    Ok(produced)
}

fn hash_join_in_memory(
    build: &[Row],
    probe: &[Row],
    build_key: usize,
    probe_key: usize,
    swap_output: bool,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    let session = ctx.session;
    // Build costs double per row (insertion + growth), as in the rid join.
    session.charge_hashes(2 * build.len() as u64);
    // Chained layout: the map holds `(head, tail)` indices into `build` per
    // key and `next` threads same-key rows in insertion order — one shared
    // allocation instead of a `Vec` per distinct key, which matters when a
    // million-row build side has (near-)unique keys.
    const NIL: u32 = u32::MAX;
    let mut table: FxHashMap<i64, (u32, u32)> =
        FxHashMap::with_capacity_and_hasher(build.len(), FxBuildHasher::default());
    let mut next: Vec<u32> = vec![NIL; build.len()];
    for (i, r) in build.iter().enumerate() {
        match table.entry(r.get(build_key)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let tail = e.get().1;
                next[tail as usize] = i as u32;
                e.get_mut().1 = i as u32;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((i as u32, i as u32));
            }
        }
    }
    session.charge_hashes(probe.len() as u64);
    let mut produced = 0u64;
    for p in probe {
        if let Some(&(head, _)) = table.get(&p.get(probe_key)) {
            let mut idx = head;
            loop {
                let b = &build[idx as usize];
                session.charge_rows(1);
                let row = if swap_output { combined(p, b) } else { combined(b, p) };
                sink(&row);
                produced += 1;
                idx = next[idx as usize];
                if idx == NIL {
                    break;
                }
            }
        }
    }
    produced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::demo_db;

    fn rows_of(pairs: &[(i64, i64)]) -> Vec<Row> {
        pairs.iter().map(|&(k, v)| Row::from_slice(&[k, v])).collect()
    }

    fn reference_join(left: &[(i64, i64)], right: &[(i64, i64)]) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        for &(lk, lv) in left {
            for &(rk, rv) in right {
                if lk == rk {
                    out.push(vec![lk, lv, rk, rv]);
                }
            }
        }
        out.sort();
        out
    }

    fn run_all_variants(left: &[(i64, i64)], right: &[(i64, i64)], memory: usize) {
        let (db, _) = demo_db(4);
        let want = reference_join(left, right);
        // Sort-merge.
        {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            let mut got = Vec::new();
            sort_merge_join(rows_of(left), rows_of(right), 0, 0, memory, &ctx, &mut |r| {
                got.push(r.values().to_vec())
            })
            .unwrap();
            got.sort();
            assert_eq!(got, want, "sort-merge");
        }
        // Hash, both build sides.
        for (build_is_left, swap) in [(true, false), (false, true)] {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            let mut got = Vec::new();
            let (b, p) = if build_is_left {
                (rows_of(left), rows_of(right))
            } else {
                (rows_of(right), rows_of(left))
            };
            hash_join(b, p, 0, 0, memory, swap, &ctx, &mut |r| got.push(r.values().to_vec()))
                .unwrap();
            got.sort();
            assert_eq!(got, want, "hash build_left={build_is_left}");
        }
    }

    #[test]
    fn joins_match_nested_loop_reference() {
        let left: Vec<(i64, i64)> = (0..200).map(|i| (i % 37, i)).collect();
        let right: Vec<(i64, i64)> = (0..150).map(|i| (i % 23, 1000 + i)).collect();
        run_all_variants(&left, &right, 1 << 20);
    }

    #[test]
    fn joins_match_reference_when_spilling() {
        let left: Vec<(i64, i64)> = (0..3000).map(|i| (i % 97, i)).collect();
        let right: Vec<(i64, i64)> = (0..2000).map(|i| (i % 89, -i)).collect();
        run_all_variants(&left, &right, 2048); // tiny grant: everything spills
    }

    #[test]
    fn many_to_many_duplicates() {
        let left: Vec<(i64, i64)> = vec![(5, 1), (5, 2), (5, 3), (7, 4)];
        let right: Vec<(i64, i64)> = vec![(5, 10), (5, 20), (9, 30)];
        run_all_variants(&left, &right, 1 << 20);
        // 3 x 2 = 6 matches on key 5.
        assert_eq!(reference_join(&left, &right).len(), 6);
    }

    #[test]
    fn disjoint_keys_produce_nothing() {
        let left: Vec<(i64, i64)> = (0..50).map(|i| (i, i)).collect();
        let right: Vec<(i64, i64)> = (100..150).map(|i| (i, i)).collect();
        run_all_variants(&left, &right, 1 << 20);
        assert!(reference_join(&left, &right).is_empty());
    }

    #[test]
    fn empty_inputs() {
        run_all_variants(&[], &[(1, 1)], 1 << 20);
        run_all_variants(&[(1, 1)], &[], 1 << 20);
        run_all_variants(&[], &[], 1 << 20);
    }

    #[test]
    fn sort_merge_cost_is_symmetric() {
        let (db, _) = demo_db(4);
        let small: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let large: Vec<(i64, i64)> = (0..20_000).map(|i| (i, i)).collect();
        let cost = |l: &[(i64, i64)], r: &[(i64, i64)]| {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 16);
            sort_merge_join(rows_of(l), rows_of(r), 0, 0, 1 << 16, &ctx, &mut |_| {}).unwrap();
            s.elapsed()
        };
        let c1 = cost(&small, &large);
        let c2 = cost(&large, &small);
        assert!((c1 - c2).abs() / c1 < 0.01, "sort-merge asymmetric: {c1} vs {c2}");
    }

    #[test]
    fn hash_join_cost_depends_on_build_side() {
        let (db, _) = demo_db(4);
        let small: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let large: Vec<(i64, i64)> = (0..50_000).map(|i| (i, i)).collect();
        let memory = 64 * 1024; // large side does not fit; small side does
        let cost = |build: &[(i64, i64)], probe: &[(i64, i64)]| {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            hash_join(rows_of(build), rows_of(probe), 0, 0, memory, false, &ctx, &mut |_| {})
                .unwrap();
            (s.elapsed(), s.stats().page_writes)
        };
        let (small_build, w1) = cost(&small, &large);
        let (large_build, w2) = cost(&large, &small);
        assert_eq!(w1, 0, "small build must not spill");
        assert!(w2 > 0, "large build must spill");
        assert!(
            large_build > small_build * 1.5,
            "build-side cliff: {small_build} vs {large_build}"
        );
    }
}
