//! General equi-joins between row streams: sort-merge and hybrid hash.
//!
//! The paper's future work (§4) extends robustness maps to "additional
//! query execution algorithms including sort, aggregation, join algorithms,
//! and join order", and its §3.2 discussion leans on the authors' earlier
//! *Sort versus Hash Revisited* (\[GLS94\]) — symmetric merge joins versus
//! asymmetric hash joins with build-side memory cliffs.  This module
//! provides both algorithms over arbitrary child plans so those maps can be
//! drawn:
//!
//! * [`sort_merge_join`] — external-sorts both inputs (graceful spill) and
//!   merges, handling many-to-many keys; cost is symmetric in the inputs;
//! * [`hash_join`] — builds on one side, probes with the other; spills by
//!   grace partitioning when the build side exceeds the memory grant.
//!
//! Output rows are `left columns ++ right columns` (within the global
//! [`robustmap_storage::MAX_COLUMNS`] limit); callers project children
//! accordingly.

use robustmap_storage::{AccessKind, PageId, Row, PAGE_SIZE};

use crate::exec::{ExecCtx, ExecError};
use crate::ops::sort::{ExternalSorter, PackedRows};
use crate::plan::SpillMode;

fn combined(left: &[i64], right: &[i64]) -> Row {
    let mut out = Row::from_slice(left);
    for &v in right {
        out.push(v);
    }
    out
}

const NIL: u32 = u32::MAX;

/// Flat open-addressing index from an `i64` key to the head/tail of that
/// key's chain (threaded through a caller-owned `next` array).  Replaces a
/// general-purpose hash map in the join build/probe loops: linear probing
/// over parallel arrays at ≤0.5 load factor, with the key inline, turns
/// every lookup into one multiply and (almost always) one cache line.
/// Purely an in-memory structure — simulated hash charges are analytic
/// per-row counts and don't depend on the table's layout.
struct ChainTable {
    mask: usize,
    keys: Vec<i64>,
    heads: Vec<u32>,
    tails: Vec<u32>,
}

impl ChainTable {
    fn with_capacity(rows: usize) -> Self {
        let cap = (rows * 2).next_power_of_two().max(16);
        ChainTable { mask: cap - 1, keys: vec![0; cap], heads: vec![NIL; cap], tails: vec![0; cap] }
    }

    #[inline]
    fn slot(&self, key: i64) -> usize {
        ((key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask
    }

    /// Append build-row index `i` to `key`'s chain (creating it if new).
    #[inline]
    fn insert(&mut self, key: i64, i: u32, next: &mut [u32]) {
        let mut s = self.slot(key);
        loop {
            if self.heads[s] == NIL {
                self.keys[s] = key;
                self.heads[s] = i;
                self.tails[s] = i;
                return;
            }
            if self.keys[s] == key {
                next[self.tails[s] as usize] = i;
                self.tails[s] = i;
                return;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// First build-row index whose key is `key`, if any.
    #[inline]
    fn head(&self, key: i64) -> Option<u32> {
        let mut s = self.slot(key);
        loop {
            let h = self.heads[s];
            if h == NIL {
                return None;
            }
            if self.keys[s] == key {
                return Some(h);
            }
            s = (s + 1) & self.mask;
        }
    }
}

/// Sort-merge join of two materialised (packed) inputs on single key
/// columns.  Symmetric: swapping the inputs (and keys) gives the same
/// cost.
pub fn sort_merge_join(
    left: PackedRows,
    right: PackedRows,
    left_key: usize,
    right_key: usize,
    memory_bytes: usize,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    // Each input gets half the grant, as a memory-broker would split it.
    let half = (memory_bytes / 2).max(1);
    // Sorted inputs land in packed `(values, arity, rows)` buffers — the
    // merge below walks bare i64 words instead of 72-byte `Row`s.
    let sort = |rows: PackedRows, key: usize| -> (Vec<i64>, usize, usize) {
        let mut sorter = ExternalSorter::new(ctx, vec![key], SpillMode::Graceful, half);
        for i in 0..rows.len() {
            sorter.push_values(rows.row(i));
        }
        let arity = rows.arity();
        let mut vals = Vec::with_capacity(rows.len() * arity);
        let n = sorter.finish(&mut |r| vals.extend_from_slice(r.values()));
        (vals, arity, n as usize)
    };
    let (lv, la, ln) = sort(left, left_key);
    let (rv, ra, rn) = sort(right, right_key);
    let lrow = |i: usize| &lv[i * la..(i + 1) * la];
    let rrow = |j: usize| &rv[j * ra..(j + 1) * ra];

    let session = ctx.session;
    let mut produced = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    let mut compares = 0u64;
    while i < ln && j < rn {
        compares += 1;
        let lk = lrow(i)[left_key];
        let rk = rrow(j)[right_key];
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of the two equal-key groups.
                let j_group_end = {
                    let mut e = j;
                    while e < rn && rrow(e)[right_key] == rk {
                        e += 1;
                    }
                    e
                };
                while i < ln && lrow(i)[left_key] == lk {
                    for jj in j..j_group_end {
                        session.charge_rows(1);
                        let mut row = Row::from_slice(lrow(i));
                        for &v in rrow(jj) {
                            row.push(v);
                        }
                        sink(&row);
                        produced += 1;
                    }
                    i += 1;
                }
                j = j_group_end;
            }
        }
    }
    session.charge_compares(compares);
    Ok(produced)
}

/// Hybrid hash join: build a table on `build`, probe with `probe`.
/// Asymmetric: the build side determines memory behaviour, and building
/// costs roughly twice per row what probing does.  When the build side
/// exceeds `memory_bytes`, both inputs are grace-partitioned to temp files
/// (charged as page writes + reads) and joined partition by partition.
///
/// `swap_output`: emit `probe ++ build` columns instead (used when the
/// physical build side is the plan's right input but output order must
/// stay `left ++ right`).
#[allow(clippy::too_many_arguments)]
pub fn hash_join(
    build: PackedRows,
    probe: PackedRows,
    build_key: usize,
    probe_key: usize,
    memory_bytes: usize,
    swap_output: bool,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    let session = ctx.session;
    // Memory accounting stays per-`Row`-sized (arity * 8 payload + 16
    // bookkeeping), independent of the packed in-memory layout.
    let row_bytes = |arity: usize| arity * 8 + 16;
    let build_bytes: usize = build.len() * row_bytes(build.arity()) * 2;
    if build_bytes <= memory_bytes || build.is_empty() {
        return Ok(hash_join_in_memory(&build, &probe, build_key, probe_key, swap_output, ctx, sink));
    }
    // Grace partitioning: hash both sides to partitions, write + read both.
    // Partitions hold `u32` indices into the input buffers rather than row
    // copies — the charges are computed from per-partition row counts, so
    // the representation is invisible to the simulation.
    ctx.note_spill();
    let partitions = (build_bytes / memory_bytes.max(1) + 1).next_power_of_two();
    session.charge_hashes((build.len() + probe.len()) as u64);
    let mut build_parts: Vec<Vec<u32>> = vec![Vec::new(); partitions];
    let mut probe_parts: Vec<Vec<u32>> = vec![Vec::new(); partitions];
    let hash = |v: i64| (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) as usize;
    for i in 0..build.len() {
        build_parts[hash(build.row(i)[build_key]) & (partitions - 1)].push(i as u32);
    }
    for i in 0..probe.len() {
        probe_parts[hash(probe.row(i)[probe_key]) & (partitions - 1)].push(i as u32);
    }
    let part_io = |part: &[u32], rows: &PackedRows| {
        // One operator's rows all share an arity, so the partition's byte
        // total is a multiply, not a gather over the partition's rows.
        let bytes: usize =
            if part.is_empty() { 0 } else { part.len() * row_bytes(rows.arity()) };
        let pages = bytes.div_ceil(PAGE_SIZE) as u32;
        let file = ctx.alloc_temp_file();
        for p in 0..pages {
            session.write_page(PageId::new(file, p));
        }
        for p in 0..pages {
            session.read_page(PageId::new(file, p), AccessKind::Sequential);
        }
        session.invalidate_file(file);
    };
    for part in &build_parts {
        part_io(part, &build);
    }
    for part in &probe_parts {
        part_io(part, &probe);
    }
    let mut produced = 0u64;
    for (b, p) in build_parts.into_iter().zip(probe_parts) {
        produced +=
            hash_join_indexed(&build, &b, &probe, &p, build_key, probe_key, swap_output, ctx, sink);
    }
    Ok(produced)
}

/// One grace partition's in-memory join, working through index slices into
/// the original inputs (no row copies).  Charges and output are identical
/// to running [`hash_join_in_memory`] on materialised partition vectors.
#[allow(clippy::too_many_arguments)]
fn hash_join_indexed(
    build: &PackedRows,
    build_idx: &[u32],
    probe: &PackedRows,
    probe_idx: &[u32],
    build_key: usize,
    probe_key: usize,
    swap_output: bool,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    let session = ctx.session;
    session.charge_hashes(2 * build_idx.len() as u64);
    let mut table = ChainTable::with_capacity(build_idx.len());
    let mut next: Vec<u32> = vec![NIL; build_idx.len()];
    for (i, &bi) in build_idx.iter().enumerate() {
        table.insert(build.row(bi as usize)[build_key], i as u32, &mut next);
    }
    session.charge_hashes(probe_idx.len() as u64);
    let mut produced = 0u64;
    for &pi in probe_idx {
        let p = probe.row(pi as usize);
        if let Some(head) = table.head(p[probe_key]) {
            let mut idx = head;
            loop {
                let b = build.row(build_idx[idx as usize] as usize);
                session.charge_rows(1);
                let row = if swap_output { combined(p, b) } else { combined(b, p) };
                sink(&row);
                produced += 1;
                idx = next[idx as usize];
                if idx == NIL {
                    break;
                }
            }
        }
    }
    produced
}

fn hash_join_in_memory(
    build: &PackedRows,
    probe: &PackedRows,
    build_key: usize,
    probe_key: usize,
    swap_output: bool,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    let session = ctx.session;
    // Build costs double per row (insertion + growth), as in the rid join.
    session.charge_hashes(2 * build.len() as u64);
    // Chained layout: the table holds `(head, tail)` indices into `build`
    // per key and `next` threads same-key rows in insertion order — one
    // shared allocation instead of a `Vec` per distinct key, which matters
    // when a million-row build side has (near-)unique keys.
    let mut table = ChainTable::with_capacity(build.len());
    let mut next: Vec<u32> = vec![NIL; build.len()];
    for i in 0..build.len() {
        table.insert(build.row(i)[build_key], i as u32, &mut next);
    }
    session.charge_hashes(probe.len() as u64);
    let mut produced = 0u64;
    for pi in 0..probe.len() {
        let p = probe.row(pi);
        if let Some(head) = table.head(p[probe_key]) {
            let mut idx = head;
            loop {
                let b = build.row(idx as usize);
                session.charge_rows(1);
                let row = if swap_output { combined(p, b) } else { combined(b, p) };
                sink(&row);
                produced += 1;
                idx = next[idx as usize];
                if idx == NIL {
                    break;
                }
            }
        }
    }
    produced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::demo_db;

    fn rows_of(pairs: &[(i64, i64)]) -> PackedRows {
        let mut rows = PackedRows::default();
        for &(k, v) in pairs {
            rows.push(&[k, v]);
        }
        rows
    }

    fn reference_join(left: &[(i64, i64)], right: &[(i64, i64)]) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        for &(lk, lv) in left {
            for &(rk, rv) in right {
                if lk == rk {
                    out.push(vec![lk, lv, rk, rv]);
                }
            }
        }
        out.sort();
        out
    }

    fn run_all_variants(left: &[(i64, i64)], right: &[(i64, i64)], memory: usize) {
        let (db, _) = demo_db(4);
        let want = reference_join(left, right);
        // Sort-merge.
        {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            let mut got = Vec::new();
            sort_merge_join(rows_of(left), rows_of(right), 0, 0, memory, &ctx, &mut |r| {
                got.push(r.values().to_vec())
            })
            .unwrap();
            got.sort();
            assert_eq!(got, want, "sort-merge");
        }
        // Hash, both build sides.
        for (build_is_left, swap) in [(true, false), (false, true)] {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            let mut got = Vec::new();
            let (b, p) = if build_is_left {
                (rows_of(left), rows_of(right))
            } else {
                (rows_of(right), rows_of(left))
            };
            hash_join(b, p, 0, 0, memory, swap, &ctx, &mut |r| got.push(r.values().to_vec()))
                .unwrap();
            got.sort();
            assert_eq!(got, want, "hash build_left={build_is_left}");
        }
    }

    #[test]
    fn joins_match_nested_loop_reference() {
        let left: Vec<(i64, i64)> = (0..200).map(|i| (i % 37, i)).collect();
        let right: Vec<(i64, i64)> = (0..150).map(|i| (i % 23, 1000 + i)).collect();
        run_all_variants(&left, &right, 1 << 20);
    }

    #[test]
    fn joins_match_reference_when_spilling() {
        let left: Vec<(i64, i64)> = (0..3000).map(|i| (i % 97, i)).collect();
        let right: Vec<(i64, i64)> = (0..2000).map(|i| (i % 89, -i)).collect();
        run_all_variants(&left, &right, 2048); // tiny grant: everything spills
    }

    #[test]
    fn many_to_many_duplicates() {
        let left: Vec<(i64, i64)> = vec![(5, 1), (5, 2), (5, 3), (7, 4)];
        let right: Vec<(i64, i64)> = vec![(5, 10), (5, 20), (9, 30)];
        run_all_variants(&left, &right, 1 << 20);
        // 3 x 2 = 6 matches on key 5.
        assert_eq!(reference_join(&left, &right).len(), 6);
    }

    #[test]
    fn disjoint_keys_produce_nothing() {
        let left: Vec<(i64, i64)> = (0..50).map(|i| (i, i)).collect();
        let right: Vec<(i64, i64)> = (100..150).map(|i| (i, i)).collect();
        run_all_variants(&left, &right, 1 << 20);
        assert!(reference_join(&left, &right).is_empty());
    }

    #[test]
    fn empty_inputs() {
        run_all_variants(&[], &[(1, 1)], 1 << 20);
        run_all_variants(&[(1, 1)], &[], 1 << 20);
        run_all_variants(&[], &[], 1 << 20);
    }

    #[test]
    fn sort_merge_cost_is_symmetric() {
        let (db, _) = demo_db(4);
        let small: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let large: Vec<(i64, i64)> = (0..20_000).map(|i| (i, i)).collect();
        let cost = |l: &[(i64, i64)], r: &[(i64, i64)]| {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 16);
            sort_merge_join(rows_of(l), rows_of(r), 0, 0, 1 << 16, &ctx, &mut |_| {}).unwrap();
            s.elapsed()
        };
        let c1 = cost(&small, &large);
        let c2 = cost(&large, &small);
        assert!((c1 - c2).abs() / c1 < 0.01, "sort-merge asymmetric: {c1} vs {c2}");
    }

    #[test]
    fn hash_join_cost_depends_on_build_side() {
        let (db, _) = demo_db(4);
        let small: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let large: Vec<(i64, i64)> = (0..50_000).map(|i| (i, i)).collect();
        let memory = 64 * 1024; // large side does not fit; small side does
        let cost = |build: &[(i64, i64)], probe: &[(i64, i64)]| {
            let s = robustmap_storage::Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            hash_join(rows_of(build), rows_of(probe), 0, 0, memory, false, &ctx, &mut |_| {})
                .unwrap();
            (s.elapsed(), s.stats().page_writes)
        };
        let (small_build, w1) = cost(&small, &large);
        let (large_build, w2) = cost(&large, &small);
        assert_eq!(w1, 0, "small build must not spill");
        assert!(w2 > 0, "large build must spill");
        assert!(
            large_build > small_build * 1.5,
            "build-side cliff: {small_build} vs {large_build}"
        );
    }
}
