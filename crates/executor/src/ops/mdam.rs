//! Multi-dimensional B-tree access (MDAM, \[LJBY95\]).
//!
//! Figure 9 of the paper shows that a covering two-column index is "extremely
//! robust but only if fully exploited using MDAM technology".  Given
//! per-column ranges `lo_i <= col_i <= hi_i` over a composite index, MDAM
//! skips between qualifying key regions instead of scanning the whole range
//! of the leading column: whenever the cursor leaves the box, it *seeks*
//! directly to the next possible qualifying key.
//!
//! Consecutive seeks mostly land on the same or a nearby leaf, so with a
//! warm buffer pool the skip cost is small — which is exactly why the plan
//! degrades gracefully in both dimensions.

use robustmap_storage::btree::Cursor;
use robustmap_storage::{AccessKind, IndexDef, Key, Row, Session};

use crate::batch::{BatchEmitter, ExecConfig, RowBatch};
use crate::exec::ExecError;
use crate::plan::Projection;

/// Run MDAM over `index` with one inclusive `(lo, hi)` range per key
/// column.  Output rows are in key-column space, shaped by `project`.
/// Returns rows produced.
pub fn run(
    index: &IndexDef,
    col_ranges: &[(i64, i64)],
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    let mut produced = 0u64;
    run_inner(index, col_ranges, session, &mut |key| {
        let row = Row::from_slice(key.values());
        let out = project.apply(&row);
        sink(&out);
        produced += 1;
        true
    })?;
    Ok(produced)
}

/// [`run`] with an abort hook for the adaptive executor: `emit` receives
/// each qualifying key (unprojected, in key-column space) and answers
/// whether to keep scanning.  Emission is charge-free, so up to the abort
/// point the charges are bit-identical to [`run`]'s.
pub fn run_abortable(
    index: &IndexDef,
    col_ranges: &[(i64, i64)],
    session: &Session,
    emit: &mut dyn FnMut(&Key) -> bool,
) -> Result<(), ExecError> {
    run_inner(index, col_ranges, session, emit)
}

/// Batched twin of [`run`]: the identical skip/seek driver, with qualifying
/// keys gathered into output batches instead of materialised one row at a
/// time.  Emission is charge-free, so the two paths are bit-identical on
/// the simulated clock by construction.
pub fn run_batched(
    index: &IndexDef,
    col_ranges: &[(i64, i64)],
    project: &Projection,
    cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    let proj = project.resolve(index.tree.key_arity());
    let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
    run_inner(index, col_ranges, session, &mut |key| {
        emitter.push_projected_slice(key.values(), &proj, sink);
        true
    })?;
    emitter.flush(sink);
    Ok(emitter.produced())
}

/// The MDAM driver shared by the row and batch paths.  All charges happen
/// here; `emit` receives each qualifying key, must not charge, and
/// answers whether to keep scanning (`false` aborts mid-flight).
fn run_inner(
    index: &IndexDef,
    col_ranges: &[(i64, i64)],
    session: &Session,
    emit: &mut dyn FnMut(&Key) -> bool,
) -> Result<(), ExecError> {
    let arity = index.tree.key_arity();
    if col_ranges.len() != arity {
        return Err(ExecError::BadPlan(format!(
            "MDAM needs {arity} column ranges, got {}",
            col_ranges.len()
        )));
    }
    for &(lo, hi) in col_ranges {
        if lo > hi {
            return Ok(()); // empty box
        }
    }

    // How many entries to scan forward before paying a root-to-leaf seek.
    // Skipping within the current leaf is what keeps MDAM no worse than a
    // plain range scan when the leading column has few duplicates (with
    // all-distinct prefixes, every "skip" lands on the very next entry).
    const SKIP_SCAN_LIMIT: u32 = 8;

    // Start at the low corner of the box.
    let low_corner: Vec<i64> = col_ranges.iter().map(|&(lo, _)| lo).collect();
    let mut cursor = index.tree.seek(&Key::new(&low_corner), session);

    while let Some((key, _rid)) = index.tree.cursor_next(&mut cursor, session, AccessKind::Sequential)
    {
        // Find the first column that has left its range.
        let mut violation: Option<(usize, bool)> = None; // (col, below_lo)
        for (j, &(lo, hi)) in col_ranges.iter().enumerate() {
            let v = key.get(j);
            if v < lo {
                violation = Some((j, true));
                break;
            }
            if v > hi {
                violation = Some((j, false));
                break;
            }
        }
        session.charge_compares(arity as u64);

        match violation {
            None => {
                if !emit(&key) {
                    return Ok(()); // aborted by the adaptive layer
                }
            }
            Some((0, false)) => break, // leading column beyond its range: done
            Some((j, below_lo)) => {
                let target = if below_lo {
                    // Jump forward within the current prefix to the low
                    // corner of the remaining columns.
                    let mut vals: Vec<i64> = key.values()[..j].to_vec();
                    for &(lo, _) in &col_ranges[j..] {
                        vals.push(lo);
                    }
                    Key::new(&vals)
                } else {
                    // This prefix is exhausted: skip to the next distinct
                    // value of the length-j prefix.
                    Key::padded_hi(&key.values()[..j], arity)
                };
                // Hybrid skip: scan a few entries forward first — if the
                // target is nearby, re-descending from the root would cost
                // more than just walking the leaf.
                let mut probe = cursor.clone();
                let mut reached: Option<Cursor> = None;
                for _ in 0..SKIP_SCAN_LIMIT {
                    let ahead = probe.clone();
                    match index.tree.cursor_next(&mut probe, session, AccessKind::Sequential) {
                        Some((k, _)) if k >= target => {
                            reached = Some(ahead);
                            break;
                        }
                        Some(_) => {}
                        None => {
                            reached = Some(probe.clone()); // exhausted: done
                            break;
                        }
                    }
                }
                cursor = match reached {
                    Some(c) => c,
                    None => index.tree.seek(&target, session),
                };
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::demo_db;
    use robustmap_storage::Database;
    use robustmap_storage::TableId;

    fn reference_count(db: &Database, t: TableId, ranges: &[(usize, i64, i64)]) -> u64 {
        let s = Session::with_pool_pages(0);
        let mut n = 0;
        db.table(t).heap.scan(&s, |_, row| {
            if ranges.iter().all(|&(c, lo, hi)| {
                let v = row.get(c);
                lo <= v && v <= hi
            }) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn mdam_equals_filtered_scan_two_columns() {
        let (mut db, t) = demo_db(1024);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let s = Session::with_pool_pages(256);
        for (alo, ahi, blo, bhi) in
            [(0, 1023, 0, 1023), (100, 199, 0, 1023), (0, 1023, 50, 59), (100, 400, 200, 300), (7, 7, 0, 1023)]
        {
            let mut count = 0u64;
            let n = run(
                db.index(idx),
                &[(alo, ahi), (blo, bhi)],
                &Projection::All,
                &s,
                &mut |_| count += 1,
            )
            .unwrap();
            let want = reference_count(&db, t, &[(0, alo, ahi), (1, blo, bhi)]);
            assert_eq!(n, want, "box a[{alo},{ahi}] b[{blo},{bhi}]");
            assert_eq!(count, want);
        }
    }

    #[test]
    fn mdam_empty_box_is_free() {
        let (mut db, t) = demo_db(64);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let s = Session::with_pool_pages(64);
        let n = run(db.index(idx), &[(10, 5), (0, 63)], &Projection::All, &s, &mut |_| {
            panic!("no rows expected")
        })
        .unwrap();
        assert_eq!(n, 0);
        assert_eq!(s.stats().pages_read(), 0);
    }

    #[test]
    fn mdam_wrong_range_count_is_an_error() {
        let (mut db, t) = demo_db(16);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let s = Session::with_pool_pages(64);
        assert!(run(db.index(idx), &[(0, 10)], &Projection::All, &s, &mut |_| {}).is_err());
    }

    #[test]
    fn mdam_skips_rather_than_scans_when_second_column_is_selective() {
        // Leading column with few distinct values (the regime MDAM is built
        // for): 16 distinct `a` values, `b` a permutation within the table.
        let mut db = Database::new();
        let schema = robustmap_storage::Schema::new(vec![
            ("a", robustmap_storage::ColumnType::Int),
            ("b", robustmap_storage::ColumnType::Int),
        ]);
        let t = db.create_table("lowcard", schema);
        let n = 8192i64;
        for i in 0..n {
            db.insert_row(
                t,
                &robustmap_storage::Row::from_slice(&[i % 16, (i * 7919) % n]),
            )
            .unwrap();
        }
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        // Wide leading range, tiny second range: MDAM should touch far
        // fewer entries than the 8192 the leading range contains.
        let s = Session::with_pool_pages(1024);
        let mut count = 0u64;
        run(db.index(idx), &[(0, 15), (0, 63)], &Projection::All, &s, &mut |_| count += 1)
            .unwrap();
        let want = reference_count(&db, t, &[(0, 0, 15), (1, 0, 63)]);
        assert_eq!(count, want);
        assert_eq!(count, 64); // b is a permutation: exactly 64 rows qualify
        // Entry touches (cpu_rows) stay far below a full covering range
        // scan; MDAM visits ~one probe entry per distinct leading value
        // plus the qualifying entries themselves.
        assert!(
            s.stats().cpu_rows < n as u64 / 8,
            "MDAM touched {} entries",
            s.stats().cpu_rows
        );
    }

    #[test]
    fn mdam_three_columns() {
        let mut db = Database::new();
        let schema = robustmap_storage::Schema::new(vec![
            ("x", robustmap_storage::ColumnType::Int),
            ("y", robustmap_storage::ColumnType::Int),
            ("z", robustmap_storage::ColumnType::Int),
        ]);
        let t = db.create_table("t3", schema);
        for i in 0..1000i64 {
            db.insert_row(
                t,
                &robustmap_storage::Row::from_slice(&[i % 10, (i / 10) % 10, i % 97]),
            )
            .unwrap();
        }
        let idx = db.create_index("idx_xyz", t, &[0, 1, 2]).unwrap();
        let s = Session::with_pool_pages(256);
        let mut got = 0u64;
        run(
            db.index(idx),
            &[(2, 5), (3, 8), (10, 40)],
            &Projection::All,
            &s,
            &mut |r| {
                assert!((2..=5).contains(&r.get(0)));
                assert!((3..=8).contains(&r.get(1)));
                assert!((10..=40).contains(&r.get(2)));
                got += 1;
            },
        )
        .unwrap();
        let want = reference_count(&db, t, &[(0, 2, 5), (1, 3, 8), (2, 10, 40)]);
        assert_eq!(got, want);
    }
}
