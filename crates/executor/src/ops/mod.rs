//! Physical operators.
//!
//! Each operator is a plain function (or small struct) that really performs
//! its work against the storage substrate and charges every page access and
//! unit of CPU to the [`robustmap_storage::Session`].  Rows flow into
//! caller-provided sinks (`FnMut(&Row)`), so no operator materialises
//! output it does not need for its own algorithm.

pub mod adaptive;
pub mod agg;
pub mod fetch;
pub mod index_scan;
pub mod join;
pub mod mdam;
pub mod parallel_scan;
pub mod rid_join;
pub mod sort;
pub mod table_scan;

#[cfg(test)]
pub(crate) mod testutil {
    use robustmap_storage::{ColumnType, Database, Row, Schema, TableId};

    /// A small three-column table: `a` and `b` are value permutations so a
    /// predicate `col < t` has exactly `t` matches; `c = 7 * row_number`.
    ///
    /// Returns the database and the table id.  Indexes are created by the
    /// individual tests as needed.
    pub fn demo_db(n: i64) -> (Database, TableId) {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
            ("c", ColumnType::Int),
        ]);
        let t = db.create_table("demo", schema);
        for i in 0..n {
            // Multiplicative permutations of 0..n (odd multipliers are
            // invertible mod powers of two; for general n use a co-prime).
            let a = (i * 7919) % n;
            let b = (i * 104_729) % n;
            db.insert_row(t, &Row::from_slice(&[a, b, i * 7])).unwrap();
        }
        (db, t)
    }

    /// All rows of the table, in physical order, without charging anyone.
    pub fn all_rows(db: &Database, t: TableId) -> Vec<Row> {
        let s = robustmap_storage::Session::with_pool_pages(0);
        let mut rows = Vec::new();
        db.table(t).heap.scan(&s, |_, row| rows.push(*row));
        rows
    }
}
