//! Parallel table scan: the paper's next step ("visualizations of entire
//! query execution plans including parallel ones", §4).
//!
//! The heap's pages are range-partitioned across `dop` workers.  Each
//! worker really scans its partition, charged to a *private* clock; the
//! query is then charged the **critical path** (the slowest worker, plus a
//! per-worker startup cost), while all workers' I/O/CPU counters are summed
//! into the session — total work is additive, elapsed time is a makespan.
//!
//! A `skew` knob concentrates extra load on worker 0, modelling the data
//! skew the paper names among the strongest robustness factors (§3):
//! `skew = 0` is an even split, `skew = 1` serialises everything on one
//! worker (no speedup at all).

use robustmap_storage::{AccessKind, BufferPool, Row, Session, Table};

use crate::batch::{col_from_bytes, BatchEmitter, ExecConfig, RowBatch, Selection};
use crate::exec::ExecError;
use crate::expr::Predicate;
use crate::plan::Projection;

/// Run a parallel scan of `table` and push matches to `sink`.  Returns
/// rows produced.
pub fn run(
    table: &Table,
    pred: &Predicate,
    project: &Projection,
    dop: u32,
    skew: f64,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> Result<u64, ExecError> {
    if dop == 0 {
        return Err(ExecError::BadPlan("parallel scan with dop = 0".into()));
    }
    if !(0.0..=1.0).contains(&skew) {
        return Err(ExecError::BadPlan(format!("skew {skew} outside [0, 1]")));
    }
    let pages = table.heap.page_count();
    let dop = dop.min(pages.max(1));
    // Worker 0 takes its fair share plus `skew` of everything else.
    let fair = pages as f64 / dop as f64;
    let w0_pages = (fair + skew * (pages as f64 - fair)).round().min(pages as f64) as u32;
    let rest = pages - w0_pages;
    let per_rest = if dop > 1 { rest as f64 / (dop - 1) as f64 } else { 0.0 };

    let mut produced = 0u64;
    let mut makespan = 0.0f64;
    let mut start = 0u32;
    for worker in 0..dop {
        let len = if worker == 0 {
            w0_pages
        } else if worker == dop - 1 {
            pages - start // remainder-exact
        } else {
            per_rest.round() as u32
        };
        let end = (start + len).min(pages);
        // Private clock and pool share: the pool is divided among workers.
        let worker_session = Session::new(
            session.model().clone(),
            BufferPool::new(session.pool_capacity() / dop as usize, Default::default()),
        );
        table.heap.scan_pages(start..end, &worker_session, robustmap_storage::AccessKind::Sequential, |_, row| {
            if pred.eval_free(row) {
                worker_session.charge_compares(pred.terms().len().max(1) as u64);
                let out = project.apply(row);
                sink(&out);
                produced += 1;
            } else {
                worker_session.charge_compares(1);
            }
        });
        makespan = makespan.max(worker_session.elapsed());
        session.clock().add_counters(&worker_session.stats());
        start = end;
    }
    // Critical path + coordination.
    session.clock().charge(makespan);
    session.clock().charge(session.model().parallel_startup * dop as f64);
    Ok(produced)
}

/// Batched twin of [`run`]: the same worker split and private clocks, with
/// each worker's partition scanned page-at-a-time through a free selection
/// bitmap.  The per-row comparison charges (full term count on a match,
/// one on a miss) are replayed in slot order, so every worker clock — and
/// therefore the makespan — is bit-identical to the row path's.
#[allow(clippy::too_many_arguments)]
pub fn run_batched(
    table: &Table,
    pred: &Predicate,
    project: &Projection,
    dop: u32,
    skew: f64,
    cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> Result<u64, ExecError> {
    if dop == 0 {
        return Err(ExecError::BadPlan("parallel scan with dop = 0".into()));
    }
    if !(0.0..=1.0).contains(&skew) {
        return Err(ExecError::BadPlan(format!("skew {skew} outside [0, 1]")));
    }
    let heap = &table.heap;
    let pages = heap.page_count();
    let dop = dop.min(pages.max(1));
    let fair = pages as f64 / dop as f64;
    let w0_pages = (fair + skew * (pages as f64 - fair)).round().min(pages as f64) as u32;
    let rest = pages - w0_pages;
    let per_rest = if dop > 1 { rest as f64 / (dop - 1) as f64 } else { 0.0 };

    let proj = project.resolve(heap.schema().arity());
    let terms = pred.terms();
    let match_compares = terms.len().max(1) as u64;
    let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
    let mut term_cols: Vec<Vec<i64>> = vec![Vec::new(); terms.len()];
    let mut slots: Vec<u32> = Vec::new();
    let mut sel = Selection::new();
    let mut makespan = 0.0f64;
    let mut start = 0u32;
    for worker in 0..dop {
        let len = if worker == 0 {
            w0_pages
        } else if worker == dop - 1 {
            pages - start
        } else {
            per_rest.round() as u32
        };
        let end = (start + len).min(pages);
        let worker_session = Session::new(
            session.model().clone(),
            BufferPool::new(session.pool_capacity() / dop as usize, Default::default()),
        );
        for page_no in start..end {
            worker_session.read_page(heap.page_id(page_no), AccessKind::Sequential);
            let page = heap.page(page_no).expect("page number in range");
            slots.clear();
            term_cols.iter_mut().for_each(|c| c.clear());
            for (slot, bytes) in page.iter() {
                slots.push(slot as u32);
                for (col, t) in term_cols.iter_mut().zip(terms) {
                    col.push(col_from_bytes(bytes, t.col));
                }
            }
            let refs: Vec<&[i64]> = term_cols.iter().map(|c| c.as_slice()).collect();
            pred.eval_batch_free(&refs, slots.len(), &mut sel);
            for i in 0..slots.len() {
                worker_session.charge_compares(if sel.get(i) { match_compares } else { 1 });
            }
            sel.for_each_set(|i| {
                let bytes = page.get(slots[i] as usize).expect("selected slot is live");
                emitter.push_projected_bytes(bytes, &proj, sink);
            });
            worker_session.charge_rows(page.live_records() as u64);
        }
        makespan = makespan.max(worker_session.elapsed());
        session.clock().add_counters(&worker_session.stats());
        start = end;
    }
    session.clock().charge(makespan);
    session.clock().charge(session.model().parallel_startup * dop as f64);
    emitter.flush(sink);
    Ok(emitter.produced())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColRange;
    use crate::ops::testutil::{all_rows, demo_db};

    #[test]
    fn parallel_scan_returns_the_same_rows_as_serial() {
        let (db, t) = demo_db(3000);
        let want = all_rows(&db, t).len();
        for dop in [1, 2, 4, 16] {
            let s = Session::with_pool_pages(64);
            let mut rows = Vec::new();
            let n = run(
                db.table(t),
                &Predicate::always_true(),
                &Projection::All,
                dop,
                0.0,
                &s,
                &mut |r| rows.push(*r),
            )
            .unwrap();
            assert_eq!(n as usize, want, "dop {dop}");
            assert_eq!(rows.len(), want);
        }
    }

    #[test]
    fn speedup_approaches_dop_without_skew() {
        // Enough pages that per-worker startup (0.5 ms) is negligible.
        let (db, t) = demo_db(300_000);
        let elapsed = |dop| {
            let s = Session::with_pool_pages(64);
            run(db.table(t), &Predicate::always_true(), &Projection::All, dop, 0.0, &s, &mut |_| {})
                .unwrap();
            s.elapsed()
        };
        let t1 = elapsed(1);
        let t4 = elapsed(4);
        let speedup = t1 / t4;
        assert!((3.2..=4.2).contains(&speedup), "speedup {speedup:.2} at dop 4");
    }

    #[test]
    fn full_skew_eliminates_speedup() {
        let (db, t) = demo_db(300_000);
        let elapsed = |dop, skew| {
            let s = Session::with_pool_pages(64);
            run(db.table(t), &Predicate::always_true(), &Projection::All, dop, skew, &s, &mut |_| {})
                .unwrap();
            s.elapsed()
        };
        let serial = elapsed(1, 0.0);
        let skewed = elapsed(8, 1.0);
        // Worker 0 does everything: no faster than serial (plus startup).
        assert!(skewed >= serial, "skewed {skewed} vs serial {serial}");
        let even = elapsed(8, 0.0);
        assert!(even * 3.0 < skewed, "even {even} should be much faster than skewed {skewed}");
    }

    #[test]
    fn total_io_counters_are_preserved() {
        let (db, t) = demo_db(10_000);
        let pages_serial = {
            let s = Session::with_pool_pages(0);
            run(db.table(t), &Predicate::always_true(), &Projection::All, 1, 0.0, &s, &mut |_| {})
                .unwrap();
            s.stats().pages_read()
        };
        let pages_parallel = {
            let s = Session::with_pool_pages(0);
            run(db.table(t), &Predicate::always_true(), &Projection::All, 8, 0.0, &s, &mut |_| {})
                .unwrap();
            s.stats().pages_read()
        };
        // Work is conserved: the same pages get read, just concurrently.
        assert_eq!(pages_serial, pages_parallel);
    }

    #[test]
    fn predicate_applies_in_parallel() {
        let (db, t) = demo_db(2048);
        let s = Session::with_pool_pages(64);
        let mut count = 0u64;
        run(
            db.table(t),
            &Predicate::single(ColRange::at_most(0, 511)),
            &Projection::All,
            4,
            0.25,
            &s,
            &mut |_| count += 1,
        )
        .unwrap();
        assert_eq!(count, 512); // a is a permutation of 0..2048
    }

    #[test]
    fn zero_dop_is_rejected() {
        let (db, t) = demo_db(16);
        let s = Session::with_pool_pages(4);
        assert!(run(db.table(t), &Predicate::always_true(), &Projection::All, 0, 0.0, &s, &mut |_| {})
            .is_err());
        assert!(run(db.table(t), &Predicate::always_true(), &Projection::All, 2, 1.5, &s, &mut |_| {})
            .is_err());
    }
}
