//! Rid joins: index intersection and covering rid-to-rid joins.
//!
//! The paper's System A answers the two-predicate selection with "scans of
//! two single-column non-clustered indexes combined by a merge join"
//! (Figure 5) or a hash join, in either join order — four multi-index plans.
//! Figure 2 adds *covering* rid joins: joining two non-clustered indexes on
//! rid "such that the join result covers the query even if no single
//! non-clustered index does".
//!
//! The merge variant sorts both rid lists and merges — symmetric in its two
//! inputs, which is exactly the symmetry Figure 5 shows.  The hash variant
//! builds on one side and probes with the other — asymmetric, as the paper
//! (citing \[GLS94\]) points out.

use robustmap_storage::btree::Entry;
use robustmap_storage::heap::Rid;
use robustmap_storage::{FxBuildHasher, FxHashMap, FxHashSet, Row, Session};

use crate::exec::ExecCtx;
use crate::plan::IntersectAlgo;

/// Charge a comparison sort of `n` items.
fn charge_sort(session: &Session, n: u64) {
    if n > 1 {
        session.charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
    }
}

/// Intersect two rid lists with the given algorithm.  The result is sorted
/// in physical order for the merge variant (a free by-product that benefits
/// a downstream fetch) and in probe order for the hash variant.
pub fn intersect_rids(
    left: Vec<Rid>,
    right: Vec<Rid>,
    algo: IntersectAlgo,
    ctx: &ExecCtx<'_>,
) -> Vec<Rid> {
    match algo {
        IntersectAlgo::MergeJoin => merge_intersect(left, right, ctx.session),
        IntersectAlgo::HashJoin { build_left } => {
            if build_left {
                hash_intersect(left, right, ctx)
            } else {
                hash_intersect(right, left, ctx)
            }
        }
    }
}

/// Sort both sides, then merge.  Symmetric: cost depends on `|left| +
/// |right|`, not on which side is which.
fn merge_intersect(mut left: Vec<Rid>, mut right: Vec<Rid>, session: &Session) -> Vec<Rid> {
    charge_sort(session, left.len() as u64);
    charge_sort(session, right.len() as u64);
    // Charged as comparison sorts above; executed as radix sorts (rids
    // order by their u64 encoding).
    crate::batch::radix_sort_by_u64_key(&mut left, |r| r.to_u64());
    crate::batch::radix_sort_by_u64_key(&mut right, |r| r.to_u64());
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    let mut compares = 0u64;
    while i < left.len() && j < right.len() {
        compares += 1;
        match left[i].cmp(&right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(left[i]);
                i += 1;
                j += 1;
            }
        }
    }
    session.charge_compares(compares);
    out
}

/// Build a hash table on `build`, probe with `probe`.  If the build side
/// exceeds the query's memory grant, both sides are grace-partitioned to
/// temp files first (charged as page writes + reads).
fn hash_intersect(build: Vec<Rid>, probe: Vec<Rid>, ctx: &ExecCtx<'_>) -> Vec<Rid> {
    const RID_BYTES: usize = 8;
    // Hash tables need roughly 2x the raw data size.
    let build_bytes = build.len() * RID_BYTES * 2;
    if build_bytes <= ctx.memory_bytes || build.is_empty() {
        return hash_intersect_in_memory(&build, &probe, ctx.session);
    }
    // Grace spill: both inputs written out and read back, partition by
    // partition.  One level of partitioning suffices for the workloads here
    // (partition count is sized from the overflow factor).
    let partitions = (build_bytes / ctx.memory_bytes.max(1) + 1).next_power_of_two();
    ctx.note_spill();
    let session = ctx.session;
    let mut build_parts: Vec<Vec<Rid>> = vec![Vec::new(); partitions];
    let mut probe_parts: Vec<Vec<Rid>> = vec![Vec::new(); partitions];
    session.charge_hashes((build.len() + probe.len()) as u64);
    for rid in build {
        build_parts[(rid.to_u64() as usize) & (partitions - 1)].push(rid);
    }
    for rid in probe {
        probe_parts[(rid.to_u64() as usize) & (partitions - 1)].push(rid);
    }
    // Charge the spill I/O: every partition written and read once.
    for part in build_parts.iter().chain(probe_parts.iter()) {
        let pages = pages_for(part.len() * RID_BYTES);
        let file = ctx.alloc_temp_file();
        for p in 0..pages {
            session.write_page(robustmap_storage::PageId::new(file, p));
        }
        for p in 0..pages {
            session.read_page(
                robustmap_storage::PageId::new(file, p),
                robustmap_storage::AccessKind::Sequential,
            );
        }
        session.invalidate_file(file);
    }
    let mut out = Vec::new();
    for (b, p) in build_parts.into_iter().zip(probe_parts) {
        out.extend(hash_intersect_in_memory(&b, &p, session));
    }
    out
}

fn hash_intersect_in_memory(build: &[Rid], probe: &[Rid], session: &Session) -> Vec<Rid> {
    // Building costs twice what probing does (bucket insertion and table
    // growth vs. a lookup): this is the cost asymmetry between the two
    // join orders that the paper (citing [GLS94]) contrasts with the merge
    // join's symmetry.
    session.charge_hashes(2 * build.len() as u64);
    let mut set: FxHashSet<Rid> =
        FxHashSet::with_capacity_and_hasher(build.len(), FxBuildHasher::default());
    set.extend(build.iter().copied());
    session.charge_hashes(probe.len() as u64);
    probe.iter().copied().filter(|r| set.contains(r)).collect()
}

/// Join two covering index scans on rid, producing rows `left key columns
/// ++ right key columns` (Figure 2's multi-index covering plans).  Both
/// inputs are `(key, rid)` entry lists in key order.
pub fn covering_join(
    left: Vec<Entry>,
    right: Vec<Entry>,
    algo: IntersectAlgo,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    match algo {
        IntersectAlgo::MergeJoin => covering_merge_join(left, right, ctx.session, sink),
        IntersectAlgo::HashJoin { build_left } => {
            if build_left {
                covering_hash_join(left, right, false, ctx, sink)
            } else {
                covering_hash_join(right, left, true, ctx, sink)
            }
        }
    }
}

fn combined_row(left_key: &robustmap_storage::Key, right_key: &robustmap_storage::Key) -> Row {
    let mut row = Row::empty();
    for &v in left_key.values() {
        row.push(v);
    }
    for &v in right_key.values() {
        row.push(v);
    }
    row
}

/// Sort entries by rid through light `(rid, index)` pairs: the sort moves
/// 16-byte elements instead of 40-byte entries, and rids are unique so the
/// order is exactly `sort_unstable_by_key(|(_, rid)| rid)`'s.
fn sort_entries_by_rid(entries: &mut Vec<Entry>) {
    let mut order: Vec<(u64, u32)> =
        entries.iter().enumerate().map(|(i, &(_, rid))| (rid.to_u64(), i as u32)).collect();
    crate::batch::radix_sort_by_u64_key(&mut order, |&(r, _)| r);
    *entries = order.iter().map(|&(_, i)| entries[i as usize]).collect();
}

fn covering_merge_join(
    mut left: Vec<Entry>,
    mut right: Vec<Entry>,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    charge_sort(session, left.len() as u64);
    charge_sort(session, right.len() as u64);
    sort_entries_by_rid(&mut left);
    sort_entries_by_rid(&mut right);
    let (mut i, mut j) = (0, 0);
    let mut produced = 0u64;
    let mut compares = 0u64;
    while i < left.len() && j < right.len() {
        compares += 1;
        match left[i].1.cmp(&right[j].1) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let row = combined_row(&left[i].0, &right[j].0);
                session.charge_rows(1);
                sink(&row);
                produced += 1;
                i += 1;
                j += 1;
            }
        }
    }
    session.charge_compares(compares);
    produced
}

/// `swap_output`: when the build side is physically the right input, output
/// must still be `left keys ++ right keys`.
fn covering_hash_join(
    build: Vec<Entry>,
    probe: Vec<Entry>,
    swap_output: bool,
    ctx: &ExecCtx<'_>,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    let session = ctx.session;
    const ENTRY_BYTES: usize = 32;
    if build.len() * ENTRY_BYTES * 2 > ctx.memory_bytes {
        ctx.note_spill();
        // Charged like the rid-intersect spill: both sides out and back.
        for len in [build.len(), probe.len()] {
            let pages = pages_for(len * ENTRY_BYTES);
            let file = ctx.alloc_temp_file();
            for p in 0..pages {
                session.write_page(robustmap_storage::PageId::new(file, p));
            }
            for p in 0..pages {
                session.read_page(
                    robustmap_storage::PageId::new(file, p),
                    robustmap_storage::AccessKind::Sequential,
                );
            }
            session.invalidate_file(file);
        }
    }
    // Build side pays double (see `hash_intersect_in_memory`).
    session.charge_hashes(2 * build.len() as u64);
    // The table maps packed rids to indices into `build` — 16-byte pairs
    // instead of 48-byte (rid, key) pairs, since rids are unique.
    let mut table: FxHashMap<u64, u32> =
        FxHashMap::with_capacity_and_hasher(build.len(), FxBuildHasher::default());
    for (i, &(_, rid)) in build.iter().enumerate() {
        table.insert(rid.to_u64(), i as u32);
    }
    session.charge_hashes(probe.len() as u64);
    let mut produced = 0u64;
    for (probe_key, rid) in probe {
        if let Some(&i) = table.get(&rid.to_u64()) {
            let build_key = &build[i as usize].0;
            let row = if swap_output {
                combined_row(&probe_key, build_key)
            } else {
                combined_row(build_key, &probe_key)
            };
            session.charge_rows(1);
            sink(&row);
            produced += 1;
        }
    }
    produced
}

fn pages_for(bytes: usize) -> u32 {
    (bytes.div_ceil(robustmap_storage::PAGE_SIZE)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecCtx;
    use crate::ops::testutil::demo_db;
    use robustmap_storage::Key;

    fn rid(i: u32) -> Rid {
        Rid::new(i / 64, i % 64)
    }

    fn ctx_with<'a>(
        db: &'a robustmap_storage::Database,
        session: &'a Session,
        memory: usize,
    ) -> ExecCtx<'a> {
        ExecCtx::new(db, session, memory)
    }

    #[test]
    fn merge_and_hash_agree_on_intersection() {
        let (db, _) = demo_db(8);
        let left: Vec<Rid> = (0..400).filter(|i| i % 3 == 0).map(rid).collect();
        let right: Vec<Rid> = (0..400).filter(|i| i % 5 == 0).map(rid).collect();
        let want: Vec<Rid> = (0..400).filter(|i| i % 15 == 0).map(rid).collect();

        for algo in [
            IntersectAlgo::MergeJoin,
            IntersectAlgo::HashJoin { build_left: true },
            IntersectAlgo::HashJoin { build_left: false },
        ] {
            let s = Session::with_pool_pages(64);
            let ctx = ctx_with(&db, &s, 1 << 20);
            let mut got = intersect_rids(left.clone(), right.clone(), algo, &ctx);
            got.sort_unstable();
            assert_eq!(got, want, "{algo:?}");
        }
    }

    #[test]
    fn merge_result_is_already_sorted() {
        let (db, _) = demo_db(8);
        let s = Session::with_pool_pages(64);
        let ctx = ctx_with(&db, &s, 1 << 20);
        // Deliberately unsorted inputs.
        let left: Vec<Rid> = (0..100).rev().map(rid).collect();
        let right: Vec<Rid> = (0..100).filter(|i| i % 2 == 0).map(rid).collect();
        let got = intersect_rids(left, right, IntersectAlgo::MergeJoin, &ctx);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn merge_cost_is_symmetric_hash_is_not() {
        let (db, _) = demo_db(8);
        let small: Vec<Rid> = (0..100).map(rid).collect();
        let large: Vec<Rid> = (0..200_000).map(rid).collect();
        let cost = |l: &[Rid], r: &[Rid], algo| {
            let s = Session::with_pool_pages(64);
            let ctx = ctx_with(&db, &s, 1 << 30);
            intersect_rids(l.to_vec(), r.to_vec(), algo, &ctx);
            s.elapsed()
        };
        let m_sl = cost(&small, &large, IntersectAlgo::MergeJoin);
        let m_ls = cost(&large, &small, IntersectAlgo::MergeJoin);
        assert!((m_sl - m_ls).abs() < 1e-9, "merge join must be symmetric");
        let h_build_small = cost(&small, &large, IntersectAlgo::HashJoin { build_left: true });
        let h_build_large = cost(&small, &large, IntersectAlgo::HashJoin { build_left: false });
        // Same inputs, different build side: hashing costs are identical
        // here (hash ops scale with n1+n2 either way), but the *sort* costs
        // of merge exceed both.
        assert!(h_build_small <= m_sl);
        assert!(h_build_large <= m_ls);
    }

    #[test]
    fn hash_spills_when_build_exceeds_memory() {
        let (db, _) = demo_db(8);
        let build: Vec<Rid> = (0..100_000).map(rid).collect();
        let probe: Vec<Rid> = (0..1000).map(rid).collect();
        let s = Session::with_pool_pages(64);
        let ctx = ctx_with(&db, &s, 16 * 1024); // 16 KiB grant: must spill
        let got = intersect_rids(build, probe, IntersectAlgo::HashJoin { build_left: true }, &ctx);
        assert_eq!(got.len(), 1000);
        assert!(s.stats().page_writes > 0, "expected spill writes");
        assert!(ctx.spilled(), "spill must be recorded");
    }

    #[test]
    fn covering_join_produces_combined_rows() {
        let (db, _) = demo_db(8);
        // left: (a-value, rid), right: (c-value, rid); joined on rid.
        let left: Vec<Entry> = (0..50).map(|i| (Key::single(i as i64), rid(i))).collect();
        let right: Vec<Entry> =
            (0..50).filter(|i| i % 2 == 0).map(|i| (Key::single(1000 + i as i64), rid(i))).collect();
        for algo in [
            IntersectAlgo::MergeJoin,
            IntersectAlgo::HashJoin { build_left: true },
            IntersectAlgo::HashJoin { build_left: false },
        ] {
            let s = Session::with_pool_pages(64);
            let ctx = ctx_with(&db, &s, 1 << 20);
            let mut rows: Vec<(i64, i64)> = Vec::new();
            let n = covering_join(left.clone(), right.clone(), algo, &ctx, &mut |r| {
                rows.push((r.get(0), r.get(1)))
            });
            assert_eq!(n, 25, "{algo:?}");
            rows.sort_unstable();
            // Output must always be (left key, right key) regardless of
            // build side.
            assert!(rows.iter().all(|&(a, c)| c == a + 1000), "{algo:?}: {rows:?}");
        }
    }
}
