//! External merge sort with graceful and abrupt spill modes.
//!
//! Section 4 of the paper predicts: "some implementations of sorting spill
//! their entire input to disk if the input size exceeds the memory size by
//! merely a single record.  Those sort implementations lacking graceful
//! degradation will show discontinuous execution costs."  This module
//! implements both disciplines so the discontinuity can be mapped:
//!
//! * [`SpillMode::Abrupt`] — the classic fill-and-spill sort: once the input
//!   no longer fits, *every* row (including the ones that were happily in
//!   memory) is written to sorted runs and merged back.  I/O jumps from zero
//!   to ~2N pages at `N = M + 1`.
//! * [`SpillMode::Graceful`] — replacement selection: a row only reaches
//!   disk when a new row forces it out, and whatever is still in memory at
//!   end of input is merged directly from memory.  I/O grows continuously
//!   as `~2(N - M)` pages.
//!
//! Merging honours a fan-in limit derived from the memory grant; run counts
//! beyond it trigger intermediate merge passes (more I/O), another
//! real-world robustness cliff.
//!
//! ## Internal representation
//!
//! Rows order by `(projected key columns, full row)`.  Heaps and sort
//! buffers hold light `(first key value, row handle)` pairs — 16 bytes —
//! instead of key-plus-row pairs (144 bytes): heap sifts move 9× less
//! memory, and only key ties fall back to the full comparison.
//!
//! Replacement selection keeps its window as a sorted *base* array
//! consumed by a cursor (the rows promoted when the previous run closed)
//! plus a small heap of rows that joined the current run mid-flight.  The
//! classic all-heap window does a full-depth pop per emission and a
//! re-heapify per run close; the split form makes the common emission a
//! cursor advance and the run close one bulk sort.  Both always emit the
//! minimum of the same window multiset, so run formation is identical.
//! The order relation is unchanged throughout, and simulated costs are
//! charged analytically (per-push/per-pop/per-sort formulas), so
//! measurements are bit-identical to the fat representation; only real
//! (wall clock) sweep time drops.

use robustmap_storage::{AccessKind, PageId, Row, Session, PAGE_SIZE};

use crate::exec::ExecCtx;
use crate::plan::SpillMode;

/// The full sort order: projected key columns, then the entire row (the
/// tie-break that keeps output deterministic under duplicate keys).
/// Operates on value slices, which compare exactly like `Row::values()`.
fn keyed_cmp(a: &[i64], b: &[i64], key_cols: &[usize]) -> std::cmp::Ordering {
    for &c in key_cols {
        match a[c].cmp(&b[c]) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    a.cmp(b)
}

/// Rows of one fixed arity packed end-to-end as bare `i64` words.  A
/// sorter or join sees a single operator output, so every row it holds
/// has the same arity; packing stores and moves `arity * 8` bytes per row
/// instead of a 72-byte [`Row`], which shrinks the replacement-selection
/// window (and the runs) by ~4x for typical join inputs — less cache
/// pressure and less memcpy on every emission.  Purely an in-memory
/// layout: the rows, their order, and all simulated charges are
/// unchanged.
#[derive(Debug, Default)]
pub struct PackedRows {
    vals: Vec<i64>,
    arity: usize,
    len: usize,
}

impl PackedRows {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Columns per row (0 until the first push).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Append one row; all rows must share an arity.
    pub fn push(&mut self, row: &[i64]) {
        debug_assert!(self.len == 0 || row.len() == self.arity, "mixed-arity packed rows");
        self.arity = row.len();
        self.vals.extend_from_slice(row);
        self.len += 1;
    }

    /// Row `i` as a value slice (compares like `Row::values()`).
    pub fn row(&self, i: usize) -> &[i64] {
        &self.vals[i * self.arity..(i + 1) * self.arity]
    }

    fn get(&self, i: usize) -> Option<&[i64]> {
        (i < self.len).then(|| self.row(i))
    }
}

/// A light heap/sort element: the leading key value inline (the decisive
/// comparison in almost every sift) and a handle to the full row.
#[derive(Debug, Clone, Copy)]
struct Handle {
    key0: i64,
    slot: u32,
}

/// Minimal 4-ary min-heap with an external comparator
/// (`std::collections::BinaryHeap` cannot borrow the row storage its
/// comparisons need).  Four children per node halves the sift depth of a
/// binary heap and puts all siblings on one cache line — the win that
/// matters for a replacement-selection window of tens of thousands of
/// handles.  Every pop still returns the minimum of the current multiset,
/// so for the total orders used here the pop *sequence* is independent of
/// heap arity; elements that compare equal may surface in any order, which
/// is harmless because fully-equal sort items are bit-identical rows.
fn sift_up<T: Copy>(heap: &mut [T], mut i: usize, less: &mut impl FnMut(T, T) -> bool) {
    while i > 0 {
        let parent = (i - 1) / 4;
        if less(heap[i], heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down<T: Copy>(heap: &mut [T], mut i: usize, less: &mut impl FnMut(T, T) -> bool) {
    loop {
        let first = 4 * i + 1;
        if first >= heap.len() {
            break;
        }
        let mut smallest = i;
        for c in first..(first + 4).min(heap.len()) {
            if less(heap[c], heap[smallest]) {
                smallest = c;
            }
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

fn heap_push<T: Copy>(heap: &mut Vec<T>, item: T, less: &mut impl FnMut(T, T) -> bool) {
    heap.push(item);
    let last = heap.len() - 1;
    sift_up(heap, last, less);
}

fn heap_pop<T: Copy>(heap: &mut Vec<T>, less: &mut impl FnMut(T, T) -> bool) -> Option<T> {
    if heap.is_empty() {
        return None;
    }
    let top = heap.swap_remove(0);
    sift_down(heap, 0, less);
    Some(top)
}

/// Packed row storage for the in-flight joiners of the current run:
/// stable `u32` handles, freed slots recycled.
#[derive(Default)]
struct Slab {
    rows: PackedRows,
    free: Vec<u32>,
}

impl Slab {
    fn insert(&mut self, row: &[i64]) -> u32 {
        if let Some(slot) = self.free.pop() {
            let at = slot as usize * self.rows.arity;
            self.rows.vals[at..at + row.len()].copy_from_slice(row);
            slot
        } else {
            self.rows.push(row);
            (self.rows.len() - 1) as u32
        }
    }

    /// Free `slot` and return its row (copied out into a standalone
    /// [`Row`], since the slot may be overwritten immediately).
    fn remove(&mut self, slot: u32) -> Row {
        self.free.push(slot);
        Row::from_slice(self.rows.row(slot as usize))
    }

    /// Free `slot` without copying its row out.  The caller must have
    /// already consumed the slot's contents.
    fn release(&mut self, slot: u32) {
        self.free.push(slot);
    }

    fn get(&self, slot: u32) -> &[i64] {
        self.rows.row(slot as usize)
    }
}

/// One sorted run.  `rows` is fully sorted; the first `disk_rows` of them
/// were written to (and must be read back from) the simulated disk.
#[derive(Debug, Default)]
struct SortedRun {
    rows: PackedRows,
    disk_rows: usize,
}

/// An external sorter fed row-by-row via [`ExternalSorter::push`] and
/// drained by [`ExternalSorter::finish`].
pub struct ExternalSorter<'a, 'b> {
    ctx: &'a ExecCtx<'b>,
    key_cols: Vec<usize>,
    mode: SpillMode,
    memory_rows: usize,
    rows_per_page: usize,
    input_rows: u64,
    // Abrupt state: a buffer that sorts and spills wholesale.
    buffer: PackedRows,
    // Graceful state: replacement selection.  The current run's window is
    // a sorted `base` consumed from `cursor` (rows promoted when the
    // previous run closed) plus a heap of the rows that joined the run in
    // flight; `pending` collects the next run's rows.
    base: PackedRows,
    cursor: usize,
    slab: Slab,
    current: Vec<Handle>,
    pending: PackedRows,
    // Index into `open_run` of the current run's last emitted row.
    last_out: Option<usize>,
    open_run: PackedRows,
    // Rows emitted into the open run's current (incomplete) page —
    // `open_run.len() % rows_per_page` kept incrementally so the hot
    // emit path avoids a division by a runtime divisor.
    page_fill: usize,
    runs: Vec<SortedRun>,
    spilled: bool,
}

/// Bytes a buffered row is accounted as (payload + bookkeeping).
const ROW_BYTES: usize = 80;

/// How many rows a sort holds in memory under a grant of `memory_bytes` —
/// the input size at which spilling starts.  Exposed so experiments can
/// place sweep points on either side of the spill threshold without
/// duplicating the row-accounting constant.
pub fn sort_capacity_rows(memory_bytes: usize) -> usize {
    (memory_bytes / ROW_BYTES).max(2)
}

impl<'a, 'b> ExternalSorter<'a, 'b> {
    /// A sorter ordering rows by `key_cols` under the given spill mode and
    /// memory grant.
    pub fn new(
        ctx: &'a ExecCtx<'b>,
        key_cols: Vec<usize>,
        mode: SpillMode,
        memory_bytes: usize,
    ) -> Self {
        let memory_rows = sort_capacity_rows(memory_bytes);
        ExternalSorter {
            ctx,
            key_cols,
            mode,
            memory_rows,
            rows_per_page: (PAGE_SIZE / ROW_BYTES).max(1),
            input_rows: 0,
            buffer: PackedRows::default(),
            base: PackedRows::default(),
            cursor: 0,
            slab: Slab::default(),
            current: Vec::new(),
            pending: PackedRows::default(),
            last_out: None,
            open_run: PackedRows::default(),
            page_fill: 0,
            runs: Vec::new(),
            spilled: false,
        }
    }

    /// Whether any row reached the simulated disk.
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Number of runs created so far (in-memory content not included).
    pub fn run_count(&self) -> usize {
        self.runs.len() + usize::from(!self.open_run.is_empty())
    }

    #[inline]
    fn key0(&self, row: &[i64]) -> i64 {
        row[self.key_cols[0]]
    }

    /// Sort packed `rows` by the full sort order, through light
    /// `(key0, index)` pairs so the sort moves 16-byte elements instead of
    /// full rows.
    fn sort_rows(rows: &mut PackedRows, key_cols: &[usize]) {
        let mut order: Vec<Handle> = (0..rows.len())
            .map(|i| Handle { key0: rows.row(i)[key_cols[0]], slot: i as u32 })
            .collect();
        order.sort_unstable_by(|a, b| {
            a.key0.cmp(&b.key0).then_with(|| {
                keyed_cmp(rows.row(a.slot as usize), rows.row(b.slot as usize), key_cols)
            })
        });
        let mut sorted = PackedRows::default();
        sorted.vals.reserve_exact(rows.vals.len());
        for h in &order {
            sorted.push(rows.row(h.slot as usize));
        }
        *rows = sorted;
    }

    /// Accept one input row.
    pub fn push(&mut self, row: &Row) {
        self.push_values(row.values());
    }

    /// Accept one input row as a bare value slice (same charges as
    /// [`ExternalSorter::push`]; saves the `Row` round-trip for callers
    /// that already hold packed rows).
    pub fn push_values(&mut self, row: &[i64]) {
        self.input_rows += 1;
        // Heap / buffer maintenance costs ~log2(M) comparisons per row.
        self.ctx
            .session
            .charge_compares((usize::BITS - self.memory_rows.leading_zeros()) as u64);
        match self.mode {
            SpillMode::Abrupt => {
                self.buffer.push(row);
                if self.buffer.len() >= self.memory_rows {
                    self.spill_buffer_as_run();
                }
            }
            SpillMode::Graceful => self.push_replacement_selection(row),
        }
    }

    /// Abrupt spill: sort the whole buffer and write it out as one run.
    fn spill_buffer_as_run(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.spilled = true;
        let n = self.buffer.len() as u64;
        self.ctx.session.charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
        Self::sort_rows(&mut self.buffer, &self.key_cols);
        let rows = std::mem::take(&mut self.buffer);
        self.write_run_pages(rows.len());
        self.runs.push(SortedRun { disk_rows: rows.len(), rows });
        self.ctx.note_spill();
    }

    /// `a < b` in the full sort order, for rows behind slab handles.
    fn handle_less<'s>(
        slab: &'s Slab,
        key_cols: &'s [usize],
    ) -> impl FnMut(Handle, Handle) -> bool + 's {
        move |a, b| match a.key0.cmp(&b.key0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                keyed_cmp(slab.get(a.slot), slab.get(b.slot), key_cols)
                    == std::cmp::Ordering::Less
            }
        }
    }

    fn row_less(&self, a: &[i64], b: &[i64]) -> bool {
        keyed_cmp(a, b, &self.key_cols) == std::cmp::Ordering::Less
    }

    /// Insert `row` into the current run's joiner heap (slab + handle in
    /// one step).
    fn push_current(&mut self, row: &[i64]) {
        let handle = Handle { key0: self.key0(row), slot: self.slab.insert(row) };
        let mut less = Self::handle_less(&self.slab, &self.key_cols);
        heap_push(&mut self.current, handle, &mut less);
    }

    /// Rows currently in the replacement-selection window: the unconsumed
    /// sorted base plus the in-flight joiners.
    fn window_len(&self) -> usize {
        (self.base.len() - self.cursor) + self.current.len()
    }

    /// Whether the window minimum sits in the joiner heap (vs the base
    /// head), or `None` if the window is empty.  A tie between the two
    /// means bit-identical rows, so either side may win.
    fn window_min_in_heap(&self) -> Option<bool> {
        match (self.base.get(self.cursor), self.current.first()) {
            (None, None) => None,
            (Some(_), None) => Some(false),
            (None, Some(_)) => Some(true),
            (Some(b), Some(&h)) => Some(match h.key0.cmp(&self.key0(b)) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => {
                    keyed_cmp(self.slab.get(h.slot), b, &self.key_cols)
                        == std::cmp::Ordering::Less
                }
            }),
        }
    }

    /// Remove and return the minimum of the window (base head vs joiner
    /// heap top).
    fn take_window_min(&mut self) -> Option<Row> {
        let take_heap = self.window_min_in_heap()?;
        if take_heap {
            let top = {
                let mut less = Self::handle_less(&self.slab, &self.key_cols);
                heap_pop(&mut self.current, &mut less).expect("heap checked non-empty")
            };
            Some(self.slab.remove(top.slot))
        } else {
            let row = Row::from_slice(self.base.row(self.cursor));
            self.cursor += 1;
            Some(row)
        }
    }

    /// Remove the window minimum and append it straight to the open run
    /// (no intermediate [`Row`]), charging any completed page.  Returns
    /// the emitted row's index in the open run, or `None` if the window
    /// was empty.
    fn emit_window_min(&mut self) -> Option<usize> {
        let take_heap = self.window_min_in_heap()?;
        if take_heap {
            let top = {
                let mut less = Self::handle_less(&self.slab, &self.key_cols);
                heap_pop(&mut self.current, &mut less).expect("heap checked non-empty")
            };
            self.open_run.push(self.slab.get(top.slot));
            self.slab.release(top.slot);
        } else {
            self.open_run.push(self.base.row(self.cursor));
            self.cursor += 1;
        }
        self.page_fill += 1;
        if self.page_fill == self.rows_per_page {
            self.page_fill = 0;
            self.charge_run_write(1);
        }
        Some(self.open_run.len() - 1)
    }

    /// Replacement selection.  The window is the union of `base[cursor..]`
    /// (sorted once when the run opened) and the joiner heap, so the
    /// common emission — the run's minimum is the base head — is a cursor
    /// advance instead of a full-depth heap pop, and closing a run sorts
    /// the pending rows wholesale instead of re-heapifying them one by
    /// one.  Which rows land in which run, and the order within each run,
    /// are exactly the classic algorithm's: both maintain the same window
    /// multiset and always emit its minimum.  Simulated charges are
    /// analytic per push, so they are bit-identical too.
    fn push_replacement_selection(&mut self, row: &[i64]) {
        if self.window_len() + self.pending.len() < self.memory_rows {
            // Memory not yet full: rows can always enter the current run
            // unless they sort below the run's last output.
            match self.last_out {
                Some(last) if self.row_less(row, self.open_run.row(last)) => {
                    self.pending.push(row)
                }
                _ => self.push_current(row),
            }
            return;
        }
        // Memory full: emit the current run's minimum to disk, then admit
        // the newcomer.
        self.spilled = true;
        self.ctx.note_spill();
        if let Some(min) = self.emit_window_min() {
            if self.row_less(row, self.open_run.row(min)) {
                // Newcomer starts the next run: park it.
                self.pending.push(row);
            } else {
                // Newcomer joins the current run.
                self.push_current(row);
            }
            self.last_out = Some(min);
        } else {
            // Window empty: close this run and promote the pending rows
            // to a fresh (sorted) base.
            self.close_open_run();
            let mut pending = std::mem::take(&mut self.pending);
            Self::sort_rows(&mut pending, &self.key_cols);
            self.base = pending;
            self.cursor = 0;
            self.last_out = None;
            self.push_current(row);
        }
    }

    fn close_open_run(&mut self) {
        if self.open_run.is_empty() {
            return;
        }
        // Charge the final partial page of the run.
        if self.page_fill != 0 {
            self.page_fill = 0;
            self.charge_run_write(1);
        }
        let rows = std::mem::take(&mut self.open_run);
        self.runs.push(SortedRun { disk_rows: rows.len(), rows });
    }

    fn charge_run_write(&self, pages: u32) {
        let file = self.ctx.alloc_temp_file();
        for p in 0..pages {
            self.ctx.session.write_page(PageId::new(file, p));
        }
    }

    fn write_run_pages(&self, rows: usize) {
        let pages = rows.div_ceil(self.rows_per_page) as u32;
        let file = self.ctx.alloc_temp_file();
        for p in 0..pages {
            self.ctx.session.write_page(PageId::new(file, p));
        }
    }

    /// Finish: produce the fully sorted output into `sink`.  Returns rows
    /// emitted.
    pub fn finish(mut self, sink: &mut dyn FnMut(&Row)) -> u64 {
        match self.mode {
            SpillMode::Abrupt => {
                if !self.spilled {
                    // Everything fit: a single in-memory sort, zero I/O.
                    let n = self.buffer.len() as u64;
                    if n > 1 {
                        self.ctx
                            .session
                            .charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
                    }
                    let mut buffer = std::mem::take(&mut self.buffer);
                    Self::sort_rows(&mut buffer, &self.key_cols);
                    for i in 0..buffer.len() {
                        self.ctx.session.charge_rows(1);
                        sink(&Row::from_slice(buffer.row(i)));
                    }
                    return n;
                }
                // The paper's "spill everything" pathology: the last
                // partial buffer is written out too.
                self.spill_buffer_as_run();
            }
            SpillMode::Graceful => {
                // Whatever is still in memory becomes in-memory runs that
                // merge without ever touching disk.
                self.close_graceful_tails();
            }
        }
        let runs = std::mem::take(&mut self.runs);
        self.merge_runs(runs, sink)
    }

    /// Graceful finish: the window drains as the (sorted) tail of the open
    /// run; the pending rows are a final short run.  Neither is written.
    fn close_graceful_tails(&mut self) {
        let disk_rows = self.open_run.len();
        if self.page_fill != 0 {
            self.page_fill = 0;
            self.charge_run_write(1);
        }
        let mut rows = std::mem::take(&mut self.open_run);
        while let Some(row) = self.take_window_min() {
            rows.push(row.values());
        }
        if !rows.is_empty() {
            self.runs.push(SortedRun { disk_rows, rows });
        }
        if !self.pending.is_empty() {
            let n = self.pending.len() as u64;
            self.ctx
                .session
                .charge_compares(n * (64 - (n - 1).leading_zeros()).max(1) as u64);
            let mut pending = std::mem::take(&mut self.pending);
            Self::sort_rows(&mut pending, &self.key_cols);
            self.runs.push(SortedRun { disk_rows: 0, rows: pending });
        }
    }

    /// Merge runs with a fan-in limit; extra passes rewrite the data.
    fn merge_runs(&self, mut runs: Vec<SortedRun>, sink: &mut dyn FnMut(&Row)) -> u64 {
        if runs.is_empty() {
            return 0;
        }
        let fan_in = (self.ctx.memory_bytes / PAGE_SIZE).clamp(2, 64);
        // Intermediate passes until one final merge can cover all runs.
        while runs.len() > fan_in {
            let mut next: Vec<SortedRun> = Vec::new();
            for group in runs.chunks_mut(fan_in) {
                let mut merged = PackedRows::default();
                let taken: Vec<SortedRun> = group.iter_mut().map(std::mem::take).collect();
                self.merge_group(taken, &mut |row| merged.push(row.values()));
                self.write_run_pages(merged.len());
                self.ctx.note_spill();
                next.push(SortedRun { disk_rows: merged.len(), rows: merged });
            }
            runs = next;
        }
        let mut produced = 0u64;
        self.merge_group(runs, &mut |row| {
            produced += 1;
            sink(row);
        });
        produced
    }

    /// K-way merge of sorted runs; charges the reads for each run's disk
    /// prefix and `log2(k)` comparisons per row.
    ///
    /// Heap elements pack `(key0, run, pos)`; ties fall back to the full
    /// sort order, then run index, then position — the same total order the
    /// fat-element merge used.
    fn merge_group(&self, runs: Vec<SortedRun>, sink: &mut dyn FnMut(&Row)) {
        let session: &Session = self.ctx.session;
        for run in &runs {
            let pages = run.disk_rows.div_ceil(self.rows_per_page) as u32;
            let file = self.ctx.alloc_temp_file();
            for p in 0..pages {
                session.read_page(PageId::new(file, p), AccessKind::Sequential);
            }
            session.invalidate_file(file);
        }
        let k = runs.len().max(2);
        let log_k = (usize::BITS - (k - 1).leading_zeros()) as u64;
        // (run, pos) packed into Handle.slot's 32 bits would overflow for
        // large runs, so the merge keeps its own element type.
        #[derive(Clone, Copy)]
        struct Head {
            key0: i64,
            run: u32,
            pos: u32,
        }
        let key_cols = &self.key_cols;
        let row_at = |h: Head| runs[h.run as usize].rows.row(h.pos as usize);
        let mut less = |a: Head, b: Head| {
            a.key0
                .cmp(&b.key0)
                .then_with(|| keyed_cmp(row_at(a), row_at(b), key_cols))
                .then_with(|| a.run.cmp(&b.run))
                .then_with(|| a.pos.cmp(&b.pos))
                == std::cmp::Ordering::Less
        };
        let mut heads: Vec<Head> = Vec::with_capacity(runs.len());
        for (i, run) in runs.iter().enumerate() {
            if let Some(row) = run.rows.get(0) {
                heap_push(&mut heads, Head { key0: self.key0(row), run: i as u32, pos: 0 }, &mut less);
            }
        }
        while let Some(&head) = heads.first() {
            session.charge_compares(log_k);
            session.charge_rows(1);
            sink(&Row::from_slice(row_at(head)));
            let next = head.pos as usize + 1;
            // Replace the root with the run's next row (or shrink), then
            // sift down — one sift instead of a pop + push.
            if let Some(next_row) = runs[head.run as usize].rows.get(next) {
                heads[0] = Head { key0: self.key0(next_row), run: head.run, pos: next as u32 };
            } else {
                let last = heads.len() - 1;
                heads.swap(0, last);
                heads.pop();
                if heads.is_empty() {
                    break;
                }
            }
            sift_down(&mut heads, 0, &mut less);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecCtx;
    use crate::ops::testutil::demo_db;

    fn sort_all(
        rows: &[Row],
        mode: SpillMode,
        memory_bytes: usize,
    ) -> (Vec<Vec<i64>>, robustmap_storage::IoStats, bool) {
        let (db, _) = demo_db(4);
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, memory_bytes);
        let mut sorter = ExternalSorter::new(&ctx, vec![0], mode, memory_bytes);
        for r in rows {
            sorter.push(r);
        }
        let mut out = Vec::new();
        let n = sorter.finish(&mut |r| out.push(r.values().to_vec()));
        assert_eq!(n as usize, rows.len());
        (out, s.stats(), ctx.spilled())
    }

    fn scrambled(n: i64) -> Vec<Row> {
        (0..n).map(|i| Row::from_slice(&[(i * 7919) % n, i])).collect()
    }

    #[test]
    fn in_memory_sort_is_correct_and_io_free() {
        for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
            let rows = scrambled(500);
            let (out, io, spilled) = sort_all(&rows, mode, 1 << 20);
            assert!(!spilled, "{mode:?} must not spill");
            assert_eq!(io.page_writes, 0);
            let keys: Vec<i64> = out.iter().map(|r| r[0]).collect();
            assert_eq!(keys, (0..500).collect::<Vec<_>>(), "{mode:?}");
        }
    }

    #[test]
    fn spilling_sort_is_still_correct() {
        for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
            let rows = scrambled(5000);
            let (out, io, spilled) = sort_all(&rows, mode, 8 * 1024); // ~100 rows of memory
            assert!(spilled, "{mode:?} must spill");
            assert!(io.page_writes > 0);
            let keys: Vec<i64> = out.iter().map(|r| r[0]).collect();
            assert_eq!(keys, (0..5000).collect::<Vec<_>>(), "{mode:?}");
        }
    }

    #[test]
    fn duplicate_keys_are_stable_under_full_row_tiebreak() {
        let rows: Vec<Row> =
            (0..100).map(|i| Row::from_slice(&[i % 5, 99 - i])).collect();
        let (out, _, _) = sort_all(&rows, SpillMode::Graceful, 1 << 20);
        // Sorted by key, then by the remaining column.
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn multi_column_keys_sort_lexicographically() {
        let rows: Vec<Row> =
            (0..200).map(|i| Row::from_slice(&[i % 4, (i * 13) % 17, i])).collect();
        for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
            let (db, _) = demo_db(4);
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 2048);
            let mut sorter = ExternalSorter::new(&ctx, vec![0, 1], mode, 2048);
            for r in &rows {
                sorter.push(r);
            }
            let mut out: Vec<Vec<i64>> = Vec::new();
            sorter.finish(&mut |r| out.push(vec![r.get(0), r.get(1), r.get(2)]));
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "{mode:?}");
            assert_eq!(out.len(), rows.len());
        }
    }

    #[test]
    fn abrupt_spills_everything_graceful_spills_overflow() {
        // Memory fits ~102 rows; input is just over the cliff.
        let memory = 8 * 1024;
        let m = memory / ROW_BYTES;
        let rows = scrambled(m as i64 + 8);
        let (_, io_abrupt, _) = sort_all(&rows, SpillMode::Abrupt, memory);
        let (_, io_graceful, _) = sort_all(&rows, SpillMode::Graceful, memory);
        // Abrupt wrote the entire input; graceful wrote only the overflow.
        assert!(
            io_abrupt.page_writes >= 2 * io_graceful.page_writes.max(1),
            "abrupt {} vs graceful {}",
            io_abrupt.page_writes,
            io_graceful.page_writes
        );
    }

    #[test]
    fn graceful_just_below_threshold_is_io_free() {
        let memory = 8 * 1024;
        let m = memory / ROW_BYTES;
        let rows = scrambled(m as i64 - 1);
        let (_, io, spilled) = sort_all(&rows, SpillMode::Graceful, memory);
        assert!(!spilled);
        assert_eq!(io.page_writes, 0);
    }

    #[test]
    fn replacement_selection_builds_long_runs() {
        // Random input: replacement selection's runs average ~2M, so it
        // needs roughly half as many runs as fill-and-spill.
        let memory = 8 * 1024;
        let (db, _) = demo_db(4);
        let rows = scrambled(20_000);
        let runs_of = |mode| {
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            let mut sorter = ExternalSorter::new(&ctx, vec![0], mode, memory);
            for r in &rows {
                sorter.push(r);
            }
            let rc = sorter.run_count();
            sorter.finish(&mut |_| {});
            rc
        };
        let abrupt_runs = runs_of(SpillMode::Abrupt);
        let graceful_runs = runs_of(SpillMode::Graceful);
        assert!(
            (graceful_runs as f64) < abrupt_runs as f64 * 0.75,
            "graceful {graceful_runs} vs abrupt {abrupt_runs}"
        );
    }

    #[test]
    fn empty_input() {
        let (out, io, _) = sort_all(&[], SpillMode::Abrupt, 1024);
        assert!(out.is_empty());
        assert_eq!(io.page_writes, 0);
        let (out, _, _) = sort_all(&[], SpillMode::Graceful, 1024);
        assert!(out.is_empty());
    }
}
