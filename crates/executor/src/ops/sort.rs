//! External merge sort with graceful and abrupt spill modes.
//!
//! Section 4 of the paper predicts: "some implementations of sorting spill
//! their entire input to disk if the input size exceeds the memory size by
//! merely a single record.  Those sort implementations lacking graceful
//! degradation will show discontinuous execution costs."  This module
//! implements both disciplines so the discontinuity can be mapped:
//!
//! * [`SpillMode::Abrupt`] — the classic fill-and-spill sort: once the input
//!   no longer fits, *every* row (including the ones that were happily in
//!   memory) is written to sorted runs and merged back.  I/O jumps from zero
//!   to ~2N pages at `N = M + 1`.
//! * [`SpillMode::Graceful`] — replacement selection: a row only reaches
//!   disk when a new row forces it out, and whatever is still in memory at
//!   end of input is merged directly from memory.  I/O grows continuously
//!   as `~2(N - M)` pages.
//!
//! Merging honours a fan-in limit derived from the memory grant; run counts
//! beyond it trigger intermediate merge passes (more I/O), another
//! real-world robustness cliff.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use robustmap_storage::{AccessKind, PageId, Row, Session, PAGE_SIZE};

use crate::exec::ExecCtx;
use crate::plan::SpillMode;

/// A row paired with its extracted sort key; ordered by key, then by the
/// full row for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Keyed {
    key: Row,
    row: Row,
}

impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .values()
            .cmp(other.key.values())
            .then_with(|| self.row.values().cmp(other.row.values()))
    }
}

impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One sorted run.  `rows` is fully sorted; the first `disk_rows` of them
/// were written to (and must be read back from) the simulated disk.
#[derive(Debug)]
#[derive(Default)]
struct SortedRun {
    rows: Vec<Row>,
    disk_rows: usize,
}

/// An external sorter fed row-by-row via [`ExternalSorter::push`] and
/// drained by [`ExternalSorter::finish`].
pub struct ExternalSorter<'a, 'b> {
    ctx: &'a ExecCtx<'b>,
    key_cols: Vec<usize>,
    mode: SpillMode,
    memory_rows: usize,
    rows_per_page: usize,
    input_rows: u64,
    // Abrupt state: a buffer that sorts and spills wholesale.
    buffer: Vec<Keyed>,
    // Graceful state: replacement selection with a current and a next heap.
    current: BinaryHeap<Reverse<Keyed>>,
    pending: Vec<Keyed>,
    last_out: Option<Keyed>,
    open_run: Vec<Row>,
    runs: Vec<SortedRun>,
    spilled: bool,
}

/// Bytes a buffered row is accounted as (payload + bookkeeping).
const ROW_BYTES: usize = 80;

/// How many rows a sort holds in memory under a grant of `memory_bytes` —
/// the input size at which spilling starts.  Exposed so experiments can
/// place sweep points on either side of the spill threshold without
/// duplicating the row-accounting constant.
pub fn sort_capacity_rows(memory_bytes: usize) -> usize {
    (memory_bytes / ROW_BYTES).max(2)
}

impl<'a, 'b> ExternalSorter<'a, 'b> {
    /// A sorter ordering rows by `key_cols` under the given spill mode and
    /// memory grant.
    pub fn new(
        ctx: &'a ExecCtx<'b>,
        key_cols: Vec<usize>,
        mode: SpillMode,
        memory_bytes: usize,
    ) -> Self {
        let memory_rows = sort_capacity_rows(memory_bytes);
        ExternalSorter {
            ctx,
            key_cols,
            mode,
            memory_rows,
            rows_per_page: (PAGE_SIZE / ROW_BYTES).max(1),
            input_rows: 0,
            buffer: Vec::new(),
            current: BinaryHeap::new(),
            pending: Vec::new(),
            last_out: None,
            open_run: Vec::new(),
            runs: Vec::new(),
            spilled: false,
        }
    }

    /// Whether any row reached the simulated disk.
    pub fn spilled(&self) -> bool {
        self.spilled
    }

    /// Number of runs created so far (in-memory content not included).
    pub fn run_count(&self) -> usize {
        self.runs.len() + usize::from(!self.open_run.is_empty())
    }

    fn keyed(&self, row: &Row) -> Keyed {
        Keyed { key: row.project(&self.key_cols), row: *row }
    }

    /// Accept one input row.
    pub fn push(&mut self, row: &Row) {
        self.input_rows += 1;
        let item = self.keyed(row);
        // Heap / buffer maintenance costs ~log2(M) comparisons per row.
        self.ctx
            .session
            .charge_compares((usize::BITS - self.memory_rows.leading_zeros()) as u64);
        match self.mode {
            SpillMode::Abrupt => {
                self.buffer.push(item);
                if self.buffer.len() >= self.memory_rows {
                    self.spill_buffer_as_run();
                }
            }
            SpillMode::Graceful => self.push_replacement_selection(item),
        }
    }

    /// Abrupt spill: sort the whole buffer and write it out as one run.
    fn spill_buffer_as_run(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.spilled = true;
        let n = self.buffer.len() as u64;
        self.ctx.session.charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
        self.buffer.sort_unstable();
        let rows: Vec<Row> = self.buffer.drain(..).map(|k| k.row).collect();
        self.write_run_pages(rows.len());
        self.runs.push(SortedRun { disk_rows: rows.len(), rows });
        self.ctx.note_spill();
    }

    fn push_replacement_selection(&mut self, item: Keyed) {
        if self.current.len() + self.pending.len() < self.memory_rows {
            // Memory not yet full: rows can always enter the current run's
            // heap unless they sort below the run's last output.
            match &self.last_out {
                Some(last) if item < *last => self.pending.push(item),
                _ => self.current.push(Reverse(item)),
            }
            return;
        }
        // Memory full: emit the current run's minimum to disk, then admit
        // the newcomer.
        self.spilled = true;
        self.ctx.note_spill();
        if let Some(Reverse(min)) = self.current.pop() {
            self.emit_to_open_run(&min);
            self.last_out = Some(min);
        } else {
            // Current heap empty: close this run and promote the pending
            // rows to a fresh run.
            self.close_open_run();
            self.current = std::mem::take(&mut self.pending).into_iter().map(Reverse).collect();
            self.last_out = None;
        }
        match &self.last_out {
            Some(last) if item < *last => self.pending.push(item),
            _ => self.current.push(Reverse(item)),
        }
    }

    fn emit_to_open_run(&mut self, item: &Keyed) {
        self.open_run.push(item.row);
        if self.open_run.len().is_multiple_of(self.rows_per_page) {
            self.charge_run_write(1);
        }
    }

    fn close_open_run(&mut self) {
        if self.open_run.is_empty() {
            return;
        }
        // Charge the final partial page of the run.
        if !self.open_run.len().is_multiple_of(self.rows_per_page) {
            self.charge_run_write(1);
        }
        let rows = std::mem::take(&mut self.open_run);
        self.runs.push(SortedRun { disk_rows: rows.len(), rows });
    }

    fn charge_run_write(&self, pages: u32) {
        let file = self.ctx.alloc_temp_file();
        for p in 0..pages {
            self.ctx.session.write_page(PageId::new(file, p));
        }
    }

    fn write_run_pages(&self, rows: usize) {
        let pages = rows.div_ceil(self.rows_per_page) as u32;
        let file = self.ctx.alloc_temp_file();
        for p in 0..pages {
            self.ctx.session.write_page(PageId::new(file, p));
        }
    }

    /// Finish: produce the fully sorted output into `sink`.  Returns rows
    /// emitted.
    pub fn finish(mut self, sink: &mut dyn FnMut(&Row)) -> u64 {
        match self.mode {
            SpillMode::Abrupt => {
                if !self.spilled {
                    // Everything fit: a single in-memory sort, zero I/O.
                    let n = self.buffer.len() as u64;
                    if n > 1 {
                        self.ctx.session.charge_compares(n * (64 - (n - 1).leading_zeros()) as u64);
                    }
                    self.buffer.sort_unstable();
                    for k in &self.buffer {
                        self.ctx.session.charge_rows(1);
                        sink(&k.row);
                    }
                    return n;
                }
                // The paper's "spill everything" pathology: the last
                // partial buffer is written out too.
                self.spill_buffer_as_run();
            }
            SpillMode::Graceful => {
                // Whatever is still in memory becomes in-memory runs that
                // merge without ever touching disk.
                self.close_graceful_tails();
            }
        }
        let runs = std::mem::take(&mut self.runs);
        self.merge_runs(runs, sink)
    }

    /// Graceful finish: the current heap is the (sorted) tail of the open
    /// run; the pending rows are a final short run.  Neither is written.
    fn close_graceful_tails(&mut self) {
        let mut tail: Vec<Row> = Vec::with_capacity(self.current.len());
        while let Some(Reverse(k)) = self.current.pop() {
            tail.push(k.row);
        }
        let disk_rows = self.open_run.len();
        if disk_rows > 0 && !disk_rows.is_multiple_of(self.rows_per_page) {
            self.charge_run_write(1);
        }
        let mut rows = std::mem::take(&mut self.open_run);
        rows.extend(tail);
        if !rows.is_empty() {
            self.runs.push(SortedRun { disk_rows, rows });
        }
        if !self.pending.is_empty() {
            let n = self.pending.len() as u64;
            self.ctx.session.charge_compares(n * (64 - (n - 1).leading_zeros()).max(1) as u64);
            self.pending.sort_unstable();
            let rows: Vec<Row> = std::mem::take(&mut self.pending).into_iter().map(|k| k.row).collect();
            self.runs.push(SortedRun { disk_rows: 0, rows });
        }
    }

    /// Merge runs with a fan-in limit; extra passes rewrite the data.
    fn merge_runs(&self, mut runs: Vec<SortedRun>, sink: &mut dyn FnMut(&Row)) -> u64 {
        if runs.is_empty() {
            return 0;
        }
        let fan_in = (self.ctx.memory_bytes / PAGE_SIZE).clamp(2, 64);
        // Intermediate passes until one final merge can cover all runs.
        while runs.len() > fan_in {
            let mut next: Vec<SortedRun> = Vec::new();
            for group in runs.chunks_mut(fan_in) {
                let mut merged: Vec<Row> = Vec::new();
                let taken: Vec<SortedRun> = group.iter_mut().map(std::mem::take).collect();
                self.merge_group(taken, &mut |row| merged.push(*row));
                self.write_run_pages(merged.len());
                self.ctx.note_spill();
                next.push(SortedRun { disk_rows: merged.len(), rows: merged });
            }
            runs = next;
        }
        let mut produced = 0u64;
        self.merge_group(runs, &mut |row| {
            produced += 1;
            sink(row);
        });
        produced
    }

    /// K-way merge of sorted runs; charges the reads for each run's disk
    /// prefix and `log2(k)` comparisons per row.
    fn merge_group(&self, runs: Vec<SortedRun>, sink: &mut dyn FnMut(&Row)) {
        let session: &Session = self.ctx.session;
        for run in &runs {
            let pages = run.disk_rows.div_ceil(self.rows_per_page) as u32;
            let file = self.ctx.alloc_temp_file();
            for p in 0..pages {
                session.read_page(PageId::new(file, p), AccessKind::Sequential);
            }
            session.invalidate_file(file);
        }
        let k = runs.len().max(2);
        let log_k = (usize::BITS - (k - 1).leading_zeros()) as u64;
        let mut heads: BinaryHeap<Reverse<(Keyed, usize, usize)>> = BinaryHeap::new();
        for (i, run) in runs.iter().enumerate() {
            if let Some(row) = run.rows.first() {
                heads.push(Reverse((self.keyed(row), i, 0)));
            }
        }
        while let Some(Reverse((item, run_idx, pos))) = heads.pop() {
            session.charge_compares(log_k);
            session.charge_rows(1);
            sink(&item.row);
            let next = pos + 1;
            if let Some(row) = runs[run_idx].rows.get(next) {
                heads.push(Reverse((self.keyed(row), run_idx, next)));
            }
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecCtx;
    use crate::ops::testutil::demo_db;

    fn sort_all(
        rows: &[Row],
        mode: SpillMode,
        memory_bytes: usize,
    ) -> (Vec<Vec<i64>>, robustmap_storage::IoStats, bool) {
        let (db, _) = demo_db(4);
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, memory_bytes);
        let mut sorter = ExternalSorter::new(&ctx, vec![0], mode, memory_bytes);
        for r in rows {
            sorter.push(r);
        }
        let mut out = Vec::new();
        let n = sorter.finish(&mut |r| out.push(r.values().to_vec()));
        assert_eq!(n as usize, rows.len());
        (out, s.stats(), ctx.spilled())
    }

    fn scrambled(n: i64) -> Vec<Row> {
        (0..n).map(|i| Row::from_slice(&[(i * 7919) % n, i])).collect()
    }

    #[test]
    fn in_memory_sort_is_correct_and_io_free() {
        for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
            let rows = scrambled(500);
            let (out, io, spilled) = sort_all(&rows, mode, 1 << 20);
            assert!(!spilled, "{mode:?} must not spill");
            assert_eq!(io.page_writes, 0);
            let keys: Vec<i64> = out.iter().map(|r| r[0]).collect();
            assert_eq!(keys, (0..500).collect::<Vec<_>>(), "{mode:?}");
        }
    }

    #[test]
    fn spilling_sort_is_still_correct() {
        for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
            let rows = scrambled(5000);
            let (out, io, spilled) = sort_all(&rows, mode, 8 * 1024); // ~100 rows of memory
            assert!(spilled, "{mode:?} must spill");
            assert!(io.page_writes > 0);
            let keys: Vec<i64> = out.iter().map(|r| r[0]).collect();
            assert_eq!(keys, (0..5000).collect::<Vec<_>>(), "{mode:?}");
        }
    }

    #[test]
    fn duplicate_keys_are_stable_under_full_row_tiebreak() {
        let rows: Vec<Row> =
            (0..100).map(|i| Row::from_slice(&[i % 5, 99 - i])).collect();
        let (out, _, _) = sort_all(&rows, SpillMode::Graceful, 1 << 20);
        // Sorted by key, then by the remaining column.
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn abrupt_spills_everything_graceful_spills_overflow() {
        // Memory fits ~102 rows; input is just over the cliff.
        let memory = 8 * 1024;
        let m = memory / ROW_BYTES;
        let rows = scrambled(m as i64 + 8);
        let (_, io_abrupt, _) = sort_all(&rows, SpillMode::Abrupt, memory);
        let (_, io_graceful, _) = sort_all(&rows, SpillMode::Graceful, memory);
        // Abrupt wrote the entire input; graceful wrote only the overflow.
        assert!(
            io_abrupt.page_writes >= 2 * io_graceful.page_writes.max(1),
            "abrupt {} vs graceful {}",
            io_abrupt.page_writes,
            io_graceful.page_writes
        );
    }

    #[test]
    fn graceful_just_below_threshold_is_io_free() {
        let memory = 8 * 1024;
        let m = memory / ROW_BYTES;
        let rows = scrambled(m as i64 - 1);
        let (_, io, spilled) = sort_all(&rows, SpillMode::Graceful, memory);
        assert!(!spilled);
        assert_eq!(io.page_writes, 0);
    }

    #[test]
    fn replacement_selection_builds_long_runs() {
        // Random input: replacement selection's runs average ~2M, so it
        // needs roughly half as many runs as fill-and-spill.
        let memory = 8 * 1024;
        let (db, _) = demo_db(4);
        let rows = scrambled(20_000);
        let runs_of = |mode| {
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, memory);
            let mut sorter = ExternalSorter::new(&ctx, vec![0], mode, memory);
            for r in &rows {
                sorter.push(r);
            }
            let rc = sorter.run_count();
            sorter.finish(&mut |_| {});
            rc
        };
        let abrupt_runs = runs_of(SpillMode::Abrupt);
        let graceful_runs = runs_of(SpillMode::Graceful);
        assert!(
            (graceful_runs as f64) < abrupt_runs as f64 * 0.75,
            "graceful {graceful_runs} vs abrupt {abrupt_runs}"
        );
    }

    #[test]
    fn empty_input() {
        let (out, io, _) = sort_all(&[], SpillMode::Abrupt, 1024);
        assert!(out.is_empty());
        assert_eq!(io.page_writes, 0);
        let (out, _, _) = sort_all(&[], SpillMode::Graceful, 1024);
        assert!(out.is_empty());
    }
}
