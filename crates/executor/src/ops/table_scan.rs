//! Table scan: full scan of the main storage structure.
//!
//! The baseline plan in every one of the paper's figures.  Its cost is
//! constant across the whole selectivity range — the defining property the
//! maps make visible — because it always reads every page sequentially and
//! evaluates the predicate on every row.

use robustmap_storage::{AccessKind, Row, Session, Table};

use crate::batch::{col_from_bytes, BatchEmitter, ExecConfig, RowBatch};
use crate::expr::Predicate;
use crate::plan::Projection;

/// Scan `table`, filter with `pred`, project, and push matches to `sink`.
/// Returns the number of rows produced.
pub fn run(
    table: &Table,
    pred: &Predicate,
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    let mut produced = 0u64;
    table.heap.scan(session, |_, row| {
        if pred.eval(row, session) {
            let out = project.apply(row);
            sink(&out);
            produced += 1;
        }
    });
    produced
}

/// Batched twin of [`run`]: scan page by page, evaluate the predicate in a
/// single branch-free pass over each record's bytes, and gather only the
/// surviving rows' projected columns (late materialization —
/// non-qualifying rows are never decoded in full).
///
/// The charge sequence per page is exactly [`HeapFile::scan`]'s with
/// [`Predicate::eval`] inside: one sequential `read_page`, per-row
/// comparison charges in slot order, then `charge_rows(live)`.
///
/// [`HeapFile::scan`]: robustmap_storage::HeapFile::scan
pub fn run_batched(
    table: &Table,
    pred: &Predicate,
    project: &Projection,
    cfg: &ExecConfig,
    session: &Session,
    sink: &mut dyn FnMut(&RowBatch),
) -> u64 {
    let heap = &table.heap;
    let proj = project.resolve(heap.schema().arity());
    let terms = pred.terms();
    let mut emitter = BatchEmitter::new(proj.len(), cfg.batch_rows);
    for page_no in 0..heap.page_count() {
        session.read_page(heap.page_id(page_no), AccessKind::Sequential);
        let page = heap.page(page_no).expect("page number in range");
        // Count live records during the walk; `iter` yields exactly the
        // rows `live_records` would count, so a second slot-directory
        // pass is unnecessary.
        let mut live = 0u64;
        if terms.is_empty() {
            // `eval` charges nothing for an empty predicate.
            for (_slot, bytes) in page.iter() {
                live += 1;
                emitter.push_projected_bytes(bytes, &proj, sink);
            }
        } else {
            for (_slot, bytes) in page.iter() {
                live += 1;
                // Branch-free term walk straight over the record bytes;
                // `examined` recovers the short-circuit comparison count
                // `eval` would have charged for this row.
                let mut alive = 1u8;
                let mut examined = 0u8;
                for t in terms {
                    let v = col_from_bytes(bytes, t.col);
                    let pass = (t.lo <= v) & (v <= t.hi);
                    examined += alive;
                    alive &= u8::from(pass);
                }
                session.charge_compares(u64::from(examined));
                if alive != 0 {
                    emitter.push_projected_bytes(bytes, &proj, sink);
                }
            }
        }
        session.charge_rows(live);
    }
    emitter.flush(sink);
    emitter.produced()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColRange;
    use crate::ops::testutil::demo_db;

    #[test]
    fn full_scan_returns_everything() {
        let (db, t) = demo_db(500);
        let s = Session::with_pool_pages(16);
        let mut rows = Vec::new();
        let n = run(db.table(t), &Predicate::always_true(), &Projection::All, &s, &mut |r| {
            rows.push(*r)
        });
        assert_eq!(n, 500);
        assert_eq!(rows.len(), 500);
    }

    #[test]
    fn predicate_filters_exactly() {
        let (db, t) = demo_db(512);
        let s = Session::with_pool_pages(16);
        // `a < 100` matches exactly 100 rows (a is a permutation of 0..512).
        let pred = Predicate::single(ColRange::at_most(0, 99));
        let mut count = 0u64;
        let n = run(db.table(t), &pred, &Projection::All, &s, &mut |_| count += 1);
        assert_eq!(n, 100);
        assert_eq!(count, 100);
    }

    #[test]
    fn projection_shapes_output() {
        let (db, t) = demo_db(10);
        let s = Session::with_pool_pages(16);
        let mut rows = Vec::new();
        run(
            db.table(t),
            &Predicate::always_true(),
            &Projection::Columns(vec![2]),
            &s,
            &mut |r| rows.push(*r),
        );
        assert!(rows.iter().all(|r| r.arity() == 1));
        let mut got: Vec<i64> = rows.iter().map(|r| r.get(0)).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn batched_scan_is_bit_identical_to_row_scan() {
        let (db, t) = demo_db(2000);
        let pred = Predicate::all_of(vec![ColRange::at_most(0, 999), ColRange::at_most(1, 1500)]);
        let proj = Projection::Columns(vec![2, 0]);
        let row_s = Session::with_pool_pages(16);
        let mut want = Vec::new();
        let n_row = run(db.table(t), &pred, &proj, &row_s, &mut |r| {
            want.push(r.values().to_vec())
        });
        for batch_rows in [1usize, 7, 1024] {
            let batch_s = Session::with_pool_pages(16);
            let mut got = Vec::new();
            let n_batch = run_batched(
                db.table(t),
                &pred,
                &proj,
                &ExecConfig::with_batch_rows(batch_rows),
                &batch_s,
                &mut |b| {
                    for i in 0..b.len() {
                        got.push(b.row(i).values().to_vec());
                    }
                },
            );
            assert_eq!(n_batch, n_row, "batch_rows={batch_rows}");
            assert_eq!(got, want, "batch_rows={batch_rows}");
            assert_eq!(batch_s.elapsed().to_bits(), row_s.elapsed().to_bits());
            assert_eq!(batch_s.stats(), row_s.stats());
        }
    }

    #[test]
    fn cost_is_constant_across_selectivities() {
        let (db, t) = demo_db(2000);
        let mut costs = Vec::new();
        for thresh in [0, 500, 1999] {
            let s = Session::with_pool_pages(16);
            let pred = Predicate::single(ColRange::at_most(0, thresh));
            run(db.table(t), &pred, &Projection::All, &s, &mut |_| {});
            costs.push(s.stats().pages_read());
        }
        // Page traffic identical regardless of selectivity.
        assert_eq!(costs[0], costs[1]);
        assert_eq!(costs[1], costs[2]);
    }
}
