//! Table scan: full scan of the main storage structure.
//!
//! The baseline plan in every one of the paper's figures.  Its cost is
//! constant across the whole selectivity range — the defining property the
//! maps make visible — because it always reads every page sequentially and
//! evaluates the predicate on every row.

use robustmap_storage::{Row, Session, Table};

use crate::expr::Predicate;
use crate::plan::Projection;

/// Scan `table`, filter with `pred`, project, and push matches to `sink`.
/// Returns the number of rows produced.
pub fn run(
    table: &Table,
    pred: &Predicate,
    project: &Projection,
    session: &Session,
    sink: &mut dyn FnMut(&Row),
) -> u64 {
    let mut produced = 0u64;
    table.heap.scan(session, |_, row| {
        if pred.eval(row, session) {
            let out = project.apply(row);
            sink(&out);
            produced += 1;
        }
    });
    produced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColRange;
    use crate::ops::testutil::demo_db;

    #[test]
    fn full_scan_returns_everything() {
        let (db, t) = demo_db(500);
        let s = Session::with_pool_pages(16);
        let mut rows = Vec::new();
        let n = run(db.table(t), &Predicate::always_true(), &Projection::All, &s, &mut |r| {
            rows.push(*r)
        });
        assert_eq!(n, 500);
        assert_eq!(rows.len(), 500);
    }

    #[test]
    fn predicate_filters_exactly() {
        let (db, t) = demo_db(512);
        let s = Session::with_pool_pages(16);
        // `a < 100` matches exactly 100 rows (a is a permutation of 0..512).
        let pred = Predicate::single(ColRange::at_most(0, 99));
        let mut count = 0u64;
        let n = run(db.table(t), &pred, &Projection::All, &s, &mut |_| count += 1);
        assert_eq!(n, 100);
        assert_eq!(count, 100);
    }

    #[test]
    fn projection_shapes_output() {
        let (db, t) = demo_db(10);
        let s = Session::with_pool_pages(16);
        let mut rows = Vec::new();
        run(
            db.table(t),
            &Predicate::always_true(),
            &Projection::Columns(vec![2]),
            &s,
            &mut |r| rows.push(*r),
        );
        assert!(rows.iter().all(|r| r.arity() == 1));
        let mut got: Vec<i64> = rows.iter().map(|r| r.get(0)).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn cost_is_constant_across_selectivities() {
        let (db, t) = demo_db(2000);
        let mut costs = Vec::new();
        for thresh in [0, 500, 1999] {
            let s = Session::with_pool_pages(16);
            let pred = Predicate::single(ColRange::at_most(0, thresh));
            run(db.table(t), &pred, &Projection::All, &s, &mut |_| {});
            costs.push(s.stats().pages_read());
        }
        // Page traffic identical regardless of selectivity.
        assert_eq!(costs[0], costs[1]);
        assert_eq!(costs[1], costs[2]);
    }
}
