//! Physical plan specifications.
//!
//! The paper pins plans with optimizer hints ("we eliminate choices in query
//! optimization using hints on index usage, join order, join algorithm, and
//! memory allocation", §3).  [`PlanSpec`] is our hint mechanism: a fully
//! physical plan tree with every such choice explicit, so a robustness map
//! measures exactly the plan it names.

use robustmap_storage::{IndexId, Key, TableId};

use crate::expr::Predicate;

/// An inclusive key range over an index (already mapped from the predicate
/// by the plan builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower key bound.
    pub lo: Key,
    /// Inclusive upper key bound.
    pub hi: Key,
}

impl KeyRange {
    /// Range covering the whole index of the given key arity.
    pub fn full(arity: usize) -> Self {
        KeyRange { lo: Key::padded_lo(&[], arity), hi: Key::padded_hi(&[], arity) }
    }

    /// Range for `lead_lo <= leading column <= lead_hi` on an index of the
    /// given key arity (remaining columns unconstrained).
    pub fn on_leading(lead_lo: i64, lead_hi: i64, arity: usize) -> Self {
        KeyRange { lo: Key::padded_lo(&[lead_lo], arity), hi: Key::padded_hi(&[lead_hi], arity) }
    }
}

/// One index range scan used as a plan input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRangeSpec {
    /// The index to scan.
    pub index: IndexId,
    /// The key range to scan.
    pub range: KeyRange,
}

/// Configuration of the "improved index scan" fetch (Figure 1).
///
/// Qualifying rids are sorted into physical order, then pages are visited
/// front-to-back with a three-regime access model:
///
/// * gap to previous needed page `<= scan_gap`: the read-ahead window covers
///   the gap, so skipped pages are read too, all at sequential cost;
/// * gap `<= prefetch_gap`: a short forward seek — the needed page is read
///   at single-page cost;
/// * larger gaps: a full random read.
///
/// The regime boundaries are exactly the kind of implementation detail the
/// paper expects to show up as landmarks on robustness maps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImprovedFetchConfig {
    /// Largest gap (in pages) bridged by sequential read-ahead.
    pub scan_gap: u32,
    /// Largest gap treated as a cheap forward seek.
    pub prefetch_gap: u32,
}

impl Default for ImprovedFetchConfig {
    fn default() -> Self {
        ImprovedFetchConfig { scan_gap: 4, prefetch_gap: 64 }
    }
}

/// How qualifying rows are fetched from the heap after an index produced
/// their rids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FetchKind {
    /// One random page read per row, in index-key order (the paper's
    /// "traditional index scan").
    Traditional,
    /// Rid sort + in-order fetch with read-ahead switching (the paper's
    /// "improved index scan").
    Improved(ImprovedFetchConfig),
    /// System B's discipline (Figure 8): rids are sorted "very efficiently
    /// using a bitmap", then fetched in physical order without the
    /// sequential read-ahead regime.
    BitmapSorted,
}

/// Algorithm used to combine two rid streams (index intersection or
/// covering rid join).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectAlgo {
    /// Sort both rid lists and merge — symmetric in its inputs (Figure 5).
    MergeJoin,
    /// Build a hash table on one side, probe with the other — asymmetric,
    /// as the paper (and \[GLS94\]) observes.
    HashJoin {
        /// Build on the left input if true, else on the right.
        build_left: bool,
    },
}

/// Algorithm for a general equi-join between two child plans (\[GLS94\]'s
/// sort-vs-hash contrast, which the paper builds on in §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// External-sort both inputs and merge — symmetric.
    SortMerge,
    /// Build a hash table on one side, probe with the other —
    /// asymmetric, with a build-side memory cliff.
    Hash {
        /// Build on the left input if true.
        build_left: bool,
    },
}

/// Spill discipline for memory-bounded operators (sort, aggregation).
///
/// The paper (§4) predicts that "some implementations of sorting spill
/// their entire input to disk if the input size exceeds the memory size by
/// merely a single record" — [`SpillMode::Abrupt`] models those, while
/// [`SpillMode::Graceful`] spills only the overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillMode {
    /// Spill the entire input once it no longer fits.
    Abrupt,
    /// Keep a memory-full of data resident; spill only the overflow.
    Graceful,
}

/// Aggregate functions for [`PlanSpec::HashAgg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(col)` (wrapping on overflow, as the workloads stay small).
    Sum(usize),
    /// `MIN(col)`.
    Min(usize),
    /// `MAX(col)`.
    Max(usize),
}

/// Output projection: positions into the operator's input row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// Pass the row through unchanged.
    All,
    /// Keep the listed positions, in order.
    Columns(Vec<usize>),
}

impl Projection {
    /// Apply to a row.
    #[inline]
    pub fn apply(&self, row: &robustmap_storage::Row) -> robustmap_storage::Row {
        match self {
            Projection::All => *row,
            Projection::Columns(cols) => row.project(cols),
        }
    }

    /// Resolve into explicit source positions for an input of `arity`
    /// columns (the batch executor gathers columns by position).
    pub fn resolve(&self, arity: usize) -> Vec<usize> {
        match self {
            Projection::All => (0..arity).collect(),
            Projection::Columns(cols) => cols.clone(),
        }
    }
}

/// A physical plan.  Every execution choice the paper hints (index usage,
/// join order, join algorithm, fetch discipline, spill mode) is explicit.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanSpec {
    /// Full scan of the table's main storage structure, filtering and
    /// projecting (in table-column space).
    TableScan {
        /// The table to scan.
        table: TableId,
        /// Filter over table columns.
        pred: Predicate,
        /// Projection over table columns.
        project: Projection,
    },
    /// Index range scan followed by a row fetch: the index yields rids in
    /// key order, rows are fetched per `fetch`, then `residual` (over table
    /// columns) filters and `project` (over table columns) shapes output.
    ///
    /// `key_filter` (in key-column space) is applied to index entries
    /// *before* fetching — System B's Figure 8 plan scans a two-column
    /// index, filters the second predicate in the index, and only fetches
    /// rows that satisfy both.
    IndexFetch {
        /// The rid-producing index scan.
        scan: IndexRangeSpec,
        /// Filter over index key columns, applied before the fetch.
        key_filter: Predicate,
        /// Fetch discipline.
        fetch: FetchKind,
        /// Residual predicate over fetched table rows.
        residual: Predicate,
        /// Projection over table columns.
        project: Projection,
    },
    /// Index-only (covering) range scan: no fetch; `residual` and `project`
    /// are in *key-column space* (position i = i-th index key column).
    CoveringIndexScan {
        /// The index scan.
        scan: IndexRangeSpec,
        /// Residual over key columns.
        residual: Predicate,
        /// Projection over key columns.
        project: Projection,
    },
    /// Multi-dimensional B-tree access over a composite index (\[LJBY95\]):
    /// per-key-column inclusive ranges, covering output in key-column space.
    Mdam {
        /// The composite index.
        index: IndexId,
        /// Inclusive `(lo, hi)` range for each key column, in key order.
        col_ranges: Vec<(i64, i64)>,
        /// Projection over key columns.
        project: Projection,
    },
    /// Intersect the rids of two index range scans, then fetch the
    /// surviving rows (System A's multi-index plans, Figures 5 and 7).
    IndexIntersect {
        /// Left rid input.
        left: IndexRangeSpec,
        /// Right rid input.
        right: IndexRangeSpec,
        /// Join algorithm (and order, via `build_left`).
        algo: IntersectAlgo,
        /// Fetch discipline for the surviving rids.
        fetch: FetchKind,
        /// Residual predicate over fetched table rows.
        residual: Predicate,
        /// Projection over table columns.
        project: Projection,
    },
    /// Join two covering index scans on rid so that the join result covers a
    /// query no single index covers (Figure 2's "multi-index plans").
    /// Output rows are `left key columns ++ right key columns`; `project`
    /// is in that combined space.
    CoveringRidJoin {
        /// Left covering input.
        left: IndexRangeSpec,
        /// Right covering input.
        right: IndexRangeSpec,
        /// Join algorithm.
        algo: IntersectAlgo,
        /// Projection over `left keys ++ right keys`.
        project: Projection,
    },
    /// Sort the child's output.
    Sort {
        /// Input plan.
        input: Box<PlanSpec>,
        /// Sort key positions in the child's output rows.
        key_cols: Vec<usize>,
        /// Spill discipline.
        mode: SpillMode,
        /// Memory budget in bytes (the paper hints memory allocation
        /// per-operator).
        memory_bytes: usize,
    },
    /// General equi-join of two child plans on one column each.  Output
    /// rows are `left columns ++ right columns`; `project` is in that
    /// combined space.
    Join {
        /// Left input plan.
        left: Box<PlanSpec>,
        /// Right input plan.
        right: Box<PlanSpec>,
        /// Join key position in the left input's rows.
        left_key: usize,
        /// Join key position in the right input's rows.
        right_key: usize,
        /// Algorithm (and build side for hash).
        algo: JoinAlgo,
        /// Memory grant in bytes.
        memory_bytes: usize,
        /// Projection over `left ++ right` columns.
        project: Projection,
    },
    /// Parallel table scan across `dop` workers; elapsed time is the
    /// critical path, I/O is the sum over workers (§4 future work).
    ParallelTableScan {
        /// The table to scan.
        table: TableId,
        /// Filter over table columns.
        pred: Predicate,
        /// Projection over table columns.
        project: Projection,
        /// Degree of parallelism.
        dop: u32,
        /// Fraction of excess load concentrated on worker 0 (`0` = even).
        skew_permille: u32,
    },
    /// Hash aggregation of the child's output.
    HashAgg {
        /// Input plan.
        input: Box<PlanSpec>,
        /// Group-by positions in the child's output rows.
        group_cols: Vec<usize>,
        /// Aggregates to compute; output rows are `group cols ++ aggs`.
        aggs: Vec<AggFn>,
        /// Spill discipline.
        mode: SpillMode,
        /// Memory budget in bytes.
        memory_bytes: usize,
    },
}

/// A materialization point inside one operator where the adaptive executor
/// ([`crate::ops::adaptive`]) can observe an exact cardinality before the
/// downstream work that depends on it has been paid for.
///
/// The kinds name the points in plan order: a checkpoint fires the moment
/// the feeding collection is complete, i.e. *between* the charge that
/// produced it and the charge that consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// The rid list of an [`PlanSpec::IndexFetch`], fully collected and
    /// about to be fetched.
    RidFeed,
    /// One rid feed of an [`PlanSpec::IndexIntersect`] or one entry feed
    /// of a [`PlanSpec::CoveringRidJoin`] (`right` names the side),
    /// collected before the intersection algorithm runs.
    IntersectFeed {
        /// True for the right input, false for the left.
        right: bool,
    },
    /// The surviving rids of an [`PlanSpec::IndexIntersect`], about to be
    /// fetched — the point where a correlated conjunction reveals itself.
    IntersectOut,
    /// The build-side input of a [`PlanSpec::Join`], fully materialised.
    JoinBuild,
    /// The probe-side input of a [`PlanSpec::Join`], fully materialised.
    JoinProbe,
    /// The fully-consumed input of a [`PlanSpec::Sort`] (observe-only:
    /// nothing downstream is re-plannable once the sorter holds the input).
    SortInput,
    /// The fully-consumed input of a [`PlanSpec::HashAgg`] (observe-only).
    AggInput,
    /// Output-count milestones of a [`PlanSpec::Mdam`] scan: fires each
    /// time the produced count reaches a power of two, while the scan is
    /// still running.  The observation is a *floor* on the final
    /// cardinality, not the final count — but a floor above the credible
    /// band already falsifies the estimate.  The adaptive executor holds
    /// the produced rows back (emission is charge-free) so a bail here
    /// discards them instead of duplicating them ahead of the fallback.
    ScanOut,
}

impl PlanSpec {
    /// The cardinality checkpoints the adaptive executor arms for this
    /// operator (root only, not descendants), in firing order.  Empty for
    /// shapes without an internal materialization point.
    pub fn checkpoints(&self) -> Vec<CheckpointKind> {
        match self {
            PlanSpec::IndexFetch { .. } => vec![CheckpointKind::RidFeed],
            PlanSpec::IndexIntersect { .. } => vec![
                CheckpointKind::IntersectFeed { right: false },
                CheckpointKind::IntersectFeed { right: true },
                CheckpointKind::IntersectOut,
            ],
            PlanSpec::CoveringRidJoin { .. } => vec![
                CheckpointKind::IntersectFeed { right: false },
                CheckpointKind::IntersectFeed { right: true },
            ],
            PlanSpec::Join { algo, .. } => {
                let build_left = match algo {
                    JoinAlgo::SortMerge => true,
                    JoinAlgo::Hash { build_left } => *build_left,
                };
                // Children materialise left-first; the checkpoint fires as
                // each side completes.
                if build_left {
                    vec![CheckpointKind::JoinBuild, CheckpointKind::JoinProbe]
                } else {
                    vec![CheckpointKind::JoinProbe, CheckpointKind::JoinBuild]
                }
            }
            PlanSpec::Sort { .. } => vec![CheckpointKind::SortInput],
            PlanSpec::HashAgg { .. } => vec![CheckpointKind::AggInput],
            // ScanOut fires repeatedly (at each power-of-two milestone);
            // the list names the kind, not the firing count.
            PlanSpec::Mdam { .. } => vec![CheckpointKind::ScanOut],
            PlanSpec::TableScan { .. }
            | PlanSpec::CoveringIndexScan { .. }
            | PlanSpec::ParallelTableScan { .. } => Vec::new(),
        }
    }

    /// One-line plan synopsis (operator chain, innermost last), e.g.
    /// `IndexIntersect(merge, improved-fetch)`.
    pub fn synopsis(&self) -> String {
        match self {
            PlanSpec::TableScan { .. } => "TableScan".to_string(),
            PlanSpec::IndexFetch { fetch, .. } => {
                format!("IndexFetch({})", fetch_name(fetch))
            }
            PlanSpec::CoveringIndexScan { .. } => "CoveringIndexScan".to_string(),
            PlanSpec::Mdam { .. } => "Mdam".to_string(),
            PlanSpec::IndexIntersect { algo, fetch, .. } => {
                format!("IndexIntersect({}, {})", algo_name(algo), fetch_name(fetch))
            }
            PlanSpec::CoveringRidJoin { algo, .. } => {
                format!("CoveringRidJoin({})", algo_name(algo))
            }
            PlanSpec::Join { left, right, algo, .. } => {
                let algo = match algo {
                    JoinAlgo::SortMerge => "sort-merge".to_string(),
                    JoinAlgo::Hash { build_left } => {
                        format!("hash/build-{}", if *build_left { "left" } else { "right" })
                    }
                };
                format!("Join({algo}) <- [{}, {}]", left.synopsis(), right.synopsis())
            }
            PlanSpec::ParallelTableScan { dop, skew_permille, .. } => {
                format!("ParallelTableScan(dop={dop}, skew={}%)", skew_permille / 10)
            }
            PlanSpec::Sort { input, mode, .. } => {
                format!("Sort({mode:?}) <- {}", input.synopsis())
            }
            PlanSpec::HashAgg { input, mode, .. } => {
                format!("HashAgg({mode:?}) <- {}", input.synopsis())
            }
        }
    }
}

pub(crate) fn fetch_name(f: &FetchKind) -> &'static str {
    match f {
        FetchKind::Traditional => "traditional",
        FetchKind::Improved(_) => "improved",
        FetchKind::BitmapSorted => "bitmap",
    }
}

pub(crate) fn algo_name(a: &IntersectAlgo) -> &'static str {
    match a {
        IntersectAlgo::MergeJoin => "merge",
        IntersectAlgo::HashJoin { build_left: true } => "hash/build-left",
        IntersectAlgo::HashJoin { build_left: false } => "hash/build-right",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_storage::Row;

    #[test]
    fn key_range_constructors() {
        let full = KeyRange::full(2);
        assert!(full.lo < Key::pair(i64::MIN + 1, 0));
        assert!(Key::pair(i64::MAX - 1, 0) < full.hi);
        let lead = KeyRange::on_leading(3, 9, 2);
        assert!(lead.lo <= Key::pair(3, i64::MIN));
        assert!(Key::pair(9, i64::MAX) <= lead.hi);
        assert!(Key::pair(10, 0) > lead.hi);
    }

    #[test]
    fn projection_apply() {
        let row = Row::from_slice(&[10, 20, 30]);
        assert_eq!(Projection::All.apply(&row), row);
        assert_eq!(Projection::Columns(vec![2, 0]).apply(&row).values(), &[30, 10]);
    }

    #[test]
    fn synopsis_names_choices() {
        let scan = IndexRangeSpec { index: IndexId(0), range: KeyRange::full(1) };
        let plan = PlanSpec::IndexIntersect {
            left: scan,
            right: scan,
            algo: IntersectAlgo::HashJoin { build_left: false },
            fetch: FetchKind::BitmapSorted,
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        assert_eq!(plan.synopsis(), "IndexIntersect(hash/build-right, bitmap)");
        let sorted = PlanSpec::Sort {
            input: Box::new(plan),
            key_cols: vec![0],
            mode: SpillMode::Abrupt,
            memory_bytes: 1 << 20,
        };
        assert!(sorted.synopsis().starts_with("Sort(Abrupt) <- IndexIntersect"));
    }

    #[test]
    fn default_improved_config_orders_gaps() {
        let c = ImprovedFetchConfig::default();
        assert!(c.scan_gap < c.prefetch_gap);
    }
}
