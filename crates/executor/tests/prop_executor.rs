//! Property-based tests for the executor: every physical plan shape must
//! agree with a naive reference evaluation on randomly generated tables
//! and predicates, and the memory-bounded operators must match their
//! in-memory equivalents for any grant.

use proptest::prelude::*;
use robustmap_executor::{
    execute_adaptive_collect, execute_adaptive_collect_batched, execute_collect,
    execute_collect_batched, AggFn, CheckpointKind, ColRange, ExecConfig, ExecCtx, FetchKind,
    ImprovedFetchConfig, IndexRangeSpec, IntersectAlgo, KeyRange, Observation, PlanSpec, Predicate,
    Projection, Selection, SpillMode, SwitchController, SwitchDirective,
};
use robustmap_storage::{ColumnType, Database, Row, Schema, Session, TableId};

/// Build a table with columns (a, b, c) from explicit tuples.
fn db_from(rows: &[(i64, i64, i64)]) -> (Database, TableId) {
    let mut db = Database::new();
    let schema = Schema::new(vec![
        ("a", ColumnType::Int),
        ("b", ColumnType::Int),
        ("c", ColumnType::Int),
    ]);
    let t = db.create_table("t", schema);
    for &(a, b, c) in rows {
        db.insert_row(t, &Row::from_slice(&[a, b, c])).unwrap();
    }
    (db, t)
}

fn sorted_rows(rows: Vec<Row>) -> Vec<Vec<i64>> {
    let mut v: Vec<Vec<i64>> = rows.iter().map(|r| r.values().to_vec()).collect();
    v.sort();
    v
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((-50i64..50, -50i64..50, -50i64..50), 1..400)
}

/// Controller that unconditionally bails to `fallback` at one checkpoint.
struct BailAlways {
    at: CheckpointKind,
    fallback: PlanSpec,
}

impl SwitchController for BailAlways {
    fn decide(&self, obs: &Observation) -> SwitchDirective {
        if obs.kind == self.at {
            SwitchDirective::Bail(self.fallback.clone())
        } else {
            SwitchDirective::Continue
        }
    }
}

/// Controller that swaps the fetch discipline at one checkpoint.
struct SwitchFetchAt {
    at: CheckpointKind,
    fetch: FetchKind,
}

impl SwitchController for SwitchFetchAt {
    fn decide(&self, obs: &Observation) -> SwitchDirective {
        if obs.kind == self.at {
            SwitchDirective::SwitchFetch(self.fetch)
        } else {
            SwitchDirective::Continue
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Table scan, single-index fetches (all three disciplines), index
    /// intersections (all algorithms/orders) and the covering scan agree
    /// with a filter over the raw tuples.
    #[test]
    fn all_plan_shapes_match_reference(
        rows in rows_strategy(),
        ta in -60i64..60,
        tb in -60i64..60,
    ) {
        let (mut db, t) = db_from(&rows);
        let idx_a = db.create_index("ia", t, &[0]).unwrap();
        let idx_b = db.create_index("ib", t, &[1]).unwrap();
        let idx_ab = db.create_index("iab", t, &[0, 1]).unwrap();

        let reference: Vec<Vec<i64>> = {
            let mut v: Vec<Vec<i64>> = rows
                .iter()
                .filter(|&&(a, b, _)| a <= ta && b <= tb)
                .map(|&(a, b, c)| vec![a, b, c])
                .collect();
            v.sort();
            v
        };

        let improved = FetchKind::Improved(ImprovedFetchConfig::default());
        let plans = vec![
            PlanSpec::TableScan {
                table: t,
                pred: Predicate::all_of(vec![ColRange::at_most(0, ta), ColRange::at_most(1, tb)]),
                project: Projection::All,
            },
            PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                key_filter: Predicate::always_true(),
                fetch: FetchKind::Traditional,
                residual: Predicate::single(ColRange::at_most(1, tb)),
                project: Projection::All,
            },
            PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, tb, 1) },
                key_filter: Predicate::always_true(),
                fetch: improved,
                residual: Predicate::single(ColRange::at_most(0, ta)),
                project: Projection::All,
            },
            PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx_ab, range: KeyRange::on_leading(i64::MIN, ta, 2) },
                key_filter: Predicate::single(ColRange::at_most(1, tb)),
                fetch: FetchKind::BitmapSorted,
                residual: Predicate::always_true(),
                project: Projection::All,
            },
            PlanSpec::IndexIntersect {
                left: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                right: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, tb, 1) },
                algo: IntersectAlgo::MergeJoin,
                fetch: improved,
                residual: Predicate::always_true(),
                project: Projection::All,
            },
            PlanSpec::IndexIntersect {
                left: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, tb, 1) },
                right: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                algo: IntersectAlgo::HashJoin { build_left: false },
                fetch: FetchKind::BitmapSorted,
                residual: Predicate::always_true(),
                project: Projection::All,
            },
        ];
        for plan in &plans {
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            let (_, got) = execute_collect(plan, &ctx).unwrap();
            prop_assert_eq!(sorted_rows(got), reference.clone(), "{}", plan.synopsis());
        }
        // Covering and MDAM plans emit (a, b) key rows; compare counts.
        let covering = PlanSpec::CoveringIndexScan {
            scan: IndexRangeSpec { index: idx_ab, range: KeyRange::on_leading(i64::MIN, ta, 2) },
            residual: Predicate::single(ColRange::at_most(1, tb)),
            project: Projection::All,
        };
        let mdam = PlanSpec::Mdam {
            index: idx_ab,
            col_ranges: vec![(i64::MIN, ta), (i64::MIN, tb)],
            project: Projection::All,
        };
        for plan in [&covering, &mdam] {
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            let (stats, _) = execute_collect(plan, &ctx).unwrap();
            prop_assert_eq!(stats.rows_out as usize, reference.len(), "{}", plan.synopsis());
        }
    }

    /// MDAM with arbitrary per-column boxes equals a filtered scan.
    #[test]
    fn mdam_boxes_match_filter(
        rows in rows_strategy(),
        bounds in ((-60i64..60), (-60i64..60), (-60i64..60), (-60i64..60)),
    ) {
        let (alo, ahi, blo, bhi) = bounds;
        let (mut db, t) = db_from(&rows);
        let idx_ab = db.create_index("iab", t, &[0, 1]).unwrap();
        let want = rows
            .iter()
            .filter(|&&(a, b, _)| alo <= a && a <= ahi && blo <= b && b <= bhi)
            .count() as u64;
        let plan = PlanSpec::Mdam {
            index: idx_ab,
            col_ranges: vec![(alo, ahi), (blo, bhi)],
            project: Projection::All,
        };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (stats, got) = execute_collect(&plan, &ctx).unwrap();
        prop_assert_eq!(stats.rows_out, want);
        for r in got {
            prop_assert!(alo <= r.get(0) && r.get(0) <= ahi);
            prop_assert!(blo <= r.get(1) && r.get(1) <= bhi);
        }
    }

    /// External sort equals std sort for any memory grant and either spill
    /// mode, and spills exactly when the input exceeds the grant's row
    /// capacity.
    #[test]
    fn sort_plan_equals_std_sort(
        rows in rows_strategy(),
        memory_kib in 1usize..64,
        abrupt in any::<bool>(),
    ) {
        let (db, t) = db_from(&rows);
        let plan = PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: t,
                pred: Predicate::always_true(),
                project: Projection::All,
            }),
            key_cols: vec![2, 0],
            mode: if abrupt { SpillMode::Abrupt } else { SpillMode::Graceful },
            memory_bytes: memory_kib * 1024,
        };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (_, got) = execute_collect(&plan, &ctx).unwrap();
        let got: Vec<Vec<i64>> = got.iter().map(|r| r.values().to_vec()).collect();
        let mut want: Vec<Vec<i64>> = rows.iter().map(|&(a, b, c)| vec![a, b, c]).collect();
        want.sort_by(|x, y| (x[2], x[0], &x[..]).cmp(&(y[2], y[0], &y[..])));
        prop_assert_eq!(got.len(), want.len());
        // Compare by sort keys only (ties may order by full row).
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!((g[2], g[0]), (w[2], w[0]));
        }
    }

    /// Hash aggregation equals a reference group-by for any grant and mode.
    #[test]
    fn agg_plan_equals_reference(
        rows in rows_strategy(),
        memory_kib in 1usize..64,
        abrupt in any::<bool>(),
    ) {
        use std::collections::BTreeMap;
        let (db, t) = db_from(&rows);
        let plan = PlanSpec::HashAgg {
            input: Box::new(PlanSpec::TableScan {
                table: t,
                pred: Predicate::always_true(),
                project: Projection::All,
            }),
            group_cols: vec![0],
            aggs: vec![AggFn::CountStar, AggFn::Sum(2), AggFn::Min(1), AggFn::Max(1)],
            mode: if abrupt { SpillMode::Abrupt } else { SpillMode::Graceful },
            memory_bytes: memory_kib * 1024,
        };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (_, got) = execute_collect(&plan, &ctx).unwrap();
        let mut want: BTreeMap<i64, (i64, i64, i64, i64)> = BTreeMap::new();
        for &(a, b, c) in &rows {
            let e = want.entry(a).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += c;
            e.2 = e.2.min(b);
            e.3 = e.3.max(b);
        }
        prop_assert_eq!(got.len(), want.len());
        for (row, (&g, &(cnt, sum, mn, mx))) in got.iter().zip(want.iter()) {
            prop_assert_eq!(row.values(), &[g, cnt, sum, mn, mx]);
        }
    }

    /// The branch-free batched predicate evaluation equals per-row
    /// short-circuit evaluation on arbitrary rows and predicates: the same
    /// selection bits AND the same number of charged comparisons (the
    /// batch path must reconstruct exactly how many terms the row path
    /// would have examined before short-circuiting).  Includes the empty
    /// batch (`rows` may be filtered to nothing upstream, so n = 0 must
    /// work) via the 0-row lower bound.
    #[test]
    fn batched_predicate_matches_per_row_bits_and_charges(
        rows in prop::collection::vec((-50i64..50, -50i64..50, -50i64..50), 0..300),
        terms in prop::collection::vec((0usize..3, -60i64..60, -60i64..60), 0..4),
    ) {
        let pred = Predicate::all_of(
            terms.iter().map(|&(c, lo, hi)| ColRange::between(c, lo, hi)).collect(),
        );
        let n = rows.len();
        // Column-major gather, one slice per predicate term.
        let term_cols: Vec<Vec<i64>> = pred
            .terms()
            .iter()
            .map(|t| rows.iter().map(|r| [r.0, r.1, r.2][t.col]).collect())
            .collect();
        let refs: Vec<&[i64]> = term_cols.iter().map(|c| c.as_slice()).collect();

        let row_session = Session::with_pool_pages(0);
        let row_bits: Vec<bool> = rows
            .iter()
            .map(|&(a, b, c)| pred.eval(&Row::from_slice(&[a, b, c]), &row_session))
            .collect();

        let batch_session = Session::with_pool_pages(0);
        let mut sel = Selection::new();
        pred.eval_batch(&refs, n, &batch_session, &mut sel);
        let batch_bits: Vec<bool> = (0..n).map(|i| sel.get(i)).collect();

        prop_assert_eq!(&batch_bits, &row_bits);
        prop_assert_eq!(
            batch_session.stats().cpu_compares,
            row_session.stats().cpu_compares,
            "comparison charges diverged"
        );
        // The charge-free variant selects the same rows.
        let mut free = Selection::new();
        pred.eval_batch_free(&refs, n, &mut free);
        prop_assert_eq!((0..n).map(|i| free.get(i)).collect::<Vec<_>>(), row_bits);
    }

    /// Row and batch execution agree — stats bit-for-bit, rows
    /// value-for-value in order — for every plan shape, at *any* batch
    /// size from the degenerate 1 upward.  Results are almost never a
    /// multiple of the batch size, so partial final batches are exercised
    /// constantly; `ta` below every value makes empty results routine.
    #[test]
    fn batched_execution_matches_row_execution_at_any_batch_size(
        rows in rows_strategy(),
        ta in -60i64..60,
        tb in -60i64..60,
        batch_rows in 1usize..1300,
    ) {
        let (mut db, t) = db_from(&rows);
        let idx_a = db.create_index("ia", t, &[0]).unwrap();
        let idx_ab = db.create_index("iab", t, &[0, 1]).unwrap();
        let plans = vec![
            PlanSpec::TableScan {
                table: t,
                pred: Predicate::all_of(vec![ColRange::at_most(0, ta), ColRange::at_most(1, tb)]),
                project: Projection::Columns(vec![2, 0]),
            },
            PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                key_filter: Predicate::always_true(),
                fetch: FetchKind::Improved(ImprovedFetchConfig::default()),
                residual: Predicate::single(ColRange::at_most(1, tb)),
                project: Projection::All,
            },
            PlanSpec::CoveringIndexScan {
                scan: IndexRangeSpec { index: idx_ab, range: KeyRange::on_leading(i64::MIN, ta, 2) },
                residual: Predicate::single(ColRange::at_most(1, tb)),
                project: Projection::Columns(vec![1]),
            },
        ];
        let ec = ExecConfig::with_batch_rows(batch_rows);
        for plan in &plans {
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            let (row_stats, row_rows) = execute_collect(plan, &ctx).unwrap();
            let s2 = Session::with_pool_pages(64);
            let ctx2 = ExecCtx::new(&db, &s2, 1 << 20);
            let (batch_stats, batch_rows_v) = execute_collect_batched(plan, &ctx2, &ec).unwrap();
            prop_assert_eq!(
                row_stats.seconds.to_bits(),
                batch_stats.seconds.to_bits(),
                "{}: seconds", plan.synopsis()
            );
            prop_assert_eq!(&row_stats.io, &batch_stats.io, "{}: io", plan.synopsis());
            prop_assert_eq!(row_stats.rows_out, batch_stats.rows_out, "{}", plan.synopsis());
            prop_assert_eq!(&row_rows, &batch_rows_v, "{}: rows/order", plan.synopsis());
        }
    }

    /// A *triggered* bail never changes the answer: whatever rows the
    /// adaptive executor produces after abandoning the chosen plan
    /// mid-flight, they are exactly the rows either pure plan produces —
    /// the switch affects cost accounting only, never correctness.  Both
    /// the scalar and batched adaptive paths, at any batch size.
    #[test]
    fn triggered_bail_matches_both_pure_plans(
        rows in rows_strategy(),
        ta in -60i64..60,
        tb in -60i64..60,
        batch_rows in 1usize..1300,
    ) {
        let (mut db, t) = db_from(&rows);
        let idx_a = db.create_index("ia", t, &[0]).unwrap();
        let idx_b = db.create_index("ib", t, &[1]).unwrap();
        let chosen = PlanSpec::IndexFetch {
            scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
            key_filter: Predicate::always_true(),
            fetch: FetchKind::Improved(ImprovedFetchConfig::default()),
            residual: Predicate::single(ColRange::at_most(1, tb)),
            project: Projection::All,
        };
        let fallback = PlanSpec::TableScan {
            table: t,
            pred: Predicate::all_of(vec![ColRange::at_most(0, ta), ColRange::at_most(1, tb)]),
            project: Projection::All,
        };
        let intersect = PlanSpec::IndexIntersect {
            left: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
            right: IndexRangeSpec { index: idx_b, range: KeyRange::on_leading(i64::MIN, tb, 1) },
            algo: IntersectAlgo::MergeJoin,
            fetch: FetchKind::BitmapSorted,
            residual: Predicate::always_true(),
            project: Projection::All,
        };
        let cases = [
            (&chosen, CheckpointKind::RidFeed),
            (&intersect, CheckpointKind::IntersectOut),
        ];
        let ec = ExecConfig::with_batch_rows(batch_rows);
        for (plan, at) in cases {
            let pure_chosen = {
                let s = Session::with_pool_pages(64);
                let ctx = ExecCtx::new(&db, &s, 1 << 20);
                sorted_rows(execute_collect(plan, &ctx).unwrap().1)
            };
            let pure_fallback = {
                let s = Session::with_pool_pages(64);
                let ctx = ExecCtx::new(&db, &s, 1 << 20);
                sorted_rows(execute_collect(&fallback, &ctx).unwrap().1)
            };
            let ctrl = BailAlways { at, fallback: fallback.clone() };
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            let (stats, got) = execute_adaptive_collect(plan, &ctx, &ctrl).unwrap();
            prop_assert_eq!(stats.switches.len(), 1, "{}: bail must be recorded", plan.synopsis());
            let got = sorted_rows(got);
            prop_assert_eq!(&got, &pure_chosen, "{}: vs chosen plan", plan.synopsis());
            prop_assert_eq!(&got, &pure_fallback, "{}: vs fallback plan", plan.synopsis());
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            let (bstats, bgot) = execute_adaptive_collect_batched(plan, &ctx, &ec, &ctrl).unwrap();
            prop_assert_eq!(bstats.switches.len(), 1, "{}: batched bail", plan.synopsis());
            prop_assert_eq!(sorted_rows(bgot), pure_chosen, "{}: batched rows", plan.synopsis());
        }
    }

    /// A triggered MDAM bail at a ScanOut milestone: the held-back prefix
    /// is discarded, so the output equals both pure plans exactly (no
    /// duplicated rows).  An empty box never reaches the first milestone,
    /// so no switch can fire there.
    #[test]
    fn triggered_mdam_bail_matches_both_pure_plans(
        rows in rows_strategy(),
        ta in -60i64..60,
        tb in -60i64..60,
        batch_rows in 1usize..1300,
    ) {
        let (mut db, t) = db_from(&rows);
        let idx_ab = db.create_index("iab", t, &[0, 1]).unwrap();
        let chosen = PlanSpec::Mdam {
            index: idx_ab,
            col_ranges: vec![(i64::MIN, ta), (i64::MIN, tb)],
            project: Projection::All, // key-column space: (a, b)
        };
        let fallback = PlanSpec::TableScan {
            table: t,
            pred: Predicate::all_of(vec![ColRange::at_most(0, ta), ColRange::at_most(1, tb)]),
            project: Projection::Columns(vec![0, 1]),
        };
        let pure_chosen = {
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            sorted_rows(execute_collect(&chosen, &ctx).unwrap().1)
        };
        let pure_fallback = {
            let s = Session::with_pool_pages(64);
            let ctx = ExecCtx::new(&db, &s, 1 << 20);
            sorted_rows(execute_collect(&fallback, &ctx).unwrap().1)
        };
        let want_switches = usize::from(!pure_chosen.is_empty());
        let ctrl = BailAlways { at: CheckpointKind::ScanOut, fallback: fallback.clone() };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (stats, got) = execute_adaptive_collect(&chosen, &ctx, &ctrl).unwrap();
        prop_assert_eq!(stats.switches.len(), want_switches);
        let got = sorted_rows(got);
        prop_assert_eq!(&got, &pure_chosen, "vs pure MDAM");
        prop_assert_eq!(&got, &pure_fallback, "vs pure fallback");
        let ec = ExecConfig::with_batch_rows(batch_rows);
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (bstats, bgot) = execute_adaptive_collect_batched(&chosen, &ctx, &ec, &ctrl).unwrap();
        prop_assert_eq!(bstats.switches.len(), want_switches, "batched bail");
        prop_assert_eq!(sorted_rows(bgot), pure_chosen, "batched rows");
    }

    /// A triggered operator-swap (fetch discipline) likewise: the rows
    /// after switching the fetch kind mid-flight equal the pure plan's
    /// under either discipline.
    #[test]
    fn triggered_fetch_switch_matches_both_pure_plans(
        rows in rows_strategy(),
        ta in -60i64..60,
        tb in -60i64..60,
        batch_rows in 1usize..1300,
    ) {
        let (mut db, t) = db_from(&rows);
        let idx_a = db.create_index("ia", t, &[0]).unwrap();
        let mk = |fetch| PlanSpec::IndexFetch {
            scan: IndexRangeSpec { index: idx_a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
            key_filter: Predicate::always_true(),
            fetch,
            residual: Predicate::single(ColRange::at_most(1, tb)),
            project: Projection::Columns(vec![2, 0]),
        };
        let traditional = mk(FetchKind::Traditional);
        let bitmap = mk(FetchKind::BitmapSorted);
        let pure: Vec<Vec<Vec<i64>>> = [&traditional, &bitmap]
            .iter()
            .map(|p| {
                let s = Session::with_pool_pages(64);
                let ctx = ExecCtx::new(&db, &s, 1 << 20);
                sorted_rows(execute_collect(p, &ctx).unwrap().1)
            })
            .collect();
        let ctrl = SwitchFetchAt { at: CheckpointKind::RidFeed, fetch: FetchKind::BitmapSorted };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (stats, got) = execute_adaptive_collect(&traditional, &ctx, &ctrl).unwrap();
        prop_assert_eq!(stats.switches.len(), 1);
        let got = sorted_rows(got);
        prop_assert_eq!(&got, &pure[0], "vs pure traditional");
        prop_assert_eq!(&got, &pure[1], "vs pure bitmap-sorted");
        let ec = ExecConfig::with_batch_rows(batch_rows);
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (bstats, bgot) =
            execute_adaptive_collect_batched(&traditional, &ctx, &ec, &ctrl).unwrap();
        prop_assert_eq!(bstats.switches.len(), 1);
        prop_assert_eq!(sorted_rows(bgot), pure[1].clone(), "batched vs pure");
    }

    /// Projections commute: projecting in the plan equals projecting the
    /// unprojected output.
    #[test]
    fn projection_commutes(rows in rows_strategy(), ta in -60i64..60) {
        let (db, t) = db_from(&rows);
        let full = PlanSpec::TableScan {
            table: t,
            pred: Predicate::single(ColRange::at_most(0, ta)),
            project: Projection::All,
        };
        let projected = PlanSpec::TableScan {
            table: t,
            pred: Predicate::single(ColRange::at_most(0, ta)),
            project: Projection::Columns(vec![2, 1]),
        };
        let s = Session::with_pool_pages(64);
        let ctx = ExecCtx::new(&db, &s, 1 << 20);
        let (_, rows_full) = execute_collect(&full, &ctx).unwrap();
        let ctx2 = ExecCtx::new(&db, &s, 1 << 20);
        let (_, rows_proj) = execute_collect(&projected, &ctx2).unwrap();
        let manual: Vec<Vec<i64>> =
            rows_full.iter().map(|r| vec![r.get(2), r.get(1)]).collect();
        let got: Vec<Vec<i64>> = rows_proj.iter().map(|r| r.values().to_vec()).collect();
        prop_assert_eq!(got, manual);
    }
}
