//! Chrome trace-event JSON: export for Perfetto / `chrome://tracing`,
//! plus a minimal hand-rolled JSON parser so round-trip checks need no
//! external dependency.
//!
//! The exporter maps the two clock domains onto two "processes":
//!
//! * `pid 1` — the scheduler's global virtual timeline (baton slices,
//!   admissions, completions): one thread per query track, so the
//!   interleaving is visible as stacked lanes;
//! * `pid 2` — per-query simulated time (operator spans, I/O windows,
//!   checkpoints), one thread per session track.
//!
//! Timestamps are simulated **microseconds** (`sim * 1e6`); every
//! event's `args` also carries `real_us`, the real wall-clock
//! microseconds since the sink's epoch, so both clocks survive export.

use crate::trace::{ClockDomain, TraceEvent, TraceEventKind};
use std::collections::BTreeSet;

const PID_SCHED: u64 = 1;
const PID_QUERY: u64 = 2;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn pid_of(domain: ClockDomain) -> u64 {
    match domain {
        ClockDomain::Scheduler => PID_SCHED,
        ClockDomain::Query => PID_QUERY,
    }
}

struct EventJson {
    ph: char,
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, String)>,
}

fn event_json(kind: &TraceEventKind) -> EventJson {
    let (ph, name, cat, args): (char, String, &'static str, Vec<(&'static str, String)>) =
        match kind {
            TraceEventKind::OpBegin { name, depth } => {
                ('B', name.clone(), "op", vec![("depth", depth.to_string())])
            }
            TraceEventKind::OpEnd { name, depth, rows } => (
                'E',
                name.clone(),
                "op",
                vec![("depth", depth.to_string()), ("rows", rows.to_string())],
            ),
            TraceEventKind::Checkpoint { kind, rows } => (
                'i',
                format!("checkpoint:{kind}"),
                "adaptive",
                vec![("rows", rows.to_string())],
            ),
            TraceEventKind::Switch { at, observed, action } => (
                'i',
                "switch".to_string(),
                "adaptive",
                vec![
                    ("at", format!("\"{}\"", esc(at))),
                    ("observed", observed.to_string()),
                    ("action", format!("\"{}\"", esc(action))),
                ],
            ),
            TraceEventKind::PageRead { hit } => (
                'i',
                if *hit { "page_hit" } else { "page_read" }.to_string(),
                "io",
                vec![],
            ),
            TraceEventKind::PageWrite => ('i', "page_write".to_string(), "io", vec![]),
            TraceEventKind::IoWindow { reads, hits, writes } => (
                'C',
                "io_window".to_string(),
                "io",
                vec![
                    ("reads", reads.to_string()),
                    ("hits", hits.to_string()),
                    ("writes", writes.to_string()),
                ],
            ),
            TraceEventKind::SpillAlloc { file } => (
                'i',
                "spill_alloc".to_string(),
                "io",
                vec![("file", file.to_string())],
            ),
            TraceEventKind::GrantSet { bytes } => (
                'C',
                "grant".to_string(),
                "mem",
                vec![("bytes", bytes.to_string())],
            ),
            TraceEventKind::SessionReset => ('i', "session_reset".to_string(), "session", vec![]),
            TraceEventKind::Queued => ('i', "queued".to_string(), "sched", vec![]),
            TraceEventKind::Admit { grant } => (
                'i',
                "admit".to_string(),
                "sched",
                vec![("grant", grant.to_string())],
            ),
            TraceEventKind::SliceBegin => ('B', "slice".to_string(), "sched", vec![]),
            TraceEventKind::SliceEnd => ('E', "slice".to_string(), "sched", vec![]),
            TraceEventKind::IdleReset => ('i', "idle_reset".to_string(), "sched", vec![]),
            TraceEventKind::QueryDone { rows } => (
                'i',
                "done".to_string(),
                "sched",
                vec![("rows", rows.to_string())],
            ),
            TraceEventKind::MutationBatch { rows, inserted, deleted, updated } => (
                'i',
                "mutation_batch".to_string(),
                "sched",
                vec![
                    ("rows", rows.to_string()),
                    ("inserted", inserted.to_string()),
                    ("deleted", deleted.to_string()),
                    ("updated", updated.to_string()),
                ],
            ),
        };
    EventJson { ph, name, cat, args }
}

/// Serialize events as a Chrome trace-event JSON document (object form,
/// `traceEvents` array) loadable by Perfetto and `chrome://tracing`.
pub fn to_chrome_json(events: &[TraceEvent], labels: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };

    // Process metadata: one "process" per clock domain.
    push(
        format!(
            "{{\"ph\":\"M\",\"pid\":{PID_SCHED},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"scheduler (global sim time)\"}}}}"
        ),
        &mut out,
    );
    push(
        format!(
            "{{\"ph\":\"M\",\"pid\":{PID_QUERY},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"queries (per-query sim time)\"}}}}"
        ),
        &mut out,
    );
    // Thread metadata only for (domain, track) pairs that carry events.
    let mut seen: BTreeSet<(u64, u32)> = BTreeSet::new();
    for ev in events {
        seen.insert((pid_of(ev.kind.domain()), ev.track));
    }
    for (pid, track) in &seen {
        let label = labels.get(*track as usize).map(String::as_str).unwrap_or("");
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{track},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(label)
            ),
            &mut out,
        );
    }

    for ev in events {
        let e = event_json(&ev.kind);
        let pid = pid_of(ev.kind.domain());
        let ts = ev.sim * 1e6;
        let real_us = ev.real_ns as f64 / 1000.0;
        let mut args = format!("\"real_us\":{real_us}");
        for (k, v) in &e.args {
            args.push_str(&format!(",\"{k}\":{v}"));
        }
        let scope = if e.ph == 'i' { ",\"s\":\"t\"" } else { "" };
        push(
            format!(
                "{{\"ph\":\"{}\",\"pid\":{pid},\"tid\":{},\"ts\":{ts},\"name\":\"{}\",\
                 \"cat\":\"{}\"{scope},\"args\":{{{args}}}}}",
                e.ph,
                ev.track,
                esc(&e.name),
                e.cat,
            ),
            &mut out,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ------------------------------------------------------------------
// Minimal JSON parser (for round-trip checks; no external deps)
// ------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document (strict enough for our own output and for
/// hand-written test fixtures; rejects trailing garbage).
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// One event as re-read from a Chrome trace JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Phase (`B`, `E`, `i`, `C`, `M`, ...).
    pub ph: String,
    /// Event name.
    pub name: String,
    /// Process id (clock domain).
    pub pid: u64,
    /// Thread id (track).
    pub tid: u32,
    /// Timestamp in simulated microseconds (0 for metadata).
    pub ts: f64,
}

/// Parse a Chrome trace-event JSON document into its event list.
pub fn parse_chrome_trace(s: &str) -> Result<Vec<ChromeEvent>, String> {
    let doc = parse_json(s)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let field_str = |k: &str| {
            ev.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event {i}: missing string field {k:?}"))
        };
        let field_num = |k: &str| {
            ev.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric field {k:?}"))
        };
        out.push(ChromeEvent {
            ph: field_str("ph")?,
            name: field_str("name")?,
            pid: field_num("pid")? as u64,
            tid: field_num("tid")? as u32,
            ts: ev.get("ts").and_then(JsonValue::as_f64).unwrap_or(0.0),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceDetail, TraceEventKind, TraceSink};

    #[test]
    fn parser_handles_basics() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\"y\\z\n","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\\z\n"));
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert!(parse_json("{\"a\":1} junk").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn export_round_trips_through_parser() {
        let sink = TraceSink::memory(TraceDetail::Spans);
        let t = sink.alloc_track("q0: scan(t, a<=x)");
        sink.emit(t, 0.0, TraceEventKind::SliceBegin);
        sink.emit(t, 0.0, TraceEventKind::OpBegin { name: "scan(t, a<=x)".into(), depth: 0 });
        sink.emit(t, 0.25, TraceEventKind::IoWindow { reads: 4, hits: 2, writes: 0 });
        sink.emit(t, 0.5, TraceEventKind::OpEnd { name: "scan(t, a<=x)".into(), depth: 0, rows: 3 });
        sink.emit(t, 0.5, TraceEventKind::SliceEnd);
        let json = to_chrome_json(&sink.events(), &sink.track_labels());
        let parsed = parse_chrome_trace(&json).expect("round trip");
        let begins = parsed.iter().filter(|e| e.ph == "B").count();
        let ends = parsed.iter().filter(|e| e.ph == "E").count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        // Thread metadata carries the escaped track label.
        assert!(parsed.iter().any(|e| e.ph == "M" && e.name == "thread_name"));
        // Timestamps are sim microseconds.
        let op_end = parsed.iter().find(|e| e.ph == "E" && e.name == "scan(t, a<=x)").unwrap();
        assert!((op_end.ts - 0.5e6).abs() < 1e-6);
        // Slice events live in the scheduler process, ops in the query process.
        let slice = parsed.iter().find(|e| e.name == "slice" && e.ph == "B").unwrap();
        let op = parsed.iter().find(|e| e.ph == "B" && e.name != "slice").unwrap();
        assert_ne!(slice.pid, op.pid);
    }

    #[test]
    fn escaping_survives_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let json = format!("{{\"k\":\"{}\"}}", esc(nasty));
        let v = parse_json(&json).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
