//! # robustmap-obs
//!
//! Charge-free observability for the robustmap workspace.
//!
//! Everything in this crate observes execution without participating in
//! it: attaching a tracer, bumping a counter or raising the log level
//! must never change a single simulated charge.  The differential
//! equivalence suites (`adaptive_equivalence`, `batch_equivalence`,
//! `concurrent_equivalence`) re-run with tracing enabled to prove it.
//!
//! Three facilities:
//!
//! * [`trace`] — a [`trace::TraceSink`] recording timestamped
//!   [`trace::TraceEvent`]s on **two clocks** (simulated seconds and
//!   real nanoseconds), with Chrome trace-event export via [`chrome`];
//! * [`metrics`] — a deterministic [`metrics::MetricsRegistry`] of
//!   counters and log-scale histograms, filled as events are emitted;
//! * [`log`] — a leveled stderr facade ([`progress!`], [`verbose!`],
//!   [`warn!`]) honoring `ROBUSTMAP_LOG` (quiet / normal / verbose).
//!
//! This crate is a leaf: it depends on `std` only, so every workspace
//! layer (storage, executor, core, bench) can use it without cycles.

pub mod chrome;
pub mod log;
pub mod metrics;
pub mod trace;

pub use log::{log_level, set_log_level, LogLevel, ENV_LOG};
pub use metrics::{LogHistogram, MetricsRegistry};
pub use trace::{
    validate_trace, ClockDomain, TraceDetail, TraceEvent, TraceEventKind, TraceHandle, TraceSink,
    ENV_TRACE, ENV_TRACE_DETAIL,
};
