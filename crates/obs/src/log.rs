//! Leveled stderr logging for the binaries and the harness.
//!
//! Three levels, selected by the `ROBUSTMAP_LOG` environment variable
//! (`quiet`, `normal` — the default — or `verbose`) or programmatically
//! via [`set_log_level`]:
//!
//! * [`warn!`](crate::warn) always prints — a warning signals a
//!   malfunction and must surface even in quiet CI runs;
//! * [`progress!`](crate::progress) prints at `normal` and above — the
//!   per-figure progress lines the figures binary used to `eprintln!`;
//! * [`verbose!`](crate::verbose) prints only at `verbose` — cache
//!   paths, per-level timings, anything a debugging session wants but
//!   CI does not.
//!
//! The level is read once and cached in an atomic; the disabled path is
//! a single relaxed load, so log calls are safe in moderately hot code.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the log level (`quiet` / `normal` /
/// `verbose`; `0`/`1`/`2` also accepted).
pub const ENV_LOG: &str = "ROBUSTMAP_LOG";

/// Verbosity of the stderr log facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Only warnings.
    Quiet = 0,
    /// Progress lines and warnings (the default).
    Normal = 1,
    /// Everything, including per-step detail.
    Verbose = 2,
}

/// Cached level; `UNSET` means "not yet read from the environment".
const UNSET: u8 = 0xff;
static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn parse_level(s: &str) -> Option<LogLevel> {
    match s.trim().to_ascii_lowercase().as_str() {
        "quiet" | "0" => Some(LogLevel::Quiet),
        "normal" | "1" | "" => Some(LogLevel::Normal),
        "verbose" | "2" => Some(LogLevel::Verbose),
        _ => None,
    }
}

/// The active log level: the cached value, or `ROBUSTMAP_LOG` on first
/// call (unparsable values fall back to [`LogLevel::Normal`]).
pub fn log_level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        UNSET => {
            let level = std::env::var(ENV_LOG)
                .ok()
                .and_then(|v| parse_level(&v))
                .unwrap_or(LogLevel::Normal);
            LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
        1 => LogLevel::Normal,
        2 => LogLevel::Verbose,
        _ => LogLevel::Quiet,
    }
}

/// Override the log level (command-line flags beat the environment;
/// tests use this to exercise both sides of the gate).
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// True when a message at `min` should print.
pub fn enabled(min: LogLevel) -> bool {
    log_level() >= min
}

#[doc(hidden)]
pub fn __print(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

/// Print a progress line (normal verbosity and above).
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Normal) {
            $crate::log::__print(format_args!($($arg)*));
        }
    };
}

/// Print a detail line (verbose only).
#[macro_export]
macro_rules! verbose {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Verbose) {
            $crate::log::__print(format_args!($($arg)*));
        }
    };
}

/// Print a warning (all levels, `warning:` prefix).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::__print(format_args!("warning: {}", format_args!($($arg)*)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(parse_level("quiet"), Some(LogLevel::Quiet));
        assert_eq!(parse_level("NORMAL"), Some(LogLevel::Normal));
        assert_eq!(parse_level("2"), Some(LogLevel::Verbose));
        assert_eq!(parse_level("nonsense"), None);
        assert!(LogLevel::Verbose > LogLevel::Normal);
        assert!(LogLevel::Normal > LogLevel::Quiet);
    }

    #[test]
    fn set_level_gates_enabled() {
        set_log_level(LogLevel::Quiet);
        assert!(!enabled(LogLevel::Normal));
        assert!(enabled(LogLevel::Quiet));
        set_log_level(LogLevel::Verbose);
        assert!(enabled(LogLevel::Verbose));
        // Restore the default so other tests in this process see the
        // usual level.
        set_log_level(LogLevel::Normal);
        assert!(enabled(LogLevel::Normal));
        assert!(!enabled(LogLevel::Verbose));
    }
}
