//! Counters and log-scale histograms with a deterministic text dump.
//!
//! The registry is intentionally boring: named `u64` counters plus
//! power-of-two-bucketed histograms, stored in `BTreeMap`s so the dump
//! is byte-stable across runs.  A [`super::trace::TraceSink`] fills one
//! as events are emitted (pool hit counts, per-quantum charge
//! distribution, spill files, adaptive checkpoints), and the figures
//! binary writes the dump next to the Chrome trace.

use std::collections::BTreeMap;

/// Number of histogram buckets: bucket 0 holds value 0, bucket `b > 0`
/// holds values with `ilog2(v) == b - 1`, i.e. `2^(b-1) <= v < 2^b`.
const BUCKETS: usize = 65;

/// A histogram over `u64` values with logarithmic (power-of-two)
/// buckets — coarse, but constant-size and deterministic.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LogHistogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            v.ilog2() as usize + 1
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound for the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive upper edge of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`.  Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 { 0 } else { (1u64 << b).saturating_sub(1) };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Named counters and histograms with a byte-stable dump.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name`, creating it at 0.
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record `v` in histogram `name`, creating it empty.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Merge another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Deterministic text dump: one line per metric, sorted by name.
    ///
    /// ```text
    /// counter io.hits 123
    /// hist quantum.page_touches count=12 sum=408 mean=34.00 p50<=63 p90<=127 max=96
    /// ```
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, h) in &self.hists {
            out.push_str(&format!(
                "hist {k} count={} sum={} mean={:.2} p50<={} p90<={} max={}\n",
                h.count(),
                h.sum(),
                h.mean(),
                h.quantile_upper_bound(0.5),
                h.quantile_upper_bound(0.9),
                h.max(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = LogHistogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.max(), 1024);
        // value 0 -> bucket 0, 1 -> bucket 1, {2,3} -> bucket 2,
        // {4,7} -> bucket 3, 8 -> bucket 4, 1024 -> bucket 11.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 2);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[11], 1);
    }

    #[test]
    fn quantile_bounds_are_upper_edges() {
        let mut h = LogHistogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // p50 of 1..=100 is <= 63 (bucket 2^5..2^6-1 ends at 63).
        assert!(h.quantile_upper_bound(0.5) >= 50);
        assert!(h.quantile_upper_bound(1.0) >= 100);
        assert_eq!(LogHistogram::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn registry_dump_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.incr("z.last", 2);
        m.incr("a.first", 1);
        m.incr("a.first", 1);
        m.observe("lat", 4);
        m.observe("lat", 5);
        let dump = m.dump();
        let a = dump.find("counter a.first 2").expect("a.first");
        let z = dump.find("counter z.last 2").expect("z.last");
        assert!(a < z, "counters sorted by name");
        assert!(dump.contains("hist lat count=2 sum=9"));
        assert_eq!(dump, m.clone().dump(), "dump is deterministic");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.incr("c", 1);
        b.incr("c", 2);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }
}
