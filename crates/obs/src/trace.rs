//! Trace sinks and events: the charge-free execution recorder.
//!
//! A [`TraceSink`] collects [`TraceEvent`]s — operator spans, page I/O,
//! spill allocations, adaptive checkpoints, scheduler baton slices —
//! each stamped on **two clocks**:
//!
//! * `sim` — simulated seconds.  Per-query events carry the query's own
//!   [`ClockDomain::Query`] clock (its `SimClock` elapsed time); the
//!   concurrent scheduler stamps its events with the shared
//!   [`ClockDomain::Scheduler`] *global virtual time* (the sum of every
//!   query's charge deltas in schedule order), which is what makes an
//!   interleaved timeline renderable at all.
//! * `real_ns` — real nanoseconds since the sink's creation, so wall
//!   time spent outside the simulation (hashing, sorting, allocation)
//!   is visible next to the simulated cost it was charged as.
//!
//! The whole module is **charge-free by construction**: nothing here
//! touches a `SimClock`, and the instrumented crates only *read* their
//! clocks when emitting.  The differential equivalence suites re-run
//! with tracing enabled to enforce this.
//!
//! Dispatch is a plain enum ([`TraceSink::Null`] / [`TraceSink::Memory`])
//! rather than a trait object so the disabled path is a branch, not a
//! virtual call; sessions additionally cache an "am I traced" flag so
//! the per-page cost of disabled tracing is a single `Cell` read.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// Environment variable enabling the global trace: its value is the
/// output path for the Chrome trace-event JSON (empty, `0` and `off`
/// disable).
pub const ENV_TRACE: &str = "ROBUSTMAP_TRACE";

/// Environment variable selecting the capture detail: `full` records a
/// per-page event for every read/write; anything else (the default)
/// records spans plus aggregated per-quantum I/O windows.
pub const ENV_TRACE_DETAIL: &str = "ROBUSTMAP_TRACE_DETAIL";

/// How much a [`TraceSink`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDetail {
    /// Operator/scheduler spans, instants, and per-quantum
    /// [`TraceEventKind::IoWindow`] aggregates (the default).
    Spans,
    /// Everything in [`TraceDetail::Spans`] plus one event per page
    /// read/write.  Orders of magnitude more events; for short runs.
    Full,
}

/// Which clock a `sim` timestamp was read from.
///
/// Events on the same track but different domains are on different
/// timelines and must not be compared; the Chrome exporter gives each
/// domain its own process so they render as separate lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClockDomain {
    /// The query's own `SimClock` (starts at 0 per session).
    Query,
    /// The concurrent scheduler's global virtual time.
    Scheduler,
}

/// What happened.  Variants map 1:1 onto the instrumentation points in
/// `storage::Session`, the executor, and `core::serve`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// An operator began executing (`name` is the plan synopsis).
    OpBegin { name: String, depth: u32 },
    /// The matching operator finished, having produced `rows`.
    OpEnd { name: String, depth: u32, rows: u64 },
    /// An adaptive checkpoint observed `rows` at checkpoint `kind`.
    Checkpoint { kind: &'static str, rows: u64 },
    /// An adaptive controller decided to bail/switch at checkpoint
    /// `at` after observing `observed` rows; `action` describes it.
    Switch { at: &'static str, observed: u64, action: String },
    /// One page read (only at [`TraceDetail::Full`]).
    PageRead { hit: bool },
    /// One page write (only at [`TraceDetail::Full`]).
    PageWrite,
    /// Aggregated I/O since the last window flush: `reads` disk reads,
    /// `hits` buffer-pool hits, `writes` page writes.
    IoWindow { reads: u64, hits: u64, writes: u64 },
    /// A spill/temp file was allocated.
    SpillAlloc { file: u64 },
    /// The session's memory grant changed.
    GrantSet { bytes: u64 },
    /// The session was reset for reuse (warm sweeps): its clock and
    /// per-query trace state restart from zero on the same track.
    SessionReset,
    /// Scheduler: a query entered the admission queue.
    Queued,
    /// Scheduler: a query was admitted with this memory grant.
    Admit { grant: u64 },
    /// Scheduler: a baton slice began for this query.
    SliceBegin,
    /// Scheduler: the baton slice ended (yield or completion).
    SliceEnd,
    /// Scheduler: the pool was reset while the system was idle.
    IdleReset,
    /// Scheduler: the query completed with `rows` output rows.
    QueryDone { rows: u64 },
    /// Churn: one mutation batch was applied to the database —
    /// `rows` heap rows touched, split into `inserted`/`deleted`/`updated`
    /// operations.  Charge-free (emitted after the batch's charges land),
    /// on the scheduler track so serving timelines show data churn
    /// alongside query slices.
    MutationBatch { rows: u64, inserted: u64, deleted: u64, updated: u64 },
}

impl TraceEventKind {
    /// The clock domain this event's `sim` timestamp belongs to.
    pub fn domain(&self) -> ClockDomain {
        match self {
            TraceEventKind::Queued
            | TraceEventKind::Admit { .. }
            | TraceEventKind::SliceBegin
            | TraceEventKind::SliceEnd
            | TraceEventKind::IdleReset
            | TraceEventKind::QueryDone { .. }
            | TraceEventKind::MutationBatch { .. } => ClockDomain::Scheduler,
            _ => ClockDomain::Query,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Track (lane) the event belongs to; tracks are allocated per
    /// query/session plus one for the scheduler.
    pub track: u32,
    /// Simulated seconds on the clock named by `kind.domain()`.
    pub sim: f64,
    /// Real nanoseconds since the sink was created.
    pub real_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Default event capacity: beyond this, events are counted as dropped
/// rather than stored (a full-detail full-scale figure run would
/// otherwise exhaust memory).
const DEFAULT_EVENT_CAP: usize = 1 << 20;

struct SinkState {
    events: Vec<TraceEvent>,
    dropped: u64,
    tracks: Vec<String>,
    metrics: MetricsRegistry,
}

/// The in-memory recorder behind [`TraceSink::Memory`].
pub struct MemorySink {
    epoch: Instant,
    detail: TraceDetail,
    cap: usize,
    state: Mutex<SinkState>,
}

impl std::fmt::Debug for MemorySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.lock();
        f.debug_struct("MemorySink")
            .field("detail", &self.detail)
            .field("events", &s.events.len())
            .field("dropped", &s.dropped)
            .field("tracks", &s.tracks.len())
            .finish()
    }
}

impl MemorySink {
    fn lock(&self) -> MutexGuard<'_, SinkState> {
        // A panicking instrumented thread must not take observability
        // down with it: recover the guard from a poisoned mutex.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A destination for trace events.
///
/// [`TraceSink::Null`] ignores everything (the "disabled" arm of the
/// enum dispatch); [`TraceSink::Memory`] records into a capped vector
/// and fills a [`MetricsRegistry`] as a side effect.
#[derive(Debug)]
pub enum TraceSink {
    /// Discard all events.
    Null,
    /// Record events in memory.
    Memory(MemorySink),
}

impl TraceSink {
    /// An in-memory sink at `detail` with the default event cap.
    pub fn memory(detail: TraceDetail) -> TraceSink {
        TraceSink::memory_with_cap(detail, DEFAULT_EVENT_CAP)
    }

    /// An in-memory sink with an explicit event cap.
    pub fn memory_with_cap(detail: TraceDetail, cap: usize) -> TraceSink {
        TraceSink::Memory(MemorySink {
            epoch: Instant::now(),
            detail,
            cap,
            state: Mutex::new(SinkState {
                events: Vec::new(),
                dropped: 0,
                tracks: Vec::new(),
                metrics: MetricsRegistry::new(),
            }),
        })
    }

    /// True when emitting to this sink records anything.
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceSink::Memory(_))
    }

    /// Capture detail ([`TraceDetail::Spans`] for the null sink).
    pub fn detail(&self) -> TraceDetail {
        match self {
            TraceSink::Null => TraceDetail::Spans,
            TraceSink::Memory(m) => m.detail,
        }
    }

    /// Allocate a new track labelled `label`; returns its id (always 0
    /// for the null sink).
    pub fn alloc_track(&self, label: &str) -> u32 {
        match self {
            TraceSink::Null => 0,
            TraceSink::Memory(m) => {
                let mut s = m.lock();
                s.tracks.push(label.to_string());
                (s.tracks.len() - 1) as u32
            }
        }
    }

    /// Record one event on `track` at simulated time `sim`.
    pub fn emit(&self, track: u32, sim: f64, kind: TraceEventKind) {
        let m = match self {
            TraceSink::Null => return,
            TraceSink::Memory(m) => m,
        };
        let real_ns = m.epoch.elapsed().as_nanos() as u64;
        let mut s = m.lock();
        Self::account(&mut s.metrics, &kind);
        if s.events.len() >= m.cap {
            s.dropped += 1;
            return;
        }
        s.events.push(TraceEvent { track, sim, real_ns, kind });
    }

    /// Metrics side effects of an event (counters stay correct even
    /// when the event itself is dropped at the cap).
    fn account(metrics: &mut MetricsRegistry, kind: &TraceEventKind) {
        metrics.incr("trace.events", 1);
        match kind {
            TraceEventKind::OpBegin { .. } => metrics.incr("exec.operators", 1),
            TraceEventKind::OpEnd { .. } => {}
            TraceEventKind::Checkpoint { .. } => metrics.incr("adaptive.checkpoints", 1),
            TraceEventKind::Switch { .. } => metrics.incr("adaptive.switches", 1),
            TraceEventKind::PageRead { hit } => {
                metrics.incr("io.page_reads", 1);
                if *hit {
                    metrics.incr("io.page_hits", 1);
                }
            }
            TraceEventKind::PageWrite => metrics.incr("io.page_writes", 1),
            TraceEventKind::IoWindow { reads, hits, writes } => {
                metrics.incr("io.window.reads", *reads);
                metrics.incr("io.window.hits", *hits);
                metrics.incr("io.window.writes", *writes);
                metrics.observe("quantum.page_touches", reads + hits + writes);
                if let Some(permille) = (hits * 1000).checked_div(reads + hits) {
                    metrics.observe("quantum.hit_permille", permille);
                }
            }
            TraceEventKind::SpillAlloc { .. } => metrics.incr("spill.files", 1),
            TraceEventKind::GrantSet { .. } => metrics.incr("grant.sets", 1),
            TraceEventKind::SessionReset => metrics.incr("session.resets", 1),
            TraceEventKind::Queued => metrics.incr("sched.queued", 1),
            TraceEventKind::Admit { .. } => metrics.incr("sched.admissions", 1),
            TraceEventKind::SliceBegin => metrics.incr("sched.slices", 1),
            TraceEventKind::SliceEnd => {}
            TraceEventKind::IdleReset => metrics.incr("sched.idle_resets", 1),
            TraceEventKind::QueryDone { .. } => metrics.incr("sched.completions", 1),
            TraceEventKind::MutationBatch { rows, .. } => {
                metrics.incr("churn.batches", 1);
                metrics.incr("churn_rows_applied", *rows);
            }
        }
    }

    /// Snapshot of all recorded events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Null => Vec::new(),
            TraceSink::Memory(m) => m.lock().events.clone(),
        }
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        match self {
            TraceSink::Null => 0,
            TraceSink::Memory(m) => m.lock().events.len(),
        }
    }

    /// Events discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        match self {
            TraceSink::Null => 0,
            TraceSink::Memory(m) => m.lock().dropped,
        }
    }

    /// Labels of all allocated tracks, indexed by track id.
    pub fn track_labels(&self) -> Vec<String> {
        match self {
            TraceSink::Null => Vec::new(),
            TraceSink::Memory(m) => m.lock().tracks.clone(),
        }
    }

    /// Snapshot of the metrics filled by [`TraceSink::emit`].
    pub fn metrics(&self) -> MetricsRegistry {
        match self {
            TraceSink::Null => MetricsRegistry::new(),
            TraceSink::Memory(m) => m.lock().metrics.clone(),
        }
    }
}

/// A sink plus a track: what an instrumented component holds on to.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    /// The shared sink.
    pub sink: Arc<TraceSink>,
    /// The track this component emits on.
    pub track: u32,
}

impl TraceHandle {
    /// Record one event at simulated time `sim` on this handle's track.
    pub fn emit(&self, sim: f64, kind: TraceEventKind) {
        self.sink.emit(self.track, sim, kind);
    }
}

// ------------------------------------------------------------------
// Trace well-formedness
// ------------------------------------------------------------------

/// Check structural invariants of an event stream:
///
/// * per `(track, domain)`, `sim` is monotonically non-decreasing in
///   emission order (a [`TraceEventKind::SessionReset`] restarts the
///   track's query clock and resets the watermark);
/// * operator begin/end events are properly nested per track, with
///   matching `name` and `depth`, and all spans are closed;
/// * scheduler slices alternate begin/end per track and are closed.
///
/// Returns the first violation as `Err(description)`.
pub fn validate_trace(events: &[TraceEvent]) -> Result<(), String> {
    let mut watermark: BTreeMap<(u32, ClockDomain), f64> = BTreeMap::new();
    let mut op_stack: BTreeMap<u32, Vec<(String, u32)>> = BTreeMap::new();
    let mut slice_open: BTreeMap<u32, bool> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let domain = ev.kind.domain();
        if matches!(ev.kind, TraceEventKind::SessionReset) {
            watermark.insert((ev.track, domain), ev.sim.min(0.0));
        } else {
            let w = watermark.entry((ev.track, domain)).or_insert(0.0);
            if ev.sim < *w {
                return Err(format!(
                    "event {i} on track {} ({domain:?}): sim went backwards ({} < {})",
                    ev.track, ev.sim, w
                ));
            }
            *w = ev.sim;
        }
        match &ev.kind {
            TraceEventKind::OpBegin { name, depth } => {
                op_stack.entry(ev.track).or_default().push((name.clone(), *depth));
            }
            TraceEventKind::OpEnd { name, depth, .. } => {
                match op_stack.entry(ev.track).or_default().pop() {
                    Some((n, d)) if &n == name && d == *depth => {}
                    Some((n, d)) => {
                        return Err(format!(
                            "event {i} on track {}: OpEnd {name:?}@{depth} does not match \
                             open span {n:?}@{d}",
                            ev.track
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i} on track {}: OpEnd {name:?}@{depth} with no open span",
                            ev.track
                        ));
                    }
                }
            }
            TraceEventKind::SliceBegin => {
                let open = slice_open.entry(ev.track).or_insert(false);
                if *open {
                    return Err(format!(
                        "event {i} on track {}: SliceBegin inside an open slice",
                        ev.track
                    ));
                }
                *open = true;
            }
            TraceEventKind::SliceEnd => {
                let open = slice_open.entry(ev.track).or_insert(false);
                if !*open {
                    return Err(format!(
                        "event {i} on track {}: SliceEnd with no open slice",
                        ev.track
                    ));
                }
                *open = false;
            }
            _ => {}
        }
    }
    for (track, stack) in &op_stack {
        if let Some((name, depth)) = stack.last() {
            return Err(format!("track {track}: operator span {name:?}@{depth} never closed"));
        }
    }
    for (track, open) in &slice_open {
        if *open {
            return Err(format!("track {track}: baton slice never closed"));
        }
    }
    Ok(())
}

/// Per-track total simulated seconds spent inside baton slices
/// (`SliceEnd.sim - SliceBegin.sim`, summed).  For a served query this
/// reconciles with its `ExecStats::seconds` up to float association.
pub fn slice_totals(events: &[TraceEvent]) -> BTreeMap<u32, f64> {
    let mut open: BTreeMap<u32, f64> = BTreeMap::new();
    let mut totals: BTreeMap<u32, f64> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            TraceEventKind::SliceBegin => {
                open.insert(ev.track, ev.sim);
            }
            TraceEventKind::SliceEnd => {
                if let Some(begin) = open.remove(&ev.track) {
                    *totals.entry(ev.track).or_insert(0.0) += ev.sim - begin;
                }
            }
            _ => {}
        }
    }
    totals
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Per-query operator profile as CSV: one row per completed operator
/// span, with inclusive simulated seconds (`OpEnd.sim - OpBegin.sim`).
pub fn op_profile_csv(events: &[TraceEvent], labels: &[String]) -> String {
    let mut out = String::from("track,query,depth,op,rows,sim_seconds\n");
    let mut stacks: BTreeMap<u32, Vec<(String, u32, f64)>> = BTreeMap::new();
    for ev in events {
        match &ev.kind {
            TraceEventKind::OpBegin { name, depth } => {
                stacks.entry(ev.track).or_default().push((name.clone(), *depth, ev.sim));
            }
            TraceEventKind::OpEnd { name, depth, rows } => {
                let popped = stacks.entry(ev.track).or_default().pop();
                if let Some((n, d, begin)) = popped {
                    if &n == name && d == *depth {
                        let label = labels
                            .get(ev.track as usize)
                            .map(String::as_str)
                            .unwrap_or("");
                        out.push_str(&format!(
                            "{},{},{},{},{},{:.9}\n",
                            ev.track,
                            csv_field(label),
                            depth,
                            csv_field(name),
                            rows,
                            ev.sim - begin,
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

// ------------------------------------------------------------------
// The global sink (env / --trace flag)
// ------------------------------------------------------------------

struct GlobalTrace {
    sink: Arc<TraceSink>,
    path: PathBuf,
}

static GLOBAL: OnceLock<Option<GlobalTrace>> = OnceLock::new();

/// The trace detail level selected by `ROBUSTMAP_TRACE_DETAIL`
/// (`full` → per-page events; anything else → span-level).
pub fn detail_from_env() -> TraceDetail {
    match std::env::var(ENV_TRACE_DETAIL) {
        Ok(v) if v.trim().eq_ignore_ascii_case("full") => TraceDetail::Full,
        _ => TraceDetail::Spans,
    }
}

fn init_from_env() -> Option<GlobalTrace> {
    let path = std::env::var(ENV_TRACE).ok()?;
    let path = path.trim();
    if path.is_empty() || path == "0" || path.eq_ignore_ascii_case("off") {
        return None;
    }
    Some(GlobalTrace {
        sink: Arc::new(TraceSink::memory(detail_from_env())),
        path: PathBuf::from(path),
    })
}

/// Enable the process-wide trace programmatically (the `--trace` flag).
/// Returns `false` if the global sink was already initialised — e.g.
/// something consulted [`global_sink`] first and latched the
/// environment's answer.
pub fn enable_global(path: &Path, detail: TraceDetail) -> bool {
    GLOBAL
        .set(Some(GlobalTrace {
            sink: Arc::new(TraceSink::memory(detail)),
            path: path.to_path_buf(),
        }))
        .is_ok()
}

/// The process-wide sink, if tracing is enabled (initialised from
/// `ROBUSTMAP_TRACE` on first call).  Sessions attach to this
/// automatically when it exists.
pub fn global_sink() -> Option<Arc<TraceSink>> {
    GLOBAL.get_or_init(init_from_env).as_ref().map(|g| Arc::clone(&g.sink))
}

/// Write the global trace's artifacts: the Chrome trace-event JSON at
/// the configured path, plus `<stem>_ops.csv` (operator profile) and
/// `<stem>_metrics.txt` (metrics dump) next to it.  Returns the paths
/// written, or `None` when tracing is disabled.
pub fn flush_global() -> std::io::Result<Option<Vec<PathBuf>>> {
    let Some(g) = GLOBAL.get_or_init(init_from_env).as_ref() else {
        return Ok(None);
    };
    let events = g.sink.events();
    let labels = g.sink.track_labels();
    if let Some(dir) = g.path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut written = Vec::new();
    std::fs::write(&g.path, crate::chrome::to_chrome_json(&events, &labels))?;
    written.push(g.path.clone());
    let stem = g.path.with_extension("");
    let stem = stem.to_string_lossy().into_owned();
    let ops_path = PathBuf::from(format!("{stem}_ops.csv"));
    std::fs::write(&ops_path, op_profile_csv(&events, &labels))?;
    written.push(ops_path);
    let metrics_path = PathBuf::from(format!("{stem}_metrics.txt"));
    let mut dump = g.sink.metrics().dump();
    let dropped = g.sink.dropped();
    if dropped > 0 {
        dump.push_str(&format!("counter trace.dropped {dropped}\n"));
    }
    std::fs::write(&metrics_path, dump)?;
    written.push(metrics_path);
    Ok(Some(written))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: u32, sim: f64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { track, sim, real_ns: 0, kind }
    }

    #[test]
    fn null_sink_records_nothing() {
        let sink = TraceSink::Null;
        assert!(!sink.is_enabled());
        assert_eq!(sink.alloc_track("q0"), 0);
        sink.emit(0, 1.0, TraceEventKind::PageWrite);
        assert_eq!(sink.event_count(), 0);
        assert!(sink.metrics().is_empty());
    }

    #[test]
    fn memory_sink_records_events_and_metrics() {
        let sink = TraceSink::memory(TraceDetail::Spans);
        let t = sink.alloc_track("q0");
        sink.emit(t, 0.0, TraceEventKind::OpBegin { name: "scan".into(), depth: 0 });
        sink.emit(t, 0.5, TraceEventKind::IoWindow { reads: 3, hits: 1, writes: 0 });
        sink.emit(t, 1.0, TraceEventKind::OpEnd { name: "scan".into(), depth: 0, rows: 7 });
        assert_eq!(sink.event_count(), 3);
        let m = sink.metrics();
        assert_eq!(m.counter("trace.events"), 3);
        assert_eq!(m.counter("exec.operators"), 1);
        assert_eq!(m.counter("io.window.reads"), 3);
        assert_eq!(m.histogram("quantum.page_touches").unwrap().count(), 1);
        assert_eq!(sink.track_labels(), vec!["q0".to_string()]);
        assert!(validate_trace(&sink.events()).is_ok());
    }

    #[test]
    fn event_cap_counts_drops_but_keeps_metrics() {
        let sink = TraceSink::memory_with_cap(TraceDetail::Spans, 2);
        for _ in 0..5 {
            sink.emit(0, 0.0, TraceEventKind::PageWrite);
        }
        assert_eq!(sink.event_count(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.metrics().counter("io.page_writes"), 5);
    }

    #[test]
    fn validate_catches_unbalanced_spans() {
        let open = vec![ev(0, 0.0, TraceEventKind::OpBegin { name: "s".into(), depth: 0 })];
        assert!(validate_trace(&open).unwrap_err().contains("never closed"));

        let crossed = vec![
            ev(0, 0.0, TraceEventKind::OpBegin { name: "a".into(), depth: 0 }),
            ev(0, 0.1, TraceEventKind::OpBegin { name: "b".into(), depth: 1 }),
            ev(0, 0.2, TraceEventKind::OpEnd { name: "a".into(), depth: 0, rows: 0 }),
        ];
        assert!(validate_trace(&crossed).unwrap_err().contains("does not match"));

        let stray = vec![ev(0, 0.0, TraceEventKind::OpEnd { name: "x".into(), depth: 0, rows: 0 })];
        assert!(validate_trace(&stray).unwrap_err().contains("no open span"));
    }

    #[test]
    fn validate_catches_backwards_sim_but_allows_reset() {
        let backwards = vec![
            ev(0, 1.0, TraceEventKind::PageWrite),
            ev(0, 0.5, TraceEventKind::PageWrite),
        ];
        assert!(validate_trace(&backwards).unwrap_err().contains("backwards"));

        let reset = vec![
            ev(0, 1.0, TraceEventKind::PageWrite),
            ev(0, 1.0, TraceEventKind::SessionReset),
            ev(0, 0.1, TraceEventKind::PageWrite),
        ];
        assert!(validate_trace(&reset).is_ok());

        // Different domains on one track have independent watermarks.
        let mixed = vec![
            ev(0, 5.0, TraceEventKind::SliceBegin),
            ev(0, 0.1, TraceEventKind::PageWrite),
            ev(0, 6.0, TraceEventKind::SliceEnd),
        ];
        assert!(validate_trace(&mixed).is_ok());
    }

    #[test]
    fn slice_totals_sum_durations() {
        let events = vec![
            ev(0, 0.0, TraceEventKind::SliceBegin),
            ev(0, 1.0, TraceEventKind::SliceEnd),
            ev(1, 1.0, TraceEventKind::SliceBegin),
            ev(1, 1.5, TraceEventKind::SliceEnd),
            ev(0, 1.5, TraceEventKind::SliceBegin),
            ev(0, 3.5, TraceEventKind::SliceEnd),
        ];
        let totals = slice_totals(&events);
        assert_eq!(totals.get(&0), Some(&3.0));
        assert_eq!(totals.get(&1), Some(&0.5));
    }

    #[test]
    fn op_profile_quotes_commas() {
        let events = vec![
            ev(0, 0.0, TraceEventKind::OpBegin { name: "scan(t, a<=x)".into(), depth: 0 }),
            ev(0, 2.0, TraceEventKind::OpEnd { name: "scan(t, a<=x)".into(), depth: 0, rows: 9 }),
        ];
        let csv = op_profile_csv(&events, &["q0: demo".to_string()]);
        assert!(csv.starts_with("track,query,depth,op,rows,sim_seconds\n"));
        assert!(csv.contains("\"scan(t, a<=x)\""));
        assert!(csv.contains(",9,2.000000000"));
    }
}
