//! Property tests for trace well-formedness: randomly generated but
//! structurally valid emission schedules must always validate, their
//! Chrome export must round-trip through the minimal JSON parser with
//! begin/end balance intact, and random corruptions must be caught.

use proptest::prelude::*;
use robustmap_obs::chrome::{parse_chrome_trace, to_chrome_json};
use robustmap_obs::trace::{validate_trace, TraceDetail, TraceEventKind, TraceSink};

/// Drive a sink through `plan`: per track, a sequence of operator
/// frames (depth-first), each frame charging a little sim time, with
/// instants sprinkled in.  Returns the sink.
fn emit_schedule(plan: &[(u8, Vec<u8>)]) -> TraceSink {
    let sink = TraceSink::memory(TraceDetail::Spans);
    for (qi, (extra, frames)) in plan.iter().enumerate() {
        let t = sink.alloc_track(&format!("q{qi}"));
        let mut sim = 0.0f64;
        let mut open: Vec<(String, u32)> = Vec::new();
        for (fi, f) in frames.iter().enumerate() {
            // Open a span at the current depth, sometimes nest deeper.
            let name = format!("op{fi}(sel<={})", f % 7);
            let depth = open.len() as u32;
            sink.emit(t, sim, TraceEventKind::OpBegin { name: name.clone(), depth });
            open.push((name, depth));
            sim += 0.001 * (1.0 + *f as f64);
            if f % 3 == 0 {
                sink.emit(
                    t,
                    sim,
                    TraceEventKind::IoWindow { reads: *f as u64, hits: (*f / 2) as u64, writes: 0 },
                );
            }
            // Close some spans (always at least leave the stack valid).
            if f % 2 == 1 {
                while let Some((n, d)) = open.pop() {
                    sink.emit(t, sim, TraceEventKind::OpEnd { name: n, depth: d, rows: *f as u64 });
                    if d as usize <= (*extra % 3) as usize {
                        break;
                    }
                }
            }
        }
        while let Some((n, d)) = open.pop() {
            sim += 0.0005;
            sink.emit(t, sim, TraceEventKind::OpEnd { name: n, depth: d, rows: 0 });
        }
    }
    sink
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structurally_valid_schedules_validate_and_round_trip(
        plan in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..12)),
            1..4,
        )
    ) {
        let sink = emit_schedule(&plan);
        let events = sink.events();

        // Well-formed by construction: nested spans, monotone sim.
        prop_assert!(validate_trace(&events).is_ok(),
            "validate failed: {:?}", validate_trace(&events));

        // Chrome export parses back, with B/E balance preserved.
        let json = to_chrome_json(&events, &sink.track_labels());
        let parsed = parse_chrome_trace(&json);
        prop_assert!(parsed.is_ok(), "chrome parse failed: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        let begins = parsed.iter().filter(|e| e.ph == "B").count();
        let ends = parsed.iter().filter(|e| e.ph == "E").count();
        prop_assert_eq!(begins, ends);
        let src_begins = events.iter()
            .filter(|e| matches!(e.kind, TraceEventKind::OpBegin { .. }))
            .count();
        prop_assert_eq!(begins, src_begins);

        // Non-metadata parsed events == emitted events.
        let non_meta = parsed.iter().filter(|e| e.ph != "M").count();
        prop_assert_eq!(non_meta, events.len());

        // Parsed timestamps are monotone per (pid, tid) for span events,
        // mirroring the source invariant (ts is sim * 1e6).
        let mut last: std::collections::BTreeMap<(u64, u32), f64> = Default::default();
        for e in parsed.iter().filter(|e| e.ph == "B" || e.ph == "E") {
            let w = last.entry((e.pid, e.tid)).or_insert(f64::NEG_INFINITY);
            prop_assert!(e.ts >= *w, "ts went backwards on ({}, {})", e.pid, e.tid);
            *w = e.ts;
        }
    }

    #[test]
    fn corrupted_streams_are_rejected(
        frames in proptest::collection::vec(any::<u8>(), 1..10),
        which in 0..3u32,
    ) {
        let sink = emit_schedule(&[(0, frames)]);
        let mut events = sink.events();
        // Corrupt the stream in one of three ways; validation must
        // reject every one of them.
        match which {
            0 => {
                // Drop the final OpEnd: leaves a span open.
                let last_end = events.iter().rposition(
                    |e| matches!(e.kind, TraceEventKind::OpEnd { .. }));
                if let Some(i) = last_end { events.remove(i); } else { return Ok(()); }
            }
            1 => {
                // Duplicate an OpEnd: stray end with no open span.
                let last_end = events.iter().rposition(
                    |e| matches!(e.kind, TraceEventKind::OpEnd { .. }));
                if let Some(i) = last_end {
                    let dup = events[i].clone();
                    events.push(dup);
                } else { return Ok(()); }
            }
            _ => {
                // Time warp: shove the first event far into the future.
                if events.len() < 2 { return Ok(()); }
                events[0].sim = 1e12;
                // Guard: only meaningful if event 0 shares (track,
                // domain) with a later event.
                let d0 = events[0].kind.domain();
                if !events[1..].iter().any(
                    |e| e.track == events[0].track && e.kind.domain() == d0) {
                    return Ok(());
                }
            }
        }
        prop_assert!(validate_trace(&events).is_err());
    }
}

#[test]
fn fixed_chrome_document_parses() {
    // A hand-written fixture in the wild format (array form is NOT
    // supported — we always write object form, so we only parse it).
    let doc = r#"{"traceEvents":[
        {"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"p"}},
        {"ph":"B","pid":2,"tid":0,"ts":0,"name":"op","cat":"op","args":{}},
        {"ph":"E","pid":2,"tid":0,"ts":1500.5,"name":"op","cat":"op","args":{}}
    ],"displayTimeUnit":"ms"}"#;
    let events = parse_chrome_trace(doc).unwrap();
    assert_eq!(events.len(), 3);
    assert_eq!(events[2].ts, 1500.5);
}

#[test]
fn empty_trace_exports_and_validates() {
    let sink = TraceSink::memory(TraceDetail::Spans);
    let events = sink.events();
    assert!(validate_trace(&events).is_ok());
    let json = to_chrome_json(&events, &sink.track_labels());
    let parsed = parse_chrome_trace(&json).unwrap();
    assert!(parsed.iter().all(|e| e.ph == "M"));
}
