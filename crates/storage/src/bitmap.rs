//! Row-id bitmaps.
//!
//! System B in the paper (Figure 8) sorts the rows to be fetched "very
//! efficiently using a bitmap": qualifying rids are set in a bitmap and then
//! enumerated in physical order, converting random fetches into an in-order
//! sweep.  Bitmaps also implement index intersection ("bitmap-driven ...
//! intersection", §3.1).
//!
//! The implementation is a two-level structure: fixed 1024-bit chunks in a
//! sorted sparse directory, supporting set/test, union, intersection,
//! difference and in-order iteration.

use crate::heap::Rid;

const CHUNK_BITS: usize = 1024;
const WORDS_PER_CHUNK: usize = CHUNK_BITS / 64;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Chunk {
    /// Index of the chunk: bit `b` lives in chunk `b / CHUNK_BITS`.
    base: u64,
    words: [u64; WORDS_PER_CHUNK],
}

impl Chunk {
    fn new(base: u64) -> Self {
        Chunk { base, words: [0; WORDS_PER_CHUNK] }
    }

    fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// A sparse bitmap over rid positions.
///
/// Positions are packed rids (see [`RidBitmap::from_rids`]) or any other
/// dense numbering; the structure is agnostic.  Chunks are kept sorted by base,
/// so iteration yields positions in increasing order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RidBitmap {
    chunks: Vec<Chunk>,
}

impl RidBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from rids using their packed `u64` encoding (keeps `(page,
    /// slot)` order).  Rids need not be sorted or unique.
    ///
    /// Bulk construction sorts the packed positions once and appends
    /// chunks in order: inserting scattered rids directly into the sorted
    /// chunk vector (as [`RidBitmap::set`] does) would shift the directory
    /// on every new chunk — quadratic in chunk count, and rid lists
    /// arriving in key order touch pages in effectively random order.  The
    /// resulting bitmap is identical either way; this is a real-time
    /// optimization only (bitmap work is charged separately, via
    /// [`crate::SimClock::charge_hashes`], by the operators that use it).
    pub fn from_rids(rids: impl IntoIterator<Item = Rid>) -> Self {
        let mut positions: Vec<u64> = rids.into_iter().map(|r| r.to_u64()).collect();
        positions.sort_unstable();
        let mut chunks: Vec<Chunk> = Vec::new();
        for pos in positions {
            let base = pos / CHUNK_BITS as u64;
            let offset = (pos % CHUNK_BITS as u64) as usize;
            match chunks.last_mut() {
                Some(chunk) if chunk.base == base => {
                    chunk.words[offset / 64] |= 1u64 << (offset % 64);
                }
                _ => {
                    let mut chunk = Chunk::new(base);
                    chunk.words[offset / 64] |= 1u64 << (offset % 64);
                    chunks.push(chunk);
                }
            }
        }
        RidBitmap { chunks }
    }

    fn chunk_index(&self, base: u64) -> Result<usize, usize> {
        self.chunks.binary_search_by_key(&base, |c| c.base)
    }

    /// Set bit `pos`.  Returns `true` if it was newly set.
    pub fn set(&mut self, pos: u64) -> bool {
        let base = pos / CHUNK_BITS as u64;
        let offset = (pos % CHUNK_BITS as u64) as usize;
        let idx = match self.chunk_index(base) {
            Ok(i) => i,
            Err(i) => {
                self.chunks.insert(i, Chunk::new(base));
                i
            }
        };
        let word = &mut self.chunks[idx].words[offset / 64];
        let mask = 1u64 << (offset % 64);
        let newly = *word & mask == 0;
        *word |= mask;
        newly
    }

    /// Test bit `pos`.
    pub fn contains(&self, pos: u64) -> bool {
        let base = pos / CHUNK_BITS as u64;
        let offset = (pos % CHUNK_BITS as u64) as usize;
        match self.chunk_index(base) {
            Ok(i) => self.chunks[i].words[offset / 64] & (1u64 << (offset % 64)) != 0,
            Err(_) => false,
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.chunks.iter().map(Chunk::count).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(Chunk::is_empty)
    }

    /// Bitwise AND.
    pub fn and(&self, other: &RidBitmap) -> RidBitmap {
        let mut out = RidBitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() && j < other.chunks.len() {
            match self.chunks[i].base.cmp(&other.chunks[j].base) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let mut chunk = Chunk::new(self.chunks[i].base);
                    for w in 0..WORDS_PER_CHUNK {
                        chunk.words[w] = self.chunks[i].words[w] & other.chunks[j].words[w];
                    }
                    if !chunk.is_empty() {
                        out.chunks.push(chunk);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Bitwise OR.
    pub fn or(&self, other: &RidBitmap) -> RidBitmap {
        let mut out = RidBitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.chunks.len() || j < other.chunks.len() {
            let take_left = match (self.chunks.get(i), other.chunks.get(j)) {
                (Some(a), Some(b)) => a.base.cmp(&b.base),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => unreachable!(),
            };
            match take_left {
                std::cmp::Ordering::Less => {
                    out.chunks.push(self.chunks[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.chunks.push(other.chunks[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let mut chunk = Chunk::new(self.chunks[i].base);
                    for w in 0..WORDS_PER_CHUNK {
                        chunk.words[w] = self.chunks[i].words[w] | other.chunks[j].words[w];
                    }
                    out.chunks.push(chunk);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Bitwise AND-NOT (`self - other`).
    pub fn and_not(&self, other: &RidBitmap) -> RidBitmap {
        let mut out = RidBitmap::new();
        for chunk in &self.chunks {
            match other.chunk_index(chunk.base) {
                Err(_) => {
                    if !chunk.is_empty() {
                        out.chunks.push(chunk.clone());
                    }
                }
                Ok(j) => {
                    let mut c = Chunk::new(chunk.base);
                    for w in 0..WORDS_PER_CHUNK {
                        c.words[w] = chunk.words[w] & !other.chunks[j].words[w];
                    }
                    if !c.is_empty() {
                        out.chunks.push(c);
                    }
                }
            }
        }
        out
    }

    /// Iterate set positions in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.chunks.iter().flat_map(|chunk| {
            (0..WORDS_PER_CHUNK).flat_map(move |w| {
                let word = chunk.words[w];
                BitIter { word }.map(move |bit| {
                    chunk.base * CHUNK_BITS as u64 + (w * 64) as u64 + bit as u64
                })
            })
        })
    }

    /// Iterate set positions decoded back to [`Rid`]s (inverse of
    /// [`RidBitmap::from_rids`]), in `(page, slot)` order.
    pub fn iter_rids(&self) -> impl Iterator<Item = Rid> + '_ {
        self.iter().map(Rid::from_u64)
    }

    /// Approximate bytes this bitmap occupies (memory-budget accounting).
    pub fn memory_bytes(&self) -> usize {
        self.chunks.len() * std::mem::size_of::<Chunk>()
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(bit)
    }
}

impl FromIterator<u64> for RidBitmap {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut bm = RidBitmap::new();
        for pos in iter {
            bm.set(pos);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_count() {
        let mut bm = RidBitmap::new();
        assert!(bm.is_empty());
        assert!(bm.set(5));
        assert!(bm.set(100_000));
        assert!(!bm.set(5));
        assert!(bm.contains(5));
        assert!(bm.contains(100_000));
        assert!(!bm.contains(6));
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn iter_is_sorted_even_for_unsorted_inserts() {
        let positions = [99u64, 3, 2048, 1, 70_000, 1023, 1024];
        let bm: RidBitmap = positions.iter().copied().collect();
        let got: Vec<u64> = bm.iter().collect();
        let mut want = positions.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn and_or_andnot_match_set_algebra() {
        use std::collections::BTreeSet;
        let a: Vec<u64> = (0..2000).filter(|x| x % 3 == 0).collect();
        let b: Vec<u64> = (0..2000).filter(|x| x % 5 == 0).collect();
        let (sa, sb): (BTreeSet<u64>, BTreeSet<u64>) =
            (a.iter().copied().collect(), b.iter().copied().collect());
        let (ba, bb): (RidBitmap, RidBitmap) =
            (a.into_iter().collect(), b.into_iter().collect());

        let and: Vec<u64> = ba.and(&bb).iter().collect();
        assert_eq!(and, sa.intersection(&sb).copied().collect::<Vec<_>>());
        let or: Vec<u64> = ba.or(&bb).iter().collect();
        assert_eq!(or, sa.union(&sb).copied().collect::<Vec<_>>());
        let not: Vec<u64> = ba.and_not(&bb).iter().collect();
        assert_eq!(not, sa.difference(&sb).copied().collect::<Vec<_>>());
    }

    #[test]
    fn rid_roundtrip_in_physical_order() {
        let rids = vec![Rid::new(3, 1), Rid::new(0, 2), Rid::new(0, 1), Rid::new(2, 9)];
        let bm = RidBitmap::from_rids(rids.clone());
        let got: Vec<Rid> = bm.iter_rids().collect();
        let mut want = rids;
        want.sort();
        assert_eq!(got, want);
        assert_eq!(bm.count(), 4);
    }

    #[test]
    fn empty_operands() {
        let a: RidBitmap = [1u64, 2, 3].into_iter().collect();
        let empty = RidBitmap::new();
        assert_eq!(a.and(&empty).count(), 0);
        assert_eq!(a.or(&empty), a);
        assert_eq!(a.and_not(&empty), a);
        assert_eq!(empty.and_not(&a).count(), 0);
    }

    #[test]
    fn chunk_boundaries() {
        let edge = [1023u64, 1024, 2047, 2048];
        let bm: RidBitmap = edge.into_iter().collect();
        assert_eq!(bm.iter().collect::<Vec<_>>(), edge.to_vec());
        for p in edge {
            assert!(bm.contains(p));
        }
        assert!(!bm.contains(1022));
        assert!(!bm.contains(2049));
    }

    #[test]
    fn memory_grows_with_spread() {
        let dense: RidBitmap = (0..1000u64).collect();
        let sparse: RidBitmap = (0..1000u64).map(|i| i * 10_000).collect();
        assert!(sparse.memory_bytes() > dense.memory_bytes());
    }
}
