//! B+-trees with single- and multi-column keys.
//!
//! Non-clustered indexes map composite keys to [`Rid`]s.  The tree is a real
//! dynamic structure — bulk load, inserts with node splits, deletes with
//! borrow/merge rebalancing, linked leaves, range cursors — and every node
//! visit is charged to the session as a page access, with upper levels
//! naturally staying hot in the buffer pool.
//!
//! Keys hold up to [`MAX_KEY_COLS`] `i64` values inline.  Duplicate keys are
//! allowed; entries order by `(key, rid)`.  Open-ended and prefix bounds use
//! `i64::MIN` / `i64::MAX` padding (see [`Key::padded_lo`] / [`Key::padded_hi`]),
//! which is what the MDAM operator uses to build per-column sub-ranges.

use crate::buffer::{FileId, PageId};
use crate::heap::Rid;
use crate::session::Session;
use crate::sim::AccessKind;

/// Maximum number of key columns in an index.
pub const MAX_KEY_COLS: usize = 3;

/// A composite index key of up to [`MAX_KEY_COLS`] values, stored inline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    vals: [i64; MAX_KEY_COLS],
    len: u8,
}

impl Key {
    /// Build a key from a slice of column values.
    ///
    /// # Panics
    /// Panics if `vals` is empty or longer than [`MAX_KEY_COLS`].
    pub fn new(vals: &[i64]) -> Self {
        assert!(!vals.is_empty() && vals.len() <= MAX_KEY_COLS, "bad key arity");
        let mut k = Key { vals: [0; MAX_KEY_COLS], len: vals.len() as u8 };
        k.vals[..vals.len()].copy_from_slice(vals);
        k
    }

    /// Single-column key.
    pub fn single(v: i64) -> Self {
        Key::new(&[v])
    }

    /// Two-column key.
    pub fn pair(a: i64, b: i64) -> Self {
        Key::new(&[a, b])
    }

    /// Number of key columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.len as usize
    }

    /// The key values.
    #[inline]
    pub fn values(&self) -> &[i64] {
        &self.vals[..self.len as usize]
    }

    /// Value of key column `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        assert!(i < self.arity());
        self.vals[i]
    }

    /// A `target_arity`-column key that sorts before every real key sharing
    /// the given prefix (remaining columns padded with `i64::MIN`).
    pub fn padded_lo(prefix: &[i64], target_arity: usize) -> Self {
        assert!(prefix.len() <= target_arity && target_arity <= MAX_KEY_COLS);
        let mut vals = [i64::MIN; MAX_KEY_COLS];
        vals[..prefix.len()].copy_from_slice(prefix);
        Key { vals, len: target_arity as u8 }
    }

    /// A `target_arity`-column key that sorts after every real key sharing
    /// the given prefix (remaining columns padded with `i64::MAX`).
    pub fn padded_hi(prefix: &[i64], target_arity: usize) -> Self {
        assert!(prefix.len() <= target_arity && target_arity <= MAX_KEY_COLS);
        let mut vals = [i64::MAX; MAX_KEY_COLS];
        vals[..prefix.len()].copy_from_slice(prefix);
        Key { vals, len: target_arity as u8 }
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.values().iter()).finish()
    }
}

/// An index entry: `(key, rid)`, the unit the tree stores and orders by.
pub type Entry = (Key, Rid);

type NodeId = u32;
const NO_NODE: NodeId = u32::MAX;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// `seps[i]` is the smallest entry reachable under `children[i + 1]`.
        seps: Vec<Entry>,
        children: Vec<NodeId>,
    },
    Leaf {
        entries: Vec<Entry>,
        next: NodeId,
    },
    /// Freed node, threaded on the free list.
    Free { next_free: NodeId },
}

/// Result of a recursive insert: a split produced a new right sibling.
struct Split {
    sep: Entry,
    right: NodeId,
}

/// A B+-tree index from composite keys to rids.
pub struct BTree {
    file: FileId,
    nodes: Vec<Node>,
    free_head: NodeId,
    root: NodeId,
    height: u32,
    len: u64,
    key_arity: usize,
    leaf_cap: usize,
    internal_cap: usize,
}

/// Default maximum entries per leaf (≈ 8 KiB page / 24-byte entries, with
/// headroom for slot overhead).
pub const DEFAULT_LEAF_CAP: usize = 256;
/// Default maximum children per internal node.
pub const DEFAULT_INTERNAL_CAP: usize = 256;

impl BTree {
    /// An empty tree for `key_arity`-column keys.
    pub fn new(file: FileId, key_arity: usize) -> Self {
        Self::with_caps(file, key_arity, DEFAULT_LEAF_CAP, DEFAULT_INTERNAL_CAP)
    }

    /// An empty tree with explicit node capacities (small capacities make
    /// rebalancing easy to exercise in tests).
    pub fn with_caps(file: FileId, key_arity: usize, leaf_cap: usize, internal_cap: usize) -> Self {
        assert!((1..=MAX_KEY_COLS).contains(&key_arity));
        assert!(leaf_cap >= 2 && internal_cap >= 3, "caps too small to split");
        let mut tree = BTree {
            file,
            nodes: Vec::new(),
            free_head: NO_NODE,
            root: 0,
            height: 1,
            len: 0,
            key_arity,
            leaf_cap,
            internal_cap,
        };
        tree.root = tree.alloc(Node::Leaf { entries: Vec::new(), next: NO_NODE });
        tree
    }

    /// Bulk-load a tree from entries that must be sorted by `(key, rid)`.
    ///
    /// Leaves are packed to `fill` (e.g. 0.9) and allocated consecutively,
    /// so a full leaf scan reads sequential page ids — matching a freshly
    /// built index on disk.
    ///
    /// # Panics
    /// Panics if entries are not sorted or `fill` is not in `(0, 1]`.
    pub fn bulk_load(file: FileId, key_arity: usize, entries: &[Entry], fill: f64) -> Self {
        Self::bulk_load_with_caps(file, key_arity, entries, fill, DEFAULT_LEAF_CAP, DEFAULT_INTERNAL_CAP)
    }

    /// [`BTree::bulk_load`] with explicit node capacities.
    pub fn bulk_load_with_caps(
        file: FileId,
        key_arity: usize,
        entries: &[Entry],
        fill: f64,
        leaf_cap: usize,
        internal_cap: usize,
    ) -> Self {
        assert!(fill > 0.0 && fill <= 1.0, "fill factor out of range");
        let mut tree = BTree::with_caps(file, key_arity, leaf_cap, internal_cap);
        if entries.is_empty() {
            return tree;
        }
        debug_assert!(entries.windows(2).all(|w| w[0] < w[1]), "bulk_load input not sorted");
        tree.nodes.clear();
        tree.free_head = NO_NODE;

        let per_leaf = ((leaf_cap as f64 * fill) as usize).clamp(1, leaf_cap);
        // Build leaves, consecutively numbered from 0.  Group sizes are
        // balanced so that no leaf (except a lone root) falls below minimum
        // occupancy — a naive "fill then spill" would leave a tiny last leaf.
        let mut level: Vec<(Entry, NodeId)> = Vec::new();
        let sizes = balanced_group_sizes(entries.len(), per_leaf, leaf_cap / 2);
        let mut offset = 0;
        for (i, &size) in sizes.iter().enumerate() {
            let chunk = &entries[offset..offset + size];
            offset += size;
            let id = tree.nodes.len() as NodeId;
            let next = if i + 1 < sizes.len() { id + 1 } else { NO_NODE };
            tree.nodes.push(Node::Leaf { entries: chunk.to_vec(), next });
            level.push((chunk[0], id));
        }
        tree.height = 1;
        // Build internal levels bottom-up.
        let per_internal = ((internal_cap as f64 * fill) as usize).clamp(2, internal_cap);
        while level.len() > 1 {
            let mut upper: Vec<(Entry, NodeId)> = Vec::new();
            let sizes = balanced_group_sizes(
                level.len(),
                per_internal,
                internal_cap.div_ceil(2),
            );
            let mut offset = 0;
            for &size in &sizes {
                let group = &level[offset..offset + size];
                offset += size;
                let children: Vec<NodeId> = group.iter().map(|&(_, id)| id).collect();
                let seps: Vec<Entry> = group[1..].iter().map(|&(sep, _)| sep).collect();
                let id = tree.alloc(Node::Internal { seps, children });
                upper.push((group[0].0, id));
            }
            level = upper;
            tree.height += 1;
        }
        tree.root = level[0].1;
        tree.len = entries.len() as u64;
        tree
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of key columns.
    pub fn key_arity(&self) -> usize {
        self.key_arity
    }

    /// Number of allocated nodes (≈ pages), including internal nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !matches!(n, Node::Free { .. })).count()
    }

    /// The file id used for this tree's pages.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if self.free_head != NO_NODE {
            let id = self.free_head;
            match self.nodes[id as usize] {
                Node::Free { next_free } => self.free_head = next_free,
                _ => unreachable!("free list corrupt"),
            }
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeId
        }
    }

    fn release(&mut self, id: NodeId) {
        self.nodes[id as usize] = Node::Free { next_free: self.free_head };
        self.free_head = id;
    }

    fn page_id(&self, node: NodeId) -> PageId {
        PageId::new(self.file, node)
    }

    #[inline]
    fn touch(&self, node: NodeId, session: &Session, kind: AccessKind) {
        session.read_page(self.page_id(node), kind);
    }

    fn check_key(&self, key: &Key) {
        assert_eq!(key.arity(), self.key_arity, "key arity mismatch");
    }

    /// Binary search within a leaf: index of the first entry `>= target`.
    /// Charges comparisons to the session.
    fn search_entries(entries: &[Entry], target: &Entry, session: &Session) -> usize {
        let n = entries.len().max(1);
        session.charge_compares((usize::BITS - n.leading_zeros()) as u64);
        entries.partition_point(|e| e < target)
    }

    /// Binary search within an internal node: the child slot to descend
    /// into.  An entry equal to `seps[i]` lives under `children[i + 1]`
    /// (separators are the smallest entry of their right subtree), so the
    /// descent uses `<=`.
    fn search_children(seps: &[Entry], target: &Entry, session: &Session) -> usize {
        let n = seps.len().max(1);
        session.charge_compares((usize::BITS - n.leading_zeros()) as u64);
        seps.partition_point(|e| e <= target)
    }

    /// Insert `(key, rid)`.  Returns `false` if the exact entry was already
    /// present (the tree is a set of `(key, rid)` pairs).
    pub fn insert(&mut self, key: Key, rid: Rid, session: &Session) -> bool {
        self.check_key(&key);
        let entry = (key, rid);
        let root = self.root;
        match self.insert_rec(root, entry, session) {
            InsertOutcome::Duplicate => false,
            InsertOutcome::Done => {
                self.len += 1;
                true
            }
            InsertOutcome::Split(split) => {
                let new_root = self.alloc(Node::Internal {
                    seps: vec![split.sep],
                    children: vec![self.root, split.right],
                });
                self.root = new_root;
                self.height += 1;
                self.len += 1;
                true
            }
        }
    }

    fn insert_rec(&mut self, node: NodeId, entry: Entry, session: &Session) -> InsertOutcome {
        self.touch(node, session, AccessKind::Random);
        match &mut self.nodes[node as usize] {
            Node::Leaf { entries, next } => {
                let idx = Self::search_entries(entries, &entry, session);
                if entries.get(idx) == Some(&entry) {
                    return InsertOutcome::Duplicate;
                }
                entries.insert(idx, entry);
                if entries.len() <= self.leaf_cap {
                    return InsertOutcome::Done;
                }
                // Split the leaf in half.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0];
                let old_next = *next;
                let right = self.alloc(Node::Leaf { entries: right_entries, next: old_next });
                match &mut self.nodes[node as usize] {
                    Node::Leaf { next, .. } => *next = right,
                    _ => unreachable!(),
                }
                InsertOutcome::Split(Split { sep, right })
            }
            Node::Internal { seps, children } => {
                let slot = Self::search_children(seps, &entry, session);
                let child = children[slot];
                match self.insert_rec(child, entry, session) {
                    InsertOutcome::Split(split) => {
                        match &mut self.nodes[node as usize] {
                            Node::Internal { seps, children } => {
                                seps.insert(slot, split.sep);
                                children.insert(slot + 1, split.right);
                                if children.len() <= self.internal_cap {
                                    return InsertOutcome::Done;
                                }
                                // Split the internal node; middle separator
                                // moves up.
                                let mid = seps.len() / 2;
                                let up_sep = seps[mid];
                                let right_seps = seps.split_off(mid + 1);
                                seps.pop(); // remove up_sep
                                let right_children = children.split_off(mid + 1);
                                let right = self.alloc(Node::Internal {
                                    seps: right_seps,
                                    children: right_children,
                                });
                                InsertOutcome::Split(Split { sep: up_sep, right })
                            }
                            _ => unreachable!(),
                        }
                    }
                    other => other,
                }
            }
            Node::Free { .. } => unreachable!("descended into freed node"),
        }
    }

    /// Delete `(key, rid)`.  Returns `true` if the entry existed.
    pub fn delete(&mut self, key: Key, rid: Rid, session: &Session) -> bool {
        self.check_key(&key);
        let entry = (key, rid);
        let root = self.root;
        let removed = self.delete_rec(root, &entry, session);
        if removed {
            self.len -= 1;
            // Collapse the root if it became trivial.
            loop {
                match &self.nodes[self.root as usize] {
                    Node::Internal { children, .. } if children.len() == 1 => {
                        let child = children[0];
                        let old_root = self.root;
                        self.root = child;
                        self.release(old_root);
                        self.height -= 1;
                    }
                    _ => break,
                }
            }
        }
        removed
    }

    fn leaf_min_occupancy(&self) -> usize {
        self.leaf_cap / 2
    }

    fn internal_min_children(&self) -> usize {
        self.internal_cap.div_ceil(2)
    }

    fn delete_rec(&mut self, node: NodeId, entry: &Entry, session: &Session) -> bool {
        self.touch(node, session, AccessKind::Random);
        match &mut self.nodes[node as usize] {
            Node::Leaf { entries, .. } => {
                let idx = Self::search_entries(entries, entry, session);
                if entries.get(idx) == Some(entry) {
                    entries.remove(idx);
                    true
                } else {
                    false
                }
            }
            Node::Internal { seps, children } => {
                let slot = Self::search_children(seps, entry, session);
                let child = children[slot];
                let removed = self.delete_rec(child, entry, session);
                if removed {
                    self.fix_underflow(node, slot, session);
                }
                removed
            }
            Node::Free { .. } => unreachable!("descended into freed node"),
        }
    }

    /// After deleting under `parent.children[slot]`, rebalance that child if
    /// it fell below minimum occupancy, by borrowing from or merging with a
    /// sibling.
    fn fix_underflow(&mut self, parent: NodeId, slot: usize, session: &Session) {
        let (child, child_size, child_is_leaf) = {
            let children = match &self.nodes[parent as usize] {
                Node::Internal { children, .. } => children,
                _ => unreachable!(),
            };
            let child = children[slot];
            match &self.nodes[child as usize] {
                Node::Leaf { entries, .. } => (child, entries.len(), true),
                Node::Internal { children: c, .. } => (child, c.len(), false),
                Node::Free { .. } => unreachable!(),
            }
        };
        let min = if child_is_leaf { self.leaf_min_occupancy() } else { self.internal_min_children() };
        if child_size >= min {
            return;
        }
        let sibling_count = match &self.nodes[parent as usize] {
            Node::Internal { children, .. } => children.len(),
            _ => unreachable!(),
        };
        // Prefer the left sibling; fall back to the right.
        let (left_slot, right_slot) = if slot > 0 { (slot - 1, slot) } else { (slot, slot + 1) };
        debug_assert!(right_slot < sibling_count, "internal node with a single child");
        let (left, right) = {
            let children = match &self.nodes[parent as usize] {
                Node::Internal { children, .. } => children,
                _ => unreachable!(),
            };
            (children[left_slot], children[right_slot])
        };
        self.touch(if left == child { right } else { left }, session, AccessKind::Random);

        let sep_idx = left_slot; // separator between left and right
        if child_is_leaf {
            self.rebalance_leaves(parent, sep_idx, left, right);
        } else {
            self.rebalance_internals(parent, sep_idx, left, right);
        }
    }

    fn rebalance_leaves(&mut self, parent: NodeId, sep_idx: usize, left: NodeId, right: NodeId) {
        let (mut left_entries, left_next) = match std::mem::replace(
            &mut self.nodes[left as usize],
            Node::Free { next_free: NO_NODE },
        ) {
            Node::Leaf { entries, next } => (entries, next),
            _ => unreachable!(),
        };
        let (mut right_entries, right_next) = match std::mem::replace(
            &mut self.nodes[right as usize],
            Node::Free { next_free: NO_NODE },
        ) {
            Node::Leaf { entries, next } => (entries, next),
            _ => unreachable!(),
        };
        let min = self.leaf_min_occupancy();
        if left_entries.len() + right_entries.len() <= self.leaf_cap {
            // Merge right into left; drop right.
            left_entries.extend(right_entries);
            self.nodes[left as usize] = Node::Leaf { entries: left_entries, next: right_next };
            self.release(right);
            match &mut self.nodes[parent as usize] {
                Node::Internal { seps, children } => {
                    seps.remove(sep_idx);
                    children.remove(sep_idx + 1);
                }
                _ => unreachable!(),
            }
        } else {
            // Redistribute evenly; both sides end up >= min.
            let total = left_entries.len() + right_entries.len();
            let target_left = total / 2;
            if left_entries.len() > target_left {
                let moved: Vec<Entry> = left_entries.split_off(target_left);
                let mut merged = moved;
                merged.extend(right_entries);
                right_entries = merged;
            } else {
                let need = target_left - left_entries.len();
                left_entries.extend(right_entries.drain(..need));
            }
            debug_assert!(left_entries.len() >= min && right_entries.len() >= min);
            let new_sep = right_entries[0];
            self.nodes[left as usize] = Node::Leaf { entries: left_entries, next: left_next };
            self.nodes[right as usize] = Node::Leaf { entries: right_entries, next: right_next };
            match &mut self.nodes[parent as usize] {
                Node::Internal { seps, .. } => seps[sep_idx] = new_sep,
                _ => unreachable!(),
            }
        }
    }

    fn rebalance_internals(&mut self, parent: NodeId, sep_idx: usize, left: NodeId, right: NodeId) {
        let parent_sep = match &self.nodes[parent as usize] {
            Node::Internal { seps, .. } => seps[sep_idx],
            _ => unreachable!(),
        };
        let (mut lseps, mut lchildren) = match std::mem::replace(
            &mut self.nodes[left as usize],
            Node::Free { next_free: NO_NODE },
        ) {
            Node::Internal { seps, children } => (seps, children),
            _ => unreachable!(),
        };
        let (mut rseps, mut rchildren) = match std::mem::replace(
            &mut self.nodes[right as usize],
            Node::Free { next_free: NO_NODE },
        ) {
            Node::Internal { seps, children } => (seps, children),
            _ => unreachable!(),
        };
        if lchildren.len() + rchildren.len() <= self.internal_cap {
            // Merge: left ++ parent_sep ++ right.
            lseps.push(parent_sep);
            lseps.extend(rseps);
            lchildren.extend(rchildren);
            self.nodes[left as usize] = Node::Internal { seps: lseps, children: lchildren };
            self.release(right);
            match &mut self.nodes[parent as usize] {
                Node::Internal { seps, children } => {
                    seps.remove(sep_idx);
                    children.remove(sep_idx + 1);
                }
                _ => unreachable!(),
            }
        } else {
            // Rotate through the parent separator until balanced.
            let total = lchildren.len() + rchildren.len();
            let target_left = total / 2;
            let mut sep = parent_sep;
            while lchildren.len() < target_left {
                // Borrow from right: sep moves down-left, right's first sep up.
                lseps.push(sep);
                lchildren.push(rchildren.remove(0));
                sep = rseps.remove(0);
            }
            while lchildren.len() > target_left {
                // Borrow from left: sep moves down-right, left's last sep up.
                rseps.insert(0, sep);
                rchildren.insert(0, lchildren.pop().expect("nonempty"));
                sep = lseps.pop().expect("nonempty");
            }
            self.nodes[left as usize] = Node::Internal { seps: lseps, children: lchildren };
            self.nodes[right as usize] = Node::Internal { seps: rseps, children: rchildren };
            match &mut self.nodes[parent as usize] {
                Node::Internal { seps, .. } => seps[sep_idx] = sep,
                _ => unreachable!(),
            }
        }
    }

    /// Point lookup: rid of the first entry whose key equals `key`.
    pub fn get_first(&self, key: &Key, session: &Session) -> Option<Rid> {
        let mut cursor = self.seek(key, session);
        match self.cursor_next(&mut cursor, session, AccessKind::SinglePage) {
            Some((k, rid)) if k == *key => Some(rid),
            _ => None,
        }
    }

    /// Position a cursor at the first entry with `(key, rid) >= (lo,
    /// Rid(0,0))`, charging the root-to-leaf descent.
    pub fn seek(&self, lo: &Key, session: &Session) -> Cursor {
        self.check_key(lo);
        let target = (*lo, Rid::new(0, 0));
        let mut node = self.root;
        loop {
            self.touch(node, session, AccessKind::Random);
            match &self.nodes[node as usize] {
                Node::Internal { seps, children } => {
                    let slot = Self::search_children(seps, &target, session);
                    node = children[slot];
                }
                Node::Leaf { entries, .. } => {
                    let idx = Self::search_entries(entries, &target, session);
                    return Cursor { leaf: node, idx, descents: 1 };
                }
                Node::Free { .. } => unreachable!("descended into freed node"),
            }
        }
    }

    /// A cursor at the leftmost entry (full index scan).
    pub fn seek_first(&self, session: &Session) -> Cursor {
        let lo = Key::padded_lo(&[], self.key_arity);
        self.seek(&lo, session)
    }

    /// Advance `cursor`, returning the entry it was on, or `None` at the
    /// end.  Moving to the next leaf charges one page access of
    /// `leaf_access` (leaves are laid out consecutively by bulk load, so
    /// `Sequential` models a scan with read-ahead and `SinglePage` one
    /// without).
    pub fn cursor_next(
        &self,
        cursor: &mut Cursor,
        session: &Session,
        leaf_access: AccessKind,
    ) -> Option<Entry> {
        loop {
            if cursor.leaf == NO_NODE {
                return None;
            }
            match &self.nodes[cursor.leaf as usize] {
                Node::Leaf { entries, next } => {
                    if cursor.idx < entries.len() {
                        let entry = entries[cursor.idx];
                        cursor.idx += 1;
                        session.charge_rows(1);
                        return Some(entry);
                    }
                    cursor.leaf = *next;
                    cursor.idx = 0;
                    if cursor.leaf != NO_NODE {
                        self.touch(cursor.leaf, session, leaf_access);
                    }
                }
                _ => unreachable!("cursor not on a leaf"),
            }
        }
    }

    /// Scan all entries with keys in `[lo, hi]` (inclusive, in `(key, rid)`
    /// order), calling `f` for each.  Returns the number of entries visited.
    pub fn scan_range<F: FnMut(Entry)>(
        &self,
        lo: &Key,
        hi: &Key,
        session: &Session,
        leaf_access: AccessKind,
        mut f: F,
    ) -> u64 {
        let mut cursor = self.seek(lo, session);
        let mut n = 0;
        while let Some((key, rid)) = self.cursor_next(&mut cursor, session, leaf_access) {
            if key > *hi {
                break;
            }
            f((key, rid));
            n += 1;
        }
        n
    }

    /// Collect every entry in order without charging any session (test and
    /// load-path helper).
    pub fn collect_all(&self) -> Vec<Entry> {
        let session = Session::with_pool_pages(0);
        let mut out = Vec::with_capacity(self.len as usize);
        let mut cursor = self.seek_first(&session);
        while let Some(e) = self.cursor_next(&mut cursor, &session, AccessKind::Sequential) {
            out.push(e);
        }
        out
    }

    /// Validate structural invariants; returns a description of the first
    /// violation.  Used by tests and property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        let mut leaves_in_order = Vec::new();
        self.check_node(
            self.root,
            1,
            None,
            None,
            &mut leaf_depths,
            &mut leaves_in_order,
        )?;
        if let Some(&d) = leaf_depths.first() {
            if leaf_depths.iter().any(|&x| x != d) {
                return Err("leaves at differing depths".into());
            }
            if d != self.height {
                return Err(format!("height {} but leaf depth {}", self.height, d));
            }
        }
        // Leaf chain must enumerate the same leaves in the same order.
        let mut chain = Vec::new();
        let mut node = {
            // leftmost leaf
            let mut n = self.root;
            loop {
                match &self.nodes[n as usize] {
                    Node::Internal { children, .. } => n = children[0],
                    Node::Leaf { .. } => break n,
                    Node::Free { .. } => return Err("free node reachable".into()),
                }
            }
        };
        while node != NO_NODE {
            chain.push(node);
            node = match &self.nodes[node as usize] {
                Node::Leaf { next, .. } => *next,
                _ => return Err("leaf chain hits non-leaf".into()),
            };
        }
        if chain != leaves_in_order {
            return Err("leaf chain disagrees with tree order".into());
        }
        // Entry count.
        let total: usize = chain
            .iter()
            .map(|&l| match &self.nodes[l as usize] {
                Node::Leaf { entries, .. } => entries.len(),
                _ => 0,
            })
            .sum();
        if total as u64 != self.len {
            return Err(format!("len {} but {} entries found", self.len, total));
        }
        Ok(())
    }

    fn check_node(
        &self,
        node: NodeId,
        depth: u32,
        lo: Option<&Entry>,
        hi: Option<&Entry>,
        leaf_depths: &mut Vec<u32>,
        leaves: &mut Vec<NodeId>,
    ) -> Result<(), String> {
        match &self.nodes[node as usize] {
            Node::Leaf { entries, .. } => {
                leaf_depths.push(depth);
                leaves.push(node);
                if entries.len() > self.leaf_cap {
                    return Err(format!("leaf {node} over capacity"));
                }
                if node != self.root && entries.len() < self.leaf_min_occupancy() {
                    return Err(format!("leaf {node} under occupancy"));
                }
                if !entries.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("leaf {node} not sorted"));
                }
                if let (Some(lo), Some(first)) = (lo, entries.first()) {
                    if first < lo {
                        return Err(format!("leaf {node} violates lower bound"));
                    }
                }
                if let (Some(hi), Some(last)) = (hi, entries.last()) {
                    if last >= hi {
                        return Err(format!("leaf {node} violates upper bound"));
                    }
                }
                Ok(())
            }
            Node::Internal { seps, children } => {
                if children.len() != seps.len() + 1 {
                    return Err(format!("internal {node} child/sep mismatch"));
                }
                if children.len() > self.internal_cap {
                    return Err(format!("internal {node} over capacity"));
                }
                if node != self.root && children.len() < self.internal_min_children() {
                    return Err(format!("internal {node} under occupancy"));
                }
                if node == self.root && children.len() < 2 {
                    return Err("internal root with < 2 children".into());
                }
                if !seps.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("internal {node} separators not sorted"));
                }
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&seps[i - 1]) };
                    let child_hi = if i == seps.len() { hi } else { Some(&seps[i]) };
                    self.check_node(child, depth + 1, child_lo, child_hi, leaf_depths, leaves)?;
                }
                Ok(())
            }
            Node::Free { .. } => Err(format!("free node {node} reachable")),
        }
    }
}

enum InsertOutcome {
    Done,
    Duplicate,
    Split(Split),
}

/// Split `len` items into groups near `preferred` in size, shrinking the
/// group count if needed so every group reaches `min_size` (a single group
/// is exempt: it becomes the root).  Sizes differ by at most one, so the
/// maximum never exceeds the node capacity that `preferred` derives from.
fn balanced_group_sizes(len: usize, preferred: usize, min_size: usize) -> Vec<usize> {
    debug_assert!(len > 0 && preferred > 0);
    let mut groups = len.div_ceil(preferred).max(1);
    while groups > 1 && len / groups < min_size {
        groups -= 1;
    }
    let base = len / groups;
    let extra = len % groups;
    (0..groups).map(|i| base + usize::from(i < extra)).collect()
}

/// A position inside a leaf, advanced by [`BTree::cursor_next`].
#[derive(Debug, Clone)]
pub struct Cursor {
    leaf: NodeId,
    idx: usize,
    /// Number of root-to-leaf descents that produced this cursor (1).
    pub descents: u32,
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree")
            .field("len", &self.len)
            .field("height", &self.height)
            .field("nodes", &self.node_count())
            .field("key_arity", &self.key_arity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Session {
        Session::with_pool_pages(0)
    }

    fn rid(i: u32) -> Rid {
        Rid::new(i / 100, i % 100)
    }

    #[test]
    fn key_padding_orders_prefix_ranges() {
        let lo = Key::padded_lo(&[5], 2);
        let hi = Key::padded_hi(&[5], 2);
        assert!(lo <= Key::pair(5, -100));
        assert!(Key::pair(5, 100) <= hi);
        assert!(hi < Key::padded_lo(&[6], 2));
    }

    #[test]
    fn empty_tree() {
        let t = BTree::new(FileId(0), 1);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.check_invariants().is_ok());
        assert_eq!(t.collect_all(), vec![]);
    }

    #[test]
    fn insert_and_lookup_small() {
        let s = quiet();
        let mut t = BTree::new(FileId(0), 1);
        for i in [5i64, 1, 9, 3, 7] {
            assert!(t.insert(Key::single(i), rid(i as u32), &s));
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.get_first(&Key::single(7), &s), Some(rid(7)));
        assert_eq!(t.get_first(&Key::single(4), &s), None);
        let keys: Vec<i64> = t.collect_all().iter().map(|(k, _)| k.get(0)).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn duplicate_entry_rejected_but_duplicate_keys_allowed() {
        let s = quiet();
        let mut t = BTree::new(FileId(0), 1);
        assert!(t.insert(Key::single(1), rid(1), &s));
        assert!(!t.insert(Key::single(1), rid(1), &s));
        assert!(t.insert(Key::single(1), rid(2), &s));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn inserts_split_and_stay_valid() {
        let s = quiet();
        let mut t = BTree::with_caps(FileId(0), 1, 4, 4);
        for i in 0..500i64 {
            let key = (i * 7919) % 1000; // scrambled order
            t.insert(Key::single(key), rid(i as u32), &s);
            if i % 50 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        assert!(t.height() > 2);
        let all = t.collect_all();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn delete_with_rebalancing() {
        let s = quiet();
        let mut t = BTree::with_caps(FileId(0), 1, 4, 4);
        for i in 0..200i64 {
            t.insert(Key::single(i), rid(i as u32), &s);
        }
        // Delete everything in a scrambled order, checking invariants.
        for i in 0..200i64 {
            let key = (i * 7919) % 200;
            assert!(t.delete(Key::single(key), rid(key as u32), &s), "missing {key}");
            t.check_invariants().unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn delete_missing_returns_false() {
        let s = quiet();
        let mut t = BTree::new(FileId(0), 1);
        t.insert(Key::single(1), rid(1), &s);
        assert!(!t.delete(Key::single(2), rid(2), &s));
        assert!(!t.delete(Key::single(1), rid(99), &s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let s = quiet();
        let entries: Vec<Entry> =
            (0..1000i64).map(|i| (Key::single(i * 2), rid(i as u32))).collect();
        let t = BTree::bulk_load(FileId(0), 1, &entries, 0.9);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.collect_all(), entries);
        assert_eq!(t.get_first(&Key::single(500), &s), Some(rid(250)));
        assert_eq!(t.get_first(&Key::single(501), &s), None);
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let t = BTree::bulk_load(FileId(0), 1, &[], 0.9);
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        let one = vec![(Key::single(42), rid(0))];
        let t = BTree::bulk_load(FileId(0), 1, &one, 0.9);
        assert_eq!(t.collect_all(), one);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_scan_inclusive_bounds() {
        let entries: Vec<Entry> = (0..100i64).map(|i| (Key::single(i), rid(i as u32))).collect();
        let t = BTree::bulk_load_with_caps(FileId(0), 1, &entries, 0.8, 8, 8);
        let s = quiet();
        let mut got = Vec::new();
        let n = t.scan_range(&Key::single(10), &Key::single(20), &s, AccessKind::Sequential, |e| {
            got.push(e.0.get(0))
        });
        assert_eq!(n, 11);
        assert_eq!(got, (10..=20).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_with_duplicates() {
        let s = quiet();
        let mut t = BTree::with_caps(FileId(0), 1, 4, 4);
        for i in 0..30u32 {
            t.insert(Key::single((i % 3) as i64), rid(i), &s);
        }
        let mut count = 0;
        t.scan_range(&Key::single(1), &Key::single(1), &s, AccessKind::Sequential, |_| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn composite_keys_scan_prefix_range() {
        let mut entries = Vec::new();
        for a in 0..10i64 {
            for b in 0..10i64 {
                entries.push((Key::pair(a, b), rid((a * 10 + b) as u32)));
            }
        }
        let t = BTree::bulk_load_with_caps(FileId(0), 2, &entries, 0.9, 8, 8);
        let s = quiet();
        let lo = Key::padded_lo(&[4], 2);
        let hi = Key::padded_hi(&[4], 2);
        let mut got = Vec::new();
        t.scan_range(&lo, &hi, &s, AccessKind::Sequential, |(k, _)| got.push((k.get(0), k.get(1))));
        assert_eq!(got, (0..10).map(|b| (4, b)).collect::<Vec<_>>());
    }

    #[test]
    fn descent_charges_height_pages_with_cold_pool() {
        let entries: Vec<Entry> =
            (0..10_000i64).map(|i| (Key::single(i), rid(i as u32))).collect();
        let t = BTree::bulk_load_with_caps(FileId(0), 1, &entries, 0.9, 16, 16);
        let s = Session::with_pool_pages(0);
        let before = s.stats();
        let _ = t.seek(&Key::single(5000), &s);
        let delta = s.stats().since(&before);
        assert_eq!(delta.random_reads, t.height() as u64);
    }

    #[test]
    fn warm_pool_caches_upper_levels() {
        let entries: Vec<Entry> =
            (0..10_000i64).map(|i| (Key::single(i), rid(i as u32))).collect();
        let t = BTree::bulk_load_with_caps(FileId(0), 1, &entries, 0.9, 16, 16);
        let s = Session::with_pool_pages(1 << 20);
        let _ = t.seek(&Key::single(5000), &s);
        let before = s.stats();
        let _ = t.seek(&Key::single(5001), &s);
        let delta = s.stats().since(&before);
        // Same root-to-leaf path: all hits the second time.
        assert_eq!(delta.random_reads, 0);
        assert_eq!(delta.buffer_hits as u32, t.height());
    }

    #[test]
    fn leaf_scan_uses_declared_access_kind() {
        let entries: Vec<Entry> = (0..2000i64).map(|i| (Key::single(i), rid(i as u32))).collect();
        let t = BTree::bulk_load_with_caps(FileId(0), 1, &entries, 1.0, 64, 64);
        let s = quiet();
        let before = s.stats();
        t.scan_range(
            &Key::single(0),
            &Key::single(1999),
            &s,
            AccessKind::Sequential,
            |_| {},
        );
        let delta = s.stats().since(&before);
        // Descent is random; the rest of the ~2000/64 leaves are sequential.
        assert!(delta.seq_reads >= 2000 / 64 - 2);
        assert_eq!(delta.random_reads, t.height() as u64);
    }
}
