//! Buffer pool: a cache simulator over page identities.
//!
//! The engine keeps all data in memory (it is a simulator), so the pool does
//! not hold page frames — it tracks *which* pages would be resident and
//! answers hit/miss.  The paper calls out the buffer pool as one of the
//! run-time conditions that shape robustness (§3: "resources (memory, I/O
//! bandwidth)"), so pool capacity is a first-class sweep dimension.
//!
//! Two classic replacement policies are provided: LRU (exact, via an
//! intrusive doubly-linked list over a slot arena) and Clock (second
//! chance).

use crate::fx::FxHashMap;

/// Identifies a storage "file": one heap or one B+-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Globally unique page identity: a page number within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Which heap or index the page belongs to.
    pub file: FileId,
    /// Page number within the file.
    pub page: u32,
}

impl PageId {
    /// Construct a page id.
    pub fn new(file: FileId, page: u32) -> Self {
        PageId { file, page }
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file.0, self.page)
    }
}

/// Page replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Exact least-recently-used.
    #[default]
    Lru,
    /// Clock / second-chance approximation of LRU.
    Clock,
}

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot {
    page: PageId,
    prev: usize,
    next: usize,
    referenced: bool,
}

/// A fixed-capacity page cache simulator.
///
/// `access` reports whether a page was resident and makes it resident
/// (evicting if needed).  A capacity of zero disables caching entirely —
/// every access misses — and `unbounded` never evicts.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    policy: EvictionPolicy,
    map: FxHashMap<PageId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most-recently-used (LRU) / unused by Clock
    tail: usize, // least-recently-used (LRU) / unused by Clock
    hand: usize, // clock hand (Clock policy)
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BufferPool {
    /// Pool holding at most `capacity_pages` pages under `policy`.
    pub fn new(capacity_pages: usize, policy: EvictionPolicy) -> Self {
        BufferPool {
            capacity: capacity_pages,
            policy,
            map: FxHashMap::with_capacity_and_hasher(
                capacity_pages.min(1 << 20),
                Default::default(),
            ),
            slots: Vec::with_capacity(capacity_pages.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Pool that never evicts (models "everything fits in memory").
    pub fn unbounded() -> Self {
        Self::new(usize::MAX / 2, EvictionPolicy::Lru)
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// (hits, misses, evictions) since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Touch `page`: returns `true` on a hit, `false` on a miss.  On a miss
    /// the page becomes resident, evicting another page if at capacity.
    pub fn access(&mut self, page: PageId) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if let Some(&slot) = self.map.get(&page) {
            self.hits += 1;
            self.slots[slot].referenced = true;
            // A hit on the most-recently-used slot would splice it back to
            // where it already is; skipping the splice leaves the LRU list
            // identical.  Fetch loops hit the same page for every row on
            // it, so this is the common case by far.
            if self.policy == EvictionPolicy::Lru && self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        self.misses += 1;
        if self.map.len() >= self.capacity {
            self.evict_one();
        }
        let slot = self.alloc_slot(page);
        self.map.insert(page, slot);
        if self.policy == EvictionPolicy::Lru {
            self.push_front(slot);
        }
        false
    }

    /// Empty the pool and zero its counters, keeping capacity and policy —
    /// the state of a freshly constructed pool, minus the allocations.
    /// Sweep workers reuse one pool per thread and reset it between map
    /// cells, preserving the cold-pool-per-measurement semantics without
    /// rebuilding the slot arena.
    pub fn reset(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hand = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Drop every page of `file` from the pool (e.g. a temp file deleted
    /// after a sort run is consumed).
    pub fn invalidate_file(&mut self, file: FileId) {
        let victims: Vec<PageId> =
            self.map.keys().filter(|p| p.file == file).copied().collect();
        for page in victims {
            let slot = self.map.remove(&page).expect("present");
            if self.policy == EvictionPolicy::Lru {
                self.unlink(slot);
            }
            self.free_slot(slot);
        }
    }

    /// Whether `page` is currently resident (does not update recency).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    fn alloc_slot(&mut self, page: PageId) -> usize {
        let slot = Slot { page, prev: NIL, next: NIL, referenced: true };
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = slot;
            idx
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        }
    }

    fn free_slot(&mut self, slot: usize) {
        self.free.push(slot);
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
        self.slots[slot].referenced = false;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn evict_one(&mut self) {
        self.evictions += 1;
        match self.policy {
            EvictionPolicy::Lru => {
                let victim = self.tail;
                debug_assert_ne!(victim, NIL, "evicting from empty pool");
                self.unlink(victim);
                let page = self.slots[victim].page;
                self.map.remove(&page);
                self.free_slot(victim);
            }
            EvictionPolicy::Clock => {
                // Sweep the slot arena as a circular buffer, clearing
                // reference bits until an unreferenced resident slot is hit.
                loop {
                    if self.slots.is_empty() {
                        return;
                    }
                    let idx = self.hand % self.slots.len();
                    self.hand = (self.hand + 1) % self.slots.len();
                    let page = self.slots[idx].page;
                    if self.map.get(&page) != Some(&idx) {
                        continue; // freed slot
                    }
                    if self.slots[idx].referenced {
                        self.slots[idx].referenced = false;
                    } else {
                        self.map.remove(&page);
                        self.free_slot(idx);
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(0), p)
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut pool = BufferPool::new(0, EvictionPolicy::Lru);
        assert!(!pool.access(pid(1)));
        assert!(!pool.access(pid(1)));
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn repeated_access_hits() {
        let mut pool = BufferPool::new(4, EvictionPolicy::Lru);
        assert!(!pool.access(pid(1)));
        assert!(pool.access(pid(1)));
        assert!(pool.access(pid(1)));
        assert_eq!(pool.counters(), (2, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut pool = BufferPool::new(2, EvictionPolicy::Lru);
        pool.access(pid(1));
        pool.access(pid(2));
        pool.access(pid(1)); // 2 is now LRU
        pool.access(pid(3)); // evicts 2
        assert!(pool.contains(pid(1)));
        assert!(!pool.contains(pid(2)));
        assert!(pool.contains(pid(3)));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut pool = BufferPool::new(2, EvictionPolicy::Clock);
        pool.access(pid(1));
        pool.access(pid(2));
        // Both referenced; clock clears bits then evicts one of them.
        pool.access(pid(3));
        assert_eq!(pool.resident(), 2);
        assert!(pool.contains(pid(3)));
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Clock] {
            let mut pool = BufferPool::new(8, policy);
            for i in 0..1000u32 {
                pool.access(pid(i % 50));
                assert!(pool.resident() <= 8, "{policy:?} overflowed");
            }
        }
    }

    #[test]
    fn sequential_scan_larger_than_pool_never_hits_lru() {
        let mut pool = BufferPool::new(8, EvictionPolicy::Lru);
        let mut hits = 0;
        for round in 0..3 {
            for i in 0..64u32 {
                if pool.access(pid(i)) {
                    hits += 1;
                }
            }
            // Classic LRU sequential-flooding: no reuse at all.
            assert_eq!(hits, 0, "round {round}");
        }
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let mut pool = BufferPool::new(16, EvictionPolicy::Lru);
        pool.access(PageId::new(FileId(1), 0));
        pool.access(PageId::new(FileId(1), 1));
        pool.access(PageId::new(FileId(2), 0));
        pool.invalidate_file(FileId(1));
        assert!(!pool.contains(PageId::new(FileId(1), 0)));
        assert!(pool.contains(PageId::new(FileId(2), 0)));
        assert_eq!(pool.resident(), 1);
        // Pool continues to function after invalidation.
        for i in 0..40u32 {
            pool.access(PageId::new(FileId(3), i));
        }
        assert_eq!(pool.resident(), 16);
    }

    #[test]
    fn clock_invalidate_file_frees_slots_the_hand_skips() {
        // The Clock hand sweeps the slot arena; invalidate_file frees
        // slots in place, so the sweep must skip entries whose slot no
        // longer backs a resident page (`map[page] != idx`).  Interleave
        // two "accessors" (two files) so freed slots sit between live
        // ones, then force evictions through the holes.
        let mut pool = BufferPool::new(4, EvictionPolicy::Clock);
        pool.access(PageId::new(FileId(1), 0));
        pool.access(PageId::new(FileId(2), 0));
        pool.access(PageId::new(FileId(1), 1));
        pool.access(PageId::new(FileId(2), 1));
        assert_eq!(pool.resident(), 4);
        pool.invalidate_file(FileId(1));
        assert_eq!(pool.resident(), 2);
        // Re-fill through the freed slots, then keep churning: every
        // eviction decision walks the hand across freed + live slots.
        for i in 0..100u32 {
            pool.access(PageId::new(FileId(3), i % 9));
            assert!(pool.resident() <= 4, "clock overflowed after invalidation");
        }
        // File 2's survivors were eventually evicted by the churn, not
        // resurrected by stale slot state.
        assert!(!pool.contains(PageId::new(FileId(1), 0)));
        let (_, _, evictions) = pool.counters();
        assert!(evictions > 0);
    }

    #[test]
    fn clock_second_chance_survives_interleaved_invalidation() {
        // A referenced page must still get its second chance when freed
        // slots separate it from the hand.
        let mut pool = BufferPool::new(3, EvictionPolicy::Clock);
        pool.access(PageId::new(FileId(1), 0)); // slot 0
        pool.access(PageId::new(FileId(2), 0)); // slot 1
        pool.access(PageId::new(FileId(1), 1)); // slot 2
        pool.invalidate_file(FileId(1)); // frees slots 0 and 2
        // Touch the survivor so its reference bit is set, then insert two
        // new pages (reusing freed slots) and force one eviction.
        assert!(pool.access(PageId::new(FileId(2), 0)));
        pool.access(PageId::new(FileId(3), 0));
        pool.access(PageId::new(FileId(3), 1));
        assert_eq!(pool.resident(), 3);
        // Next insert evicts: the referenced survivor is spared on the
        // first sweep (second chance), one of the unreferenced newcomers
        // goes — unless the hand's first full pass cleared it; either way
        // the pool stays consistent and at capacity.
        pool.access(PageId::new(FileId(3), 2));
        assert_eq!(pool.resident(), 3);
        assert!(pool.contains(PageId::new(FileId(3), 2)));
    }

    #[test]
    fn reset_pool_equals_new_pool() {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Clock] {
            let mut reused = BufferPool::new(4, policy);
            for i in 0..100u32 {
                reused.access(pid(i % 13));
            }
            reused.reset();
            assert_eq!(reused.resident(), 0);
            assert_eq!(reused.counters(), (0, 0, 0));
            let mut fresh = BufferPool::new(4, policy);
            for i in 0..100u32 {
                assert_eq!(reused.access(pid(i % 7)), fresh.access(pid(i % 7)), "{policy:?} @ {i}");
            }
            assert_eq!(reused.counters(), fresh.counters(), "{policy:?}");
        }
    }

    #[test]
    fn unbounded_pool_never_evicts() {
        let mut pool = BufferPool::unbounded();
        for i in 0..10_000u32 {
            pool.access(pid(i));
        }
        assert_eq!(pool.resident(), 10_000);
        assert_eq!(pool.counters().2, 0);
    }
}
