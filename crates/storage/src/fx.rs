//! A fast, deterministic hasher for simulator-internal hash tables.
//!
//! The measurement pipeline hashes hundreds of millions of small keys per
//! `figures -- all` run: every buffer-pool access looks up a [`crate::PageId`],
//! and the join operators build tables over rids and `i64` join keys.  The
//! standard library's default SipHash is DoS-resistant but several times
//! slower than needed for 8/16-byte keys, and the resistance buys nothing
//! here — all keys come from our own deterministic generators.
//!
//! `FxHasher` is the Firefox/rustc multiply-rotate hash: one multiply and
//! one rotate per word.  Swapping it in changes **no simulated cost** — hash
//! work is charged explicitly via [`crate::SimClock::charge_hashes`], and
//! buffer-pool hit/miss sequences depend only on access order and
//! replacement policy, not on the hasher — it only cuts the real (wall
//! clock) time of building maps.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx hash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("chunk of 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Low bits of `key * SEED` depend only on equally-low key bits, and
        // hash tables index buckets by low bits — structured keys such as
        // `page << 32 | slot` would cluster catastrophically.  Fold the
        // well-mixed high half down before handing the hash out.
        let h = self.hash;
        (h ^ (h >> 32)).wrapping_mul(SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn byte_slices_of_different_length_differ() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&1998));
    }
}
