//! Heap files: a table's main storage structure.
//!
//! The paper's "table scan" plan is a scan of the main storage structure
//! (in one measured system, literally "a clustered index organized on an
//! entirely unrelated column" — §3.3).  A heap file is a sequence of
//! slotted pages; rows are addressed by [`Rid`] (page number, slot).

use crate::buffer::{FileId, PageId};
use crate::page::SlottedPage;
use crate::schema::{Row, Schema};
use crate::session::Session;
use crate::sim::AccessKind;
use crate::{Result, StorageError};

/// A row id: physical address of a row inside one heap file.
///
/// Rids order by `(page, slot)`, i.e. physical order — sorting a rid list
/// converts random fetches into in-order fetches, which is the mechanism
/// behind the paper's "improved index scan" and System B's bitmap fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page number within the heap file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u32,
}

impl Rid {
    /// Construct a rid.
    pub fn new(page: u32, slot: u32) -> Self {
        Rid { page, slot }
    }

    /// Dense integer encoding used by rid bitmaps (`page * slots_per_page +
    /// slot` would need the page's capacity; instead we pack the two 32-bit
    /// halves, which preserves `(page, slot)` order).
    #[inline]
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 32) | self.slot as u64
    }

    /// Inverse of [`Rid::to_u64`].
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Rid { page: (v >> 32) as u32, slot: (v & 0xffff_ffff) as u32 }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// A heap file: append-oriented row storage over slotted pages.
pub struct HeapFile {
    file: FileId,
    schema: Schema,
    pages: Vec<SlottedPage>,
    row_count: u64,
    encode_buf: Vec<u8>,
}

impl HeapFile {
    /// Create an empty heap file identified by `file` in the buffer pool's
    /// page-id space.
    pub fn new(file: FileId, schema: Schema) -> Self {
        HeapFile { file, schema, pages: Vec::new(), row_count: 0, encode_buf: Vec::new() }
    }

    /// The schema rows must match.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The heap's file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Rows that fit a page for this schema (used for cost reasoning).
    pub fn rows_per_page(&self) -> usize {
        // slot entry = 4 bytes, header = 4 bytes
        (crate::page::PAGE_SIZE - 4) / (self.schema.row_bytes() + 4)
    }

    /// Append a row (load path; not charged to any session, as the paper's
    /// maps measure query time on pre-built databases).
    pub fn append(&mut self, row: &Row) -> Result<Rid> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "row arity {} vs schema {}",
                row.arity(),
                self.schema.arity()
            )));
        }
        let mut buf = std::mem::take(&mut self.encode_buf);
        self.schema.encode_row(row, &mut buf);
        if self.pages.last().is_none_or(|p| !p.fits(buf.len())) {
            self.pages.push(SlottedPage::new());
        }
        let page_no = (self.pages.len() - 1) as u32;
        let slot = self.pages.last_mut().expect("page exists").insert(&buf)?;
        self.encode_buf = buf;
        self.row_count += 1;
        Ok(Rid::new(page_no, slot as u32))
    }

    /// Page id of heap page `page_no`.
    pub fn page_id(&self, page_no: u32) -> PageId {
        PageId::new(self.file, page_no)
    }

    /// Borrow heap page `page_no` (serialization path: the workload cache
    /// persists raw page images).
    pub fn page(&self, page_no: u32) -> Option<&SlottedPage> {
        self.pages.get(page_no as usize)
    }

    /// Reassemble a heap file from raw pages (inverse of persisting
    /// [`HeapFile::page`] images).  The row count is recomputed from the
    /// pages' live records, so a reloaded heap reports exactly what the
    /// original did.
    pub fn from_pages(file: FileId, schema: Schema, pages: Vec<SlottedPage>) -> Self {
        let row_count = pages.iter().map(|p| p.live_records() as u64).sum();
        HeapFile { file, schema, pages, row_count, encode_buf: Vec::new() }
    }

    /// Fetch one row by rid, charging `session` one page access of `kind`.
    pub fn fetch(&self, rid: Rid, session: &Session, kind: AccessKind) -> Result<Row> {
        let page = self
            .pages
            .get(rid.page as usize)
            .ok_or(StorageError::InvalidRid(rid))?;
        session.read_page(self.page_id(rid.page), kind);
        session.charge_rows(1);
        let bytes = page.get(rid.slot as usize).ok_or(StorageError::InvalidRid(rid))?;
        self.schema.decode_row(bytes)
    }

    /// Full scan: calls `f(rid, row)` for every live row in physical order,
    /// charging sequential page reads and per-row CPU.  Returns the number
    /// of rows visited.
    pub fn scan<F: FnMut(Rid, &Row)>(&self, session: &Session, mut f: F) -> u64 {
        let mut visited = 0u64;
        for (page_no, page) in self.pages.iter().enumerate() {
            session.read_page(self.page_id(page_no as u32), AccessKind::Sequential);
            for (slot, bytes) in page.iter() {
                let row = self.schema.decode_row(bytes).expect("stored rows are valid");
                f(Rid::new(page_no as u32, slot as u32), &row);
                visited += 1;
            }
            session.charge_rows(page.live_records() as u64);
        }
        visited
    }

    /// Scan only pages in `page_range` (used by the improved fetch when it
    /// switches to scan mode over a dense cluster of qualifying pages).
    pub fn scan_pages<F: FnMut(Rid, &Row)>(
        &self,
        page_range: std::ops::Range<u32>,
        session: &Session,
        kind: AccessKind,
        mut f: F,
    ) -> u64 {
        let mut visited = 0u64;
        let end = page_range.end.min(self.page_count());
        for page_no in page_range.start.min(end)..end {
            let page = &self.pages[page_no as usize];
            session.read_page(self.page_id(page_no), kind);
            for (slot, bytes) in page.iter() {
                let row = self.schema.decode_row(bytes).expect("stored rows are valid");
                f(Rid::new(page_no, slot as u32), &row);
                visited += 1;
            }
            session.charge_rows(page.live_records() as u64);
        }
        visited
    }

    /// Delete a row (used by tests exercising slot stability).
    pub fn delete(&mut self, rid: Rid) -> Result<()> {
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or(StorageError::InvalidRid(rid))?;
        page.delete(rid.slot as usize)
            .map_err(|_| StorageError::InvalidRid(rid))?;
        self.row_count -= 1;
        Ok(())
    }

    /// Append a row on the charged mutation path: one random read of the
    /// target page (to pin it), one page write (the dirtied page), and one
    /// row of CPU.  This is the churn engine's entry point — unlike
    /// [`HeapFile::append`], the work lands on the simulated clock.
    pub fn append_charged(&mut self, row: &Row, session: &Session) -> Result<Rid> {
        let rid = self.append(row)?;
        let pid = self.page_id(rid.page);
        session.read_page(pid, AccessKind::Random);
        session.write_page(pid);
        session.charge_rows(1);
        Ok(rid)
    }

    /// Delete a row on the charged mutation path: the caller has typically
    /// already fetched the victim (its own charge); tombstoning dirties the
    /// page, so we charge one page write plus one row of CPU.
    pub fn delete_charged(&mut self, rid: Rid, session: &Session) -> Result<()> {
        self.delete(rid)?;
        session.write_page(self.page_id(rid.page));
        session.charge_rows(1);
        Ok(())
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("file", &self.file)
            .field("rows", &self.row_count)
            .field("pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn schema2() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)])
    }

    fn build(n: i64) -> HeapFile {
        let mut h = HeapFile::new(FileId(0), schema2());
        for i in 0..n {
            h.append(&Row::from_slice(&[i, i * 10])).unwrap();
        }
        h
    }

    #[test]
    fn rid_u64_roundtrip_preserves_order() {
        let rids = [Rid::new(0, 0), Rid::new(0, 5), Rid::new(1, 0), Rid::new(3, 2)];
        for w in rids.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].to_u64() < w[1].to_u64());
        }
        for r in rids {
            assert_eq!(Rid::from_u64(r.to_u64()), r);
        }
    }

    #[test]
    fn append_fills_pages_in_order() {
        let h = build(1000);
        assert_eq!(h.row_count(), 1000);
        let expected_pages = (1000 + h.rows_per_page() as i64 - 1) / h.rows_per_page() as i64;
        assert_eq!(h.page_count() as i64, expected_pages);
    }

    #[test]
    fn scan_visits_all_rows_in_order() {
        let h = build(500);
        let s = Session::with_pool_pages(4);
        let mut seen = Vec::new();
        let n = h.scan(&s, |_, row| seen.push(row.get(0)));
        assert_eq!(n, 500);
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
        // One sequential read per page, none random.
        assert_eq!(s.stats().seq_reads as u32, h.page_count());
        assert_eq!(s.stats().random_reads, 0);
        assert_eq!(s.stats().cpu_rows, 500);
    }

    #[test]
    fn fetch_returns_the_right_row_and_charges_random() {
        let mut h = HeapFile::new(FileId(0), schema2());
        let mut rids = Vec::new();
        for i in 0..300 {
            rids.push(h.append(&Row::from_slice(&[i, -i])).unwrap());
        }
        let s = Session::with_pool_pages(0);
        let row = h.fetch(rids[250], &s, AccessKind::Random).unwrap();
        assert_eq!(row.values(), &[250, -250]);
        assert_eq!(s.stats().random_reads, 1);
    }

    #[test]
    fn fetch_invalid_rid_errors() {
        let h = build(10);
        let s = Session::with_pool_pages(0);
        assert!(h.fetch(Rid::new(99, 0), &s, AccessKind::Random).is_err());
        assert!(h.fetch(Rid::new(0, 9999), &s, AccessKind::Random).is_err());
    }

    #[test]
    fn scan_pages_subrange() {
        let h = build(1000);
        let s = Session::with_pool_pages(0);
        let mut count = 0u64;
        let visited = h.scan_pages(0..2, &s, AccessKind::SinglePage, |_, _| count += 1);
        assert_eq!(visited, count);
        // The first two pages are full; only the last page of the heap is
        // partially filled.
        assert_eq!(visited, 2 * h.rows_per_page() as u64);
        assert_eq!(s.stats().single_reads, 2);
    }

    #[test]
    fn delete_hides_row_from_scan() {
        let mut h = build(100);
        let victim = Rid::new(0, 10);
        h.delete(victim).unwrap();
        let s = Session::with_pool_pages(0);
        let mut seen = 0;
        h.scan(&s, |rid, _| {
            assert_ne!(rid, victim);
            seen += 1;
        });
        assert_eq!(seen, 99);
        assert_eq!(h.row_count(), 99);
    }

    #[test]
    fn append_wrong_arity_errors() {
        let mut h = HeapFile::new(FileId(0), schema2());
        assert!(h.append(&Row::from_slice(&[1])).is_err());
        assert!(h.append(&Row::from_slice(&[1, 2, 3])).is_err());
    }
}
