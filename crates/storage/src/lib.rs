//! # robustmap-storage
//!
//! Storage substrate for the robustness-map reproduction of Graefe, Kuno &
//! Wiener, *Visualizing the robustness of query execution* (CIDR 2009).
//!
//! The paper measures the run-time behaviour of fixed query execution plans
//! on three commercial database systems.  This crate provides the storage
//! engine those measurements need, built from scratch:
//!
//! * [`page`] — real slotted pages over 8 KiB byte buffers,
//! * [`heap`] — heap files (a table's main storage structure),
//! * [`btree`] — B+-trees with single- and multi-column keys, range cursors,
//!   inserts with splits and deletes with rebalancing, plus bulk loading,
//! * [`bitmap`] — row-id bitmaps for bitmap-driven sorted fetches,
//! * [`buffer`] — a buffer pool (LRU or Clock) that simulates caching,
//! * [`sim`] — the deterministic I/O + CPU cost model that stands in for the
//!   paper's wall-clock measurements on real hardware,
//! * [`shared`] — a buffer pool + temp-file namespace shared by N
//!   concurrently served queries, with per-query attribution,
//! * [`session`] — per-query accounting context tying the above together,
//! * [`schema`] / [`table`] — rows, columns and the catalog.
//!
//! ## Why simulated time?
//!
//! Every operator in the executor crate *really executes*: it walks real
//! B+-tree nodes, reads real slotted pages and produces real rows.  Only the
//! *clock* is simulated: each page access is classified as sequential,
//! single-page or random and charged HDD-era costs, and CPU work is charged
//! per row / comparison / hash.  This preserves the *shapes* the paper is
//! about — constant table scans, random-I/O-bound index fetches, break-even
//! points, spill discontinuities — while being deterministic and
//! hardware-independent.

pub mod bitmap;
pub mod btree;
pub mod buffer;
pub mod fx;
pub mod heap;
pub mod page;
pub mod schema;
pub mod session;
pub mod shared;
pub mod sim;
pub mod table;

pub use bitmap::RidBitmap;
pub use btree::{BTree, Key};
pub use buffer::{BufferPool, EvictionPolicy, FileId, PageId};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use heap::{HeapFile, Rid};
pub use page::{SlottedPage, PAGE_SIZE};
pub use schema::{ColumnType, Row, Schema, MAX_COLUMNS};
pub use session::{Session, YieldHook};
pub use shared::{QueryId, QueryShare, SharedBufferPool};
pub use sim::{AccessKind, CostModel, IoStats, SimClock};
pub use table::{Database, IndexDef, IndexId, Table, TableId};

/// Errors reported by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A record did not fit in a page (record length, page capacity).
    RecordTooLarge { len: usize, cap: usize },
    /// A row id referenced a page or slot that does not exist.
    InvalidRid(Rid),
    /// A table or index name was not found in the catalog.
    UnknownObject(String),
    /// A row had more columns than [`MAX_COLUMNS`] or mismatched the schema.
    SchemaMismatch(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::RecordTooLarge { len, cap } => {
                write!(f, "record of {len} bytes exceeds page capacity {cap}")
            }
            StorageError::InvalidRid(rid) => write!(f, "invalid rid {rid}"),
            StorageError::UnknownObject(name) => write!(f, "unknown table or index: {name}"),
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
