//! Slotted pages: the on-"disk" unit of storage.
//!
//! A page is a real 8 KiB byte buffer with the classic slotted layout:
//!
//! ```text
//! +--------+---------------------+ ... free ... +----------+----------+
//! | header | slot 0 | slot 1 | …                | record 1 | record 0 |
//! +--------+---------------------+--------------+----------+----------+
//!           slots grow upward -->      <-- record heap grows downward
//! ```
//!
//! The header stores the slot count and the offset of the lowest record
//! byte.  Each slot is a `(offset, len)` pair; a deleted slot keeps its id
//! (so row ids remain stable) with `len == DEAD`.

use crate::StorageError;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

const HEADER_BYTES: usize = 4; // n_slots: u16, free_low: u16
const SLOT_BYTES: usize = 4; // offset: u16, len: u16
const DEAD: u16 = u16::MAX;

/// A slotted page over a fixed 8 KiB buffer.
///
/// Records are opaque byte strings up to [`SlottedPage::MAX_RECORD`] bytes.
/// Slot ids are stable across deletions; space from deleted records is
/// reclaimed by [`SlottedPage::compact`].
pub struct SlottedPage {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl SlottedPage {
    /// Largest record that fits in an otherwise empty page.
    pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_BYTES - SLOT_BYTES;

    /// Create an empty page.
    pub fn new() -> Self {
        let mut page = SlottedPage {
            buf: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().expect("exact size"),
        };
        page.set_n_slots(0);
        page.set_free_low(PAGE_SIZE as u16);
        page
    }

    #[inline]
    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    #[inline]
    fn write_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn n_slots(&self) -> usize {
        self.read_u16(0) as usize
    }

    fn set_n_slots(&mut self, n: usize) {
        self.write_u16(0, n as u16);
    }

    /// Offset of the lowest used record byte (records live in
    /// `free_low..PAGE_SIZE`).
    #[inline]
    fn free_low(&self) -> usize {
        self.read_u16(2) as usize
    }

    fn set_free_low(&mut self, v: u16) {
        self.write_u16(2, v);
    }

    #[inline]
    fn slot_at(&self, slot: usize) -> (u16, u16) {
        let base = HEADER_BYTES + slot * SLOT_BYTES;
        (self.read_u16(base), self.read_u16(base + 2))
    }

    fn set_slot(&mut self, slot: usize, offset: u16, len: u16) {
        let base = HEADER_BYTES + slot * SLOT_BYTES;
        self.write_u16(base, offset);
        self.write_u16(base + 2, len);
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> usize {
        (0..self.n_slots()).filter(|&s| self.slot_at(s).1 != DEAD).count()
    }

    /// Total number of slots, including dead ones.
    pub fn slot_count(&self) -> usize {
        self.n_slots()
    }

    /// Bytes available for a new record (including its slot entry),
    /// without compaction.
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_BYTES + self.n_slots() * SLOT_BYTES;
        self.free_low().saturating_sub(slots_end)
    }

    /// Whether a record of `len` bytes can be inserted without compaction.
    pub fn fits(&self, len: usize) -> bool {
        len <= Self::MAX_RECORD && self.free_space() >= len + SLOT_BYTES
    }

    /// Insert a record, returning its slot id.
    ///
    /// Fails with [`StorageError::RecordTooLarge`] if the record cannot fit
    /// even after compaction would run; callers that fill pages greedily
    /// should test [`SlottedPage::fits`] first.
    pub fn insert(&mut self, record: &[u8]) -> Result<usize, StorageError> {
        if !self.fits(record.len()) {
            return Err(StorageError::RecordTooLarge {
                len: record.len(),
                cap: self.free_space().saturating_sub(SLOT_BYTES),
            });
        }
        let slot = self.n_slots();
        let new_low = self.free_low() - record.len();
        self.buf[new_low..new_low + record.len()].copy_from_slice(record);
        self.set_free_low(new_low as u16);
        self.set_n_slots(slot + 1);
        self.set_slot(slot, new_low as u16, record.len() as u16);
        Ok(slot)
    }

    /// Read the record in `slot`, or `None` if the slot is out of range or
    /// deleted.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.n_slots() {
            return None;
        }
        let (offset, len) = self.slot_at(slot);
        if len == DEAD {
            return None;
        }
        Some(&self.buf[offset as usize..offset as usize + len as usize])
    }

    /// Delete the record in `slot`.  The slot id stays allocated (rids are
    /// stable); the bytes are reclaimed by the next [`SlottedPage::compact`].
    pub fn delete(&mut self, slot: usize) -> Result<(), StorageError> {
        if slot >= self.n_slots() || self.slot_at(slot).1 == DEAD {
            return Err(StorageError::InvalidRid(crate::heap::Rid::new(0, slot as u32)));
        }
        self.set_slot(slot, 0, DEAD);
        Ok(())
    }

    /// Compact the record heap, squeezing out space left by deletions.
    /// Slot ids (and therefore rids) are preserved.
    pub fn compact(&mut self) {
        let n = self.n_slots();
        let mut records: Vec<(usize, Vec<u8>)> = Vec::with_capacity(n);
        for slot in 0..n {
            if let Some(bytes) = self.get(slot) {
                records.push((slot, bytes.to_vec()));
            }
        }
        let mut low = PAGE_SIZE;
        for (slot, bytes) in &records {
            low -= bytes.len();
            self.buf[low..low + bytes.len()].copy_from_slice(bytes);
            self.set_slot(*slot, low as u16, bytes.len() as u16);
        }
        self.set_free_low(low as u16);
    }

    /// Iterate over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u8])> + '_ {
        (0..self.n_slots()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// The raw page image (serialization: the workload cache persists heap
    /// pages byte-for-byte, so a reloaded heap is bit-identical).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// Reconstruct a page from a raw image previously obtained via
    /// [`SlottedPage::as_bytes`].
    pub fn from_bytes(bytes: &[u8; PAGE_SIZE]) -> Self {
        SlottedPage { buf: Box::new(*bytes) }
    }
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlottedPage")
            .field("slots", &self.n_slots())
            .field("live", &self.live_records())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page_has_full_free_space() {
        let p = SlottedPage::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_BYTES);
        assert!(p.fits(SlottedPage::MAX_RECORD));
        assert!(!p.fits(SlottedPage::MAX_RECORD + 1));
    }

    #[test]
    fn insert_then_get_roundtrips() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let p = SlottedPage::new();
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(100), None);
    }

    #[test]
    fn delete_keeps_slot_ids_stable() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"aaa").unwrap();
        let b = p.insert(b"bbb").unwrap();
        let c = p.insert(b"ccc").unwrap();
        p.delete(b).unwrap();
        assert_eq!(p.get(a), Some(&b"aaa"[..]));
        assert_eq!(p.get(b), None);
        assert_eq!(p.get(c), Some(&b"ccc"[..]));
        assert_eq!(p.live_records(), 2);
        assert_eq!(p.slot_count(), 3);
    }

    #[test]
    fn delete_twice_errors() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"x").unwrap();
        p.delete(a).unwrap();
        assert!(p.delete(a).is_err());
        assert!(p.delete(42).is_err());
    }

    #[test]
    fn compact_reclaims_space_and_preserves_records() {
        let mut p = SlottedPage::new();
        let mut slots = Vec::new();
        for i in 0..10u8 {
            slots.push(p.insert(&[i; 100]).unwrap());
        }
        let free_before = p.free_space();
        for &s in slots.iter().step_by(2) {
            p.delete(s).unwrap();
        }
        p.compact();
        assert!(p.free_space() >= free_before + 5 * 100);
        for (i, &s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(p.get(s), None);
            } else {
                assert_eq!(p.get(s), Some(&[i as u8; 100][..]));
            }
        }
    }

    #[test]
    fn fill_page_until_full() {
        let mut p = SlottedPage::new();
        let rec = [7u8; 64];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        // 64-byte records + 4-byte slots: roughly PAGE_SIZE / 68 records.
        assert!(n >= (PAGE_SIZE - HEADER_BYTES) / (rec.len() + SLOT_BYTES) - 1);
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = SlottedPage::new();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(p.insert(&huge), Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn iter_yields_live_records_in_slot_order() {
        let mut p = SlottedPage::new();
        p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(b).unwrap();
        let got: Vec<(usize, &[u8])> = p.iter().collect();
        assert_eq!(got, vec![(0, &b"a"[..]), (2, &b"c"[..])]);
    }
}
