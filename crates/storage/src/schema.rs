//! Rows, columns and schemas.
//!
//! The paper's experiments run selections over a TPC-H lineitem-like table
//! whose predicate columns are ordered numerics (quantities, prices, dates).
//! We therefore encode every column as an `i64` datum — dates and money
//! become integers — which keeps row decoding branch-free and fast without
//! losing anything the robustness maps care about.  The [`ColumnType`]
//! records the logical type for documentation and rendering.

use crate::StorageError;

/// Maximum number of columns in a row.
///
/// Rows are stored inline (no heap allocation) so that scanning millions of
/// rows per map cell stays cheap; eight columns is ample for the paper's
/// lineitem-like workloads.
pub const MAX_COLUMNS: usize = 8;

/// Logical column types (all encoded as `i64` data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Plain integer.
    Int,
    /// A date encoded as days since an epoch.
    Date,
    /// Money encoded in cents.
    Money,
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Logical type (encoding is always `i64`).
    pub ty: ColumnType,
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if there are more than [`MAX_COLUMNS`] columns or duplicate
    /// names — both are programming errors in workload definitions.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        assert!(columns.len() <= MAX_COLUMNS, "too many columns");
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|(name, ty)| Column { name: name.to_string(), ty })
            .collect();
        for i in 0..columns.len() {
            for j in i + 1..columns.len() {
                assert_ne!(columns[i].name, columns[j].name, "duplicate column name");
            }
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of the column called `name`.
    pub fn column_index(&self, name: &str) -> Result<usize, StorageError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownObject(format!("column {name}")))
    }

    /// Bytes a row of this schema occupies when encoded.
    pub fn row_bytes(&self) -> usize {
        self.arity() * 8
    }

    /// Encode `row` into `out` (little-endian `i64`s).
    pub fn encode_row(&self, row: &Row, out: &mut Vec<u8>) {
        debug_assert_eq!(row.arity(), self.arity());
        out.clear();
        for i in 0..row.arity() {
            out.extend_from_slice(&row.get(i).to_le_bytes());
        }
    }

    /// Decode a row previously produced by [`Schema::encode_row`].
    ///
    /// This is the single hottest function in the measurement pipeline —
    /// every scanned or fetched row passes through it — so it fills the
    /// row's backing array directly instead of going through per-value
    /// [`Row::push`] bounds checks.
    pub fn decode_row(&self, bytes: &[u8]) -> Result<Row, StorageError> {
        if bytes.len() != self.row_bytes() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} bytes, got {}",
                self.row_bytes(),
                bytes.len()
            )));
        }
        let mut vals = [0i64; MAX_COLUMNS];
        for (v, chunk) in vals.iter_mut().zip(bytes.chunks_exact(8)) {
            *v = i64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        }
        Ok(Row { vals, len: self.arity() as u8 })
    }
}

/// A row of up to [`MAX_COLUMNS`] `i64` values, stored inline.
///
/// `Row` is `Copy`-cheap to clone and never allocates, which matters when
/// map construction pushes hundreds of millions of rows through operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Row {
    vals: [i64; MAX_COLUMNS],
    len: u8,
}

impl Row {
    /// An empty row (arity 0).
    pub fn empty() -> Self {
        Row { vals: [0; MAX_COLUMNS], len: 0 }
    }

    /// Build a row from a slice of values.
    ///
    /// # Panics
    /// Panics if `vals` has more than [`MAX_COLUMNS`] entries.
    pub fn from_slice(vals: &[i64]) -> Self {
        assert!(vals.len() <= MAX_COLUMNS, "row too wide");
        let mut row = Row::empty();
        for &v in vals {
            row.push(v);
        }
        row
    }

    /// Number of values.
    #[inline]
    pub fn arity(&self) -> usize {
        self.len as usize
    }

    /// Append a value.
    ///
    /// # Panics
    /// Panics if the row is already at [`MAX_COLUMNS`].
    #[inline]
    pub fn push(&mut self, v: i64) {
        assert!((self.len as usize) < MAX_COLUMNS, "row overflow");
        self.vals[self.len as usize] = v;
        self.len += 1;
    }

    /// Value at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= arity()`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        assert!(i < self.arity(), "column {i} out of range");
        self.vals[i]
    }

    /// The values as a slice.
    #[inline]
    pub fn values(&self) -> &[i64] {
        &self.vals[..self.len as usize]
    }

    /// A new row containing the listed columns of `self`, in order.
    #[inline]
    pub fn project(&self, cols: &[usize]) -> Row {
        let mut out = Row::empty();
        for &c in cols {
            out.push(self.get(c));
        }
        out
    }
}

// A manual Debug keeps the unused tail of `vals` out of the output.
impl std::fmt::Debug for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.values().iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineitem_like() -> Schema {
        Schema::new(vec![
            ("orderkey", ColumnType::Int),
            ("quantity", ColumnType::Int),
            ("price", ColumnType::Money),
            ("shipdate", ColumnType::Date),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = lineitem_like();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column_index("price").unwrap(), 2);
        assert!(s.column_index("nope").is_err());
        assert_eq!(s.row_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_panic() {
        Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    fn row_roundtrip_through_encoding() {
        let s = lineitem_like();
        let row = Row::from_slice(&[1, -2, i64::MAX, i64::MIN]);
        let mut buf = Vec::new();
        s.encode_row(&row, &mut buf);
        assert_eq!(buf.len(), 32);
        let back = s.decode_row(&buf).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn decode_wrong_length_errors() {
        let s = lineitem_like();
        assert!(s.decode_row(&[0u8; 31]).is_err());
        assert!(s.decode_row(&[0u8; 33]).is_err());
    }

    #[test]
    fn row_projection() {
        let row = Row::from_slice(&[10, 20, 30, 40]);
        let p = row.project(&[3, 0]);
        assert_eq!(p.values(), &[40, 10]);
    }

    #[test]
    #[should_panic(expected = "row overflow")]
    fn row_overflow_panics() {
        let mut r = Row::from_slice(&[0; MAX_COLUMNS]);
        r.push(1);
    }

    #[test]
    fn row_debug_hides_unused_tail() {
        let r = Row::from_slice(&[1, 2]);
        assert_eq!(format!("{r:?}"), "[1, 2]");
    }
}
