//! Per-query accounting context.
//!
//! A [`Session`] bundles the cost model, the simulated clock and a private
//! buffer pool.  Each measured query execution gets a fresh session so that
//! map cells are independent and deterministic regardless of the order (or
//! thread) in which the map builder visits them — mirroring the paper's
//! practice of measuring each plan/parameter combination in isolation.

use std::cell::RefCell;

use crate::buffer::{BufferPool, EvictionPolicy, FileId, PageId};
use crate::sim::{AccessKind, CostModel, IoStats, SimClock};

/// Execution context charging all storage traffic to a simulated clock.
///
/// Methods take `&self`; interior mutability keeps operator code free of
/// borrow gymnastics (a session is single-threaded by construction).
pub struct Session {
    model: CostModel,
    clock: SimClock,
    pool: RefCell<BufferPool>,
}

impl Session {
    /// Session with an explicit cost model and buffer pool.
    pub fn new(model: CostModel, pool: BufferPool) -> Self {
        Session { model, clock: SimClock::new(), pool: RefCell::new(pool) }
    }

    /// Session with the default HDD model and a pool of `pool_pages` pages
    /// under LRU replacement.
    pub fn with_pool_pages(pool_pages: usize) -> Self {
        Self::new(CostModel::hdd_2009(), BufferPool::new(pool_pages, EvictionPolicy::Lru))
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Reset the session to its as-constructed state: clock at zero, all
    /// counters cleared, buffer pool cold (same capacity and policy).
    ///
    /// This is the warm-path sweep contract: a reset session measures a
    /// plan *identically* to a brand-new session — the map builder's
    /// per-thread arenas rely on it, and `core`'s warm-vs-cold tests assert
    /// it cell by cell.
    pub fn reset(&self) {
        self.clock.reset();
        self.pool.borrow_mut().reset();
    }

    /// The clock (for operators charging modelled CPU work directly).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.clock.elapsed()
    }

    /// Snapshot of all work counters.
    pub fn stats(&self) -> IoStats {
        self.clock.stats()
    }

    /// Read `page` with the given access pattern: a buffer hit charges the
    /// hit cost, a miss charges the disk cost for `kind`.
    #[inline]
    pub fn read_page(&self, page: PageId, kind: AccessKind) {
        if self.pool.borrow_mut().access(page) {
            self.clock.charge_buffer_hit(&self.model);
        } else {
            self.clock.charge_read(&self.model, kind);
        }
    }

    /// Write `page` (spill files); the page becomes pool-resident.
    #[inline]
    pub fn write_page(&self, page: PageId) {
        self.clock.charge_write(&self.model);
        self.pool.borrow_mut().access(page);
    }

    /// Drop a whole temp file from the pool (its pages will not be reused).
    pub fn invalidate_file(&self, file: FileId) {
        self.pool.borrow_mut().invalidate_file(file);
    }

    /// Charge CPU for `n` rows.
    #[inline]
    pub fn charge_rows(&self, n: u64) {
        self.clock.charge_rows(&self.model, n);
    }

    /// Charge CPU for `n` comparisons.
    #[inline]
    pub fn charge_compares(&self, n: u64) {
        self.clock.charge_compares(&self.model, n);
    }

    /// Charge CPU for `n` hash operations.
    #[inline]
    pub fn charge_hashes(&self, n: u64) {
        self.clock.charge_hashes(&self.model, n);
    }

    /// Buffer pool hit/miss/eviction counters.
    pub fn pool_counters(&self) -> (u64, u64, u64) {
        self.pool.borrow().counters()
    }

    /// Buffer pool capacity in pages.
    pub fn pool_capacity(&self) -> usize {
        self.pool.borrow().capacity()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("elapsed", &self.elapsed())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(7), p)
    }

    #[test]
    fn miss_then_hit_charges_differently() {
        let s = Session::with_pool_pages(8);
        s.read_page(pid(0), AccessKind::Random);
        let after_miss = s.elapsed();
        s.read_page(pid(0), AccessKind::Random);
        let after_hit = s.elapsed() - after_miss;
        assert!((after_miss - s.model().random_page_read).abs() < 1e-12);
        assert!((after_hit - s.model().cpu_buffer_hit).abs() < 1e-12);
        assert_eq!(s.stats().random_reads, 1);
        assert_eq!(s.stats().buffer_hits, 1);
    }

    #[test]
    fn zero_pool_always_pays_disk() {
        let s = Session::with_pool_pages(0);
        for _ in 0..5 {
            s.read_page(pid(3), AccessKind::Sequential);
        }
        assert_eq!(s.stats().seq_reads, 5);
        assert_eq!(s.stats().buffer_hits, 0);
    }

    #[test]
    fn writes_populate_pool() {
        let s = Session::with_pool_pages(8);
        s.write_page(pid(1));
        s.read_page(pid(1), AccessKind::Random);
        assert_eq!(s.stats().buffer_hits, 1);
        assert_eq!(s.stats().page_writes, 1);
    }

    #[test]
    fn reset_restores_fresh_session_behaviour() {
        let warm = Session::with_pool_pages(4);
        // Dirty the session: misses, hits, evictions, CPU work.
        for i in 0..16 {
            warm.read_page(pid(i), AccessKind::Random);
        }
        warm.charge_rows(100);
        warm.reset();
        assert_eq!(warm.elapsed(), 0.0);
        assert_eq!(warm.stats(), IoStats::default());
        assert_eq!(warm.pool_counters(), (0, 0, 0));
        assert_eq!(warm.pool_capacity(), 4);
        // Replay a workload on the reset session and on a fresh one: the
        // measurements must be identical.
        let fresh = Session::with_pool_pages(4);
        for s in [&warm, &fresh] {
            for i in [0u32, 1, 0, 2, 3, 4, 0, 1] {
                s.read_page(pid(i), AccessKind::Random);
            }
            s.charge_compares(7);
        }
        assert_eq!(warm.stats(), fresh.stats());
        assert_eq!(warm.elapsed(), fresh.elapsed());
        assert_eq!(warm.pool_counters(), fresh.pool_counters());
    }

    #[test]
    fn invalidate_forces_reread() {
        let s = Session::with_pool_pages(8);
        s.read_page(pid(1), AccessKind::Random);
        s.invalidate_file(FileId(7));
        s.read_page(pid(1), AccessKind::Random);
        assert_eq!(s.stats().random_reads, 2);
    }
}
