//! Per-query accounting context.
//!
//! A [`Session`] is the per-query half of the execution stack's split: it
//! owns the query-private state — the cost model, the simulated
//! [`SimClock`] (and therefore the per-query [`IoStats`]), the memory
//! grant, and an optional yield hook for cooperative scheduling — and sits
//! on top of a [`SharedBufferPool`], which owns the state queries share
//! (page residency, per-query hit/miss attribution, the temp-file
//! allocator).
//!
//! Two construction modes:
//!
//! * **Private pool** ([`Session::new`], [`Session::with_pool_pages`]): the
//!   session wraps a [`SharedBufferPool`] of its own with exactly one
//!   registered query.  This is the classic one-session-per-measurement
//!   mode every map cell uses, and it is a *bit-identical* thin wrapper
//!   over the shared machinery: the charge sequence (and therefore every
//!   `f64` clock value), the I/O counters and the pool hit/miss behaviour
//!   are exactly those of the pre-split private-pool session.
//!   `tests/concurrent_equivalence.rs` and the storage unit tests pin this
//!   contract.
//! * **Shared pool** ([`Session::on_shared`]): N sessions register on one
//!   pool and contend for residency; each still owns a private clock, so
//!   per-query elapsed time and counters stay exact under sharing.
//!
//! Methods take `&self`; interior mutability keeps operator code free of
//! borrow gymnastics.  A session is still driven by one thread at a time —
//! the concurrent serving layer in `core::serve` interleaves whole
//! sessions cooperatively (via the yield hook) rather than sharing one
//! session across threads — but the session itself is `Send`, so each
//! query may live on its own worker thread.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use robustmap_obs::trace::{TraceDetail, TraceEventKind, TraceHandle, TraceSink};

use crate::buffer::{BufferPool, EvictionPolicy, FileId, PageId};
use crate::shared::{QueryId, QueryShare, SharedBufferPool};
use crate::sim::{AccessKind, CostModel, IoStats, SimClock};

/// A cooperative-scheduling callback: invoked between charges, never
/// charging work itself.  The argument is the session's elapsed
/// simulated seconds at the yield point, so schedulers can advance a
/// global virtual clock without re-entering the session.
pub type YieldHook = Box<dyn FnMut(f64) + Send>;

/// Execution context charging all storage traffic to a simulated clock.
pub struct Session {
    model: CostModel,
    clock: SimClock,
    pool: Arc<SharedBufferPool>,
    query: QueryId,
    /// Memory grant in bytes (informational; `usize::MAX` = ungoverned).
    grant: Cell<usize>,
    /// Charge events per scheduling quantum; 0 disables the yield hook.
    yield_every: Cell<u64>,
    ticks: Cell<u64>,
    yielder: RefCell<Option<YieldHook>>,
    /// Charge-free tracing: the handle, a cached "am I traced" flag so
    /// the disabled path costs one `Cell` read per charge, a cached
    /// full-detail flag, and the pending per-quantum I/O window.
    tracer: RefCell<Option<TraceHandle>>,
    traced: Cell<bool>,
    trace_full: Cell<bool>,
    win_reads: Cell<u64>,
    win_hits: Cell<u64>,
    win_writes: Cell<u64>,
}

impl Session {
    /// Session with an explicit cost model and a private buffer pool.
    pub fn new(model: CostModel, pool: BufferPool) -> Self {
        Self::on_shared(model, Arc::new(SharedBufferPool::from_pool(pool)))
    }

    /// Session with the default HDD model and a private pool of
    /// `pool_pages` pages under LRU replacement.
    pub fn with_pool_pages(pool_pages: usize) -> Self {
        Self::new(CostModel::hdd_2009(), BufferPool::new(pool_pages, EvictionPolicy::Lru))
    }

    /// Session registered as a new query on an existing shared pool: the
    /// per-query context of the concurrent serving layer.
    ///
    /// When the process-wide trace (`ROBUSTMAP_TRACE` or the figures
    /// binary's `--trace` flag) is enabled, the session attaches to it
    /// automatically on a fresh track labelled by its query id.
    pub fn on_shared(model: CostModel, pool: Arc<SharedBufferPool>) -> Self {
        let query = pool.register_query();
        let s = Session {
            model,
            clock: SimClock::new(),
            pool,
            query,
            grant: Cell::new(usize::MAX),
            yield_every: Cell::new(0),
            ticks: Cell::new(0),
            yielder: RefCell::new(None),
            tracer: RefCell::new(None),
            traced: Cell::new(false),
            trace_full: Cell::new(false),
            win_reads: Cell::new(0),
            win_hits: Cell::new(0),
            win_writes: Cell::new(0),
        };
        if let Some(sink) = robustmap_obs::trace::global_sink() {
            s.attach_tracer(sink, &format!("q{}", s.query.0));
        }
        s
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The shared pool this session charges residency against.
    pub fn shared_pool(&self) -> &Arc<SharedBufferPool> {
        &self.pool
    }

    /// This session's query identity on the shared pool.
    pub fn query_id(&self) -> QueryId {
        self.query
    }

    /// Reset the session to its as-constructed state: clock at zero, all
    /// counters cleared, buffer pool cold (same capacity and policy), the
    /// temp-file allocator rewound, quantum progress cleared.
    ///
    /// This is the warm-path sweep contract: a reset session measures a
    /// plan *identically* to a brand-new session — the map builder's
    /// per-thread arenas rely on it, and `core`'s warm-vs-cold tests assert
    /// it cell by cell.  Note that the reset reaches the *whole* underlying
    /// pool: on a genuinely shared pool, only the serving layer may reset,
    /// and only while no query is in flight.
    /// Tracing note: a reset flushes the pending I/O window and emits a
    /// [`TraceEventKind::SessionReset`] marker (the track's query clock
    /// restarts from zero), so per-query trace state never leaks across
    /// reuse.
    pub fn reset(&self) {
        self.flush_io_window();
        self.trace_event(TraceEventKind::SessionReset);
        self.clock.reset();
        self.pool.reset();
        self.ticks.set(0);
    }

    /// The clock (for operators charging modelled CPU work directly).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.clock.elapsed()
    }

    /// Snapshot of all work counters.
    pub fn stats(&self) -> IoStats {
        self.clock.stats()
    }

    /// Read `page` with the given access pattern: a buffer hit charges the
    /// hit cost, a miss charges the disk cost for `kind`.
    #[inline]
    pub fn read_page(&self, page: PageId, kind: AccessKind) {
        let hit = self.pool.access(self.query, page);
        if hit {
            self.clock.charge_buffer_hit(&self.model);
        } else {
            self.clock.charge_read(&self.model, kind);
        }
        if self.traced.get() {
            if hit {
                self.win_hits.set(self.win_hits.get() + 1);
            } else {
                self.win_reads.set(self.win_reads.get() + 1);
            }
            if self.trace_full.get() {
                self.trace_event(TraceEventKind::PageRead { hit });
            }
        }
        self.tick();
    }

    /// Write `page` (spill files); the page becomes pool-resident.
    #[inline]
    pub fn write_page(&self, page: PageId) {
        self.clock.charge_write(&self.model);
        self.pool.access(self.query, page);
        if self.traced.get() {
            self.win_writes.set(self.win_writes.get() + 1);
            if self.trace_full.get() {
                self.trace_event(TraceEventKind::PageWrite);
            }
        }
        self.tick();
    }

    /// Drop a whole temp file from the pool (its pages will not be reused).
    pub fn invalidate_file(&self, file: FileId) {
        self.pool.invalidate_file(file);
    }

    /// Allocate a temp-file id above `base` from the pool's central
    /// allocator: ids are unique across every session sharing the pool, so
    /// concurrent spills can never collide (and a private session numbers
    /// its temp files exactly as before the split: `base + 0, 1, ...`).
    pub fn alloc_temp_file(&self, base: u32) -> FileId {
        let file = self.pool.alloc_temp_file(base);
        if self.traced.get() {
            self.trace_event(TraceEventKind::SpillAlloc { file: file.0 as u64 });
        }
        file
    }

    /// Charge CPU for `n` rows.
    #[inline]
    pub fn charge_rows(&self, n: u64) {
        self.clock.charge_rows(&self.model, n);
        self.tick();
    }

    /// Charge CPU for `n` comparisons.
    #[inline]
    pub fn charge_compares(&self, n: u64) {
        self.clock.charge_compares(&self.model, n);
        self.tick();
    }

    /// Charge CPU for `n` hash operations.
    #[inline]
    pub fn charge_hashes(&self, n: u64) {
        self.clock.charge_hashes(&self.model, n);
        self.tick();
    }

    /// Buffer pool hit/miss/eviction counters (pool-level: shared sessions
    /// see the sum over all queries; see [`Session::query_pool_counters`]
    /// for this query's share).
    pub fn pool_counters(&self) -> (u64, u64, u64) {
        self.pool.counters()
    }

    /// This query's share of the pool's hit/miss counters.
    pub fn query_pool_counters(&self) -> QueryShare {
        self.pool.query_counters(self.query)
    }

    /// Buffer pool capacity in pages.
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Record this query's memory grant in bytes (admission control sets
    /// it; `usize::MAX` until then).
    pub fn set_memory_grant(&self, bytes: usize) {
        self.grant.set(bytes);
        if self.traced.get() {
            self.trace_event(TraceEventKind::GrantSet { bytes: bytes as u64 });
        }
    }

    /// The memory grant recorded by [`Session::set_memory_grant`].
    pub fn memory_grant(&self) -> usize {
        self.grant.get()
    }

    /// Install a cooperative yield hook: after every `every` charge events
    /// the hook is invoked (between charges, so it can park the calling
    /// thread without perturbing a single `f64` of simulated time).  The
    /// scheduler in `core::serve` uses this to interleave N queries at
    /// quantum granularity.  `every = 0` disables ticking; when no hook is
    /// installed the per-charge overhead is one counter check.
    pub fn install_yield_hook(&self, every: u64, hook: YieldHook) {
        self.yield_every.set(every);
        self.ticks.set(0);
        *self.yielder.borrow_mut() = Some(hook);
    }

    /// Remove the yield hook (no further yields occur).
    pub fn clear_yield_hook(&self) {
        self.yield_every.set(0);
        self.ticks.set(0);
        *self.yielder.borrow_mut() = None;
    }

    /// Invoke the yield hook immediately, if installed (the serving layer
    /// calls this once before execution to park the query until admission).
    /// Flushes the pending trace I/O window first, so per-quantum I/O
    /// aggregates line up with scheduling slices.
    pub fn yield_now(&self) {
        self.flush_io_window();
        if let Some(hook) = self.yielder.borrow_mut().as_mut() {
            hook(self.clock.elapsed());
        }
    }

    // ------------------------------------------------------------------
    // Charge-free tracing
    // ------------------------------------------------------------------

    /// Attach this session to `sink` on a fresh track labelled `label`;
    /// returns the track id.  Attaching never charges: tracing reads
    /// the clock, it does not advance it.
    pub fn attach_tracer(&self, sink: Arc<TraceSink>, label: &str) -> u32 {
        let track = sink.alloc_track(label);
        self.attach_tracer_track(sink, track);
        track
    }

    /// Attach to `sink` on an externally allocated track (the concurrent
    /// scheduler pre-allocates one track per query so its timeline and
    /// the session's events land on the same lane).
    pub fn attach_tracer_track(&self, sink: Arc<TraceSink>, track: u32) {
        self.flush_io_window();
        let enabled = sink.is_enabled();
        self.trace_full.set(enabled && sink.detail() == TraceDetail::Full);
        self.traced.set(enabled);
        *self.tracer.borrow_mut() =
            if enabled { Some(TraceHandle { sink, track }) } else { None };
    }

    /// Detach from the trace sink, flushing the pending I/O window.
    pub fn detach_tracer(&self) {
        self.flush_io_window();
        self.traced.set(false);
        self.trace_full.set(false);
        *self.tracer.borrow_mut() = None;
    }

    /// True when a trace sink is attached (callers use this to skip
    /// event construction — e.g. plan synopses — when disabled).
    pub fn is_traced(&self) -> bool {
        self.traced.get()
    }

    /// The attached trace handle, if any (cloned; handles are cheap).
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.tracer.borrow().clone()
    }

    /// Emit `kind` on this session's track, stamped with the session's
    /// current simulated time.  No-op when untraced.
    pub fn trace_event(&self, kind: TraceEventKind) {
        if !self.traced.get() {
            return;
        }
        if let Some(h) = self.tracer.borrow().as_ref() {
            h.emit(self.clock.elapsed(), kind);
        }
    }

    /// The I/O counted since the last window flush (reads, hits,
    /// writes) — all zero when untraced.
    pub fn pending_io_window(&self) -> (u64, u64, u64) {
        (self.win_reads.get(), self.win_hits.get(), self.win_writes.get())
    }

    /// Emit the pending I/O window as one aggregate event and clear it.
    /// Called at yield points, operator boundaries, reset and detach.
    pub fn flush_io_window(&self) {
        if !self.traced.get() {
            return;
        }
        let (reads, hits, writes) =
            (self.win_reads.get(), self.win_hits.get(), self.win_writes.get());
        if reads + hits + writes == 0 {
            return;
        }
        self.win_reads.set(0);
        self.win_hits.set(0);
        self.win_writes.set(0);
        self.trace_event(TraceEventKind::IoWindow { reads, hits, writes });
    }

    #[inline]
    fn tick(&self) {
        let every = self.yield_every.get();
        if every == 0 {
            return;
        }
        let n = self.ticks.get() + 1;
        if n >= every {
            self.ticks.set(0);
            self.yield_now();
        } else {
            self.ticks.set(n);
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("query", &self.query)
            .field("elapsed", &self.elapsed())
            .field("stats", &self.stats())
            .field("pool_resident", &self.pool.resident())
            .field("pool_capacity", &self.pool_capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(p: u32) -> PageId {
        PageId::new(FileId(7), p)
    }

    #[test]
    fn miss_then_hit_charges_differently() {
        let s = Session::with_pool_pages(8);
        s.read_page(pid(0), AccessKind::Random);
        let after_miss = s.elapsed();
        s.read_page(pid(0), AccessKind::Random);
        let after_hit = s.elapsed() - after_miss;
        assert!((after_miss - s.model().random_page_read).abs() < 1e-12);
        assert!((after_hit - s.model().cpu_buffer_hit).abs() < 1e-12);
        assert_eq!(s.stats().random_reads, 1);
        assert_eq!(s.stats().buffer_hits, 1);
    }

    #[test]
    fn zero_pool_always_pays_disk() {
        let s = Session::with_pool_pages(0);
        for _ in 0..5 {
            s.read_page(pid(3), AccessKind::Sequential);
        }
        assert_eq!(s.stats().seq_reads, 5);
        assert_eq!(s.stats().buffer_hits, 0);
    }

    #[test]
    fn writes_populate_pool() {
        let s = Session::with_pool_pages(8);
        s.write_page(pid(1));
        s.read_page(pid(1), AccessKind::Random);
        assert_eq!(s.stats().buffer_hits, 1);
        assert_eq!(s.stats().page_writes, 1);
    }

    #[test]
    fn reset_restores_fresh_session_behaviour() {
        let warm = Session::with_pool_pages(4);
        // Dirty the session: misses, hits, evictions, CPU work, temp ids.
        for i in 0..16 {
            warm.read_page(pid(i), AccessKind::Random);
        }
        warm.charge_rows(100);
        warm.alloc_temp_file(50);
        warm.reset();
        assert_eq!(warm.elapsed(), 0.0);
        assert_eq!(warm.stats(), IoStats::default());
        assert_eq!(warm.pool_counters(), (0, 0, 0));
        assert_eq!(warm.pool_capacity(), 4);
        // Replay a workload on the reset session and on a fresh one: the
        // measurements must be identical, including temp-file numbering.
        let fresh = Session::with_pool_pages(4);
        for s in [&warm, &fresh] {
            for i in [0u32, 1, 0, 2, 3, 4, 0, 1] {
                s.read_page(pid(i), AccessKind::Random);
            }
            s.charge_compares(7);
        }
        assert_eq!(warm.stats(), fresh.stats());
        assert_eq!(warm.elapsed(), fresh.elapsed());
        assert_eq!(warm.pool_counters(), fresh.pool_counters());
        assert_eq!(warm.alloc_temp_file(50), fresh.alloc_temp_file(50));
    }

    #[test]
    fn invalidate_forces_reread() {
        let s = Session::with_pool_pages(8);
        s.read_page(pid(1), AccessKind::Random);
        s.invalidate_file(FileId(7));
        s.read_page(pid(1), AccessKind::Random);
        assert_eq!(s.stats().random_reads, 2);
    }

    #[test]
    fn shared_sessions_share_residency_but_not_clocks() {
        let pool = Arc::new(SharedBufferPool::new(8, EvictionPolicy::Lru));
        let a = Session::on_shared(CostModel::hdd_2009(), Arc::clone(&pool));
        let b = Session::on_shared(CostModel::hdd_2009(), Arc::clone(&pool));
        assert_ne!(a.query_id(), b.query_id());
        a.read_page(pid(0), AccessKind::Random); // a misses
        b.read_page(pid(0), AccessKind::Random); // b hits a's page
        assert_eq!(a.stats().random_reads, 1);
        assert_eq!(a.stats().buffer_hits, 0);
        assert_eq!(b.stats().random_reads, 0);
        assert_eq!(b.stats().buffer_hits, 1);
        // Clocks are private: each query paid only its own charge.
        assert!((a.elapsed() - a.model().random_page_read).abs() < 1e-12);
        assert!((b.elapsed() - b.model().cpu_buffer_hit).abs() < 1e-12);
        // Attribution partitions the pool counters.
        let (hits, misses, _) = pool.counters();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        assert_eq!(a.query_pool_counters().misses, 1);
        assert_eq!(b.query_pool_counters().hits, 1);
    }

    #[test]
    fn yield_hook_fires_every_quantum_and_charges_nothing() {
        let s = Session::with_pool_pages(8);
        let fired = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let f = Arc::clone(&fired);
        s.install_yield_hook(
            3,
            Box::new(move |_elapsed| {
                f.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }),
        );
        for _ in 0..7 {
            s.charge_rows(1);
        }
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 2);
        // The hook itself must not have charged anything: 7 row charges.
        assert_eq!(s.stats().cpu_rows, 7);
        assert!((s.elapsed() - 7.0 * s.model().cpu_row).abs() < 1e-15);
        s.clear_yield_hook();
        for _ in 0..9 {
            s.charge_rows(1);
        }
        assert_eq!(fired.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn hooked_session_charges_identically_to_plain_session() {
        // The bit-identity half of the scheduling design: ticking and
        // yielding sit strictly between charges, so a session with an
        // armed hook replays the exact f64 sequence of a plain one.
        let plain = Session::with_pool_pages(4);
        let hooked = Session::with_pool_pages(4);
        hooked.install_yield_hook(2, Box::new(|_| {}));
        for s in [&plain, &hooked] {
            for i in 0..32u32 {
                s.read_page(pid(i % 9), AccessKind::Random);
                s.charge_rows(3);
                s.charge_compares(2);
            }
            s.write_page(pid(100));
            s.charge_hashes(5);
        }
        assert_eq!(plain.elapsed().to_bits(), hooked.elapsed().to_bits());
        assert_eq!(plain.stats(), hooked.stats());
        assert_eq!(plain.pool_counters(), hooked.pool_counters());
    }

    #[test]
    fn yield_hook_receives_elapsed_sim_time() {
        let s = Session::with_pool_pages(8);
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        s.install_yield_hook(
            2,
            Box::new(move |elapsed| {
                sink.lock().unwrap().push(elapsed);
            }),
        );
        for _ in 0..4 {
            s.charge_rows(1);
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert!((seen[0] - 2.0 * s.model().cpu_row).abs() < 1e-15);
        assert!((seen[1] - 4.0 * s.model().cpu_row).abs() < 1e-15);
    }

    #[test]
    fn traced_session_charges_identically_to_plain_session() {
        use robustmap_obs::trace::{TraceDetail, TraceSink};
        // The charge-free contract at the storage layer: attaching a
        // full-detail tracer replays the exact f64 charge sequence of
        // an untraced session, while recording every page touch.
        let plain = Session::with_pool_pages(4);
        let traced = Session::with_pool_pages(4);
        let sink = Arc::new(TraceSink::memory(TraceDetail::Full));
        traced.attach_tracer(Arc::clone(&sink), "q0");
        for s in [&plain, &traced] {
            for i in 0..24u32 {
                s.read_page(pid(i % 7), AccessKind::Random);
                s.charge_rows(2);
            }
            s.write_page(pid(50));
            s.alloc_temp_file(80);
            s.set_memory_grant(1 << 20);
            s.charge_hashes(3);
        }
        traced.detach_tracer();
        assert_eq!(plain.elapsed().to_bits(), traced.elapsed().to_bits());
        assert_eq!(plain.stats(), traced.stats());
        assert_eq!(plain.pool_counters(), traced.pool_counters());
        // ... and the trace saw it all.
        let m = sink.metrics();
        assert_eq!(m.counter("io.page_reads"), 24);
        assert_eq!(m.counter("io.page_writes"), 1);
        assert_eq!(m.counter("spill.files"), 1);
        assert_eq!(m.counter("grant.sets"), 1);
        // Detach flushed the window: aggregates match the stats.
        assert_eq!(
            m.counter("io.window.reads") + m.counter("io.window.hits"),
            traced.stats().page_requests()
        );
        assert_eq!(traced.pending_io_window(), (0, 0, 0));
        assert!(robustmap_obs::trace::validate_trace(&sink.events()).is_ok());
    }

    #[test]
    fn reset_clears_per_query_trace_state() {
        use robustmap_obs::trace::{TraceDetail, TraceEventKind, TraceSink};
        let s = Session::with_pool_pages(4);
        let sink = Arc::new(TraceSink::memory(TraceDetail::Spans));
        s.attach_tracer(Arc::clone(&sink), "warm");
        for i in 0..5 {
            s.read_page(pid(i), AccessKind::Random);
        }
        assert_eq!(s.pending_io_window(), (5, 0, 0));
        s.reset();
        // The pending window was flushed (not dropped) and the reset
        // marker records that the track's clock restarted.
        assert_eq!(s.pending_io_window(), (0, 0, 0));
        let events = sink.events();
        assert!(matches!(
            events[events.len() - 2].kind,
            TraceEventKind::IoWindow { reads: 5, .. }
        ));
        assert!(matches!(events.last().unwrap().kind, TraceEventKind::SessionReset));
        // Post-reset events restart at sim zero without tripping the
        // monotonicity validator.
        s.read_page(pid(0), AccessKind::Random);
        s.detach_tracer();
        assert!(robustmap_obs::trace::validate_trace(&sink.events()).is_ok());
    }
}
