//! A buffer pool shared by many concurrently served queries.
//!
//! The paper names shared run-time resources — "resources (memory, I/O
//! bandwidth)" (§3) — as conditions that bend robustness maps, but a
//! private [`BufferPool`] per [`crate::Session`] makes contention invisible
//! by construction.  [`SharedBufferPool`] is the shared substrate the
//! concurrent serving layer runs on: one residency simulator and one
//! temp-file namespace, accessed by N per-query sessions.
//!
//! Three responsibilities live here:
//!
//! * **Residency.**  All queries hit/miss against one [`BufferPool`], so a
//!   page one query faulted in is a hit for every other query — and a page
//!   one query evicts is a re-read for its owner.  That is the contention
//!   (and the sharing) the `ext_concurrency` maps measure.
//! * **Attribution.**  Each registered query ([`QueryId`]) gets its own
//!   hit/miss counters alongside the pool-level ones, so per-query cost
//!   breakdowns survive sharing.  The per-query counters partition the
//!   pool-level ones exactly (asserted by `tests/concurrent_equivalence.rs`).
//! * **Temp-file allocation.**  Spilling operators (external sort, hash
//!   join/aggregation partitions) allocate temp [`FileId`]s.  With private
//!   pools a per-query counter was collision-free; on a shared pool two
//!   interleaved spills would reuse the same ids and corrupt each other's
//!   residency accounting.  The central allocator hands out each id at most
//!   once per epoch (until [`SharedBufferPool::reset`]).
//!
//! Interior mutability uses a [`Mutex`]: sessions on worker threads can
//! then share the pool without `unsafe`.  The deterministic scheduler in
//! `core::serve` runs exactly one query at a time (baton passing), so the
//! lock is never contended there; it exists so the type is `Sync` and the
//! design stays honest if a truly parallel front end ever appears.

use std::sync::{Mutex, MutexGuard};

use crate::buffer::{BufferPool, EvictionPolicy, FileId, PageId};

/// Identity of one registered query on a [`SharedBufferPool`].
///
/// Ids are dense (0, 1, 2, ...) in registration order and are never reused
/// within a pool's lifetime — [`SharedBufferPool::reset`] zeroes the
/// per-query counters but keeps registrations valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

/// Per-query slice of the pool-level hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryShare {
    /// Page requests this query satisfied from the pool.
    pub hits: u64,
    /// Page requests this query took to the (simulated) disk.
    pub misses: u64,
}

#[derive(Debug)]
struct PoolInner {
    pool: BufferPool,
    shares: Vec<QueryShare>,
    temp_next: u32,
}

/// One buffer pool + temp-file namespace shared by N queries.
#[derive(Debug)]
pub struct SharedBufferPool {
    inner: Mutex<PoolInner>,
}

impl SharedBufferPool {
    /// A shared pool holding at most `capacity_pages` pages under `policy`.
    pub fn new(capacity_pages: usize, policy: EvictionPolicy) -> Self {
        Self::from_pool(BufferPool::new(capacity_pages, policy))
    }

    /// Wrap an existing pool (the private-pool [`crate::Session`]
    /// constructors use this).
    pub fn from_pool(pool: BufferPool) -> Self {
        SharedBufferPool {
            inner: Mutex::new(PoolInner { pool, shares: Vec::new(), temp_next: 0 }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PoolInner> {
        self.inner.lock().expect("shared buffer pool lock poisoned")
    }

    /// Register a new query, returning its identity for attribution.
    pub fn register_query(&self) -> QueryId {
        let mut g = self.lock();
        g.shares.push(QueryShare::default());
        QueryId(g.shares.len() as u32 - 1)
    }

    /// Touch `page` on behalf of `query`: returns `true` on a hit, `false`
    /// on a miss (the page becomes resident either way).  Both the
    /// pool-level and the query's counters are updated.
    pub fn access(&self, query: QueryId, page: PageId) -> bool {
        let mut g = self.lock();
        let hit = g.pool.access(page);
        let share = &mut g.shares[query.0 as usize];
        if hit {
            share.hits += 1;
        } else {
            share.misses += 1;
        }
        hit
    }

    /// Drop every page of `file` from the pool (temp files deleted after a
    /// sort run or spill partition is consumed).
    pub fn invalidate_file(&self, file: FileId) {
        self.lock().pool.invalidate_file(file);
    }

    /// Allocate a temp-file id above `base` (the catalog's first free file
    /// id).  Central and monotone: concurrent spilling queries can never
    /// receive the same id, no matter how their allocations interleave.
    pub fn alloc_temp_file(&self, base: u32) -> FileId {
        let mut g = self.lock();
        let n = g.temp_next;
        g.temp_next = n + 1;
        FileId(base + n)
    }

    /// Pool-level `(hits, misses, evictions)` since construction or the
    /// last [`reset`](Self::reset).
    pub fn counters(&self) -> (u64, u64, u64) {
        self.lock().pool.counters()
    }

    /// `query`'s share of the pool-level hit/miss counters.
    pub fn query_counters(&self, query: QueryId) -> QueryShare {
        self.lock().shares[query.0 as usize]
    }

    /// Configured capacity in pages.
    pub fn capacity(&self) -> usize {
        self.lock().pool.capacity()
    }

    /// Number of pages currently resident.
    pub fn resident(&self) -> usize {
        self.lock().pool.resident()
    }

    /// Whether `page` is currently resident (does not update recency).
    pub fn contains(&self, page: PageId) -> bool {
        self.lock().pool.contains(page)
    }

    /// Restore the as-constructed state: pool cold with zeroed counters
    /// (same capacity and policy), every query's share zeroed, and the
    /// temp-file allocator rewound to `base + 0`.  Registrations stay
    /// valid.  The serving layer resets the pool whenever it goes idle, so
    /// a query admitted into an idle system starts exactly as cold as a
    /// fresh private session — the concurrency-1 bit-identity contract.
    pub fn reset(&self) {
        let mut g = self.lock();
        g.pool.reset();
        for share in &mut g.shares {
            *share = QueryShare::default();
        }
        g.temp_next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(f: u32, p: u32) -> PageId {
        PageId::new(FileId(f), p)
    }

    #[test]
    fn per_query_shares_partition_pool_counters() {
        let pool = SharedBufferPool::new(8, EvictionPolicy::Lru);
        let q0 = pool.register_query();
        let q1 = pool.register_query();
        pool.access(q0, pid(1, 0)); // q0 miss
        pool.access(q1, pid(1, 0)); // q1 hit (faulted in by q0)
        pool.access(q1, pid(1, 1)); // q1 miss
        pool.access(q0, pid(1, 1)); // q0 hit
        pool.access(q0, pid(1, 0)); // q0 hit
        let s0 = pool.query_counters(q0);
        let s1 = pool.query_counters(q1);
        assert_eq!(s0, QueryShare { hits: 2, misses: 1 });
        assert_eq!(s1, QueryShare { hits: 1, misses: 1 });
        let (hits, misses, _) = pool.counters();
        assert_eq!(hits, s0.hits + s1.hits);
        assert_eq!(misses, s0.misses + s1.misses);
    }

    #[test]
    fn interleaved_temp_allocations_never_collide() {
        let pool = SharedBufferPool::new(4, EvictionPolicy::Lru);
        // Two spilling queries alternating allocations (the schedule an
        // interleaved pair of external sorts produces): ids must be
        // pairwise distinct and above the catalog base.
        let base = 100;
        let mut seen = std::collections::HashSet::new();
        for _round in 0..4 {
            for _query in 0..2 {
                let id = pool.alloc_temp_file(base);
                assert!(id.0 >= base);
                assert!(seen.insert(id), "temp file id {id:?} allocated twice");
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn reset_rewinds_allocator_and_shares_but_keeps_registrations() {
        let pool = SharedBufferPool::new(4, EvictionPolicy::Lru);
        let q = pool.register_query();
        pool.access(q, pid(1, 0));
        let first = pool.alloc_temp_file(10);
        pool.reset();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.counters(), (0, 0, 0));
        assert_eq!(pool.query_counters(q), QueryShare::default());
        // Allocator rewound: the next epoch reuses the same id sequence.
        assert_eq!(pool.alloc_temp_file(10), first);
        // The registration survives the reset.
        assert!(!pool.access(q, pid(1, 0)));
        assert_eq!(pool.query_counters(q), QueryShare { hits: 0, misses: 1 });
    }

    #[test]
    fn clock_policy_with_interleaved_accessors_and_invalidation() {
        // Satellite coverage: Clock's second-chance path under
        // invalidate_file with two interleaved accessors.  Invalidation
        // frees arena slots mid-ring; the clock hand must skip the freed
        // slots and the pool must keep enforcing capacity.
        let pool = SharedBufferPool::new(4, EvictionPolicy::Clock);
        let q0 = pool.register_query();
        let q1 = pool.register_query();
        // Fill the pool with two files, interleaved.
        pool.access(q0, pid(7, 0));
        pool.access(q1, pid(8, 0));
        pool.access(q0, pid(7, 1));
        pool.access(q1, pid(8, 1));
        assert_eq!(pool.resident(), 4);
        // Drop one query's temp file: its slots are freed in place.
        pool.invalidate_file(FileId(7));
        assert_eq!(pool.resident(), 2);
        assert!(!pool.contains(pid(7, 0)));
        assert!(pool.contains(pid(8, 0)));
        // The survivor's pages must still hit; the victim's must re-read.
        assert!(pool.access(q1, pid(8, 0)));
        assert!(!pool.access(q0, pid(7, 0)));
        // Churn past capacity from both queries: the hand sweeps over the
        // freed/reused slots without stalling and capacity holds.
        for i in 0..64u32 {
            let q = if i % 2 == 0 { q0 } else { q1 };
            pool.access(q, pid(9, i % 11));
            assert!(pool.resident() <= 4);
        }
        let (hits, misses, evictions) = pool.counters();
        assert_eq!(hits + misses, 6 + 64);
        assert!(evictions > 0);
    }
}
