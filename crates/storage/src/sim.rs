//! Deterministic cost model and simulated clock.
//!
//! The paper's robustness maps plot *measured elapsed times* on real
//! hardware.  We replace the hardware with a cost model: operators still do
//! all their real work against real data structures, and every page access
//! and unit of CPU work is charged to a [`SimClock`].  The constants below
//! are calibrated so that the landmark features of the paper's Figure 1
//! (break-even points, relative factors) appear at the selectivities the
//! paper reports; see `EXPERIMENTS.md` for the calibration record.

use std::cell::Cell;

/// How a page access hits the (simulated) disk.
///
/// The distinction drives the paper's central effects: a table scan issues
/// large sequential reads, a traditional index fetch issues one random read
/// per qualifying row, and the "improved" index scan converts random reads
/// into (slower-than-scan) single-page in-order reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Part of a multi-page read-ahead run (table scans, bulk leaf scans).
    Sequential,
    /// In physical order but fetched one page at a time (no read-ahead).
    SinglePage,
    /// A seek to an unrelated location (index fetch of a scattered row).
    Random,
}

/// Cost constants for the simulated machine.
///
/// All times are in seconds.  The defaults model a 2009-era enterprise disk
/// subsystem, matching the paper's experimental environment; alternative
/// presets support ablations over the memory hierarchy (paper §4).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Page size in bytes (fixed by [`crate::page::PAGE_SIZE`], recorded
    /// here for reporting).
    pub page_size: usize,
    /// Cost of one page inside a sequential read-ahead run.
    pub seq_page_read: f64,
    /// Cost of a page read in physical order but without read-ahead.
    pub single_page_read: f64,
    /// Cost of a random page read (seek + rotational delay + transfer).
    pub random_page_read: f64,
    /// Cost of writing one page (run files, spill partitions).
    pub page_write: f64,
    /// CPU cost of producing/consuming one row.
    pub cpu_row: f64,
    /// CPU cost of one key comparison.
    pub cpu_compare: f64,
    /// CPU cost of one hash-table operation (hash + probe step).
    pub cpu_hash: f64,
    /// CPU cost of looking a page up in the buffer pool (charged on hits).
    pub cpu_buffer_hit: f64,
    /// Fixed cost of starting/coordinating one parallel worker.
    pub parallel_startup: f64,
}

impl CostModel {
    /// 2009-era disk-subsystem constants (the paper's hardware
    /// generation: an enterprise RAID array, where parallel spindles and
    /// command queueing push *effective* random reads below a single
    /// drive's seek time).
    ///
    /// Calibration: the traditional index fetch breaks even with the table
    /// scan when the result has about `heap_pages * seq_page_read /
    /// random_page_read` rows.  With the default workload's ~186 rows per
    /// 8 KiB page, `random = 0.7 ms` puts that break-even at `~2^-11` of
    /// the table — where Figure 1 of the paper reports it.  The
    /// single-page/sequential ratio of 2.5 reproduces the paper's "about
    /// 2.5 times worse than a table scan" for the improved index scan at
    /// selectivity 1.  `EXPERIMENTS.md` records the measured landmarks.
    pub fn hdd_2009() -> Self {
        CostModel {
            page_size: crate::page::PAGE_SIZE,
            seq_page_read: 40e-6,
            single_page_read: 100e-6,
            random_page_read: 0.7e-3,
            page_write: 100e-6,
            cpu_row: 50e-9,
            cpu_compare: 5e-9,
            cpu_hash: 20e-9,
            cpu_buffer_hit: 1e-7,
            parallel_startup: 0.5e-3,
        }
    }

    /// An SSD-like preset: random reads only modestly more expensive than
    /// sequential ones.  Used by ablation benches to show how robustness
    /// landmarks move with the storage hierarchy.
    pub fn ssd() -> Self {
        CostModel {
            random_page_read: 120e-6,
            single_page_read: 60e-6,
            seq_page_read: 30e-6,
            page_write: 80e-6,
            ..Self::hdd_2009()
        }
    }

    /// A memory-resident preset: all page accesses cost a buffer hit, so
    /// only CPU effects remain.  Useful to isolate algorithmic CPU shapes.
    pub fn in_memory() -> Self {
        CostModel {
            random_page_read: 1e-7,
            single_page_read: 1e-7,
            seq_page_read: 1e-7,
            page_write: 1e-7,
            ..Self::hdd_2009()
        }
    }

    /// Cost of a disk read of the given kind.
    #[inline]
    pub fn read_cost(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Sequential => self.seq_page_read,
            AccessKind::SinglePage => self.single_page_read,
            AccessKind::Random => self.random_page_read,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::hdd_2009()
    }
}

/// Counters describing the I/O and CPU work a query performed.
///
/// A plain-old-data snapshot; obtained from [`SimClock::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read as part of sequential read-ahead runs.
    pub seq_reads: u64,
    /// Pages read in order but one page at a time.
    pub single_reads: u64,
    /// Random page reads.
    pub random_reads: u64,
    /// Pages written (sort runs, spill partitions).
    pub page_writes: u64,
    /// Page requests satisfied by the buffer pool.
    pub buffer_hits: u64,
    /// Rows processed.
    pub cpu_rows: u64,
    /// Key comparisons performed.
    pub cpu_compares: u64,
    /// Hash-table operations performed.
    pub cpu_hashes: u64,
}

impl IoStats {
    /// Total pages read from the simulated disk (misses only).
    pub fn pages_read(&self) -> u64 {
        self.seq_reads + self.single_reads + self.random_reads
    }

    /// Total page requests, including buffer hits.
    pub fn page_requests(&self) -> u64 {
        self.pages_read() + self.buffer_hits
    }

    /// Element-wise difference (`self - earlier`); saturates at zero.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads.saturating_sub(earlier.seq_reads),
            single_reads: self.single_reads.saturating_sub(earlier.single_reads),
            random_reads: self.random_reads.saturating_sub(earlier.random_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            cpu_rows: self.cpu_rows.saturating_sub(earlier.cpu_rows),
            cpu_compares: self.cpu_compares.saturating_sub(earlier.cpu_compares),
            cpu_hashes: self.cpu_hashes.saturating_sub(earlier.cpu_hashes),
        }
    }
}

/// The simulated clock: accumulates charged seconds and work counters.
///
/// Single-threaded by design — each query execution owns one clock — so
/// interior mutability uses [`Cell`] rather than atomics.
#[derive(Debug, Default)]
pub struct SimClock {
    seconds: Cell<f64>,
    seq_reads: Cell<u64>,
    single_reads: Cell<u64>,
    random_reads: Cell<u64>,
    page_writes: Cell<u64>,
    buffer_hits: Cell<u64>,
    cpu_rows: Cell<u64>,
    cpu_compares: Cell<u64>,
    cpu_hashes: Cell<u64>,
}

impl SimClock {
    /// A fresh clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulated seconds elapsed so far.
    #[inline]
    pub fn elapsed(&self) -> f64 {
        self.seconds.get()
    }

    /// Charge an arbitrary duration (used by operators for modelled work
    /// that has no dedicated counter).
    #[inline]
    pub fn charge(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot charge negative time");
        self.seconds.set(self.seconds.get() + seconds);
    }

    /// Charge a disk read of `kind` under `model` and count it.
    #[inline]
    pub fn charge_read(&self, model: &CostModel, kind: AccessKind) {
        self.charge(model.read_cost(kind));
        let counter = match kind {
            AccessKind::Sequential => &self.seq_reads,
            AccessKind::SinglePage => &self.single_reads,
            AccessKind::Random => &self.random_reads,
        };
        counter.set(counter.get() + 1);
    }

    /// Charge a page write and count it.
    #[inline]
    pub fn charge_write(&self, model: &CostModel) {
        self.charge(model.page_write);
        self.page_writes.set(self.page_writes.get() + 1);
    }

    /// Charge a buffer-pool hit and count it.
    #[inline]
    pub fn charge_buffer_hit(&self, model: &CostModel) {
        self.charge(model.cpu_buffer_hit);
        self.buffer_hits.set(self.buffer_hits.get() + 1);
    }

    /// Charge CPU for processing `n` rows.
    #[inline]
    pub fn charge_rows(&self, model: &CostModel, n: u64) {
        self.charge(model.cpu_row * n as f64);
        self.cpu_rows.set(self.cpu_rows.get() + n);
    }

    /// Charge CPU for `n` key comparisons.
    #[inline]
    pub fn charge_compares(&self, model: &CostModel, n: u64) {
        self.charge(model.cpu_compare * n as f64);
        self.cpu_compares.set(self.cpu_compares.get() + n);
    }

    /// Charge CPU for `n` hash-table operations.
    #[inline]
    pub fn charge_hashes(&self, model: &CostModel, n: u64) {
        self.charge(model.cpu_hash * n as f64);
        self.cpu_hashes.set(self.cpu_hashes.get() + n);
    }

    /// Reset the clock to time zero with all counters cleared — exactly the
    /// state of a freshly constructed clock.  Sweep workers reuse one clock
    /// per thread and reset it between map cells.
    pub fn reset(&self) {
        self.seconds.set(0.0);
        self.seq_reads.set(0);
        self.single_reads.set(0);
        self.random_reads.set(0);
        self.page_writes.set(0);
        self.buffer_hits.set(0);
        self.cpu_rows.set(0);
        self.cpu_compares.set(0);
        self.cpu_hashes.set(0);
    }

    /// Add another execution's counters without advancing time.  Parallel
    /// operators use this: total work is the sum over workers, while
    /// elapsed time is the critical path (charged separately via
    /// [`SimClock::charge`]).
    pub fn add_counters(&self, stats: &IoStats) {
        self.seq_reads.set(self.seq_reads.get() + stats.seq_reads);
        self.single_reads.set(self.single_reads.get() + stats.single_reads);
        self.random_reads.set(self.random_reads.get() + stats.random_reads);
        self.page_writes.set(self.page_writes.get() + stats.page_writes);
        self.buffer_hits.set(self.buffer_hits.get() + stats.buffer_hits);
        self.cpu_rows.set(self.cpu_rows.get() + stats.cpu_rows);
        self.cpu_compares.set(self.cpu_compares.get() + stats.cpu_compares);
        self.cpu_hashes.set(self.cpu_hashes.get() + stats.cpu_hashes);
    }

    /// Snapshot the work counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads.get(),
            single_reads: self.single_reads.get(),
            random_reads: self.random_reads.get(),
            page_writes: self.page_writes.get(),
            buffer_hits: self.buffer_hits.get(),
            cpu_rows: self.cpu_rows.get(),
            cpu_compares: self.cpu_compares.get(),
            cpu_hashes: self.cpu_hashes.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_costs_are_ordered() {
        let m = CostModel::hdd_2009();
        assert!(m.seq_page_read < m.single_page_read);
        assert!(m.single_page_read < m.random_page_read);
    }

    #[test]
    fn presets_differ_in_random_penalty() {
        let hdd = CostModel::hdd_2009();
        let ssd = CostModel::ssd();
        let mem = CostModel::in_memory();
        let penalty = |m: &CostModel| m.random_page_read / m.seq_page_read;
        assert!(penalty(&hdd) > penalty(&ssd));
        assert!(penalty(&ssd) > penalty(&mem) || penalty(&mem) <= 2.0);
    }

    #[test]
    fn clock_accumulates_reads() {
        let m = CostModel::hdd_2009();
        let c = SimClock::new();
        c.charge_read(&m, AccessKind::Sequential);
        c.charge_read(&m, AccessKind::Random);
        c.charge_read(&m, AccessKind::Random);
        let s = c.stats();
        assert_eq!(s.seq_reads, 1);
        assert_eq!(s.random_reads, 2);
        assert_eq!(s.pages_read(), 3);
        let expected = m.seq_page_read + 2.0 * m.random_page_read;
        assert!((c.elapsed() - expected).abs() < 1e-12);
    }

    #[test]
    fn clock_accumulates_cpu_and_writes() {
        let m = CostModel::hdd_2009();
        let c = SimClock::new();
        c.charge_rows(&m, 100);
        c.charge_compares(&m, 7);
        c.charge_hashes(&m, 3);
        c.charge_write(&m);
        c.charge_buffer_hit(&m);
        let s = c.stats();
        assert_eq!(s.cpu_rows, 100);
        assert_eq!(s.cpu_compares, 7);
        assert_eq!(s.cpu_hashes, 3);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.buffer_hits, 1);
        assert!(c.elapsed() > 0.0);
    }

    #[test]
    fn stats_since_subtracts() {
        let m = CostModel::hdd_2009();
        let c = SimClock::new();
        c.charge_read(&m, AccessKind::Random);
        let before = c.stats();
        c.charge_read(&m, AccessKind::Random);
        c.charge_rows(&m, 5);
        let delta = c.stats().since(&before);
        assert_eq!(delta.random_reads, 1);
        assert_eq!(delta.cpu_rows, 5);
        assert_eq!(delta.seq_reads, 0);
    }
}
